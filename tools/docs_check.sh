#!/usr/bin/env bash
# docs-check: fail on dangling references in the curated documentation.
#
# Scans README.md, ROADMAP.md and docs/*.md for
#   1. repo-relative file paths (src/..., tests/..., docs/..., bench/...,
#      tools/..., examples/...) that do not exist;
#   2. backticked CamelCase type names absent from src/, tools/ and bench/;
#   3. backticked function() references absent from src/, tools/, bench/
#      and tests/;
#   4. backticked FT2_* knobs (env vars / macros) absent from the code.
#   5. backticked serve.* / protect.* / campaign.* / trace.* metric and
#      span names absent from the generated catalog dump
#      (`ft2 metric-names`); `<KIND>` / `<OUTCOME>` / `<name>`
#      placeholders are normalized before lookup (`<N>` stays literal —
#      the dump keeps the numeric wildcard). Skipped when the ft2 binary
#      has not been built yet.
#   6. `--scheme NAME` references whose NAME is not a registered detection
#      scheme (`ft2 scheme-names`); `:key=value` parameters are stripped
#      and `<...>` placeholders skipped. Skipped before the first build.
#   7. the reverse of 4: every FT2_* env knob the code actually reads
#      (env_string/env_size/env_double/env_flag/getenv in src/, tools/,
#      bench/) must be mentioned in at least one scanned doc.
#   8. the reverse of 5: every catalog template name
#      (`ft2 metric-names --templates`, placeholders intact) must be
#      mentioned in at least one scanned doc — a new metric cannot ship
#      undocumented. Skipped before the first build.
# Registered as the DocsCheck ctest (label: unit) and as the `docs-check`
# build target, so the default `ctest` invocation keeps docs honest.
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT" || exit 1

FT2_BIN="${FT2_BIN:-$ROOT/build/tools/ft2}"
CATALOG=""
TEMPLATES=""
SCHEMES=""
if [ -x "$FT2_BIN" ]; then
  CATALOG="$("$FT2_BIN" metric-names 2>/dev/null)" || CATALOG=""
  TEMPLATES="$("$FT2_BIN" metric-names --templates 2>/dev/null)" || TEMPLATES=""
  SCHEMES="$("$FT2_BIN" scheme-names 2>/dev/null)" || SCHEMES=""
fi

DOCS=(README.md ROADMAP.md docs/*.md)
fail=0
complain() {
  echo "docs-check: $1: dangling reference '$2'"
  fail=1
}

for doc in "${DOCS[@]}"; do
  [ -f "$doc" ] || { complain "(docs-check)" "$doc"; continue; }

  # 1. Repo paths. Trailing punctuation from prose is stripped; paths under
  #    build/ (built binaries) are excluded via the lookbehind, and an
  #    extensionless reference also matches its .cpp source (executable
  #    target names like examples/quickstart).
  while IFS= read -r path; do
    [ -n "$path" ] || continue
    [ -e "$path" ] || [ -e "$path.cpp" ] || complain "$doc" "$path"
  done < <(grep -oP '(?<![A-Za-z0-9_./-])(src|tests|docs|bench|tools|examples)/[A-Za-z0-9_./-]+' "$doc" \
           | sed -e 's/[.,:;)]*$//' | sort -u)

  # 2. Backticked CamelCase type names (two humps or more, so prose words
  #    and acronyms never match). tests/ is included for referenced test
  #    suite names (e.g. ctest aggregates).
  while IFS= read -r sym; do
    [ -n "$sym" ] || continue
    grep -rqw "$sym" src tools bench tests || complain "$doc" "$sym"
  done < <(grep -oE '`[A-Z][a-z0-9]+([A-Z][a-z0-9]+)+`' "$doc" | tr -d '`' | sort -u)

  # 3. Backticked function() references (free functions and methods).
  while IFS= read -r fn; do
    [ -n "$fn" ] || continue
    grep -rq "$fn *(" src tools bench tests || complain "$doc" "$fn()"
  done < <(grep -oE '`[A-Za-z_][A-Za-z0-9_:.]*\(\)`' "$doc" \
           | sed -e 's/[`()]//g' -e 's/.*:://' -e 's/.*\.//' | sort -u)

  # 4. FT2_* knobs: environment variables and macros.
  while IFS= read -r knob; do
    [ -n "$knob" ] || continue
    grep -rq "$knob" src tools bench || complain "$doc" "$knob"
  done < <(grep -oE '`FT2_[A-Z0-9_]+`' "$doc" | tr -d '`' | sort -u)

  # 5. Metric / span names against the generated catalog dump.
  if [ -n "$CATALOG" ]; then
    while IFS= read -r metric; do
      [ -n "$metric" ] || continue
      norm="${metric//<KIND>/Q_PROJ}"
      norm="${norm//<OUTCOME>/sdc}"
      norm="${norm//<name>/sdc}"
      # <N> stays literal: the catalog dump keeps the numeric wildcard.
      grep -Fxq "$norm" <<<"$CATALOG" || complain "$doc" "$metric"
    done < <(grep -oE '`(serve|protect|campaign|trace)\.[A-Za-z0-9_.<>]+`' "$doc" \
             | tr -d '`' | sort -u)
  fi

  # 6. Detection-scheme names against the live registry dump. Only
  #    `--scheme NAME` occurrences are scanned (bare scheme words in prose
  #    would over-match); parameters after ':' never affect the lookup.
  if [ -n "$SCHEMES" ]; then
    while IFS= read -r scheme; do
      [ -n "$scheme" ] || continue
      case "$scheme" in '<'*) continue ;; esac  # `--scheme <name>` placeholder
      grep -Fxq "$scheme" <<<"$SCHEMES" || complain "$doc" "--scheme $scheme"
    done < <(grep -oE -- '--scheme[= ][<A-Za-z0-9_.:=-]+' "$doc" \
             | sed -e 's/--scheme[= ]//' -e 's/:.*$//' -e 's/[`.,)]*$//' \
             | sort -u)
  fi
done

# 7. Reverse direction of check 4: the code's env knobs must be documented.
#    Docs and source can only drift one way at a time now — a new knob
#    fails here until a doc names it, a renamed knob fails check 4 until
#    the docs catch up.
while IFS= read -r knob; do
  [ -n "$knob" ] || continue
  found=0
  for doc in "${DOCS[@]}"; do
    [ -f "$doc" ] && grep -qw "$knob" "$doc" && { found=1; break; }
  done
  [ "$found" -eq 1 ] || complain "(undocumented env knob)" "$knob"
done < <(grep -rhoE '(env_string|env_size|env_double|env_flag|getenv)\("FT2_[A-Z0-9_]+"' \
           src tools bench 2>/dev/null \
         | grep -oE 'FT2_[A-Z0-9_]+' | sort -u)

# 8. Reverse direction of check 5: every cataloged metric/span template
#    must be documented somewhere. Template names keep their placeholders
#    (one docs row covers all <KIND>/<OUTCOME>/<N> expansions).
if [ -n "$TEMPLATES" ]; then
  while IFS= read -r template; do
    [ -n "$template" ] || continue
    found=0
    for doc in "${DOCS[@]}"; do
      [ -f "$doc" ] && grep -qF "$template" "$doc" && { found=1; break; }
    done
    [ "$found" -eq 1 ] || complain "(undocumented metric)" "$template"
  done <<<"$TEMPLATES"
fi

if [ "$fail" -ne 0 ]; then
  echo "docs-check: FAILED (fix the references above or update the docs)"
  exit 1
fi
echo "docs-check: OK (${#DOCS[@]} files checked)"
