// ft2 — command-line driver for the FT2 library.
//
//   ft2 list-models
//   ft2 critical <model>
//   ft2 train <model> [--retrain]
//   ft2 generate <model> [--dataset D] [--seed N] [--n K] [--protect]
//   ft2 inject <model> [--dataset D] [--layer L] [--bit B] [--step S]
//              [--protect]
//   ft2 profile-bounds <model> [--dataset D] [--inputs N] [--out FILE]
//   ft2 campaign <model> [--dataset D] [--scheme S] [--fault-model F]
//                [--inputs N] [--trials T] [--faults K] [--bounds FILE]
//                [--trace FILE.csv] [--json FILE.json] [--weights]
//                [--metrics-out FILE.json] [--jsonl FILE.jsonl]
//                [--trace-out FILE.json] [--drift] [--clips]
//   ft2 campaign-shard <model> [--shards N] [--dir DIR] [--no-resume]
//                [--verify] [--bootstrap N] [--ci-seed S] [...campaign flags]
//   ft2 serve-bench <model> [--dataset D] [--requests N] [--batch B]
//                   [--seed S] [--scheme S] [--metrics-out FILE.json]
//                   [--trace-out FILE.json]
//   ft2 serve-bench <model> --load [--requests N] [--rate HZ] [--batch B]
//                   [--seed S] [--metrics-out FILE.json]
//   ft2 top --connect HOST:PORT [--interval MS] [--iterations N] [--plain]
//   ft2 report <LOG>... [--json FILE] [--bootstrap N] [--ci-seed S]
//   ft2 metrics <model> [--dataset D] [--requests N] [--batch B] [--seed S]
//               [--scheme S] [--json FILE]
//   ft2 metric-names [--templates]
//   ft2 scheme-names [--long]
//   ft2 kernel-info [--check]
//   ft2 perf [--gpu a100|h100]
//
// Every command accepts --kernel sse|avx2|avx512|auto to force the GEMM
// dispatch tier (equivalent to FT2_KERNEL; tiers are bit-exact, see
// docs/PERFORMANCE.md).
//
// Models: opt-sm opt-xs gptj-sm llama-sm vicuna-sm qwen2-sm qwen2-xs
// Datasets: synthqa synthxqa synthmath
// Schemes: any registered detection scheme, optionally parameterized as
//   name:key=value,... (`ft2 scheme-names` lists them)
// Fault models: 1-bit 2-bit exp
#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <thread>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/ft2.hpp"
#include "fi/report.hpp"
#include "fi/shard.hpp"
#include "fi/trace.hpp"
#include "fi/weight_fault.hpp"
#include "nn/weights.hpp"
#include "obs/catalog.hpp"
#include "obs/http_endpoint.hpp"
#include "obs/prom_export.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace_export.hpp"
#include "protect/bounds_io.hpp"
#include "serve/load_gen.hpp"

using namespace ft2;
namespace pm = ft2::perfmodel;

namespace {

DatasetKind parse_dataset(const std::string& name) {
  for (DatasetKind k : all_datasets()) {
    if (name == dataset_name(k)) return k;
  }
  throw Error("unknown dataset: " + name + " (synthqa|synthxqa|synthmath)");
}


FaultModel parse_fault_model(const std::string& name) {
  if (name == "1-bit") return FaultModel::kSingleBit;
  if (name == "2-bit") return FaultModel::kDoubleBit;
  if (name == "exp" || name == "EXP") return FaultModel::kExponentBit;
  throw Error("unknown fault model: " + name + " (1-bit|2-bit|exp)");
}

std::vector<int> prompt_of(const Sample& sample) {
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                sample.prompt_tokens.end());
  return prompt;
}

/// --telemetry-port wiring shared by serve-bench and campaign: a
/// TelemetrySampler over the command's isolated registry, served by the
/// HTTP endpoint (GET /metrics, /snapshot.json, /healthz) for the
/// lifetime of the workload. Port 0 picks an ephemeral port; the bound
/// URL is printed so an operator (or `ft2 top --connect`) can attach.
class LiveTelemetry {
 public:
  void start(const MetricsRegistry* registry, const ArgParser& args) {
    if (!args.has("telemetry-port")) return;
    TelemetrySampler::Options sampler_opts;
    sampler_opts.interval_ms = args.get_size("telemetry-interval", 1000);
    sampler_.emplace(registry, sampler_opts);
    sampler_->start();
    TelemetryEndpoint::Options endpoint_opts;
    endpoint_opts.port =
        static_cast<int>(args.get_size("telemetry-port", 0));
    endpoint_.emplace(&*sampler_, endpoint_opts);
    endpoint_->start();
    std::cout << "telemetry: " << endpoint_->url()
              << " (/metrics /snapshot.json /healthz)\n";
  }

  void stop() {
    if (endpoint_) endpoint_->stop();
    if (sampler_) sampler_->stop();
  }

 private:
  std::optional<TelemetrySampler> sampler_;
  std::optional<TelemetryEndpoint> endpoint_;
};

int cmd_list_models() {
  Table table({"name", "paper model", "arch", "tasks", "cached"});
  for (const auto& e : model_zoo()) {
    std::string tasks;
    for (DatasetKind k : e.tasks) {
      if (!tasks.empty()) tasks += ",";
      tasks += dataset_name(k);
    }
    const char* arch = e.config.arch == ArchFamily::kOpt     ? "OPT"
                       : e.config.arch == ArchFamily::kGptj  ? "GPT-J"
                                                             : "Llama";
    const bool cached = checkpoint_exists(model_cache_dir() + "/" + e.name +
                                          ".ft2m");
    table.begin_row()
        .cell(e.name)
        .cell(e.paper_name)
        .cell(arch)
        .cell(tasks)
        .cell(cached ? "yes" : "no");
  }
  table.print(std::cout);
  return 0;
}

int cmd_critical(const std::string& model_name) {
  const auto& entry = zoo_entry(model_name);
  const LayerGraph graph = LayerGraph::build(entry.config);
  Table table({"layer", "critical?", "reason"});
  for (LayerKind kind : entry.config.block_layers()) {
    if (!is_linear_layer(kind)) continue;
    const bool critical = layer_is_critical(graph, kind);
    table.begin_row()
        .cell(std::string(layer_kind_name(kind)))
        .cell(critical ? "Y" : "N")
        .cell(critical
                  ? "reaches the next linear layer unguarded"
                  : "guarded by an activation / attention scaling");
  }
  table.print(std::cout);
  return 0;
}

int cmd_train(const std::string& model_name, const ArgParser& args) {
  if (args.has("retrain")) {
    std::error_code ec;
    std::filesystem::remove(model_cache_dir() + "/" + model_name + ".ft2m",
                            ec);
  }
  const auto model = ensure_model(model_name);
  for (DatasetKind task : zoo_entry(model_name).tasks) {
    const auto gen = make_generator(task);
    std::cout << dataset_name(task) << " accuracy: "
              << Table::format_pct(evaluate_accuracy(*model, *gen, 50, 1), 1)
              << "\n";
  }
  return 0;
}

int cmd_generate(const std::string& model_name, const ArgParser& args) {
  const auto model = ensure_model(model_name);
  const DatasetKind dataset = parse_dataset(args.get("dataset", "synthqa"));
  const auto gen = make_generator(dataset);
  const std::size_t n = args.get_size("n", 3);
  Xoshiro256 rng(args.get_size("seed", 1));

  InferenceSession session(*model);
  Ft2Protector protector(*model);
  if (args.has("protect")) protector.attach(session);

  GenerateOptions opts;
  opts.max_new_tokens = generation_tokens(dataset);
  opts.eos_token = Vocab::kEos;
  for (std::size_t i = 0; i < n; ++i) {
    const Sample sample = gen->generate(rng);
    const auto out = session.generate(prompt_of(sample), opts);
    std::cout << "prompt : " << sample.prompt_text << "\n"
              << "output : " << Vocab::shared().decode(out.tokens) << "\n"
              << "expect : " << sample.target_text << "\n\n";
  }
  return 0;
}

int cmd_inject(const std::string& model_name, const ArgParser& args) {
  const auto model = ensure_model(model_name);
  const DatasetKind dataset = parse_dataset(args.get("dataset", "synthqa"));
  const auto gen = make_generator(dataset);
  Xoshiro256 rng(args.get_size("seed", 1));
  const Sample sample = gen->generate(rng);
  const auto prompt = prompt_of(sample);

  FaultPlan plan;
  plan.site.block = static_cast<int>(args.get_size("block", 0));
  plan.site.kind = layer_kind_from_name(args.get("layer", "V_PROJ"));
  plan.neuron = args.get_size("neuron", 0);
  plan.position = prompt.size() + args.get_size("step", 1) - 1;
  plan.flips.count = 1;
  plan.flips.bits[0] = static_cast<int>(args.get_size("bit", 14));

  InjectorHook injector(plan);
  Ft2Protector protector(*model);
  InferenceSession session(*model);
  const auto injector_reg = session.hooks().add(injector);
  if (args.has("protect")) protector.attach(session);

  GenerateOptions opts;
  opts.max_new_tokens = generation_tokens(dataset);
  opts.eos_token = -1;
  const auto out = session.generate(prompt, opts);
  std::cout << "prompt  : " << sample.prompt_text << "\n"
            << "fault   : " << layer_kind_name(plan.site.kind) << " block "
            << plan.site.block << " neuron " << plan.neuron << " bit "
            << plan.flips.bits[0] << " at position " << plan.position << "\n"
            << "injected: " << injector.original_value() << " -> "
            << injector.injected_value() << "\n"
            << "output  : "
            << Vocab::shared().decode(truncate_at_eos(out.tokens)) << "\n"
            << "expect  : " << sample.target_text << "\n";
  if (args.has("protect")) {
    std::cout << "corrected: " << protector.stats().oob_corrected
              << " out-of-bound, " << protector.stats().nan_corrected
              << " NaN\n";
  }
  return 0;
}

int cmd_profile_bounds(const std::string& model_name, const ArgParser& args) {
  const auto model = ensure_model(model_name);
  const DatasetKind dataset = parse_dataset(args.get("dataset", "synthqa"));
  const auto gen = make_generator(dataset);
  const std::size_t n = args.get_size("inputs", 16);
  OfflineProfileOptions profile;
  profile.n_inputs = n;
  profile.seed = args.get_size("seed", 555);
  profile.max_new_tokens = generation_tokens(dataset);
  const BoundStore bounds = profile_offline_bounds(*model, *gen, profile);
  const std::string out = args.get("out", model_name + ".bounds");
  save_bounds(out, bounds);
  std::cout << "profiled " << bounds.valid_count() << " sites from " << n
            << " inputs -> " << out << " (" << bounds.memory_bytes()
            << " bytes of bound state)\n";
  return 0;
}

int cmd_campaign(const std::string& model_name, const ArgParser& args) {
  const auto model = ensure_model(model_name);
  const DatasetKind dataset = parse_dataset(args.get("dataset", "synthqa"));
  const SchemeRef scheme = SchemeRef::parse(args.get("scheme", "ft2"));
  const auto gen = make_generator(dataset);
  const std::size_t gen_tokens = generation_tokens(dataset);

  const std::size_t n_inputs = args.get_size("inputs", 12);
  const auto samples = gen->generate_many(n_inputs * 3,
                                          args.get_size("seed", 20250704));
  auto inputs = prepare_eval_inputs(*model, samples, gen_tokens, true);
  if (inputs.size() > n_inputs) inputs.resize(n_inputs);
  FT2_CHECK_MSG(!inputs.empty(), "model answers no inputs correctly");

  BoundStore bounds;
  if (scheme.needs_offline_bounds()) {
    if (args.has("bounds")) {
      bounds = load_bounds(args.get("bounds", ""), model->config());
    } else {
      OfflineProfileOptions profile;
      profile.seed = 555;
      profile.max_new_tokens = gen_tokens;
      bounds = profile_offline_bounds(*model, *gen, profile);
    }
  }

  CampaignConfig config;
  config.fault_model = parse_fault_model(args.get("fault-model", "exp"));
  config.trials_per_input = args.get_size("trials", 50);
  config.gen_tokens = gen_tokens;
  config.seed = args.get_size("campaign-seed", 42);
  config.faults_per_trial = args.get_size("faults", 1);
  if (args.has("fp32")) config.vtype = ValueType::kF32;

  // Isolated registry so the snapshot contains this campaign's metrics
  // only, not whatever else ran in the process. --telemetry-port needs
  // the registry attached too (the sampler reads it live); attaching is
  // observational, so outcomes stay bit-identical either way.
  MetricsRegistry metrics_registry;
  if (args.has("metrics-out") || args.has("telemetry-port")) {
    config.obs.metrics = &metrics_registry;
  }
  config.drift_monitor = args.has("drift");
  config.capture_clips = args.has("clips");
  LiveTelemetry telemetry;
  telemetry.start(&metrics_registry, args);

  // --trace-out: campaign.trial spans into an isolated tracer, exported as
  // Chrome Trace Event JSON (chrome://tracing / Perfetto).
  Tracer tracer(default_trace_capacity(), /*enabled=*/true);
  if (args.has("trace-out")) config.obs.tracer = &tracer;

  // --jsonl: stream every trial record to disk as it finishes (flight
  // recorder); the in-memory collector still powers --trace / --json.
  std::ofstream jsonl_sink;
  if (args.has("jsonl")) {
    jsonl_sink.open(args.get("jsonl", "trials.jsonl"));
  }

  CampaignResult result;
  TraceCollector trace(jsonl_sink.is_open() ? &jsonl_sink : nullptr);
  if (args.has("weights")) {
    // Persistent weight-fault mode needs a mutable model copy.
    TransformerLM mutable_model(model->config(), model->weights());
    result = run_weight_fault_campaign(mutable_model, inputs, scheme, bounds,
                                       config);
  } else {
    const bool want_trace =
        args.has("trace") || args.has("json") || args.has("jsonl");
    result = run_campaign(*model, inputs, scheme, bounds, config,
                          want_trace ? trace.callback() : TrialCallback{});
  }
  telemetry.stop();

  Table table({"metric", "value"});
  table.begin_row().cell("trials").count(result.trials);
  table.begin_row().cell("SDC").count(result.sdc);
  table.begin_row().cell("masked (identical)").count(result.masked_identical);
  table.begin_row().cell("masked (semantic)").count(result.masked_semantic);
  table.begin_row().cell("SDC rate").cell(
      Table::format_pct(result.sdc_rate(), 3) + " +-" +
      Table::format_pct(result.sdc_ci().margin, 3));
  table.print(std::cout);

  if (args.has("trace")) {
    std::ofstream os(args.get("trace", "trace.csv"));
    trace.write_csv(os);
    std::cout << "trace -> " << args.get("trace", "trace.csv") << " ("
              << trace.size() << " rows)\n";
  }
  if (args.has("json")) {
    Json doc = Json::object();
    doc["model"] = model_name;
    doc["dataset"] = dataset_name(dataset);
    doc["scheme"] = scheme.display();
    doc["fault_model"] = fault_model_name(config.fault_model);
    doc["trials"] = result.trials;
    doc["sdc"] = result.sdc;
    doc["sdc_rate"] = result.sdc_rate();
    doc["trace"] = trace.to_json();
    std::ofstream os(args.get("json", "campaign.json"));
    doc.write(os);
    std::cout << "json -> " << args.get("json", "campaign.json") << "\n";
  }
  if (args.has("jsonl")) {
    std::cout << "jsonl -> " << args.get("jsonl", "trials.jsonl") << " ("
              << trace.recorded() << " records)\n";
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "metrics.json");
    std::ofstream os(path);
    metrics_registry.snapshot().to_json().write(os);
    std::cout << "metrics -> " << path << "\n";
  }
  if (args.has("trace-out")) {
    const std::string path = args.get("trace-out", "trace-events.json");
    std::ofstream os(path);
    ChromeTraceOptions trace_opts;
    trace_opts.pid_tag = "input";
    trace_opts.tid_tag = "trial";
    write_chrome_trace(os, tracer, trace_opts);
    std::cout << "trace-out -> " << path << " (" << tracer.size()
              << " spans)\n";
  }
  return 0;
}

// --- campaign-shard ----------------------------------------------------

/// Campaign state every shard worker (and the parent's --verify pass)
/// derives from the CLI flags alone. Deterministic end to end — model
/// cache, input sampling, reference generations and bound profiling are
/// all seeded — so independently-launched processes agree bit-for-bit.
struct ShardCampaignSetup {
  std::shared_ptr<const TransformerLM> model;
  DatasetKind dataset = DatasetKind::kSynthQA;
  SchemeRef scheme;
  std::vector<EvalInput> inputs;
  BoundStore bounds;
  CampaignConfig config;
  std::size_t shards = 1;
  std::size_t total_trials = 0;
  std::string dir;
};

ShardCampaignSetup prepare_shard_campaign(const std::string& model_name,
                                          const ArgParser& args) {
  ShardCampaignSetup setup;
  setup.model = ensure_model(model_name);
  setup.dataset = parse_dataset(args.get("dataset", "synthqa"));
  setup.scheme = SchemeRef::parse(args.get("scheme", "ft2"));
  const auto gen = make_generator(setup.dataset);
  const std::size_t gen_tokens = generation_tokens(setup.dataset);

  const std::size_t n_inputs = args.get_size("inputs", 12);
  const auto samples =
      gen->generate_many(n_inputs * 3, args.get_size("seed", 20250704));
  setup.inputs = prepare_eval_inputs(*setup.model, samples, gen_tokens, true);
  if (setup.inputs.size() > n_inputs) setup.inputs.resize(n_inputs);
  FT2_CHECK_MSG(!setup.inputs.empty(), "model answers no inputs correctly");

  if (setup.scheme.needs_offline_bounds()) {
    if (args.has("bounds")) {
      setup.bounds = load_bounds(args.get("bounds", ""),
                                 setup.model->config());
    } else {
      OfflineProfileOptions profile;
      profile.seed = 555;
      profile.max_new_tokens = gen_tokens;
      setup.bounds = profile_offline_bounds(*setup.model, *gen, profile);
    }
  }

  setup.config.fault_model = parse_fault_model(args.get("fault-model", "exp"));
  setup.config.trials_per_input = args.get_size("trials", 50);
  setup.config.gen_tokens = gen_tokens;
  setup.config.seed = args.get_size("campaign-seed", 42);
  setup.config.faults_per_trial = args.get_size("faults", 1);
  if (args.has("fp32")) setup.config.vtype = ValueType::kF32;

  setup.shards = args.get_size("shards", 2);
  FT2_CHECK_MSG(setup.shards > 0, "--shards must be positive");
  setup.total_trials = setup.inputs.size() * setup.config.trials_per_input;
  setup.dir = args.get("dir", model_name + "-shards");
  return setup;
}

ShardManifest make_shard_manifest(const std::string& model_name,
                                  const ShardCampaignSetup& setup,
                                  std::size_t shard_index) {
  const std::vector<TrialRange> ranges =
      partition_trials(setup.total_trials, setup.shards);
  FT2_CHECK_MSG(shard_index < setup.shards,
                "--shard-index " << shard_index << " out of range for "
                                 << setup.shards << " shards");
  ShardManifest manifest;
  manifest.model = model_name;
  manifest.model_digest = weights_digest_hex(setup.model->weights());
  manifest.dataset = dataset_name(setup.dataset);
  manifest.scheme = setup.scheme.display();
  manifest.fault_model = fault_model_name(setup.config.fault_model);
  manifest.vtype = value_type_name(setup.config.vtype);
  manifest.campaign_seed = setup.config.seed;
  manifest.trials_per_input = setup.config.trials_per_input;
  manifest.gen_tokens = setup.config.gen_tokens;
  manifest.faults_per_trial = setup.config.faults_per_trial;
  manifest.n_inputs = setup.inputs.size();
  manifest.total_trials = setup.total_trials;
  manifest.shard_index = shard_index;
  manifest.shard_count = setup.shards;
  manifest.first_trial = ranges[shard_index].first;
  manifest.last_trial = ranges[shard_index].last;
  return manifest;
}

/// Applies the report CI flags (--bootstrap, --ci-seed) and builds the
/// aggregate view.
CampaignReport build_report(const std::vector<TrialRecord>& records,
                            const ArgParser& args) {
  CampaignReport report = aggregate_trial_records(records);
  report.ci.bootstrap.resamples =
      args.get_size("bootstrap", report.ci.bootstrap.resamples);
  report.ci.bootstrap.seed =
      args.get_size("ci-seed", report.ci.bootstrap.seed);
  return report;
}

void print_campaign_report(const CampaignReport& report,
                           std::size_t n_records) {
  std::cout << "outcomes (" << n_records << " records)\n";
  report.outcome_table().print(std::cout);
  std::cout << "\nby scheme (SDC reduction / overhead vs 'none')\n";
  report.scheme_table().print(std::cout);
  std::cout << "\nby layer kind\n";
  report.layer_table().print(std::cout);
  std::cout << "\nby fault model x layer x bit\n";
  report.layer_bit_table().print(std::cout);
  std::cout << "\ndetection latency (token positions)\n";
  report.latency_table().print(std::cout);
}

/// Re-launches this binary once per shard with `--shard-index i` and
/// `--telemetry-fd <write end>` appended to the original arguments, then
/// drives the telemetry loop: poll the per-worker pipes, decode frames
/// into `board`, and print a live progress line until every worker has
/// exited and closed its pipe. Returns the number of failed workers.
/// fork is immediately followed by execv, so the parent's threads never
/// matter in the child.
int spawn_shard_workers(int argc, char** argv, std::size_t shards,
                        ShardProgressBoard& board) {
  std::vector<pid_t> pids;
  std::vector<int> read_fds(shards, -1);
  for (std::size_t i = 0; i < shards; ++i) {
    int fds[2];
    FT2_CHECK_MSG(pipe(fds) == 0, "pipe failed for shard " << i);
    // The read end must not leak into any worker (a sibling holding it
    // open would stall the parent's EOF); the write end must survive
    // execv for exactly this worker. Earlier workers' write ends are
    // closed in the parent before the next fork, so each child inherits
    // only its own.
    fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    std::vector<std::string> child_args;
    child_args.emplace_back("/proc/self/exe");
    for (int a = 1; a < argc; ++a) child_args.emplace_back(argv[a]);
    child_args.emplace_back("--shard-index");
    child_args.emplace_back(std::to_string(i));
    child_args.emplace_back("--telemetry-fd");
    child_args.emplace_back(std::to_string(fds[1]));
    std::vector<char*> child_argv;
    child_argv.reserve(child_args.size() + 1);
    for (std::string& arg : child_args) child_argv.push_back(arg.data());
    child_argv.push_back(nullptr);
    const pid_t pid = fork();
    FT2_CHECK_MSG(pid >= 0, "fork failed for shard " << i);
    if (pid == 0) {
      execv("/proc/self/exe", child_argv.data());
      _exit(127);  // execv only returns on failure
    }
    close(fds[1]);
    read_fds[i] = fds[0];
    pids.push_back(pid);
  }

  // Telemetry loop: workers run until their pipes hit EOF (process exit
  // closes the write end). A worker whose frames stop parsing loses its
  // live view only — the shard log, merge and report are unaffected.
  std::vector<ShardFrameDecoder> decoders(shards);
  std::size_t open_fds = shards;
  const bool tty = isatty(STDOUT_FILENO) != 0;
  const auto start = std::chrono::steady_clock::now();
  auto last_print = start - std::chrono::hours(1);
  std::size_t printed_width = 0;
  while (open_fds > 0) {
    std::vector<pollfd> pfds;
    std::vector<std::size_t> owners;
    for (std::size_t i = 0; i < shards; ++i) {
      if (read_fds[i] < 0) continue;
      pfds.push_back({read_fds[i], POLLIN, 0});
      owners.push_back(i);
    }
    const int ready = poll(pfds.data(), pfds.size(), 200);
    if (ready < 0 && errno != EINTR) break;
    for (std::size_t p = 0; p < pfds.size(); ++p) {
      if ((pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t i = owners[p];
      char buf[65536];
      const ssize_t n = read(read_fds[i], buf, sizeof(buf));
      if (n > 0) {
        try {
          decoders[i].feed(buf, static_cast<std::size_t>(n));
          for (const ShardFrame& frame : decoders[i].take_frames()) {
            board.update(frame);
          }
        } catch (const Error& e) {
          std::cerr << "shard " << i << " telemetry stream corrupt ("
                    << e.what() << "); dropping its live view\n";
          close(read_fds[i]);
          read_fds[i] = -1;
          --open_fds;
        }
      } else if (n == 0 || (n < 0 && errno != EINTR)) {
        close(read_fds[i]);
        read_fds[i] = -1;
        --open_fds;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    // Live progress: a tty gets an in-place refresh twice a second; a
    // pipe (CI logs) gets a fresh line every two seconds.
    const auto min_gap =
        tty ? std::chrono::milliseconds(500) : std::chrono::milliseconds(2000);
    if (now - last_print >= min_gap) {
      last_print = now;
      const std::string line = board.progress_line();
      if (tty) {
        std::cout << "\r" << line;
        for (std::size_t pad = line.size(); pad < printed_width; ++pad) {
          std::cout << ' ';
        }
        std::cout << std::flush;
        printed_width = line.size();
      } else {
        std::cout << line << "\n" << std::flush;
      }
    }
  }
  const std::string line = board.progress_line();
  if (tty) {
    std::cout << "\r" << line;
    for (std::size_t pad = line.size(); pad < printed_width; ++pad) {
      std::cout << ' ';
    }
    std::cout << "\n";
  } else {
    std::cout << line << "\n";
  }

  int failures = 0;
  for (std::size_t i = 0; i < pids.size(); ++i) {
    int status = 0;
    waitpid(pids[i], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "shard " << i << " worker failed (status " << status
                << ")\n";
      ++failures;
    }
  }
  return failures;
}

/// Zeroes trial_ms in place: timing is observational and excluded from
/// determinism comparisons, so --verify compares everything else.
void strip_timing(std::vector<TrialRecord>& records) {
  for (TrialRecord& r : records) r.trial_ms = 0.0;
}

int cmd_campaign_shard(const std::string& model_name, const ArgParser& args,
                       int argc, char** argv) {
  if (args.has("shard-index")) {
    // Worker: rebuild the campaign deterministically, then run (or
    // resume) this shard's range, streaming records to its log. When the
    // parent handed us a telemetry pipe (--telemetry-fd), progress
    // frames flow back on it; SIGPIPE is ignored so a dead parent shows
    // up as an EPIPE write error the emitter absorbs, never a crash.
    const ShardCampaignSetup setup = prepare_shard_campaign(model_name, args);
    const std::size_t index = args.get_size("shard-index", 0);
    const ShardManifest manifest = make_shard_manifest(model_name, setup,
                                                       index);
    std::filesystem::create_directories(setup.dir);
    const std::string path =
        shard_log_path(setup.dir, index, setup.shards);
    ShardTelemetryConfig shard_telemetry;
    if (args.has("telemetry-fd")) {
      signal(SIGPIPE, SIG_IGN);
      shard_telemetry.fd = static_cast<int>(args.get_size("telemetry-fd", 0));
      shard_telemetry.interval_ms = args.get_size("telemetry-interval", 250);
    }
    const ShardRunResult run = run_campaign_shard(
        *setup.model, setup.inputs, setup.scheme, setup.bounds, setup.config,
        manifest, path, /*resume=*/!args.has("no-resume"), shard_telemetry);
    if (shard_telemetry.enabled()) close(shard_telemetry.fd);
    std::cout << "shard " << index << "/" << setup.shards << " ["
              << manifest.first_trial << ", " << manifest.last_trial
              << "): resumed " << run.resumed << ", executed "
              << run.executed
              << (run.torn_tail_recovered ? ", torn tail truncated" : "")
              << " -> " << path << "\n";
    return 0;
  }

  // Parent: make sure the model cache is warm (workers must never race a
  // training run), fan out the workers, drive the live progress board
  // off their telemetry pipes, then merge their logs. --telemetry-port
  // additionally serves the merged board view over HTTP while workers
  // run.
  const ShardCampaignSetup setup = prepare_shard_campaign(model_name, args);
  std::filesystem::create_directories(setup.dir);
  std::cout << "campaign-shard: " << setup.total_trials << " trials over "
            << setup.shards << " shards -> " << setup.dir << "\n";
  ShardProgressBoard board(setup.shards, setup.total_trials);
  std::optional<TelemetryEndpoint> endpoint;
  if (args.has("telemetry-port")) {
    TelemetryEndpoint::Options endpoint_opts;
    endpoint_opts.port =
        static_cast<int>(args.get_size("telemetry-port", 0));
    endpoint.emplace(&board, endpoint_opts);
    endpoint->start();
    std::cout << "telemetry: " << endpoint->url()
              << " (/metrics /snapshot.json /healthz)\n";
  }
  const int failures = spawn_shard_workers(argc, argv, setup.shards, board);
  if (endpoint) endpoint->stop();

  std::vector<std::string> paths;
  for (std::size_t i = 0; i < setup.shards; ++i) {
    paths.push_back(shard_log_path(setup.dir, i, setup.shards));
  }
  const ShardMerge merge = merge_shard_logs(paths);
  std::cout << "merged " << merge.records.size() << "/" << merge.total_trials
            << " trials from " << paths.size() << " shard logs";
  if (merge.torn_tails > 0) {
    std::cout << " (" << merge.torn_tails << " torn tails)";
  }
  std::cout << "\n";
  for (const TrialRange& gap : merge.gaps) {
    std::cout << "  gap: trials [" << gap.first << ", " << gap.last << ")\n";
  }
  if (merge.duplicate_trials > 0) {
    std::cout << "  duplicates: " << merge.duplicate_trials << " records\n";
  }

  const CampaignReport report = build_report(merge.records, args);
  print_campaign_report(report, merge.records.size());

  if (args.has("json")) {
    const std::string path = args.get("json", "campaign-shard.json");
    Json doc = report.to_json();
    Json shard_doc = Json::object();
    shard_doc["shards"] = setup.shards;
    shard_doc["total_trials"] = merge.total_trials;
    shard_doc["merged_trials"] = merge.records.size();
    shard_doc["torn_tails"] = merge.torn_tails;
    shard_doc["duplicates"] = merge.duplicate_trials;
    shard_doc["complete"] = merge.complete();
    doc["shard_merge"] = std::move(shard_doc);
    std::ofstream os(path);
    doc.write(os);
    std::cout << "\njson -> " << path << "\n";
  }

  if (args.has("verify")) {
    // In-process reference: the same campaign run whole, in this process.
    // Merged-shard records must match it bit for bit (timing aside).
    FT2_CHECK_MSG(merge.complete() && failures == 0,
                  "--verify needs a complete merge with no failed workers");
    TraceCollector reference;
    run_campaign(*setup.model, setup.inputs, setup.scheme, setup.bounds,
                 setup.config, reference.callback());
    std::vector<TrialRecord> expect = reference.records();
    std::vector<TrialRecord> got = merge.records;
    strip_timing(expect);
    strip_timing(got);
    const std::string expect_dump =
        aggregate_trial_records(expect).to_json().dump(-1);
    const std::string got_dump =
        aggregate_trial_records(got).to_json().dump(-1);
    bool records_equal = expect.size() == got.size();
    for (std::size_t i = 0; records_equal && i < expect.size(); ++i) {
      records_equal = trial_record_to_json(expect[i]).dump(-1) ==
                      trial_record_to_json(got[i]).dump(-1);
    }
    if (expect_dump != got_dump || !records_equal) {
      std::cerr << "verify: merged shards DIVERGE from the in-process run\n";
      return 1;
    }
    std::cout << "verify: merged shards match the in-process campaign ("
              << expect.size() << " records, reports identical)\n";
  }
  return failures == 0 ? 0 : 1;
}

/// `ft2 serve-bench --load`: open-loop synthetic production trace against
/// the paged engine (src/serve/load_gen.hpp). Reports TTFT / inter-token
/// percentiles measured from intended arrival times; --metrics-out
/// additionally dumps the serve.* registry (serve.request.ttft_ms /
/// serve.token.gap_ms histograms and the serve.kv.* pool gauges).
int cmd_serve_load(const std::string& model_name, const ArgParser& args) {
  const auto model = ensure_model(model_name);
  const std::size_t max_batch = args.get_size("batch", 16);

  LoadSpec spec;
  spec.n_requests = args.get_size("requests", 64);
  spec.arrival_rate_hz = args.get_double("rate", 150.0);
  spec.bursty = true;
  spec.prompt_max =
      std::min<std::size_t>(model->config().max_seq / 2, 160);
  spec.shared_fraction = 0.5;
  spec.interactive_fraction = 0.25;
  spec.seed = args.get_size("seed", 1);
  const auto load = build_load(spec, model->config().vocab_size);

  MetricsRegistry registry;
  ServeOptions serve_opts;
  serve_opts.max_batch = max_batch;
  serve_opts.prefill_chunk_budget = 32;
  serve_opts.share_prefix = true;
  if (args.has("metrics-out") || args.has("telemetry-port")) {
    serve_opts.obs.metrics = &registry;
  }
  LiveTelemetry telemetry;
  telemetry.start(&registry, args);
  ServeEngine engine(*model, serve_opts);
  const LoadReport r = run_load(engine, load);
  telemetry.stop();

  Table table({"metric", "value"});
  table.begin_row().cell("offered requests").count(r.offered);
  table.begin_row().cell("completed").count(r.completed);
  table.begin_row().cell("dropped tokens").count(r.dropped_tokens);
  table.begin_row().cell("wall s").num(r.wall_s, 2);
  table.begin_row().cell("tokens/s").num(r.tokens_per_s, 1);
  table.begin_row().cell("ttft p50 ms").num(r.ttft_p50_ms, 1);
  table.begin_row().cell("ttft p99 ms").num(r.ttft_p99_ms, 1);
  table.begin_row().cell("token gap p50 ms").num(r.gap_p50_ms, 2);
  table.begin_row().cell("token gap p99 ms").num(r.gap_p99_ms, 2);
  table.begin_row().cell("peak active").count(r.peak_active);
  table.begin_row().cell("peak kv blocks").count(r.peak_kv_blocks);
  table.begin_row().cell("preemptions").count(r.preemptions);
  table.begin_row().cell("shared prefix rows").count(r.shared_prefix_rows);
  table.print(std::cout);
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "metrics.json");
    std::ofstream os(path);
    registry.snapshot().to_json().write(os);
    std::cout << "metrics -> " << path << "\n";
  }
  return r.dropped_tokens == 0 && r.completed == r.offered ? 0 : 1;
}

int cmd_serve_bench(const std::string& model_name, const ArgParser& args) {
  if (args.has("load")) return cmd_serve_load(model_name, args);
  const auto model = ensure_model(model_name);
  const DatasetKind dataset = parse_dataset(args.get("dataset", "synthqa"));
  const auto gen = make_generator(dataset);
  const std::size_t n_requests = args.get_size("requests", 8);
  const std::size_t max_batch = args.get_size("batch", 8);
  Xoshiro256 rng(args.get_size("seed", 1));

  GenerateOptions opts;
  opts.max_new_tokens = generation_tokens(dataset);
  opts.eos_token = Vocab::kEos;
  std::vector<std::vector<int>> prompts;
  prompts.reserve(n_requests);
  for (std::size_t i = 0; i < n_requests; ++i) {
    prompts.push_back(prompt_of(gen->generate(rng)));
  }

  // --metrics-out: both paths run with protection attached (the token
  // comparison stays bit-exact because both see the same hooks), the engine
  // publishes to an isolated registry, and the snapshot is written as JSON.
  // Only the batched path's protection hooks feed the registry, so the
  // protect.* counters in the snapshot match the engine-side hook stats.
  const bool want_metrics = args.has("metrics-out");
  MetricsRegistry registry;
  // --telemetry-port attaches the registry (the sampler reads it live)
  // without the protection hooks --metrics-out adds, so generated tokens
  // are bit-identical with telemetry on or off.
  const bool want_registry = want_metrics || args.has("telemetry-port");
  LiveTelemetry telemetry;
  telemetry.start(&registry, args);
  const SchemeRef scheme = SchemeRef::parse(args.get("scheme", "ft2"));
  FT2_CHECK_MSG(!scheme.needs_offline_bounds(),
                "ft2 serve-bench supports online schemes only ("
                    << scheme.name << " needs profiled bounds)");

  // --trace-out: serve.prefill / serve.decode_step spans into an isolated
  // tracer, exported as Chrome Trace Event JSON with one pid per request
  // and one tid per batch slot.
  Tracer tracer(default_trace_capacity(), /*enabled=*/true);

  // Sequential baseline: one InferenceSession per request, back to back.
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<GenerateResult> serial;
  serial.reserve(n_requests);
  for (const auto& prompt : prompts) {
    InferenceSession session(*model);
    std::optional<ProtectionHook> hook;
    std::optional<HookRegistration> reg;
    if (want_metrics) {
      hook.emplace(model->config(), scheme.instantiate(model->config()),
                   ObsSinks{});
      reg.emplace(session.hooks().add(*hook));
    }
    serial.push_back(session.generate(prompt, opts));
  }
  const auto t1 = std::chrono::steady_clock::now();

  // Continuous batching: all requests through one engine.
  ServeOptions serve_opts;
  serve_opts.max_batch = max_batch;
  if (want_registry) serve_opts.obs.metrics = &registry;
  if (args.has("trace-out")) serve_opts.obs.tracer = &tracer;
  ServeEngine engine(*model, serve_opts);
  std::vector<ProtectionHook> batch_hooks;
  std::vector<HookRegistration> batch_regs;
  if (want_metrics) {
    batch_hooks.reserve(n_requests);  // chains hold raw hook pointers
    batch_regs.reserve(n_requests);
  }
  std::vector<RequestId> ids;
  ids.reserve(n_requests);
  for (const auto& prompt : prompts) {
    const RequestId id = engine.submit(prompt, opts);
    if (want_metrics) {
      batch_hooks.emplace_back(model->config(),
                               scheme.instantiate(model->config()),
                               ObsSinks{&registry, nullptr});
      batch_regs.push_back(engine.hooks(id).add(batch_hooks.back()));
    }
    ids.push_back(id);
  }
  engine.run();
  const auto t2 = std::chrono::steady_clock::now();
  telemetry.stop();

  std::size_t mismatches = 0;
  std::size_t total_tokens = 0;
  for (std::size_t i = 0; i < n_requests; ++i) {
    if (engine.result(ids[i]).tokens != serial[i].tokens) ++mismatches;
    total_tokens += serial[i].tokens.size();
  }

  const double serial_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const double batched_ms =
      std::chrono::duration<double, std::milli>(t2 - t1).count();
  const ServeCounters& c = engine.counters();
  Table table({"metric", "value"});
  table.begin_row().cell("requests").count(n_requests);
  table.begin_row().cell("generated tokens").count(total_tokens);
  table.begin_row().cell("sequential ms").num(serial_ms, 1);
  table.begin_row().cell("batched ms").num(batched_ms, 1);
  table.begin_row().cell("speedup").num(
      batched_ms > 0.0 ? serial_ms / batched_ms : 0.0, 2);
  table.begin_row().cell("decode steps").count(c.decode_steps);
  table.begin_row().cell("avg decode batch").num(c.avg_decode_batch(), 2);
  table.begin_row().cell("peak active").count(c.max_active);
  table.begin_row().cell("peak queue depth").count(c.max_queue_depth);
  table.begin_row().cell("token mismatches").count(mismatches);
  table.print(std::cout);
  if (want_metrics) {
    const std::string path = args.get("metrics-out", "metrics.json");
    std::ofstream os(path);
    registry.snapshot().to_json().write(os);
    std::cout << "metrics -> " << path << "\n";
  }
  if (args.has("trace-out")) {
    const std::string path = args.get("trace-out", "trace-events.json");
    std::ofstream os(path);
    write_chrome_trace(os, tracer);  // default request/slot tags
    std::cout << "trace-out -> " << path << " (" << tracer.size()
              << " spans)\n";
  }
  return mismatches == 0 ? 0 : 1;
}

int cmd_metrics(const std::string& model_name, const ArgParser& args) {
  const auto model = ensure_model(model_name);
  const DatasetKind dataset = parse_dataset(args.get("dataset", "synthqa"));
  const auto gen = make_generator(dataset);
  const std::size_t n_requests = args.get_size("requests", 4);
  const SchemeRef scheme = SchemeRef::parse(args.get("scheme", "ft2"));
  Xoshiro256 rng(args.get_size("seed", 1));

  // A short protected serve workload into an isolated registry, then the
  // full snapshot as a table (or JSON with --json): a live tour of the
  // serve.* and protect.* metric names.
  MetricsRegistry registry;
  ServeOptions serve_opts;
  serve_opts.max_batch = args.get_size("batch", 4);
  serve_opts.obs.metrics = &registry;
  ServeEngine engine(*model, serve_opts);

  GenerateOptions opts;
  opts.max_new_tokens = generation_tokens(dataset);
  opts.eos_token = Vocab::kEos;

  FT2_CHECK_MSG(!scheme.needs_offline_bounds(),
                "ft2 metrics supports online schemes only ("
                    << scheme.name << " needs profiled bounds)");
  std::vector<ProtectionHook> hooks;
  hooks.reserve(n_requests);  // chains hold raw hook pointers
  std::vector<HookRegistration> regs;
  regs.reserve(n_requests);
  for (std::size_t i = 0; i < n_requests; ++i) {
    hooks.emplace_back(model->config(), scheme.instantiate(model->config()),
                       ObsSinks{&registry, nullptr});
    const RequestId id = engine.submit(prompt_of(gen->generate(rng)), opts);
    regs.push_back(engine.hooks(id).add(hooks.back()));
  }
  engine.run();

  const MetricsSnapshot snap = registry.snapshot();
  snap.to_table().print(std::cout);
  if (args.has("json")) {
    const std::string path = args.get("json", "metrics.json");
    std::ofstream os(path);
    snap.to_json().write(os);
    std::cout << "json -> " << path << "\n";
  }
  return 0;
}

/// True when `path` opens and its first non-blank line is a shard
/// manifest (an object carrying the "ft2_shard" marker key).
bool is_shard_log(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::string line;
  while (std::getline(is, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      const Json first = Json::parse(line);
      return first.is_object() && first.find("ft2_shard") != nullptr;
    } catch (const Error&) {
      return false;
    }
  }
  return false;
}

int cmd_report(const ArgParser& args) {
  // Aggregate recorded campaign logs (CSV / JSON / JSONL) into the
  // paper-style breakdowns. The outcome counts equal the CampaignResult of
  // the run that produced the logs — no trial is rerun. Multiple paths
  // that are all shard logs merge with gap/overlap detection; otherwise
  // the logs simply concatenate.
  const std::vector<std::string>& paths = args.positional();
  std::vector<TrialRecord> records;
  bool all_shards = true;
  for (const std::string& path : paths) {
    all_shards = all_shards && is_shard_log(path);
  }
  if (all_shards) {
    ShardMerge merge = merge_shard_logs(paths);
    std::cout << "shard merge: " << merge.records.size() << "/"
              << merge.total_trials << " trials from " << paths.size()
              << " logs";
    if (merge.torn_tails > 0) {
      std::cout << " (" << merge.torn_tails << " torn tails)";
    }
    std::cout << "\n";
    for (const TrialRange& gap : merge.gaps) {
      std::cout << "  gap: trials [" << gap.first << ", " << gap.last
                << ")\n";
    }
    if (merge.duplicate_trials > 0) {
      std::cout << "  duplicates: " << merge.duplicate_trials
                << " records\n";
    }
    records = std::move(merge.records);
  } else {
    for (const std::string& path : paths) {
      std::vector<TrialRecord> loaded = load_trial_records(path);
      for (TrialRecord& r : loaded) records.push_back(std::move(r));
    }
  }
  const CampaignReport report = build_report(records, args);
  print_campaign_report(report, records.size());

  if (args.has("json")) {
    const std::string path = args.get("json", "report.json");
    std::ofstream os(path);
    report.to_json().write(os);
    std::cout << "\njson -> " << path << "\n";
  }
  return 0;
}

int cmd_metric_names(const ArgParser& args) {
  // One name per line: the dump tools/docs_check.sh verifies doc metric
  // references against. --templates emits the un-expanded template names
  // (placeholders intact) — the reverse docs gate checks each of those
  // has a row in docs/OBSERVABILITY.md.
  const std::vector<std::string> names =
      args.has("templates") ? metric_template_names() : all_metric_names();
  for (const std::string& name : names) {
    std::cout << name << "\n";
  }
  return 0;
}

// --- ft2 top -----------------------------------------------------------

/// One dashboard frame rendered from two consecutive /snapshot.json
/// polls: per-interval rates from the local delta, instantaneous gauges
/// from the newest snapshot, plus the shard progress block when the
/// remote side is a campaign-shard parent.
void render_top_frame(std::ostream& os, const Json& doc,
                      const TelemetrySample& prev,
                      const TelemetrySample& next) {
  const TelemetryInterval interval = derive_interval(prev, next);
  const MetricsSnapshot& snap = next.snapshot;
  char buf[128];

  os << "interval " << std::fixed;
  std::snprintf(buf, sizeof(buf), "%.1fs", interval.seconds);
  os << buf << "\n";

  if (const Json* progress = doc.find("progress")) {
    os << "\ncampaign progress\n";
    std::snprintf(buf, sizeof(buf), "  trials   %.0f/%.0f\n",
                  progress->at("done").as_double(),
                  progress->at("total").as_double());
    os << buf;
    std::snprintf(buf, sizeof(buf), "  rate     %.1f trials/s  eta %.0fs\n",
                  progress->at("trials_per_s").as_double(),
                  progress->at("eta_s").as_double());
    os << buf;
  }

  const auto rate_row = [&](const char* label, std::string_view counter) {
    std::snprintf(buf, sizeof(buf), "  %-22s %10.1f/s\n", label,
                  interval.counter_rate(counter));
    os << buf;
  };
  const auto hist_row = [&](const char* label, std::string_view name) {
    const MetricsSnapshot::HistogramValue* h = interval.find_histogram(name);
    if (h == nullptr || h->count == 0) return;
    std::snprintf(buf, sizeof(buf),
                  "  %-22s p50 %8.2f  p95 %8.2f  p99 %8.2f  (n=%llu)\n",
                  label, h->quantile(0.5), h->quantile(0.95),
                  h->quantile(0.99),
                  static_cast<unsigned long long>(h->count));
    os << buf;
  };
  const auto gauge_row = [&](const char* label, std::string_view name) {
    const MetricsSnapshot::GaugeValue* g = snap.find_gauge(name);
    if (g == nullptr) return;
    std::snprintf(buf, sizeof(buf), "  %-22s %10.0f\n", label, g->value);
    os << buf;
  };

  if (snap.find_counter("serve.tokens.generated") != nullptr) {
    os << "\nserve (interval rates)\n";
    rate_row("tokens/s", "serve.tokens.generated");
    rate_row("requests done/s", "serve.requests.completed");
    rate_row("preemptions/s", "serve.preemptions");
    hist_row("ttft ms", "serve.request.ttft_ms");
    hist_row("token gap ms", "serve.token.gap_ms");
    hist_row("decode step ms", "serve.decode.step_ms");
    gauge_row("batch occupancy", "serve.batch.occupancy");
    gauge_row("kv blocks used", "serve.kv.blocks_used");
    gauge_row("kv blocks free", "serve.kv.blocks_free");
  }

  // protect.*: sum the per-kind counters into one detection-rate view.
  double checked_per_s = 0.0, oob_per_s = 0.0, nan_per_s = 0.0;
  double mismatch_per_s = 0.0;
  for (const auto& c : interval.counters) {
    if (c.name.rfind("protect.checked.", 0) == 0) checked_per_s += c.per_sec;
    if (c.name.rfind("protect.oob.", 0) == 0) oob_per_s += c.per_sec;
    if (c.name.rfind("protect.nan.", 0) == 0) nan_per_s += c.per_sec;
    if (c.name.rfind("protect.checksum_mismatch.", 0) == 0) {
      mismatch_per_s += c.per_sec;
    }
  }
  if (checked_per_s > 0.0 || oob_per_s > 0.0 || mismatch_per_s > 0.0) {
    os << "\nprotect (interval rates, all kinds)\n";
    std::snprintf(buf, sizeof(buf), "  %-22s %10.0f/s\n", "values checked",
                  checked_per_s);
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-22s %10.2f/s\n", "oob clipped",
                  oob_per_s);
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-22s %10.2f/s\n", "nan corrected",
                  nan_per_s);
    os << buf;
    if (mismatch_per_s > 0.0) {
      std::snprintf(buf, sizeof(buf), "  %-22s %10.2f/s\n",
                    "checksum mismatches", mismatch_per_s);
      os << buf;
    }
  }

  if (snap.find_counter("campaign.trials") != nullptr) {
    os << "\ncampaign (interval rates)\n";
    rate_row("trials/s", "campaign.trials");
    rate_row("sdc/s", "campaign.outcome.sdc");
    hist_row("trial ms", "campaign.trial_ms");
  }
}

int cmd_top(const ArgParser& args) {
  const std::string connect = args.get("connect", "");
  FT2_CHECK_MSG(!connect.empty(),
                "ft2 top needs --connect HOST:PORT (e.g. 127.0.0.1:9100)");
  const std::size_t colon = connect.rfind(':');
  FT2_CHECK_MSG(colon != std::string::npos && colon + 1 < connect.size(),
                "--connect wants HOST:PORT, got '" << connect << "'");
  const std::string host = connect.substr(0, colon);
  const int port = std::atoi(connect.c_str() + colon + 1);
  const std::size_t interval_ms = args.get_size("interval", 1000);
  // --iterations bounds the dashboard (tests, one-shot checks); 0 runs
  // until q+Enter or Ctrl-C.
  const std::size_t iterations = args.get_size("iterations", 0);
  const bool plain = args.has("plain");

  TelemetrySample prev;
  bool have_prev = false;
  // Closed/EOF stdin (piped runs, CI) makes poll() return instantly
  // forever; detect it once and fall back to a plain sleep.
  bool watch_stdin = true;
  for (std::size_t i = 0; iterations == 0 || i < iterations; ++i) {
    const HttpResponse r = http_get(host, port, "/snapshot.json");
    if (r.status != 200) {
      std::cerr << "ft2 top: GET /snapshot.json failed (status " << r.status
                << "): " << r.body << "\n";
      return 1;
    }
    const Json doc = Json::parse(r.body);
    TelemetrySample sample;
    sample.steady_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    sample.wall_ms =
        static_cast<std::uint64_t>(doc.at("ts_ms").as_double());
    sample.snapshot = MetricsSnapshot::from_json(doc.at("cumulative"));

    std::ostringstream frame;
    frame << "ft2 top — " << host << ":" << port
          << " (poll " << interval_ms << "ms; q+Enter or Ctrl-C quits)\n";
    render_top_frame(frame, doc, have_prev ? prev : sample, sample);
    if (!plain) std::cout << "\033[2J\033[H";  // clear + home
    std::cout << frame.str() << std::flush;
    prev = std::move(sample);
    have_prev = true;

    if (iterations != 0 && i + 1 == iterations) break;
    // Sleep the poll interval, watching stdin for 'q'.
    if (watch_stdin) {
      pollfd pfd{STDIN_FILENO, POLLIN, 0};
      const auto sleep_start = std::chrono::steady_clock::now();
      const int ready = poll(&pfd, 1, static_cast<int>(interval_ms));
      if (ready > 0 && (pfd.revents & POLLIN) != 0) {
        char buf[64];
        const ssize_t n = read(STDIN_FILENO, buf, sizeof(buf));
        for (ssize_t b = 0; b < n; ++b) {
          if (buf[b] == 'q' || buf[b] == 'Q') return 0;
        }
        if (n <= 0) watch_stdin = false;  // EOF: stop polling stdin
      } else if (ready > 0) {
        watch_stdin = false;  // POLLHUP/POLLERR: same
      }
      if (!watch_stdin) {
        // Finish the remainder of this tick's interval without stdin.
        const auto elapsed = std::chrono::duration_cast<
            std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                       sleep_start);
        const auto remaining =
            std::chrono::milliseconds(interval_ms) - elapsed;
        if (remaining.count() > 0) std::this_thread::sleep_for(remaining);
      }
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}

int cmd_scheme_names(const ArgParser& args) {
  // One registered scheme name per line (registration order). The bare dump
  // is what tools/docs_check.sh verifies doc scheme references against;
  // --long adds the registry summaries for humans.
  if (args.has("long")) {
    Table table({"scheme", "offline bounds", "summary"});
    for (const SchemeInfo& info : SchemeRegistry::instance().entries()) {
      table.begin_row()
          .cell(info.name)
          .cell(info.needs_offline_bounds ? "required" : "-")
          .cell(info.summary);
    }
    table.print(std::cout);
    return 0;
  }
  for (const std::string& name : all_scheme_names()) {
    std::cout << name << "\n";
  }
  return 0;
}

int cmd_perf(const ArgParser& args) {
  const pm::GpuSpec gpu =
      args.get("gpu", "a100") == "h100" ? pm::h100() : pm::a100();
  Table table({"model", "params (B)", "prefill(256) ms", "ms/token",
               "QA inference s", "first-token share"});
  for (const auto& m : pm::paper_models()) {
    table.begin_row()
        .cell(m.name)
        .num(static_cast<double>(pm::param_count(m)) / 1e9, 2)
        .num(pm::prefill_seconds(m, gpu, 256) * 1e3, 1)
        .num(pm::decode_seconds(m, gpu, 256) * 1e3, 1)
        .num(pm::inference_seconds(m, gpu, 256, 60), 2)
        .pct(pm::first_token_fraction(m, gpu, 256, 60));
  }
  std::cout << "GPU: " << gpu.name << "\n";
  table.print(std::cout);
  return 0;
}

/// Per-tier bit-equality self-test: every host-supported tier must
/// reproduce the scalar reference GEMM chain (acc += x[i]*w[o][i],
/// ascending i, no FMA) and the scalar quantize_f16 grid exactly.
int kernel_check() {
  const KernelTier restore = active_kernel_tier();
  int failures = 0;
  ThreadPool pool(2);
  for (KernelTier tier : supported_kernel_tiers()) {
    set_kernel_tier(tier);
    const char* name = kernel_tier_name(tier);

    // GEMM: odd shape so every tier exercises full tiles plus a tail tile.
    const std::size_t rows = 3, n = 100, k = 33;
    Tensor x({rows, k}), w({n, k}), y({rows, n}), y_ref({rows, n});
    std::vector<float> bias(n);
    std::uint64_t sm = 0xF72F72F7ULL;
    auto next_float = [&sm]() {
      return static_cast<float>(static_cast<std::int64_t>(
                 splitmix64(sm) % 4001) - 2000) / 512.0f;
    };
    for (float& v : x.span()) v = next_float();
    for (float& v : w.span()) v = next_float();
    for (float& v : bias) v = next_float();
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t o = 0; o < n; ++o) {
        float acc = bias[o];
        const float* xr = x.row(r).data();
        const float* wr = w.row(o).data();
        for (std::size_t i = 0; i < k; ++i) acc += xr[i] * wr[i];
        y_ref.row(r)[o] = acc;
      }
    }
    linear_forward_span(x, rows, w, bias, y, /*chunked_accum=*/false, pool);
    std::size_t gemm_bad = 0;
    for (std::size_t i = 0; i < y_ref.numel(); ++i) {
      if (f32_bits(y[i]) != f32_bits(y_ref[i])) ++gemm_bad;
    }
    // Packed path packs for the now-active tier; must match too.
    PackedLinear pl(w, bias);
    Tensor y_packed({rows, n});
    linear_forward_span_packed(x, rows, pl, y_packed, pool);
    for (std::size_t i = 0; i < y_ref.numel(); ++i) {
      if (f32_bits(y_packed[i]) != f32_bits(y_ref[i])) ++gemm_bad;
    }

    // Quantize: every f16 seed pattern in f32 form plus NaN payloads and
    // rounding/overflow boundaries, dispatched vs scalar quantize_f16.
    std::vector<float> q;
    q.reserve(1 << 17);
    for (std::uint32_t h = 0; h < (1u << 16); ++h) {
      q.push_back(f16::from_bits(static_cast<std::uint16_t>(h)).to_float());
    }
    const float specials[] = {65504.0f,   65519.9f,  65520.0f, -65520.0f,
                              1e-8f,      -1e-8f,    1.0009765f, 0.0f,
                              -0.0f,      3.14159e5f};
    q.insert(q.end(), std::begin(specials), std::end(specials));
    q.push_back(f32_from_bits(0x7FC01234u));  // NaN payloads survive
    q.push_back(f32_from_bits(0xFFC00000u));
    q.push_back(f32_from_bits(0x7F800001u));  // signalling NaN
    for (int i = 0; i < 4096; ++i) q.push_back(f32_from_bits(
        static_cast<std::uint32_t>(splitmix64(sm))));
    std::vector<float> q_ref = q;
    for (float& v : q_ref) v = quantize_f16(v);
    quantize_span_f16(q);
    std::size_t quant_bad = 0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (f32_bits(q[i]) != f32_bits(q_ref[i])) ++quant_bad;
    }

    if (gemm_bad != 0 || quant_bad != 0) {
      ++failures;
      std::cout << name << ": FAIL (" << gemm_bad << " gemm mismatches, "
                << quant_bad << " quantize mismatches)\n";
    } else {
      std::cout << name << ": OK (gemm + packed gemm + quantize bit-exact)\n";
    }
  }
  set_kernel_tier(restore);
  return failures;
}

int cmd_kernel_info(const ArgParser& args) {
  Table table({"tier", "compiled", "cpu", "active", "tile cols"});
  for (std::size_t t = 0; t < kKernelTierCount; ++t) {
    const KernelTier tier = static_cast<KernelTier>(t);
    const bool sup = kernel_tier_supported(tier);
    table.begin_row()
        .cell(kernel_tier_name(tier))
        .cell(kernel_tier_compiled(tier) ? "yes" : "no")
        .cell(sup ? "yes" : "no")
        .cell(tier == active_kernel_tier() ? "*" : "")
        .cell(sup ? std::to_string(kernel_ops_for(tier).tile_cols) : "-");
  }
  table.print(std::cout);
  std::cout << "fused epilogue: " << (fused_epilogue_enabled() ? "on" : "off")
            << "\n";
  if (!args.has("check")) return 0;
  const int failures = kernel_check();
  if (failures != 0) {
    std::cout << failures << " tier(s) FAILED the equivalence check\n";
    return 1;
  }
  std::cout << "all supported tiers bit-exact\n";
  return 0;
}

int usage() {
  std::string schemes;
  for (const std::string& name : all_scheme_names()) {
    if (!schemes.empty()) schemes += " ";
    schemes += name;
  }
  std::cout <<
      "ft2 — FT2 fault-tolerance toolkit\n"
      "  ft2 list-models\n"
      "  ft2 critical <model>\n"
      "  ft2 train <model> [--retrain]\n"
      "  ft2 generate <model> [--dataset D] [--seed N] [--n K] [--protect]\n"
      "  ft2 inject <model> [--dataset D] [--layer L] [--block B] [--neuron I]\n"
      "             [--bit B] [--step S] [--protect]\n"
      "  ft2 profile-bounds <model> [--dataset D] [--inputs N] [--out FILE]\n"
      "  ft2 campaign <model> [--dataset D] [--scheme S] [--fault-model F]\n"
      "               [--inputs N] [--trials T] [--faults K] [--fp32]\n"
      "               [--bounds FILE] [--trace FILE] [--json FILE] [--weights]\n"
      "               [--metrics-out FILE] [--jsonl FILE] [--trace-out FILE]\n"
      "               [--drift] [--clips] [--telemetry-port P]\n"
      "  ft2 campaign-shard <model> [--shards N] [--dir DIR] [--dataset D]\n"
      "               [--scheme S] [--fault-model F] [--inputs N]\n"
      "               [--trials T] [--faults K] [--fp32] [--bounds FILE]\n"
      "               [--no-resume] [--verify] [--json FILE]\n"
      "               [--bootstrap N] [--ci-seed S] [--telemetry-port P]\n"
      "  ft2 serve-bench <model> [--dataset D] [--requests N] [--batch B]\n"
      "                  [--seed S] [--scheme S] [--metrics-out FILE]\n"
      "                  [--trace-out FILE] [--telemetry-port P]\n"
      "  ft2 serve-bench <model> --load [--requests N] [--rate HZ]\n"
      "                  [--batch B] [--seed S] [--metrics-out FILE]\n"
      "                  [--telemetry-port P]\n"
      "  ft2 top --connect HOST:PORT [--interval MS] [--iterations N]\n"
      "          [--plain]\n"
      "  ft2 report <LOG.csv|.json|.jsonl>... [--json FILE] [--bootstrap N]\n"
      "             [--ci-seed S]\n"
      "  ft2 metrics <model> [--dataset D] [--requests N] [--batch B]\n"
      "              [--seed S] [--scheme S] [--json FILE]\n"
      "  ft2 metric-names [--templates]\n"
      "  ft2 scheme-names [--long]\n"
      "  ft2 kernel-info [--check]\n"
      "  ft2 perf [--gpu a100|h100]\n"
      "global: --kernel sse|avx2|avx512|auto forces the dispatch tier\n"
      "        (same as FT2_KERNEL; see docs/PERFORMANCE.md)\n"
      "        --telemetry-port P serves live /metrics, /snapshot.json and\n"
      "        /healthz on 127.0.0.1:P while the workload runs (0 picks an\n"
      "        ephemeral port; --telemetry-interval MS tunes the sampler)\n"
      "schemes (S accepts name or name:key=value,...):\n"
      "  " << schemes << "\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::map<std::string, bool> spec = {
      {"retrain", false},     {"dataset", true},  {"seed", true},
      {"n", true},            {"protect", false}, {"layer", true},
      {"block", true},        {"neuron", true},   {"bit", true},
      {"step", true},         {"inputs", true},   {"out", true},
      {"scheme", true},       {"fault-model", true}, {"trials", true},
      {"faults", true},       {"bounds", true},   {"trace", true},
      {"json", true},         {"weights", false}, {"gpu", true},
      {"campaign-seed", true}, {"fp32", false}, {"requests", true},
      {"batch", true},        {"metrics-out", true}, {"jsonl", true},
      {"trace-out", true},    {"drift", false},   {"clips", false},
      {"long", false},        {"shards", true},   {"shard-index", true},
      {"dir", true},          {"no-resume", false}, {"verify", false},
      {"bootstrap", true},    {"ci-seed", true},  {"kernel", true},
      {"check", false},       {"load", false},    {"rate", true},
      {"telemetry-port", true}, {"telemetry-interval", true},
      {"telemetry-fd", true}, {"templates", false}, {"connect", true},
      {"interval", true},     {"iterations", true}, {"plain", false},
  };
  try {
    const ArgParser args(argc - 2, argv + 2, spec);
    // --kernel forces the dispatch tier for every command (same semantics
    // as FT2_KERNEL; throws on unknown/unsupported names).
    if (args.has("kernel")) set_kernel_tier_name(args.get("kernel", "auto"));
    auto need_model = [&]() -> std::string {
      FT2_CHECK_MSG(!args.positional().empty(),
                    "command '" << command << "' needs a model name");
      return args.positional()[0];
    };
    if (command == "list-models") return cmd_list_models();
    if (command == "critical") return cmd_critical(need_model());
    if (command == "train") return cmd_train(need_model(), args);
    if (command == "generate") return cmd_generate(need_model(), args);
    if (command == "inject") return cmd_inject(need_model(), args);
    if (command == "profile-bounds") {
      return cmd_profile_bounds(need_model(), args);
    }
    if (command == "campaign") return cmd_campaign(need_model(), args);
    if (command == "campaign-shard") {
      return cmd_campaign_shard(need_model(), args, argc, argv);
    }
    if (command == "serve-bench") return cmd_serve_bench(need_model(), args);
    if (command == "report") {
      FT2_CHECK_MSG(!args.positional().empty(),
                    "report needs at least one recorded trial log path");
      return cmd_report(args);
    }
    if (command == "metrics") return cmd_metrics(need_model(), args);
    if (command == "metric-names") return cmd_metric_names(args);
    if (command == "top") return cmd_top(args);
    if (command == "kernel-info") return cmd_kernel_info(args);
    if (command == "scheme-names") return cmd_scheme_names(args);
    if (command == "perf") return cmd_perf(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
