// Figure 4: offline bound-profiling time per task on A100 and H100, from
// the roofline performance model applied to the paper-scale models.
// The paper profiles 20% of each training set; we use the same input counts
// (SQuAD 2.0: 26k, XTREME QA: ~14k, GSM8K: ~1.5k) and the paper's sequence
// setup (prompt ~256 tokens, 60 generated for QA / 180 for math).
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;
namespace pm = ft2::perfmodel;

int main() {
  bench::print_header("Offline bound-profiling cost (modeled, hours)",
                      "Figure 4");

  struct TaskSpec {
    const char* dataset;
    std::size_t inputs;      // 20% of the training set
    std::size_t gen_tokens;
  };
  const TaskSpec tasks[] = {
      {"SQuAD 2.0 (QA)", 26000, 60},
      {"XTREME (QA)", 14000, 60},
      {"GSM8K (Math)", 1500, 180},
  };

  Table table({"model", "task", "A100 hours", "H100 hours", "H100 speedup"});
  double max_a100 = 0.0;
  for (const auto& m : pm::paper_models()) {
    const bool math_capable =
        m.name == "Llama2-7B" || m.name == "Qwen2-7B";
    for (const auto& task : tasks) {
      if (task.gen_tokens == 180 && !math_capable) continue;
      const double a = pm::profiling_hours(m, pm::a100(), task.inputs, 256,
                                           task.gen_tokens);
      const double h = pm::profiling_hours(m, pm::h100(), task.inputs, 256,
                                           task.gen_tokens);
      max_a100 = std::max(max_a100, a);
      table.begin_row()
          .cell(m.name)
          .cell(task.dataset)
          .num(a, 1)
          .num(h, 1)
          .cell(Table::format(a / h, 2) + "x");
    }
  }
  table.print(std::cout);
  std::cout << "\nmax A100 profiling time: " << Table::format(max_a100, 1)
            << " hours\n"
            << "paper: 4.7 - 217.5 hours on A100; up to 36.7 hours on H100 "
               "(log-scale figure)\n";
  return 0;
}
