// Extension: detection coverage of FT2's bound check.
// Run the campaign with FT2 in DETECT-ONLY mode (flag violations, never
// correct) so faults propagate as if unprotected, then cross the detection
// flag with the trial outcome:
//   coverage    = P(detected | trial would be SDC)
//   false-alarm = P(detected | trial masked-identical)
// High coverage with a low false-alarm rate is what makes clip-correction
// safe; this is the detector-quality view the paper implies but never
// tabulates.
#include <iostream>

#include "bench_util.hpp"
#include "fi/trace.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Extension: FT2 detection coverage / false alarms",
                      "beyond-paper extension (detector-quality view)");

  Table table({"fault model", "SDC trials", "detected among SDC",
               "masked trials", "false alarms among masked"});
  const auto p = bench::prepare("opt-sm", DatasetKind::kSynthQA, s.inputs);

  SchemeSpec detector = scheme_spec(SchemeKind::kFt2, p.model->config());
  detector.detect_only = true;

  for (FaultModel fm : all_fault_models()) {
    CampaignConfig config;
    config.fault_model = fm;
    config.trials_per_input = s.trials * 2;
    config.gen_tokens = p.gen_tokens;

    TraceCollector trace;
    run_campaign(*p.model, p.inputs, detector, BoundStore{}, config,
                 trace.callback());

    std::size_t sdc = 0, sdc_detected = 0, masked = 0, false_alarm = 0;
    for (const auto& r : trace.records()) {
      if (r.outcome == Outcome::kSdc) {
        ++sdc;
        if (r.detections > 0) ++sdc_detected;
      } else if (r.outcome == Outcome::kMaskedIdentical) {
        ++masked;
        if (r.detections > 0) ++false_alarm;
      }
    }
    auto frac = [](std::size_t a, std::size_t b) {
      return b == 0 ? std::string("-")
                    : Table::format_pct(static_cast<double>(a) /
                                            static_cast<double>(b),
                                        1);
    };
    table.begin_row()
        .cell(fault_model_name(fm))
        .count(sdc)
        .cell(frac(sdc_detected, sdc))
        .count(masked)
        .cell(frac(false_alarm, masked));
  }
  table.print(std::cout);
  std::cout << "\nnote: 'false alarms' here are benign detections — masked "
               "trials where some value exceeded the scaled first-token "
               "bounds; correcting them did not change the output\n";
  return 0;
}
