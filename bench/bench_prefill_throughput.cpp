// Prefill throughput of the blocked multi-position engine (forward_span).
//
// Sweeps prefill_chunk x thread-pool size on a GEMM-heavy synthetic model
// and reports wall-clock speedup over the sequential reference path
// (chunk = 1). Every configuration's generated tokens are checked against
// the sequential output first — the chunk size and pool size are pure
// throughput knobs, bit-exact by construction.
//
//   FT2_BENCH_PROMPT  prefill length           (default 256)
//   FT2_BENCH_REPS    timed repetitions, best-of (default 3)
#include <algorithm>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "common/thread_pool.hpp"

using namespace ft2;

namespace {

TransformerLM bench_model() {
  ModelConfig c;
  c.name = "bench-prefill";
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 128;
  c.n_heads = 8;
  c.n_blocks = 4;
  c.d_ff = 384;
  c.max_seq = 512;
  Xoshiro256 rng(2025);
  return TransformerLM(c, init_weights(c, rng));
}

std::vector<int> bench_prompt(const TransformerLM& model, std::size_t n) {
  std::vector<int> prompt = {Vocab::kBos};
  const int vocab = static_cast<int>(model.config().vocab_size);
  for (std::size_t i = 1; i < n; ++i) {
    prompt.push_back(static_cast<int>(i * 13 + 5) % vocab);
  }
  return prompt;
}

double time_generate(const TransformerLM& model, const std::vector<int>& prompt,
                     std::size_t chunk, ThreadPool& pool, std::size_t reps,
                     std::vector<int>& tokens_out) {
  GenerateOptions opts;
  opts.max_new_tokens = 4;
  opts.eos_token = -1;
  opts.prefill_chunk = chunk;
  opts.pool = &pool;

  double best_ms = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    InferenceSession session(model);
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = session.generate(prompt, opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (r == 0 || ms < best_ms) best_ms = ms;
    tokens_out = result.tokens;
  }
  return best_ms;
}

}  // namespace

int main() {
  bench::print_header("blocked prefill throughput (chunk x threads sweep)",
                      "engine (first-token phase, paper Fig. 10 setting)");

  const TransformerLM model = bench_model();
  const std::size_t prompt_len = env_size("FT2_BENCH_PROMPT", 256);
  const std::size_t reps = env_size("FT2_BENCH_REPS", 3);
  const auto prompt = bench_prompt(model, prompt_len);

  const std::size_t hw = std::max<std::size_t>(
      1, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts = {1, 2, 4, hw};
  thread_counts.erase(
      std::remove_if(thread_counts.begin(), thread_counts.end(),
                     [hw](std::size_t t) { return t > hw; }),
      thread_counts.end());
  std::sort(thread_counts.begin(), thread_counts.end());
  thread_counts.erase(std::unique(thread_counts.begin(), thread_counts.end()),
                      thread_counts.end());
  const std::vector<std::size_t> chunks = {8, 16, 32, 64};

  std::cout << "model: d_model=" << model.config().d_model
            << " blocks=" << model.config().n_blocks
            << " d_ff=" << model.config().d_ff << ", prompt " << prompt_len
            << " positions, best of " << reps << " runs, " << hw
            << " hardware threads\n\n";

  // Sequential reference (chunk = 1 never touches the pool).
  ThreadPool single(1);
  std::vector<int> reference;
  const double seq_ms =
      time_generate(model, prompt, 1, single, reps, reference);
  std::cout << "sequential prefill (chunk=1): " << seq_ms << " ms\n\n";

  Table table({"chunk", "threads", "prefill ms", "speedup", "tokens"});
  bool all_match = true;
  double best_speedup_chunk16 = 0.0;
  for (std::size_t threads : thread_counts) {
    ThreadPool pool(threads);
    for (std::size_t chunk : chunks) {
      std::vector<int> tokens;
      const double ms =
          time_generate(model, prompt, chunk, pool, reps, tokens);
      const bool match = tokens == reference;
      all_match = all_match && match;
      const double speedup = seq_ms / ms;
      if (chunk >= 16 && (threads > 1 || hw == 1)) {
        best_speedup_chunk16 = std::max(best_speedup_chunk16, speedup);
      }
      table.begin_row()
          .count(chunk)
          .count(threads)
          .num(ms, 2)
          .num(speedup, 2)
          .cell(match ? "= sequential" : "MISMATCH");
    }
  }
  table.print(std::cout);

  std::cout << "\ntokens bit-exact across all configurations: "
            << (all_match ? "yes" : "NO — BUG") << "\n";
  std::cout << "best speedup at chunk >= 16 with threads > 1: "
            << best_speedup_chunk16 << "x ("
            << (best_speedup_chunk16 >= 2.0 ? "meets" : "BELOW")
            << " the 2x acceptance bar)\n";
  return all_match && best_speedup_chunk16 >= 2.0 ? 0 : 1;
}
