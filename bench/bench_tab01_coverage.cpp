// Table 1 (criticality + protection coverage matrix), Table 2 (model zoo),
// and the memory-overhead numbers of §5.2.2.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  bench::print_header("Layer criticality and protection coverage",
                      "Tables 1 and 2, §5.2.2 memory overhead");

  // Table 1: per layer kind, criticality (heuristic) and scheme coverage.
  // Criticality is shown for the architecture that has the layer.
  ModelConfig opt = zoo_entry("opt-sm").config;
  ModelConfig llama = zoo_entry("llama-sm").config;

  Table t1({"layer", "critical?", "ranger", "maximals", "global_clipper",
            "ft2"});
  const LayerKind rows[] = {
      LayerKind::kKProj,   LayerKind::kQProj,    LayerKind::kVProj,
      LayerKind::kOutProj, LayerKind::kFc1,      LayerKind::kFc2,
      LayerKind::kUpProj,  LayerKind::kGateProj, LayerKind::kDownProj};
  for (LayerKind kind : rows) {
    const ModelConfig& cfg = opt.has_layer(kind) ? opt : llama;
    const LayerGraph graph = LayerGraph::build(cfg);
    t1.begin_row().cell(std::string(layer_kind_name(kind)));
    t1.cell(layer_is_critical(graph, kind) ? "Y" : "N");
    for (SchemeKind sk : {SchemeKind::kRanger, SchemeKind::kMaxiMals,
                          SchemeKind::kGlobalClipper, SchemeKind::kFt2}) {
      t1.cell(scheme_spec(sk, cfg).covers(kind) ? "x" : "");
    }
  }
  t1.print(std::cout);
  std::cout << "(paper Table 1: critical = V_PROJ, OUT_PROJ, FC2, UP_PROJ, "
               "DOWN_PROJ; FT2 covers all of them)\n\n";

  // Table 2: the model zoo.
  Table t2({"paper model", "repo model", "arch", "params", "tasks"});
  for (const auto& e : model_zoo()) {
    Xoshiro256 rng(e.seed);
    const ModelWeights w = init_weights(e.config, rng);
    std::string tasks;
    for (DatasetKind k : e.tasks) {
      if (!tasks.empty()) tasks += "/";
      tasks += dataset_name(k);
    }
    const char* arch = e.config.arch == ArchFamily::kOpt     ? "OPT"
                       : e.config.arch == ArchFamily::kGptj  ? "GPT-J"
                                                             : "Llama";
    t2.begin_row()
        .cell(e.paper_name)
        .cell(e.name)
        .cell(arch)
        .count(w.parameter_count())
        .cell(tasks);
  }
  t2.print(std::cout);

  // Memory overhead (paper: 288 - 512 bytes, 72 - 128 protected layers at
  // paper scale; scaled down with our block counts).
  std::cout << "\nFT2 bound storage per model (2 floats per protected layer):\n";
  Table t3({"model", "protected layers", "bytes"});
  for (const auto& e : model_zoo()) {
    ProtectionHook hook(e.config, scheme_spec(SchemeKind::kFt2, e.config));
    t3.begin_row()
        .cell(e.name)
        .count(hook.protected_layer_count())
        .count(hook.bound_memory_bytes());
  }
  t3.print(std::cout);
  std::cout << "(paper: 288-512 bytes across 72-128 protected layers, <0.2% "
               "of model memory)\n";
  return 0;
}
