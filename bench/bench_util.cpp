#include "bench_util.hpp"

#include <iostream>
#include <sstream>

namespace ft2::bench {

Sizes sizes() {
  Sizes s;
  s.inputs = env_size("FT2_INPUTS", s.inputs);
  s.trials = env_size("FT2_TRIALS", s.trials);
  s.profile_inputs = env_size("FT2_PROFILE_INPUTS", s.profile_inputs);
  return s;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  const Sizes s = sizes();
  std::cout << "\n================================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << " of the FT2 paper, HPDC'25)\n"
            << "inputs/dataset=" << s.inputs << " trials/input=" << s.trials
            << "  [scale with FT2_INPUTS / FT2_TRIALS]\n"
            << "================================================================\n";
}

Prepared prepare(const std::string& model_name, DatasetKind dataset,
                 std::size_t n_inputs, std::uint64_t seed) {
  Prepared p;
  p.model = ensure_model(model_name);
  p.gen_tokens = generation_tokens(dataset);
  const auto gen = make_generator(dataset);
  // Over-generate, then keep the first n correct ones.
  const auto samples = gen->generate_many(n_inputs * 3, seed);
  auto inputs = prepare_eval_inputs(*p.model, samples, p.gen_tokens, true);
  if (inputs.size() > n_inputs) inputs.resize(n_inputs);
  p.inputs = std::move(inputs);
  FT2_CHECK_MSG(!p.inputs.empty(),
                model_name << " answers no " << dataset_name(dataset)
                           << " inputs correctly — retrain the model zoo");
  return p;
}

BoundStore offline_bounds(const TransformerLM& model, DatasetKind dataset,
                          std::size_t n_profile, std::size_t gen_tokens,
                          std::uint64_t seed) {
  const auto gen = make_generator(dataset);
  OfflineProfileOptions options;
  options.n_inputs = n_profile;
  options.seed = seed;
  options.max_new_tokens = gen_tokens;
  return profile_offline_bounds(model, *gen, options);
}

std::string sdc_cell(const CampaignResult& result) {
  const auto ci = result.sdc_ci();
  std::ostringstream os;
  os << Table::format_pct(result.sdc_rate(), 2) << " +-"
     << Table::format_pct(ci.margin, 2) << " (" << result.sdc << "/"
     << result.trials << ")";
  return os.str();
}

}  // namespace ft2::bench
