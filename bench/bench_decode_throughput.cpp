// Aggregate decode throughput of the continuous-batching serve engine.
//
// Submits a batch of mixed-length prompts to a ServeEngine and compares
// aggregate decode tokens/sec against running the same requests through
// sequential InferenceSession::generate calls back to back. Every batched
// token stream is checked against the sequential output first — batching is
// bit-exact by construction, so the batch size is a pure throughput knob.
// The win comes from the pre-packed k-outer GEMM tiles plus amortizing each
// weight-matrix pass over B sequences per decode step.
//
//   FT2_BENCH_DECODE_TOKENS  decode length per request  (default 64)
//   FT2_BENCH_REPS           timed repetitions, best-of (default 3)
//   FT2_BENCH_DRIFT          also measure BoundDriftMonitor overhead on the
//                            protected batched decode path (off by default)
//   FT2_BENCH_TELEMETRY      also measure TelemetrySampler overhead on the
//                            batched decode path (off by default)
#include <chrono>
#include <iostream>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "common/env.hpp"
#include "obs/telemetry.hpp"
#include "protect/drift.hpp"
#include "serve/serve_engine.hpp"

using namespace ft2;

namespace {

TransformerLM bench_model() {
  // The small zoo Llama configuration (llama-sm) with random weights —
  // decode-dominated workload on the model the acceptance bar names.
  ModelConfig c;
  c.name = "bench-decode";
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 64;
  c.n_heads = 4;
  c.n_blocks = 2;
  c.d_ff = 176;
  c.max_seq = 96;
  Xoshiro256 rng(2025);
  return TransformerLM(c, init_weights(c, rng));
}

std::vector<std::vector<int>> bench_prompts(const TransformerLM& model,
                                            std::size_t n) {
  // Mixed lengths 8..16 so batched requests decode at staggered positions.
  std::vector<std::vector<int>> prompts;
  const int vocab = static_cast<int>(model.config().vocab_size);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<int> prompt = {Vocab::kBos};
    const std::size_t len = 8 + (r * 3) % 9;
    for (std::size_t i = 1; i < len; ++i) {
      prompt.push_back(static_cast<int>(r * 31 + i * 13 + 5) % vocab);
    }
    prompts.push_back(std::move(prompt));
  }
  return prompts;
}

}  // namespace

int main() {
  bench::print_header("continuous-batching decode throughput",
                      "serve engine vs sequential sessions (llama-sm size)");

  const TransformerLM model = bench_model();
  const std::size_t decode_tokens = env_size("FT2_BENCH_DECODE_TOKENS", 64);
  const std::size_t reps = env_size("FT2_BENCH_REPS", 3);

  GenerateOptions opts;
  opts.max_new_tokens = decode_tokens;
  opts.eos_token = -1;  // fixed length: every request decodes the full run

  std::cout << "model: d_model=" << model.config().d_model
            << " blocks=" << model.config().n_blocks
            << " d_ff=" << model.config().d_ff << ", " << decode_tokens
            << " decode tokens per request, best of " << reps << " runs\n";
  // The engine publishes serve.* metrics to the process registry unless
  // FT2_METRICS=0; comparing a run in each mode measures metric overhead
  // (docs/OBSERVABILITY.md records the numbers).
  std::cout << "serve metrics: "
            << (default_metrics() != nullptr ? "on (FT2_METRICS=0 to disable)"
                                             : "off (FT2_METRICS=0)")
            << "\n\n";

  Table table({"batch", "seq ms", "batched ms", "seq tok/s", "batched tok/s",
               "speedup", "tokens"});
  bool all_match = true;
  double best_speedup_b4 = 0.0;
  for (std::size_t batch : {1u, 2u, 4u, 8u}) {
    const auto prompts = bench_prompts(model, batch);

    std::vector<GenerateResult> serial(batch);
    double seq_ms = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < batch; ++i) {
        InferenceSession session(model);
        serial[i] = session.generate(prompts[i], opts);
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (r == 0 || ms < seq_ms) seq_ms = ms;
    }

    double batched_ms = 0.0;
    bool match = true;
    for (std::size_t r = 0; r < reps; ++r) {
      ServeOptions serve_opts;
      serve_opts.max_batch = batch;
      const auto t0 = std::chrono::steady_clock::now();
      ServeEngine engine(model, serve_opts);
      std::vector<RequestId> ids;
      for (std::size_t i = 0; i < batch; ++i) {
        ids.push_back(engine.submit(prompts[i], opts));
      }
      engine.run();
      const auto t1 = std::chrono::steady_clock::now();
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (r == 0 || ms < batched_ms) batched_ms = ms;
      for (std::size_t i = 0; i < batch; ++i) {
        match = match && engine.result(ids[i]).tokens == serial[i].tokens;
      }
    }
    all_match = all_match && match;

    const double total_tokens =
        static_cast<double>(batch) * static_cast<double>(decode_tokens);
    const double speedup = batched_ms > 0.0 ? seq_ms / batched_ms : 0.0;
    if (batch >= 4) best_speedup_b4 = std::max(best_speedup_b4, speedup);
    table.begin_row()
        .count(batch)
        .num(seq_ms, 2)
        .num(batched_ms, 2)
        .num(total_tokens / seq_ms * 1e3, 0)
        .num(total_tokens / batched_ms * 1e3, 0)
        .num(speedup, 2)
        .cell(match ? "= sequential" : "MISMATCH");
  }
  table.print(std::cout);

  if (env_flag("FT2_BENCH_DRIFT", false)) {
    // Drift-monitor overhead: FT2-protected batched decode with and
    // without a BoundDriftMonitor behind each request's protection hook.
    // The monitor is observational-only, so the outputs are identical and
    // the delta is pure monitoring cost (bar: <= 1%).
    const std::size_t batch = 4;
    const auto prompts = bench_prompts(model, batch);
    const SchemeSpec spec = scheme_spec(SchemeKind::kFt2, model.config());
    MetricsRegistry drift_registry;

    const auto timed_run = [&](bool with_drift) {
      double best_ms = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        ServeOptions serve_opts;
        serve_opts.max_batch = batch;
        const auto t0 = std::chrono::steady_clock::now();
        ServeEngine engine(model, serve_opts);
        std::vector<ProtectionHook> hooks;
        hooks.reserve(batch);  // chains hold raw hook pointers
        std::vector<BoundDriftMonitor> monitors;
        monitors.reserve(batch);
        std::vector<HookRegistration> regs;
        regs.reserve(batch * 2);
        for (std::size_t i = 0; i < batch; ++i) {
          hooks.emplace_back(model.config(), spec, BoundStore{}, nullptr);
          const RequestId id = engine.submit(prompts[i], opts);
          regs.push_back(engine.hooks(id).add(hooks.back()));
          if (with_drift) {
            DriftMonitorOptions drift_opts;
            drift_opts.obs.metrics = &drift_registry;
            monitors.emplace_back(hooks.back(), drift_opts);
            regs.push_back(engine.hooks(id).add(monitors.back()));
          }
        }
        engine.run();
        const auto t1 = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < best_ms) best_ms = ms;
      }
      return best_ms;
    };

    const double base_ms = timed_run(false);
    const double drift_ms = timed_run(true);
    const double overhead =
        base_ms > 0.0 ? (drift_ms - base_ms) / base_ms : 0.0;
    std::cout << "\ndrift-monitor overhead (protected batch=" << batch
              << "): " << base_ms << " ms -> " << drift_ms << " ms = "
              << Table::format_pct(overhead, 2) << " ("
              << (overhead <= 0.01 ? "meets" : "ABOVE")
              << " the 1% bar)\n";
  }

  if (env_flag("FT2_BENCH_TELEMETRY", false)) {
    // Telemetry-sampler overhead: the batched decode run with serve.*
    // metrics feeding a private registry, with and without a 100 ms
    // TelemetrySampler snapshotting that registry in the background. The
    // sampler is a pure reader, so the outputs are identical and the
    // delta is pure sampling cost (bar: <= 1%).
    const std::size_t batch = 4;
    const auto prompts = bench_prompts(model, batch);
    MetricsRegistry telemetry_registry;

    const auto timed_run = [&](bool with_sampler) {
      double best_ms = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        TelemetrySampler::Options sampler_opts;
        sampler_opts.interval_ms = 100;  // 10x the default scrape rate
        TelemetrySampler sampler(&telemetry_registry, sampler_opts);
        if (with_sampler) sampler.start();
        ServeOptions serve_opts;
        serve_opts.max_batch = batch;
        serve_opts.obs.metrics = &telemetry_registry;
        const auto t0 = std::chrono::steady_clock::now();
        ServeEngine engine(model, serve_opts);
        for (std::size_t i = 0; i < batch; ++i) {
          engine.submit(prompts[i], opts);
        }
        engine.run();
        const auto t1 = std::chrono::steady_clock::now();
        sampler.stop();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (r == 0 || ms < best_ms) best_ms = ms;
      }
      return best_ms;
    };

    const double base_ms = timed_run(false);
    const double sampled_ms = timed_run(true);
    const double overhead =
        base_ms > 0.0 ? (sampled_ms - base_ms) / base_ms : 0.0;
    std::cout << "\ntelemetry-sampler overhead (batch=" << batch
              << ", 100ms interval): " << base_ms << " ms -> " << sampled_ms
              << " ms = " << Table::format_pct(overhead, 2) << " ("
              << (overhead <= 0.01 ? "meets" : "ABOVE")
              << " the 1% bar)\n";
  }

  std::cout << "\ntokens bit-exact across all batch sizes: "
            << (all_match ? "yes" : "NO — BUG") << "\n";
  std::cout << "best aggregate decode speedup at batch >= 4: "
            << best_speedup_b4 << "x ("
            << (best_speedup_b4 >= 1.5 ? "meets" : "BELOW")
            << " the 1.5x acceptance bar)\n";
  return all_match && best_speedup_b4 >= 1.5 ? 0 : 1;
}
