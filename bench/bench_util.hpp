// Shared helpers for the per-figure benchmark binaries.
//
// Campaign sizes are environment-tunable so the same binaries serve CI smoke
// runs and paper-scale statistics:
//   FT2_INPUTS  — evaluation inputs per (model, dataset)   (default 12)
//   FT2_TRIALS  — fault-injection trials per input         (default 25)
//   FT2_PROFILE_INPUTS — inputs for offline bound profiling (default 16)
#pragma once

#include <string>

#include "core/ft2.hpp"

namespace ft2::bench {

struct Sizes {
  std::size_t inputs = 12;
  std::size_t trials = 25;
  std::size_t profile_inputs = 16;
};

/// Reads sizes from the environment.
Sizes sizes();

/// Prints a standard experiment banner naming the paper artefact.
void print_header(const std::string& title, const std::string& paper_ref);

/// Trained model + correct-answer eval inputs for one dataset. Inputs are
/// filtered to those the model answers correctly fault-free (paper §5.1).
struct Prepared {
  std::shared_ptr<const TransformerLM> model;
  std::vector<EvalInput> inputs;
  std::size_t gen_tokens = 0;
};

Prepared prepare(const std::string& model_name, DatasetKind dataset,
                 std::size_t n_inputs, std::uint64_t seed = 20250704);

/// Offline-profiled bounds on `dataset` for the model.
BoundStore offline_bounds(const TransformerLM& model, DatasetKind dataset,
                          std::size_t n_profile, std::size_t gen_tokens,
                          std::uint64_t seed = 555);

/// "3 / 1200 (0.25% +-0.28%)" — SDC cell with its 95% CI margin.
std::string sdc_cell(const CampaignResult& result);

}  // namespace ft2::bench
