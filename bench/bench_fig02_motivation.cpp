// Figure 2: motivating example — SDC rate of Llama2-7B (llama-sm) on GSM8K
// (synthmath) under the EXP fault model, with each protection applied.
// Expected shape: Ranger ~ no protection; Global Clipper helps a little;
// MaxiMals helps more (but misses UP_PROJ on Llama models); FT2 lowest.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Motivating example: SDC with existing protections",
                      "Figure 2");

  const auto p = bench::prepare("llama-sm", DatasetKind::kSynthMath, s.inputs);
  const BoundStore bounds = bench::offline_bounds(
      *p.model, DatasetKind::kSynthMath, s.profile_inputs, p.gen_tokens);

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = s.trials;
  config.gen_tokens = p.gen_tokens;

  Table table({"protection", "SDC rate (95% CI)", "masked_identical",
               "masked_semantic"});
  // Fig. 2 compares the paper's baselines only (no ft2_offline, no newer
  // registry schemes).
  const SchemeKind kFigSchemes[] = {
      SchemeKind::kNone, SchemeKind::kRanger, SchemeKind::kMaxiMals,
      SchemeKind::kGlobalClipper, SchemeKind::kFt2,
  };
  for (SchemeKind kind : kFigSchemes) {
    const auto result = run_campaign(*p.model, p.inputs, kind, bounds, config);
    table.begin_row()
        .cell(scheme_name(kind))
        .cell(bench::sdc_cell(result))
        .count(result.masked_identical)
        .count(result.masked_semantic);
  }
  table.print(std::cout);
  std::cout << "\npaper: none 3.63%, ranger 3.35%, maximals 1.92%, "
               "global_clipper 1.25%, ft2 0.19% (Llama2-7B, GSM8K, EXP)\n";
  return 0;
}
