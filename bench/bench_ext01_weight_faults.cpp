// Extension: persistent weight faults (outside the paper's transient
// activation-fault model, which assumes ECC-protected memory). A bit flip
// lives in one weight-matrix element for a whole inference. Measured
// finding: FT2's activation-level clamp bounds each token's excursion but
// the wrong weight re-corrupts every step, so the SDC reduction is small —
// empirical support for the paper's scoping of memory faults to ECC.
#include <iostream>

#include "bench_util.hpp"
#include "fi/weight_fault.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Extension: persistent weight faults vs FT2",
                      "beyond-paper extension (paper assumes ECC memory)");

  const auto p = bench::prepare("opt-sm", DatasetKind::kSynthQA, s.inputs);
  // Weight campaigns mutate the model; work on a private copy.
  TransformerLM model(p.model->config(), p.model->weights());

  Table table({"fault model", "scheme", "SDC rate (95% CI)"});
  for (FaultModel fm :
       {FaultModel::kSingleBit, FaultModel::kExponentBit}) {
    for (SchemeKind sk : {SchemeKind::kNone, SchemeKind::kFt2}) {
      CampaignConfig config;
      config.fault_model = fm;
      config.trials_per_input = s.trials;
      config.gen_tokens = p.gen_tokens;
      const auto result = run_weight_fault_campaign(
          model, p.inputs, scheme_spec(sk, model.config()), BoundStore{},
          config);
      table.begin_row()
          .cell(fault_model_name(fm))
          .cell(scheme_name(sk))
          .cell(bench::sdc_cell(result));
    }
  }
  table.print(std::cout);
  std::cout << "\nexpected: weight faults cause more SDCs than single "
               "transient faults (they corrupt every token). FT2 helps only "
               "marginally here: clamping bounds each token's excursion, but "
               "a persistent wrong weight re-corrupts every step — range "
               "restriction is designed for transient outliers, which is "
               "why the paper scopes weight faults to ECC\n";
  return 0;
}
