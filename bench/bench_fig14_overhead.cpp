// Figure 14 + §5.2.2: runtime overhead of FT2 protection.
// google-benchmark measures protected vs unprotected generation wall-clock
// on every zoo model (our engine); a modeled table reproduces the paper's
// A100 percentages for the paper-scale models.
#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.hpp"

using namespace ft2;
namespace pm = ft2::perfmodel;

namespace {

std::vector<int> bench_prompt(DatasetKind dataset) {
  const auto gen = make_generator(dataset);
  Xoshiro256 rng(777);
  const Sample sample = gen->generate(rng);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                sample.prompt_tokens.end());
  return prompt;
}

void BM_Generate(benchmark::State& state, const std::string& model_name,
                 bool protect) {
  const auto model = ensure_model(model_name, /*quiet=*/true);
  const auto prompt = bench_prompt(DatasetKind::kSynthQA);
  GenerateOptions opts;
  opts.max_new_tokens = generation_tokens(DatasetKind::kSynthQA);
  opts.eos_token = -1;

  InferenceSession session(*model);
  Ft2Protector protector(*model);
  if (protect) protector.attach(session);

  for (auto _ : state) {
    auto result = session.generate(prompt, opts);
    benchmark::DoNotOptimize(result.tokens.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(opts.max_new_tokens));
}

void register_benchmarks() {
  for (const auto& entry : model_zoo()) {
    benchmark::RegisterBenchmark(
        (entry.name + "/unprotected").c_str(),
        [name = entry.name](benchmark::State& st) {
          BM_Generate(st, name, false);
        });
    benchmark::RegisterBenchmark(
        (entry.name + "/ft2").c_str(),
        [name = entry.name](benchmark::State& st) {
          BM_Generate(st, name, true);
        });
  }
}

void print_modeled_overhead() {
  std::cout << "\nmodeled FT2 overhead on A100 (paper-scale models):\n";
  Table table({"model", "protected outputs/block", "overhead"});
  for (const auto& m : pm::paper_models()) {
    // FT2 protects 3 (OPT/GPT-J: V, OUT, FC2) or 4 (Llama: V, OUT, UP,
    // DOWN) outputs per block; average width ~ (2*d + 2*d_ff)/4.
    const bool gated = m.gated_mlp;
    const std::size_t outputs = gated ? 4 : 3;
    const double avg_width =
        gated ? (3.0 * static_cast<double>(m.d_model) +
                 static_cast<double>(m.d_ff)) / 4.0
              : (2.0 * static_cast<double>(m.d_model) +
                 static_cast<double>(m.d_ff)) / 3.0;
    const double f = pm::protection_overhead_fraction(m, pm::a100(), 256, 60,
                                                      outputs, avg_width);
    table.begin_row().cell(m.name).count(outputs).pct(f, 2);
  }
  table.print(std::cout);
  std::cout << "paper: 3.42% average, worst case 8.91% (OPT-2.7B); "
               "protection adds 32.5-127.5 ms to 1.35-6.4 s inferences\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header("FT2 runtime overhead (measured + modeled)",
                      "Figure 14");
  register_benchmarks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_modeled_overhead();
  return 0;
}
