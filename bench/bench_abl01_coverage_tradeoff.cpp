// Ablation (paper §4.1): protecting the critical layers only vs protecting
// every linear layer. The paper argues full protection costs "nearly 2x"
// while critical-only protection achieves essentially the same reliability.
// We measure both the SDC rate and the protection work (values checked)
// for: none / FT2 (critical only) / all linear layers / non-critical only.
// The non-critical-only row is the sanity ablation: it should barely help.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

namespace {

SchemeSpec with_coverage(const ModelConfig& config,
                         std::vector<LayerKind> covered) {
  SchemeSpec spec;
  spec.kind = SchemeKind::kFt2;
  spec.policy = ClipPolicy::kToBound;
  spec.correct_nan = true;
  spec.bound_scale = 2.0f;
  spec.online = true;
  spec.covered = std::move(covered);
  return spec;
}

double protected_width(const ModelConfig& config,
                       const std::vector<LayerKind>& covered) {
  double w = 0;
  for (LayerKind k : covered) {
    w += static_cast<double>(config.layer_output_dim(k));
  }
  return w * static_cast<double>(config.n_blocks);
}

}  // namespace

int main() {
  const auto s = bench::sizes();
  bench::print_header(
      "Ablation: protection coverage vs reliability and cost",
      "§4.1 'protecting every layer may introduce undesirable overhead'");

  const auto p = bench::prepare("llama-sm", DatasetKind::kSynthQA, s.inputs);
  const ModelConfig& config = p.model->config();

  std::vector<LayerKind> all_linears;
  for (LayerKind k : config.block_layers()) {
    if (is_linear_layer(k)) all_linears.push_back(k);
  }

  struct Variant {
    const char* name;
    SchemeSpec spec;
  };
  const std::vector<Variant> variants = {
      {"none", scheme_spec(SchemeKind::kNone, config)},
      {"ft2 (critical only)", scheme_spec(SchemeKind::kFt2, config)},
      {"all linear layers", with_coverage(config, all_linears)},
      {"non-critical only", with_coverage(config,
                                          non_critical_layers(config))},
  };

  CampaignConfig cc;
  cc.fault_model = FaultModel::kExponentBit;
  cc.trials_per_input = s.trials * 2;
  cc.gen_tokens = p.gen_tokens;

  Table table({"coverage", "SDC rate (95% CI)", "values checked / position"});
  for (const auto& v : variants) {
    const auto result =
        run_campaign(*p.model, p.inputs, v.spec, BoundStore{}, cc);
    table.begin_row()
        .cell(v.name)
        .cell(bench::sdc_cell(result))
        .num(protected_width(config, v.spec.covered), 0);
  }
  table.print(std::cout);
  std::cout << "\nexpected: critical-only matches all-layers reliability at "
               "roughly half the checked values; non-critical-only barely "
               "improves on none\n";
  return 0;
}
