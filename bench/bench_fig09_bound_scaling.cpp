// Figure 9 + take-aways #6/#8: bound-scaling sweep for FT2's online
// first-token bounds (Qwen2-7B / qwen2-sm on GSM8K / synthmath, EXP faults),
// plus the clip-to-bound vs clip-to-zero ablation.
// Expected shape: scale 1.0 can be WORSE than no protection (limited online
// data clips normal values); any scale >= 1.25 helps; FT2 is insensitive to
// the exact factor; clip-to-zero underperforms clip-to-bound.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("FT2 bound-scaling factor sweep + clip-policy ablation",
                      "Figure 9");

  const auto p = bench::prepare("qwen2-sm", DatasetKind::kSynthMath, s.inputs);

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = s.trials * 2;
  config.gen_tokens = p.gen_tokens;

  Table table({"configuration", "SDC rate (95% CI)"});
  {
    const auto none = run_campaign(*p.model, p.inputs, SchemeKind::kNone,
                                   BoundStore{}, config);
    table.begin_row().cell("no protection").cell(bench::sdc_cell(none));
  }
  for (float scale : {1.0f, 1.25f, 1.5f, 2.0f, 3.0f, 4.0f}) {
    SchemeSpec spec = scheme_spec(SchemeKind::kFt2, p.model->config());
    spec.bound_scale = scale;
    const auto result =
        run_campaign(*p.model, p.inputs, spec, BoundStore{}, config);
    table.begin_row()
        .cell("ft2, scale " + Table::format(scale, 2))
        .cell(bench::sdc_cell(result));
  }
  // Ablation: FT2 coverage and scaling but clip-to-zero correction.
  {
    SchemeSpec spec = scheme_spec(SchemeKind::kFt2, p.model->config());
    spec.policy = ClipPolicy::kToZero;
    const auto result =
        run_campaign(*p.model, p.inputs, spec, BoundStore{}, config);
    table.begin_row()
        .cell("ft2, scale 2.00, clip-to-ZERO (ablation)")
        .cell(bench::sdc_cell(result));
  }
  // Ablation: Dr.DNA-style clip-to-typical (median) correction with
  // offline-profiled medians (paper take-away #8 rejects this for
  // generative LLMs).
  {
    const auto gen = make_generator(DatasetKind::kSynthMath);
    OfflineProfileOptions profile;
    profile.n_inputs = s.profile_inputs;
    profile.seed = 555;
    profile.max_new_tokens = p.gen_tokens;
    profile.with_typical = true;
    const BoundStore typical_bounds =
        profile_offline_bounds(*p.model, *gen, profile);
    SchemeSpec spec = scheme_spec(SchemeKind::kFt2Offline, p.model->config());
    spec.policy = ClipPolicy::kToTypical;
    const auto result =
        run_campaign(*p.model, p.inputs, spec, typical_bounds, config);
    table.begin_row()
        .cell("offline bounds, clip-to-TYPICAL (Dr.DNA-style)")
        .cell(bench::sdc_cell(result));
  }
  table.print(std::cout);
  std::cout << "\npaper: unscaled first-token bounds RAISE the SDC rate; any "
               "scale in [1.25, 4] cuts it sharply; FT2 uses 2\n";
  return 0;
}
