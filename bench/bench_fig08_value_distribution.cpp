// Figure 8: neuron-value distribution per linear layer of the OPT model and
// the fraction of NaN-vulnerable values (|v| in (1,2), FP16 exponent 01111).
// Paper claim: critical layers (V/OUT/FC2) concentrate near 0 with few
// NaN-vulnerable values; non-critical layers (Q/K/FC1) spread wider.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Neuron value distributions and NaN-vulnerable share",
                      "Figure 8");

  const auto model = ensure_model("opt-sm");
  const auto gen = make_generator(DatasetKind::kSynthQA);

  ActivationStatsHook stats(8.0f, 32);
  InferenceSession session(*model);
  const auto stats_reg = session.hooks().add(stats);
  GenerateOptions opts;
  opts.max_new_tokens = generation_tokens(DatasetKind::kSynthQA);
  opts.eos_token = -1;
  for (const auto& sample : gen->generate_many(s.inputs, 31337)) {
    std::vector<int> prompt = {Vocab::kBos};
    prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                  sample.prompt_tokens.end());
    session.generate(prompt, opts);
  }

  const LayerGraph graph = LayerGraph::build(model->config());
  Table table({"layer", "critical?", "mean", "stddev", "min", "max",
               "NaN-vulnerable %"});
  for (LayerKind kind : model->config().block_layers()) {
    if (!is_linear_layer(kind)) continue;
    const auto agg = stats.aggregate(kind);
    table.begin_row()
        .cell(std::string(layer_kind_name(kind)))
        .cell(layer_is_critical(graph, kind) ? "Y" : "N")
        .num(agg.stats.mean(), 3)
        .num(agg.stats.stddev(), 3)
        .num(agg.stats.min(), 2)
        .num(agg.stats.max(), 2)
        .pct(agg.nan_vulnerable_fraction());
  }
  table.print(std::cout);

  std::cout << "\nhistogram of one non-critical (Q_PROJ) vs one critical "
               "(V_PROJ) layer, block 0:\n";
  for (LayerKind kind : {LayerKind::kQProj, LayerKind::kVProj}) {
    const auto* site = stats.find(LayerSite{0, kind});
    if (site == nullptr) continue;
    std::cout << "-- " << layer_kind_name(kind) << " --\n"
              << site->histogram.render(40);
  }
  std::cout << "paper: non-critical Q/K/FC1 have a visibly larger "
               "NaN-vulnerable share than critical V/OUT/FC2\n";
  return 0;
}
