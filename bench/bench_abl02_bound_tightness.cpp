// Ablation: bound tightness (min/max vs quantile bounds).
// Tighter offline bounds catch smaller faulty deviations (better recall)
// but start clipping the benign activation tail (false positives that can
// flip correct outputs) — the precision/recall knob of range restriction.
// This probes both sides: SDC rate under EXP faults AND fault-free output
// correctness, per quantile level.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Ablation: bound tightness (min/max vs quantiles)",
                      "range-restriction design space (§3/§4 context)");

  const auto p = bench::prepare("opt-sm", DatasetKind::kSynthQA, s.inputs);
  const auto gen = make_generator(DatasetKind::kSynthQA);

  SchemeSpec spec = scheme_spec(SchemeKind::kFt2Offline, p.model->config());
  spec.bound_scale = 1.0f;  // expose the raw bounds, no safety margin

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = s.trials * 2;
  config.gen_tokens = p.gen_tokens;

  Table table({"bounds", "SDC rate (95% CI)", "fault-free correct"});
  {
    const auto none = run_campaign(*p.model, p.inputs, SchemeKind::kNone,
                                   BoundStore{}, config);
    table.begin_row().cell("(no protection)").cell(bench::sdc_cell(none))
        .pct(1.0);
  }
  struct Level {
    const char* name;
    double q;
  };
  for (const Level level : {Level{"min/max (q=0)", 0.0},
                            Level{"q=0.001", 0.001},
                            Level{"q=0.01", 0.01},
                            Level{"q=0.05", 0.05}}) {
    OfflineProfileOptions profile;
    profile.n_inputs = s.profile_inputs;
    profile.seed = 555;
    profile.max_new_tokens = p.gen_tokens;
    profile.quantile = level.q;
    const BoundStore bounds =
        level.q == 0.0
            ? bench::offline_bounds(*p.model, DatasetKind::kSynthQA,
                                    s.profile_inputs, p.gen_tokens)
            : profile_offline_bounds(*p.model, *gen, profile);
    const auto result =
        run_campaign(*p.model, p.inputs, spec, bounds, config);
    const double correct = fault_free_correct_fraction(
        *p.model, p.inputs, spec, bounds, p.gen_tokens);
    table.begin_row()
        .cell(level.name)
        .cell(bench::sdc_cell(result))
        .pct(correct);
  }
  table.print(std::cout);
  std::cout << "\nexpected: moderate tightening keeps (or improves) fault "
               "coverage; aggressive tightening starts clipping benign "
               "values and costs fault-free correctness — the failure mode "
               "behind the paper's Fig. 3 and Fig. 9 scale-1.0 results\n";
  return 0;
}
