// Figure 3: fault-free correct-output percentage when protecting with
// bounds profiled from ALTERNATIVE datasets (no fault injected).
// The paper shows that bounds from other datasets clip benign neurons and
// degrade output quality by ~1-2%; bounds from the target dataset do not.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header(
      "Fault-free output quality with bounds from alternative datasets",
      "Figure 3");

  // Target task: OPT-6.7B (opt-sm) on SQuAD 2.0 (synthqa); the inputs are
  // all answered correctly without protection (100% baseline).
  const auto p = bench::prepare("opt-sm", DatasetKind::kSynthQA, s.inputs * 2);

  // FT2-offline-style protection (all critical layers, clip-to-bound) with
  // UNSCALED bounds, to expose the data dependency of raw profiled bounds.
  SchemeSpec spec = scheme_spec(SchemeKind::kFt2Offline, p.model->config());
  spec.bound_scale = 1.0f;

  Table table({"bounds profiled from", "correct outputs"});
  table.begin_row().cell("no protection (baseline)").pct(1.0);
  for (DatasetKind source : all_datasets()) {
    const BoundStore bounds = bench::offline_bounds(
        *p.model, source, s.profile_inputs, generation_tokens(source));
    const double correct = fault_free_correct_fraction(
        *p.model, p.inputs, spec, bounds, p.gen_tokens);
    std::string label = dataset_name(source);
    if (source == DatasetKind::kSynthQA) label += " (target dataset)";
    table.begin_row().cell(label).pct(correct);
  }
  table.print(std::cout);
  std::cout << "\npaper: target-dataset bounds keep 100% correct; "
               "alternative datasets drop correctness by 1.09%-1.81%\n";
  return 0;
}
