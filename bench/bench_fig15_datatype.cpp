// Figure 15: sensitivity to data type — FP16 vs FP32 SDC rates for
// OPT-6.7B (opt-sm) and GPTJ-6B (gptj-sm) on SQuAD 2.0 (synthqa), with the
// baselines and FT2. Bit flips act on the 16-bit or 32-bit encoding of the
// same neuron values; FT2 must be effective on both.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Data-type sensitivity: FP16 vs FP32", "Figure 15");

  for (const char* model_name : {"opt-sm", "gptj-sm"}) {
    const auto p = bench::prepare(model_name, DatasetKind::kSynthQA, s.inputs);
    const BoundStore bounds = bench::offline_bounds(
        *p.model, DatasetKind::kSynthQA, s.profile_inputs, p.gen_tokens);

    std::cout << "\n--- " << model_name << " (EXP fault model) ---\n";
    Table table({"dtype", "none", "ranger", "maximals", "global_clipper",
                 "ft2"});
    for (ValueType vtype : {ValueType::kF16, ValueType::kF32}) {
      CampaignConfig config;
      config.fault_model = FaultModel::kExponentBit;
      config.vtype = vtype;
      config.trials_per_input = s.trials;
      config.gen_tokens = p.gen_tokens;

      table.begin_row().cell(value_type_name(vtype));
      for (SchemeKind sk :
           {SchemeKind::kNone, SchemeKind::kRanger, SchemeKind::kMaxiMals,
            SchemeKind::kGlobalClipper, SchemeKind::kFt2}) {
        const auto result = run_campaign(*p.model, p.inputs, sk, bounds,
                                         config);
        table.pct(result.sdc_rate(), 2);
      }
    }
    table.print(std::cout);
  }
  std::cout << "\npaper: FT2 drops the SDC rate to ~0.14% for FP32 as well — "
               "effective for both data types\n";
  return 0;
}
