// Extension: sensitivity to the single-fault assumption (paper §2.3 assumes
// exactly one transient fault per inference). We sweep the number of
// independent faults per trial and check that FT2's advantage persists —
// each fault is detected/corrected independently by the per-layer clamp.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Extension: multiple faults per inference",
                      "single-fault-assumption sensitivity (paper §2.3)");

  const auto p = bench::prepare("llama-sm", DatasetKind::kSynthQA, s.inputs);

  Table table({"faults/trial", "none", "ft2", "ft2 reduction"});
  for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    CampaignConfig config;
    config.fault_model = FaultModel::kExponentBit;
    config.trials_per_input = s.trials * 2;
    config.gen_tokens = p.gen_tokens;
    config.faults_per_trial = k;

    const auto none = run_campaign(*p.model, p.inputs, SchemeKind::kNone,
                                   BoundStore{}, config);
    const auto ft2 = run_campaign(*p.model, p.inputs, SchemeKind::kFt2,
                                  BoundStore{}, config);
    const double reduction =
        none.sdc_rate() > 0 ? 1.0 - ft2.sdc_rate() / none.sdc_rate() : 0.0;
    table.begin_row()
        .count(k)
        .cell(bench::sdc_cell(none))
        .cell(bench::sdc_cell(ft2))
        .pct(reduction, 1);
  }
  table.print(std::cout);
  std::cout << "\nexpected: unprotected SDC grows roughly linearly with the "
               "fault count; FT2's relative reduction persists\n";
  return 0;
}
