// Serve engine under synthetic production load: paged KV + scheduler vs.
// the dense FIFO baseline at equal KV memory.
//
// Two engines run the SAME open-loop trace (bursty Poisson arrivals,
// bounded-Pareto heavy-tail prompt lengths, a shared system prompt on half
// the requests, an interactive high-priority slice):
//
//  * dense — paged off, max_batch = B, full prefill at admission: the
//    pre-scheduler engine, whose KV budget is B dense max_seq caches;
//  * paged — a KvBlockPool holding EXACTLY those bytes, but 4B batch
//    slots, chunked prefill interleaved with decode, copy-on-write prefix
//    sharing, and swap preemption under pool pressure.
//
// Acceptance bars (exit nonzero when missed, full mode):
//  * the paged engine sustains >= 2x the dense engine's peak concurrent
//    active requests at equal KV memory;
//  * p99 TTFT (measured from each request's intended arrival) improves
//    vs. the dense FIFO baseline;
//  * zero dropped/out-of-order streaming tokens on both engines.
//
// Flags:
//   --smoke   one small paged run (~2s) for the tier-1 ctest: zero dropped
//             tokens, every request completes, p99 TTFT under 5s
//   --json    machine-readable result on stdout (the BENCH baseline format)
// Environment (ignored under --smoke):
//   FT2_BENCH_REQUESTS   trace length        (default 96)
//   FT2_BENCH_RATE       mean arrivals/sec   (default 150)
//   FT2_BENCH_BATCH      dense max_batch B   (default 4)
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/json.hpp"
#include "serve/load_gen.hpp"

using namespace ft2;

namespace {

TransformerLM bench_model() {
  ModelConfig c;
  c.name = "bench-serve-load";
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 128;
  c.n_heads = 8;
  c.n_blocks = 4;
  c.d_ff = 384;
  c.max_seq = 256;
  Xoshiro256 rng(2026);
  return TransformerLM(c, init_weights(c, rng));
}

Json report_json(const LoadReport& r) {
  Json out = Json::object();
  out["offered"] = static_cast<double>(r.offered);
  out["completed"] = static_cast<double>(r.completed);
  out["rejected"] = static_cast<double>(r.rejected);
  out["dropped_tokens"] = static_cast<double>(r.dropped_tokens);
  out["wall_s"] = r.wall_s;
  out["tokens_per_s"] = r.tokens_per_s;
  out["ttft_p50_ms"] = r.ttft_p50_ms;
  out["ttft_p95_ms"] = r.ttft_p95_ms;
  out["ttft_p99_ms"] = r.ttft_p99_ms;
  out["gap_p50_ms"] = r.gap_p50_ms;
  out["gap_p99_ms"] = r.gap_p99_ms;
  out["peak_active"] = static_cast<double>(r.peak_active);
  out["peak_queue_depth"] = static_cast<double>(r.peak_queue_depth);
  out["peak_kv_blocks"] = static_cast<double>(r.peak_kv_blocks);
  out["preemptions"] = static_cast<double>(r.preemptions);
  out["shared_prefix_rows"] = static_cast<double>(r.shared_prefix_rows);
  return out;
}

void report_row(Table& table, const char* label, const LoadReport& r) {
  table.begin_row()
      .cell(label)
      .count(r.completed)
      .num(r.ttft_p50_ms, 1)
      .num(r.ttft_p99_ms, 1)
      .num(r.gap_p50_ms, 2)
      .num(r.tokens_per_s, 1)
      .count(r.peak_active)
      .count(r.preemptions)
      .count(r.shared_prefix_rows);
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv, {{"smoke", false}, {"json", false}});
  const bool smoke = args.has("smoke");
  const bool json = args.has("json");

  const std::size_t n_requests =
      smoke ? 12 : env_size("FT2_BENCH_REQUESTS", 96);
  const double rate =
      smoke ? 400.0 : static_cast<double>(env_size("FT2_BENCH_RATE", 150));
  const std::size_t dense_batch = smoke ? 4 : env_size("FT2_BENCH_BATCH", 4);
  const std::size_t block_rows = 16;

  if (!json && !smoke) {
    bench::print_header("serve load (paged KV + scheduler vs dense FIFO)",
                        "open-loop synthetic production trace");
  }

  const TransformerLM model = bench_model();
  const ModelConfig& cfg = model.config();

  LoadSpec spec;
  spec.n_requests = n_requests;
  spec.arrival_rate_hz = rate;
  spec.bursty = true;
  spec.burst_factor = 4.0;
  spec.burst_period_s = 0.25;
  spec.prompt_min = 8;
  spec.prompt_max = smoke ? 48 : 160;
  spec.prompt_alpha = 1.1;
  spec.shared_fraction = 0.5;
  spec.shared_prefix_len = smoke ? 24 : 48;
  spec.interactive_fraction = 0.25;
  spec.interactive_priority = 5;
  spec.interactive_deadline_ms = 50.0;
  spec.max_new_tokens = smoke ? 8 : 24;
  spec.seed = 7;
  const auto load = build_load(spec, cfg.vocab_size);

  const std::size_t blocks_per_seq =
      (cfg.max_seq + block_rows - 1) / block_rows;
  // The dense engine's KV budget: B resident max_seq caches. The paged
  // pool gets exactly those bytes.
  const std::size_t pool_blocks = dense_batch * blocks_per_seq;

  ServeOptions paged_opts;
  paged_opts.max_batch = dense_batch * 4;
  paged_opts.paged = true;
  paged_opts.kv_block_rows = block_rows;
  paged_opts.kv_pool_blocks = pool_blocks;
  paged_opts.prefill_chunk_budget = 32;
  paged_opts.preempt = PreemptMode::kSwap;
  paged_opts.share_prefix = true;

  if (smoke) {
    MetricsRegistry registry;
    paged_opts.obs.metrics = &registry;
    ServeEngine engine(model, paged_opts);
    const LoadReport r = run_load(engine, load);
    const bool pass = r.dropped_tokens == 0 && r.completed == r.offered &&
                      r.ttft_p99_ms < 5000.0;
    std::cout << "serve load smoke: " << r.completed << "/" << r.offered
              << " completed, " << r.dropped_tokens
              << " dropped tokens, p99 TTFT " << r.ttft_p99_ms << " ms, "
              << r.preemptions << " preemptions, " << r.shared_prefix_rows
              << " shared prefix rows -> " << (pass ? "PASS" : "FAIL")
              << "\n";
    return pass ? 0 : 1;
  }

  MetricsRegistry dense_registry;
  ServeOptions dense_opts;
  dense_opts.max_batch = dense_batch;
  dense_opts.paged = false;
  dense_opts.obs.metrics = &dense_registry;
  ServeEngine dense_engine(model, dense_opts);
  const LoadReport dense = run_load(dense_engine, load);

  MetricsRegistry paged_registry;
  paged_opts.obs.metrics = &paged_registry;
  ServeEngine paged_engine(model, paged_opts);
  const LoadReport paged = run_load(paged_engine, load);

  const double concurrency_ratio =
      dense.peak_active > 0
          ? static_cast<double>(paged.peak_active) /
                static_cast<double>(dense.peak_active)
          : 0.0;
  const bool pass = dense.dropped_tokens == 0 && paged.dropped_tokens == 0 &&
                    dense.completed == dense.offered &&
                    paged.completed == paged.offered &&
                    concurrency_ratio >= 2.0 &&
                    paged.ttft_p99_ms < dense.ttft_p99_ms;

  if (json) {
    Json out = Json::object();
    out["bench"] = "serve_load";
    Json c = Json::object();
    c["requests"] = static_cast<double>(n_requests);
    c["arrival_rate_hz"] = rate;
    c["dense_max_batch"] = static_cast<double>(dense_batch);
    c["paged_max_batch"] = static_cast<double>(paged_opts.max_batch);
    c["kv_pool_blocks"] = static_cast<double>(pool_blocks);
    c["kv_block_rows"] = static_cast<double>(block_rows);
    c["prompt_max"] = static_cast<double>(spec.prompt_max);
    c["shared_fraction"] = spec.shared_fraction;
    c["max_new_tokens"] = static_cast<double>(spec.max_new_tokens);
    c["smoke"] = smoke;
    out["config"] = c;
    out["dense"] = report_json(dense);
    out["paged"] = report_json(paged);
    out["concurrency_ratio"] = concurrency_ratio;
    out["ttft_p99_improves"] = paged.ttft_p99_ms < dense.ttft_p99_ms;
    out["pass"] = pass;
    std::cout << out.dump() << "\n";
    return pass ? 0 : 1;
  }

  std::cout << "model: d_model=" << cfg.d_model << " blocks=" << cfg.n_blocks
            << " max_seq=" << cfg.max_seq << "; trace: " << n_requests
            << " requests @ " << rate << "/s (bursty), prompts "
            << spec.prompt_min << ".." << spec.prompt_max
            << " (bounded Pareto), " << spec.shared_fraction * 100
            << "% share a " << spec.shared_prefix_len
            << "-token system prompt\nKV memory (both engines): "
            << pool_blocks << " blocks x " << block_rows << " rows\n\n";

  Table table({"engine", "completed", "ttft p50", "ttft p99", "gap p50",
               "tok/s", "peak active", "preempt", "shared rows"});
  report_row(table, "dense fifo", dense);
  report_row(table, "paged+sched", paged);
  table.print(std::cout);

  std::cout << "\nconcurrency ratio (paged/dense peak active): "
            << concurrency_ratio << "x ("
            << (concurrency_ratio >= 2.0 ? "meets" : "BELOW")
            << " the 2x bar)\n"
            << "p99 TTFT: " << paged.ttft_p99_ms << " ms paged vs "
            << dense.ttft_p99_ms << " ms dense ("
            << (paged.ttft_p99_ms < dense.ttft_p99_ms ? "improves"
                                                      : "NO IMPROVEMENT")
            << ")\n"
            << "dropped tokens: " << dense.dropped_tokens + paged.dropped_tokens
            << "\n";
  return pass ? 0 : 1;
}
