// Figure 12 + take-away #8: large neuron values exist in generative LLMs.
// Value distributions of GATE/UP/DOWN projections of the Vicuna model; the
// decisive observation is a long tail (|max| >> stddev) in DOWN_PROJ, which
// is why FT2 clips to the BOUND instead of to zero.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Large neuron values in generative LLMs", "Figure 12");

  const auto model = ensure_model("vicuna-sm");
  const auto gen = make_generator(DatasetKind::kSynthQA);

  ActivationStatsHook stats(10.0f, 40);
  InferenceSession session(*model);
  const auto stats_reg = session.hooks().add(stats);
  GenerateOptions opts;
  opts.max_new_tokens = generation_tokens(DatasetKind::kSynthQA);
  opts.eos_token = -1;
  for (const auto& sample : gen->generate_many(s.inputs, 686)) {
    std::vector<int> prompt = {Vocab::kBos};
    prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                  sample.prompt_tokens.end());
    session.generate(prompt, opts);
  }

  Table table({"layer", "mean", "stddev", "min", "max", "|max| / stddev"});
  for (LayerKind kind : {LayerKind::kGateProj, LayerKind::kUpProj,
                         LayerKind::kDownProj}) {
    const auto agg = stats.aggregate(kind);
    const double spread =
        std::max(std::abs(agg.stats.min()), std::abs(agg.stats.max()));
    table.begin_row()
        .cell(std::string(layer_kind_name(kind)))
        .num(agg.stats.mean(), 3)
        .num(agg.stats.stddev(), 3)
        .num(agg.stats.min(), 2)
        .num(agg.stats.max(), 2)
        .num(agg.stats.stddev() > 0 ? spread / agg.stats.stddev() : 0.0, 1);
  }
  table.print(std::cout);

  std::cout << "\nDOWN_PROJ histogram (block 0):\n";
  if (const auto* site = stats.find(LayerSite{0, LayerKind::kDownProj})) {
    std::cout << site->histogram.render(40);
  }
  std::cout << "paper: most values near 0, but a few LARGE values exist "
               "(esp. DOWN_PROJ) — clipping them to 0 would corrupt correct "
               "outputs, hence clip-to-bound\n";
  return 0;
}
