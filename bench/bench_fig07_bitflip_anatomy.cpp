// Figure 7 (quantitative version): what a single exponent-bit flip does to
// an FP16 value, as a function of the value's magnitude interval.
// The paper illustrates two cases — a small value becoming extremely large
// and a NaN-vulnerable value (+-(1,2)) becoming NaN; this bench sweeps all
// finite FP16 values x all exponent bits and tabulates the outcome classes,
// making take-aways #2/#3 checkable numbers instead of two examples.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

namespace {

struct Row {
  const char* interval;
  float lo, hi;  // |v| in [lo, hi)
  std::size_t total = 0, to_nan = 0, to_inf = 0, to_large = 0, benign = 0;
};

}  // namespace

int main() {
  bench::print_header("Anatomy of FP16 exponent-bit flips", "Figure 7");

  Row rows[] = {
      {"|v| in [0, 0.25)", 0.0f, 0.25f},
      {"|v| in [0.25, 1)", 0.25f, 1.0f},
      {"|v| = 1 exactly", 1.0f, std::nextafterf(1.0f, 2.0f)},
      {"|v| in (1, 2)  [NaN-vulnerable]", std::nextafterf(1.0f, 2.0f), 2.0f},
      {"|v| in [2, 16)", 2.0f, 16.0f},
      {"|v| in [16, 65504]", 16.0f, 65505.0f},
  };
  const float kLargeThreshold = 1024.0f;  // "extreme value" per the paper

  // Exhaustive: every finite FP16 pattern x every exponent bit.
  for (std::uint32_t b = 0; b <= 0xFFFFu; ++b) {
    const f16 h = f16::from_bits(static_cast<std::uint16_t>(b));
    if (h.is_nan() || h.is_inf()) continue;
    const float v = h.to_float();
    const float mag = std::fabs(v);
    Row* row = nullptr;
    for (Row& r : rows) {
      if (mag >= r.lo && mag < r.hi) {
        row = &r;
        break;
      }
    }
    if (row == nullptr) continue;
    for (int bit = f16::kExponentLow; bit <= f16::kExponentHigh; ++bit) {
      BitFlips flips;
      flips.count = 1;
      flips.bits[0] = bit;
      const float out = apply_bit_flips(v, flips, ValueType::kF16);
      ++row->total;
      if (std::isnan(out)) {
        ++row->to_nan;
      } else if (std::isinf(out)) {
        ++row->to_inf;
      } else if (std::fabs(out) >= kLargeThreshold &&
                 mag < kLargeThreshold) {
        ++row->to_large;
      } else {
        ++row->benign;
      }
    }
  }

  Table table({"value interval", "flips", "-> NaN", "-> inf",
               "-> large (|x|>=1024)", "benign"});
  auto pct = [](std::size_t n, std::size_t d) {
    return Table::format_pct(
        d == 0 ? 0.0 : static_cast<double>(n) / static_cast<double>(d), 1);
  };
  for (const Row& r : rows) {
    table.begin_row()
        .cell(r.interval)
        .count(r.total)
        .cell(pct(r.to_nan, r.total))
        .cell(pct(r.to_inf, r.total))
        .cell(pct(r.to_large, r.total))
        .cell(pct(r.benign, r.total));
  }
  table.print(std::cout);
  std::cout << "\npaper Fig. 7: flipping the TOP exponent bit turns small "
               "values into extreme values and +-(1,2) values into NaN.\n"
               "(+-(1,2) is the only interval NaN-vulnerable to the top "
               "exponent bit; the [16, 65504] NaN share comes from values "
               "with exponent 11110 flipping a LOWER exponent bit — rarer "
               "in practice because activations there are rare, see "
               "Fig. 8's distributions)\n";
  return 0;
}
