// Figure 11: resilience of the first-token generation phase.
// Three bars per fault model (OPT-6.7B / opt-sm, SQuAD 2.0 / synthqa):
//   (a) no protection, faults anywhere;
//   (b) full FT2 protection, faults anywhere;
//   (c) faults pinned to the FIRST-TOKEN phase with NaN-only correction —
//       the paper's claim is that (c) is already as good as (b), so leaving
//       the first token bound-unprotected is safe.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

namespace {

/// NaN-only correction on every linear layer (no bounds at all).
SchemeSpec nan_only_spec(const ModelConfig& config) {
  SchemeSpec spec;
  spec.kind = SchemeKind::kFt2;  // label only
  spec.policy = ClipPolicy::kToBound;
  spec.correct_nan = true;
  for (LayerKind k : config.block_layers()) {
    if (is_linear_layer(k)) spec.covered.push_back(k);
  }
  // No offline bounds and not online: all bounds stay invalid, so
  // range_restrict degrades to NaN-only correction.
  return spec;
}

}  // namespace

int main() {
  const auto s = bench::sizes();
  bench::print_header("First-token-phase resilience", "Figure 11");

  const auto p = bench::prepare("opt-sm", DatasetKind::kSynthQA, s.inputs);

  Table table({"fault model", "no protection", "FT2 (all tokens)",
               "first-token faults + NaN fix"});
  for (FaultModel fm : all_fault_models()) {
    CampaignConfig config;
    config.fault_model = fm;
    config.trials_per_input = s.trials * 2;
    config.gen_tokens = p.gen_tokens;

    const auto none =
        run_campaign(*p.model, p.inputs, SchemeKind::kNone, BoundStore{},
                     config);
    const auto ft2 =
        run_campaign(*p.model, p.inputs, SchemeKind::kFt2, BoundStore{},
                     config);
    CampaignConfig first_only = config;
    first_only.first_token_only = true;
    const auto first = run_campaign(*p.model, p.inputs,
                                    nan_only_spec(p.model->config()),
                                    BoundStore{}, first_only);
    table.begin_row()
        .cell(fault_model_name(fm))
        .cell(bench::sdc_cell(none))
        .cell(bench::sdc_cell(ft2))
        .cell(bench::sdc_cell(first));
  }
  table.print(std::cout);
  std::cout << "\npaper: first-token-phase faults with NaN correction reach "
               "the same (negligible) SDC level as full FT2, for all three "
               "fault models\n";
  return 0;
}
