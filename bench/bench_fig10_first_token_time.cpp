// Figure 10: share of inference time spent generating the first token.
// Modeled on A100/H100 for the paper-scale models (prefill compute-bound,
// decode bandwidth-bound), plus the measured share on our CPU engine.
#include <chrono>
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;
namespace pm = ft2::perfmodel;

namespace {

double measured_first_token_fraction(const TransformerLM& model,
                                     DatasetKind dataset) {
  const auto gen = make_generator(dataset);
  Xoshiro256 rng(404);
  const Sample sample = gen->generate(rng);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                sample.prompt_tokens.end());

  InferenceSession session(model);
  GenerateOptions opts;
  opts.max_new_tokens = generation_tokens(dataset);
  opts.eos_token = -1;

  // Time the full generation and the prefill-only portion separately.
  const int reps = 20;
  using clock = std::chrono::steady_clock;

  KvCache cache = model.make_cache();
  Workspace ws(model.config());
  HookChain hooks;
  std::vector<float> logits(model.config().vocab_size);

  const auto t0 = clock::now();
  for (int r = 0; r < reps; ++r) {
    cache.reset();
    for (std::size_t pos = 0; pos < prompt.size(); ++pos) {
      model.forward_position(prompt[pos], pos, cache, hooks, true, true, ws,
                             logits);
    }
  }
  const double prefill =
      std::chrono::duration<double>(clock::now() - t0).count();

  const auto t1 = clock::now();
  for (int r = 0; r < reps; ++r) session.generate(prompt, opts);
  const double total =
      std::chrono::duration<double>(clock::now() - t1).count();
  return prefill / total;
}

}  // namespace

int main() {
  bench::print_header("First-token share of inference time", "Figure 10");

  Table modeled({"model", "task", "A100", "H100"});
  for (const auto& m : pm::paper_models()) {
    const bool math = m.name == "Llama2-7B" || m.name == "Qwen2-7B";
    modeled.begin_row()
        .cell(m.name)
        .cell("QA (60 tok)")
        .pct(pm::first_token_fraction(m, pm::a100(), 256, 60))
        .pct(pm::first_token_fraction(m, pm::h100(), 256, 60));
    if (math) {
      modeled.begin_row()
          .cell(m.name)
          .cell("Math (180 tok)")
          .pct(pm::first_token_fraction(m, pm::a100(), 256, 180))
          .pct(pm::first_token_fraction(m, pm::h100(), 256, 180));
    }
  }
  modeled.print(std::cout);
  std::cout << "paper: 1.89-8.33% (QA) and 0.6-2.66% (math) on A100; "
               "1.75-2% / 0.59-0.61% on H100 — always < 10%\n\n";

  std::cout << "measured on this engine (tiny models, CPU):\n";
  Table measured({"model", "task", "first-token share"});
  for (const char* name : {"opt-sm", "llama-sm"}) {
    const auto model = ensure_model(name);
    measured.begin_row()
        .cell(name)
        .cell("QA")
        .pct(measured_first_token_fraction(*model, DatasetKind::kSynthQA));
  }
  {
    const auto model = ensure_model("llama-sm");
    measured.begin_row()
        .cell("llama-sm")
        .cell("Math")
        .pct(measured_first_token_fraction(*model, DatasetKind::kSynthMath));
  }
  measured.print(std::cout);
  std::cout << "(our prompts are a larger fraction of the total sequence "
               "than the paper's, so the CPU share is higher; the modeled "
               "GPU numbers are the Fig. 10 reproduction)\n";
  return 0;
}
