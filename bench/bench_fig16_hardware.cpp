// Figure 16: sensitivity to hardware — SDC rates must be (statistically)
// identical across GPU generations. We model the hardware difference as a
// different matmul reduction order (sequential vs 8-wide chunked partial
// sums, the kind of tiling change a new tensor-core generation brings) and
// show the SDC rates agree within confidence intervals. The perfmodel
// provides the corresponding A100/H100 timing difference, which is where
// the two GPUs actually differ.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;
namespace pm = ft2::perfmodel;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Hardware sensitivity: A100-like vs H100-like execution",
                      "Figure 16");

  struct Case {
    const char* model;
    DatasetKind dataset;
  };
  // The paper evaluates OPT-6.7B + SQuAD and Qwen2-7B + XTREME.
  const Case cases[] = {{"opt-sm", DatasetKind::kSynthQA},
                        {"qwen2-sm", DatasetKind::kSynthXQA}};

  Table table({"model", "dataset", "scheme", "A100-like (sequential)",
               "H100-like (chunked)"});
  for (const auto& c : cases) {
    const auto p = bench::prepare(c.model, c.dataset, s.inputs);
    for (SchemeKind sk : {SchemeKind::kNone, SchemeKind::kFt2}) {
      CampaignConfig config;
      config.fault_model = FaultModel::kExponentBit;
      config.trials_per_input = s.trials * 2;
      config.gen_tokens = p.gen_tokens;

      config.chunked_accum = false;
      const auto a100 = run_campaign(*p.model, p.inputs, sk, BoundStore{},
                                     config);
      config.chunked_accum = true;
      const auto h100 = run_campaign(*p.model, p.inputs, sk, BoundStore{},
                                     config);
      table.begin_row()
          .cell(c.model)
          .cell(dataset_name(c.dataset))
          .cell(scheme_name(sk))
          .cell(bench::sdc_cell(a100))
          .cell(bench::sdc_cell(h100));
    }
  }
  table.print(std::cout);

  std::cout << "\nwhere the GPUs DO differ (modeled inference time, QA):\n";
  Table timing({"model", "A100 seconds", "H100 seconds"});
  for (const char* name : {"OPT-6.7B", "Qwen2-7B"}) {
    const auto& m = pm::paper_model(name);
    timing.begin_row()
        .cell(name)
        .num(pm::inference_seconds(m, pm::a100(), 256, 60), 2)
        .num(pm::inference_seconds(m, pm::h100(), 256, 60), 2);
  }
  timing.print(std::cout);
  std::cout << "paper: SDC rates on H100 equal A100 (FT2 ~0.33% on both); "
               "only execution time differs\n";
  return 0;
}
