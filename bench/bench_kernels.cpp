// Kernel microbenchmarks (google-benchmark): the hot paths of the engine
// and of the protection itself. Useful for regression-tracking the cost of
// the FP16 software path and the range-restriction kernel the overhead
// results (Fig. 14) depend on.
#include <benchmark/benchmark.h>

#include "core/ft2.hpp"

namespace ft2 {
namespace {

void BM_F16FromFloat(benchmark::State& state) {
  std::vector<float> values(1024);
  Xoshiro256 rng(1);
  for (float& f : values) f = rng.uniform_float(-4.0f, 4.0f);
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (float f : values) acc += f16::from_float(f).bits();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_F16FromFloat);

void BM_QuantizeSpan(benchmark::State& state) {
  std::vector<float> values(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(2);
  for (float& f : values) f = rng.uniform_float(-4.0f, 4.0f);
  for (auto _ : state) {
    quantize_span_f16(values);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_QuantizeSpan)->Arg(64)->Arg(256)->Arg(1024);

void BM_LinearForwardRow(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  Tensor w({d, d});
  std::vector<float> x(d), y(d);
  Xoshiro256 rng(3);
  for (float& f : w.span()) f = rng.uniform_float(-0.1f, 0.1f);
  for (float& f : x) f = rng.uniform_float(-1.0f, 1.0f);
  for (auto _ : state) {
    linear_forward_row(x, w, {}, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * d));
}
BENCHMARK(BM_LinearForwardRow)->Arg(48)->Arg(64)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  std::vector<float> v(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(4);
  for (auto _ : state) {
    for (float& f : v) f = rng.uniform_float(-5.0f, 5.0f);
    softmax(v);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(32)->Arg(96);

void BM_RangeRestrict(benchmark::State& state) {
  std::vector<float> v(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(5);
  Bounds bounds;
  bounds.observe(-1.0f);
  bounds.observe(1.0f);
  for (auto _ : state) {
    for (float& f : v) f = rng.uniform_float(-2.0f, 2.0f);
    range_restrict(v, bounds, ClipPolicy::kToBound, true, nullptr);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RangeRestrict)->Arg(64)->Arg(256);

void BM_RopeApply(benchmark::State& state) {
  std::vector<float> v(64);
  Xoshiro256 rng(6);
  for (float& f : v) f = rng.uniform_float(-1.0f, 1.0f);
  std::size_t pos = 0;
  for (auto _ : state) {
    rope_apply(v, 4, 16, pos++ % 96);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_RopeApply);

void BM_ForwardPosition(benchmark::State& state) {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 64;
  c.n_heads = 4;
  c.n_blocks = 2;
  c.d_ff = 176;
  c.max_seq = 96;
  Xoshiro256 rng(7);
  const TransformerLM model(c, init_weights(c, rng));
  KvCache cache = model.make_cache();
  Workspace ws(c);
  HookChain hooks;
  std::vector<float> logits(c.vocab_size);

  const bool fp16 = state.range(0) != 0;
  for (auto _ : state) {
    if (cache.length() >= c.max_seq) cache.reset();
    model.forward_position(5, cache.length(), cache, hooks, fp16, false, ws,
                           logits);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetLabel(fp16 ? "fp16" : "fp32");
}
BENCHMARK(BM_ForwardPosition)->Arg(1)->Arg(0);

}  // namespace
}  // namespace ft2

BENCHMARK_MAIN();
