// Kernel microbenchmarks: the hot paths of the engine and of the
// protection itself. Useful for regression-tracking the cost of the FP16
// software path and the range-restriction kernel the overhead results
// (Fig. 14) depend on.
//
// Two modes:
//   bench_kernels [google-benchmark flags]
//       the registered BM_* microbenchmarks (default mode);
//   bench_kernels --tiers [--json FILE]
//       per-dispatch-tier GEMM and quantize throughput (every tier the
//       host supports, plus the fused protection epilogue's cost on the
//       GEMM store path). --json writes the bench/baselines/
//       BENCH_kernels.json shape; without it a table prints.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/json.hpp"
#include "core/ft2.hpp"

namespace ft2 {
namespace {

void BM_F16FromFloat(benchmark::State& state) {
  std::vector<float> values(1024);
  Xoshiro256 rng(1);
  for (float& f : values) f = rng.uniform_float(-4.0f, 4.0f);
  for (auto _ : state) {
    std::uint32_t acc = 0;
    for (float f : values) acc += f16::from_float(f).bits();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_F16FromFloat);

void BM_QuantizeSpan(benchmark::State& state) {
  std::vector<float> values(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(2);
  for (float& f : values) f = rng.uniform_float(-4.0f, 4.0f);
  for (auto _ : state) {
    quantize_span_f16(values);
    benchmark::DoNotOptimize(values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_QuantizeSpan)->Arg(64)->Arg(256)->Arg(1024);

void BM_LinearForwardRow(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  Tensor w({d, d});
  std::vector<float> x(d), y(d);
  Xoshiro256 rng(3);
  for (float& f : w.span()) f = rng.uniform_float(-0.1f, 0.1f);
  for (float& f : x) f = rng.uniform_float(-1.0f, 1.0f);
  for (auto _ : state) {
    linear_forward_row(x, w, {}, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(d * d));
}
BENCHMARK(BM_LinearForwardRow)->Arg(48)->Arg(64)->Arg(256);

void BM_Softmax(benchmark::State& state) {
  std::vector<float> v(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(4);
  for (auto _ : state) {
    for (float& f : v) f = rng.uniform_float(-5.0f, 5.0f);
    softmax(v);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_Softmax)->Arg(32)->Arg(96);

void BM_RangeRestrict(benchmark::State& state) {
  std::vector<float> v(static_cast<std::size_t>(state.range(0)));
  Xoshiro256 rng(5);
  Bounds bounds;
  bounds.observe(-1.0f);
  bounds.observe(1.0f);
  for (auto _ : state) {
    for (float& f : v) f = rng.uniform_float(-2.0f, 2.0f);
    range_restrict(v, bounds, ClipPolicy::kToBound, true, nullptr);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RangeRestrict)->Arg(64)->Arg(256);

void BM_RopeApply(benchmark::State& state) {
  std::vector<float> v(64);
  Xoshiro256 rng(6);
  for (float& f : v) f = rng.uniform_float(-1.0f, 1.0f);
  std::size_t pos = 0;
  for (auto _ : state) {
    rope_apply(v, 4, 16, pos++ % 96);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_RopeApply);

void BM_ForwardPosition(benchmark::State& state) {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 64;
  c.n_heads = 4;
  c.n_blocks = 2;
  c.d_ff = 176;
  c.max_seq = 96;
  Xoshiro256 rng(7);
  const TransformerLM model(c, init_weights(c, rng));
  KvCache cache = model.make_cache();
  Workspace ws(c);
  HookChain hooks;
  std::vector<float> logits(c.vocab_size);

  const bool fp16 = state.range(0) != 0;
  for (auto _ : state) {
    if (cache.length() >= c.max_seq) cache.reset();
    model.forward_position(5, cache.length(), cache, hooks, fp16, false, ws,
                           logits);
    benchmark::DoNotOptimize(logits.data());
  }
  state.SetLabel(fp16 ? "fp16" : "fp32");
}
BENCHMARK(BM_ForwardPosition)->Arg(1)->Arg(0);

// --- Per-tier throughput (--tiers mode) -------------------------------------

/// Best-of-reps wall time of `fn` (which runs `items` work items once),
/// auto-calibrated so each timed rep lasts at least ~40ms.
template <typename Fn>
double best_items_per_sec(double items, std::size_t reps, Fn&& fn) {
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    if (s >= 0.04 || iters >= (1u << 20)) break;
    iters *= 2;
  }
  double best = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    const double rate = items * static_cast<double>(iters) / s;
    best = std::max(best, rate);
  }
  return best;
}

struct TierRates {
  double gemm_gflops = 0.0;         ///< span GEMM (packs tiles per call)
  double gemm_packed_gflops = 0.0;  ///< pre-packed tiles (batched decode path)
  double gemm_fused_gflops = 0.0;   ///< span GEMM + quantize/bounds epilogue
  double quantize_gelems = 0.0;     ///< quantize_span_f16 sweep
};

TierRates measure_tier(KernelTier tier, std::size_t n, std::size_t k,
                       std::size_t rows, std::size_t reps) {
  set_kernel_tier(tier);
  ThreadPool pool(1);  // single worker: kernel throughput, not pool scaling
  Xoshiro256 rng(99);
  Tensor x({rows, k}), w({n, k}), y({rows, n});
  for (float& f : x.span()) f = rng.uniform_float(-1.0f, 1.0f);
  for (float& f : w.span()) f = rng.uniform_float(-0.1f, 0.1f);
  std::vector<float> bias(n);
  for (float& f : bias) f = rng.uniform_float(-0.5f, 0.5f);

  TierRates rates;
  const double flops = 2.0 * static_cast<double>(n * k * rows);
  rates.gemm_gflops = best_items_per_sec(flops, reps, [&] {
    linear_forward_span(x, rows, w, bias, y, false, pool);
  }) / 1e9;
  {
    PackedLinear pl(w, bias);
    rates.gemm_packed_gflops = best_items_per_sec(flops, reps, [&] {
      linear_forward_span_packed(x, rows, pl, y, pool);
    }) / 1e9;
  }
  {
    // The fused store epilogue as protected fp16 decode plans it: quantize
    // plus in-bound range restriction (clean-path cost — values in bounds).
    // Same span path as gemm_gflops, so the delta is pure epilogue cost.
    KernelEpilogue epi;
    epi.quantize = true;
    epi.protect = KernelEpilogue::Protect::kBounds;
    epi.correct_nan = true;
    epi.lo = -1e6f;
    epi.hi = 1e6f;
    epi.lo_sub = epi.lo;
    epi.hi_sub = epi.hi;
    EpilogueTally tally;
    rates.gemm_fused_gflops = best_items_per_sec(flops, reps, [&] {
      linear_forward_span(x, rows, w, bias, y, false, pool, &epi, &tally);
    }) / 1e9;
  }
  {
    std::vector<float> v(1u << 16);
    for (float& f : v) f = rng.uniform_float(-4.0f, 4.0f);
    rates.quantize_gelems = best_items_per_sec(
        static_cast<double>(v.size()), reps,
        [&] { quantize_span_f16(v); }) / 1e9;
  }
  return rates;
}

int run_tiers(const ArgParser& args) {
  const std::size_t n = 256, k = 256, rows = 8;
  const std::size_t reps = env_size("FT2_BENCH_REPS", 5);
  const KernelTier restore = active_kernel_tier();

  Json tiers = Json::object();
  Table table({"tier", "gemm GFLOP/s", "packed GFLOP/s", "fused-epi GFLOP/s",
               "fused cost", "quantize Gelem/s"});
  for (KernelTier tier : supported_kernel_tiers()) {
    const TierRates r = measure_tier(tier, n, k, rows, reps);
    const double fused_cost =
        r.gemm_gflops > 0.0 ? 1.0 - r.gemm_fused_gflops / r.gemm_gflops : 0.0;
    table.begin_row()
        .cell(kernel_tier_name(tier))
        .num(r.gemm_gflops, 2)
        .num(r.gemm_packed_gflops, 2)
        .num(r.gemm_fused_gflops, 2)
        .pct(fused_cost)
        .num(r.quantize_gelems, 2);
    Json t = Json::object();
    t["gemm_gflops"] = r.gemm_gflops;
    t["gemm_packed_gflops"] = r.gemm_packed_gflops;
    t["gemm_fused_gflops"] = r.gemm_fused_gflops;
    t["quantize_gelems_per_sec"] = r.quantize_gelems;
    tiers[kernel_tier_name(tier)] = t;
  }
  set_kernel_tier(restore);

  if (args.has("json")) {
    Json out = Json::object();
    out["bench"] = "kernels";
    Json cfg = Json::object();
    cfg["gemm_n"] = static_cast<double>(n);
    cfg["gemm_k"] = static_cast<double>(k);
    cfg["gemm_rows"] = static_cast<double>(rows);
    cfg["quantize_elems"] = static_cast<double>(1u << 16);
    cfg["reps"] = static_cast<double>(reps);
    cfg["threads"] = 1.0;
    out["config"] = cfg;
    out["tiers"] = tiers;
    out["default_tier"] = kernel_tier_name(active_kernel_tier());
    const std::string path = args.get("json", "");
    if (path.empty()) {
      std::cout << out.dump() << "\n";
    } else {
      std::ofstream f(path);
      f << out.dump() << "\n";
      std::cout << "wrote " << path << "\n";
    }
    return 0;
  }
  bench::print_header("kernel dispatch tiers",
                      "GEMM/quantize throughput per CPU tier");
  std::cout << "gemm " << n << "x" << k << ", " << rows
            << " rows, packed tiles, single worker, best of " << reps
            << "\n\n";
  table.print(std::cout);
  std::cout << "\nall tiers are bit-exact (ctest -R KernelTierEquivalence); "
               "pick with FT2_KERNEL or --kernel\n";
  return 0;
}

}  // namespace
}  // namespace ft2

int main(int argc, char** argv) {
  // --tiers intercepts before google-benchmark sees the arguments.
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--tiers") {
      const ft2::ArgParser args(argc - 1, argv + 1,
                                {{"tiers", false}, {"json", true}});
      return ft2::run_tiers(args);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
