// Figure 13 — the main result: SDC rate of every protection scheme across
// 7 models x 3 datasets x 3 fault models. One table per fault model, one
// row per (model, dataset), one column per scheme; final summary reports
// the average SDC-rate reduction of FT2 (paper: 92.92%).
//
// Model-dataset pairs follow Table 2: every model runs both QA datasets;
// only llama-sm and qwen2-sm run the math dataset (16 pairs total).
#include <iostream>
#include <map>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header("Main SDC comparison: 7 models x 3 datasets x 3 fault "
                      "models x 6 schemes",
                      "Figure 13");

  struct Cell {
    std::string model;
    DatasetKind dataset;
  };
  std::vector<Cell> cells;
  for (const auto& entry : model_zoo()) {
    for (DatasetKind dataset : entry.tasks) {
      cells.push_back({entry.name, dataset});
    }
  }

  // The figure compares exactly the paper's Table 1 family; newer registry
  // schemes (abft-linear, ft2-adaptive) are not part of Fig. 13.
  const SchemeKind kFigSchemes[] = {
      SchemeKind::kNone,          SchemeKind::kRanger,
      SchemeKind::kMaxiMals,      SchemeKind::kGlobalClipper,
      SchemeKind::kFt2,           SchemeKind::kFt2Offline,
  };

  double sum_reduction = 0.0;
  double sum_none = 0.0, sum_ft2 = 0.0, sum_ft2_offline = 0.0;
  std::map<SchemeKind, double> scheme_rate_sum;
  std::size_t reductions = 0;

  for (FaultModel fm : all_fault_models()) {
    std::cout << "\n--- fault model: " << fault_model_name(fm) << " ---\n";
    Table table({"model", "dataset", "none", "ranger", "maximals",
                 "global_clipper", "ft2", "ft2_offline"});
    for (const auto& cell : cells) {
      const auto p = bench::prepare(cell.model, cell.dataset, s.inputs);
      const BoundStore bounds = bench::offline_bounds(
          *p.model, cell.dataset, s.profile_inputs, p.gen_tokens);

      CampaignConfig config;
      config.fault_model = fm;
      config.trials_per_input = s.trials;
      config.gen_tokens = p.gen_tokens;

      table.begin_row().cell(cell.model).cell(dataset_name(cell.dataset));
      double none_rate = 0.0;
      for (SchemeKind sk : kFigSchemes) {
        const auto result = run_campaign(*p.model, p.inputs, sk, bounds,
                                         config);
        table.pct(result.sdc_rate(), 2);
        scheme_rate_sum[sk] += result.sdc_rate();
        if (sk == SchemeKind::kNone) {
          none_rate = result.sdc_rate();
          sum_none += none_rate;
        }
        if (sk == SchemeKind::kFt2) {
          sum_ft2 += result.sdc_rate();
          if (none_rate > 0.0) {
            sum_reduction += 1.0 - result.sdc_rate() / none_rate;
            ++reductions;
          }
        }
        if (sk == SchemeKind::kFt2Offline) {
          sum_ft2_offline += result.sdc_rate();
        }
      }
    }
    table.print(std::cout);
  }

  const double n_cells = static_cast<double>(cells.size() * 3);
  std::cout << "\n=== summary across all " << cells.size() * 3
            << " (model, dataset, fault-model) cells ===\n";
  Table summary({"scheme", "average SDC rate"});
  for (SchemeKind sk : kFigSchemes) {
    summary.begin_row()
        .cell(scheme_name(sk))
        .pct(scheme_rate_sum[sk] / n_cells, 3);
  }
  summary.print(std::cout);
  if (reductions > 0) {
    std::cout << "average FT2 SDC-rate reduction: "
              << Table::format_pct(
                     sum_reduction / static_cast<double>(reductions), 2)
              << "  (paper: 92.92%)\n";
  }
  std::cout << "paper averages: none/ranger 2.83%, global_clipper 2.61%, "
               "maximals 0.81%, ft2 0.25%, ft2_offline 0.204%\n";
  return 0;
}
