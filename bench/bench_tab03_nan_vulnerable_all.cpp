// Take-away #3/#4 across the whole zoo: the NaN-vulnerable fraction per
// layer kind for all seven models (the paper shows OPT-6.7B in Fig. 8 and
// states the observation holds for every model studied).
#include <iomanip>
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

int main() {
  const auto s = bench::sizes();
  bench::print_header(
      "NaN-vulnerable value share per layer, all models",
      "Fig. 8 generalization (take-aways #3/#4: 'observations hold for all "
      "the models')");

  const LayerKind columns[] = {
      LayerKind::kQProj, LayerKind::kKProj,    LayerKind::kVProj,
      LayerKind::kOutProj, LayerKind::kFc1,    LayerKind::kFc2,
      LayerKind::kGateProj, LayerKind::kUpProj, LayerKind::kDownProj};

  Table table({"model", "Q", "K", "V*", "OUT*", "FC1", "FC2*", "GATE",
               "UP*", "DOWN*"});
  for (const auto& entry : model_zoo()) {
    const auto model = ensure_model(entry.name);
    const auto gen = make_generator(DatasetKind::kSynthQA);
    ActivationStatsHook stats(8.0f, 32);
    InferenceSession session(*model);
    const auto stats_reg = session.hooks().add(stats);
    GenerateOptions opts;
    opts.max_new_tokens = generation_tokens(DatasetKind::kSynthQA);
    opts.eos_token = -1;
    for (const auto& sample : gen->generate_many(s.inputs, 8080)) {
      std::vector<int> prompt = {Vocab::kBos};
      prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                    sample.prompt_tokens.end());
      session.generate(prompt, opts);
    }

    table.begin_row().cell(entry.name);
    for (LayerKind kind : columns) {
      if (!entry.config.has_layer(kind)) {
        table.cell("-");
        continue;
      }
      const auto agg = stats.aggregate(kind);
      table.pct(agg.nan_vulnerable_fraction(), 1);
    }
  }
  table.print(std::cout);
  std::cout << "\n(* = critical layer in its architecture; the paper's "
               "claim: critical layers V/OUT have a much smaller "
               "NaN-vulnerable share than non-critical Q/K/FC1/GATE)\n";
  return 0;
}
