// Figure 6 + Take-away #1/#5: leave-one-out layer criticality.
// Protect all linear layers except the tested one, inject faults everywhere
// (EXP model), and measure the residual SDC rate. Layers whose exclusion
// raises the SDC rate are critical; the architectural heuristic must agree.
#include <iostream>

#include "bench_util.hpp"

using namespace ft2;

namespace {

SchemeSpec all_except(const ModelConfig& config, LayerKind excluded) {
  SchemeSpec spec;
  spec.kind = SchemeKind::kFt2Offline;
  spec.policy = ClipPolicy::kToBound;
  spec.correct_nan = true;
  spec.needs_offline_bounds = true;
  spec.bound_scale = 1.0f;
  for (LayerKind k : config.block_layers()) {
    if (is_linear_layer(k) && k != excluded) spec.covered.push_back(k);
  }
  return spec;
}

}  // namespace

int main() {
  const auto s = bench::sizes();
  bench::print_header("Layer criticality via leave-one-out protection",
                      "Figure 6 / Table 1 validation");

  // The paper reports GPTJ-6B + SQuAD 2.0 for this figure.
  const auto p = bench::prepare("gptj-sm", DatasetKind::kSynthQA, s.inputs);
  const BoundStore bounds = bench::offline_bounds(
      *p.model, DatasetKind::kSynthQA, s.profile_inputs, p.gen_tokens);
  const LayerGraph graph = LayerGraph::build(p.model->config());

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = s.trials * 2;  // leave-one-out needs resolution
  config.gen_tokens = p.gen_tokens;

  Table table({"unprotected layer", "SDC rate (95% CI)",
               "heuristic says critical"});
  {
    const auto all = run_campaign(*p.model, p.inputs,
                                  all_except(p.model->config(),
                                             LayerKind::kCount),
                                  bounds, config);
    table.begin_row().cell("(none - all protected)")
        .cell(bench::sdc_cell(all)).cell("-");
  }
  for (LayerKind kind : p.model->config().block_layers()) {
    if (!is_linear_layer(kind)) continue;
    const auto result = run_campaign(
        *p.model, p.inputs, all_except(p.model->config(), kind), bounds,
        config);
    table.begin_row()
        .cell(std::string(layer_kind_name(kind)))
        .cell(bench::sdc_cell(result))
        .cell(layer_is_critical(graph, kind) ? "Y" : "N");
  }
  table.print(std::cout);
  std::cout << "\npaper (GPTJ-6B, SQuAD 2.0): K/Q/FC1 0.29-0.38% (non-critical)"
               " vs V/OUT/FC2 0.75-1.82% (critical)\n";
  return 0;
}
