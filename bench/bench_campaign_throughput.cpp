// Campaign throughput with fault-free prefix reuse on vs. off.
//
// Runs the same decode-phase fault-injection campaign twice — once replaying
// every trial from token 0 and once forking each trial from the fault-free
// snapshot at its first injection position — and reports trials/sec for
// both. Per-trial records are compared first: prefix reuse is a pure
// throughput knob (like `prefill_chunk`), bit-exact by construction, so any
// outcome/plan/detection mismatch fails the run before timing is reported.
//
// Flags:
//   --smoke   small sizes for the tier-1 ctest run (same acceptance bar)
//   --json    machine-readable result on stdout (the BENCH baseline format)
// Environment (ignored under --smoke):
//   FT2_BENCH_PROMPT   prompt length            (default 64)
//   FT2_BENCH_INPUTS   evaluation inputs        (default 4)
//   FT2_TRIALS         trials per input         (default 25)
//   FT2_BENCH_REPS     timed repetitions, best-of (default 2)
#include <algorithm>
#include <chrono>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/env.hpp"
#include "common/json.hpp"
#include "common/thread_pool.hpp"

using namespace ft2;

namespace {

TransformerLM bench_model() {
  // GEMM-heavy enough that skipped forward positions dominate the
  // bookkeeping cost of snapshot/fork.
  ModelConfig c;
  c.name = "bench-campaign";
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 128;
  c.n_heads = 8;
  c.n_blocks = 4;
  c.d_ff = 384;
  c.max_seq = 256;
  Xoshiro256 rng(2026);
  return TransformerLM(c, init_weights(c, rng));
}

/// SynthQA samples padded to a fixed prompt length — references come from
/// prepare_eval_inputs, so inputs are realistic campaign inputs with a
/// prefill long enough to be worth skipping.
std::vector<EvalInput> bench_inputs(const TransformerLM& model,
                                    std::size_t n_inputs,
                                    std::size_t prompt_len,
                                    std::size_t gen_tokens) {
  auto samples =
      make_generator(DatasetKind::kSynthQA)->generate_many(n_inputs, 77);
  const int vocab = static_cast<int>(model.config().vocab_size);
  for (Sample& s : samples) {
    std::vector<int> padded;
    for (std::size_t i = 0; padded.size() + s.prompt_tokens.size() + 1 <
                            prompt_len;
         ++i) {
      padded.push_back(static_cast<int>(i * 13 + 5) % vocab);
    }
    padded.insert(padded.end(), s.prompt_tokens.begin(),
                  s.prompt_tokens.end());
    s.prompt_tokens = std::move(padded);
  }
  return prepare_eval_inputs(model, samples, gen_tokens, false);
}

std::vector<TrialRecord> sorted_records(std::vector<TrialRecord> records) {
  std::sort(records.begin(), records.end(),
            [](const TrialRecord& a, const TrialRecord& b) {
              return a.trial < b.trial;
            });
  return records;
}

struct TimedRun {
  double seconds = 0.0;
  CampaignResult result;
  std::vector<TrialRecord> records;
  std::uint64_t prefix_hits = 0;
  std::uint64_t prefix_misses = 0;
};

TimedRun time_campaign(const TransformerLM& model,
                       const std::vector<EvalInput>& inputs,
                       const SchemeSpec& spec, CampaignConfig config,
                       bool prefix_reuse, std::size_t reps) {
  config.prefix_reuse = prefix_reuse;
  TimedRun best;
  for (std::size_t r = 0; r < reps; ++r) {
    MetricsRegistry registry;
    config.obs.metrics = &registry;
    std::vector<TrialRecord> trace;
    const auto t0 = std::chrono::steady_clock::now();
    const auto result =
        run_campaign(model, inputs, spec, BoundStore{}, config,
                     [&](const TrialRecord& rec) { trace.push_back(rec); });
    const auto t1 = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || s < best.seconds) {
      best.seconds = s;
      best.result = result;
      best.records = sorted_records(std::move(trace));
      const auto snap = registry.snapshot();
      best.prefix_hits = snap.counter_value("campaign.prefix.hit");
      best.prefix_misses = snap.counter_value("campaign.prefix.miss");
    }
  }
  return best;
}

bool same_plan(const FaultPlan& a, const FaultPlan& b) {
  return a.position == b.position && a.site == b.site && a.neuron == b.neuron &&
         a.vtype == b.vtype && a.in_first_token == b.in_first_token &&
         a.flips.count == b.flips.count && a.flips.bits == b.flips.bits;
}

bool identical(const TimedRun& a, const TimedRun& b) {
  if (a.records.size() != b.records.size()) return false;
  for (std::size_t t = 0; t < a.records.size(); ++t) {
    const TrialRecord& x = a.records[t];
    const TrialRecord& y = b.records[t];
    if (x.trial != y.trial || x.input_index != y.input_index ||
        x.outcome != y.outcome || x.detections != y.detections ||
        x.generated_text != y.generated_text || !same_plan(x.plan, y.plan)) {
      return false;
    }
  }
  return a.result.trials == b.result.trials && a.result.sdc == b.result.sdc &&
         a.result.masked_identical == b.result.masked_identical &&
         a.result.masked_semantic == b.result.masked_semantic &&
         a.result.not_injected == b.result.not_injected;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv, {{"smoke", false}, {"json", false}});
  const bool smoke = args.has("smoke");
  const bool json = args.has("json");

  const std::size_t prompt_len =
      smoke ? 48 : env_size("FT2_BENCH_PROMPT", 64);
  const std::size_t n_inputs = smoke ? 2 : env_size("FT2_BENCH_INPUTS", 4);
  const std::size_t trials = smoke ? 6 : env_size("FT2_TRIALS", 25);
  const std::size_t reps = smoke ? 1 : env_size("FT2_BENCH_REPS", 2);
  const std::size_t gen_tokens = 16;  // acceptance bar: >= 16

  if (!json) {
    bench::print_header("campaign throughput (fault-free prefix reuse)",
                        "engine (decode-phase single-fault campaign)");
  }

  const TransformerLM model = bench_model();
  const auto inputs = bench_inputs(model, n_inputs, prompt_len, gen_tokens);
  const auto spec = scheme_spec(SchemeKind::kFt2, model.config());

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = trials;
  config.gen_tokens = gen_tokens;
  config.seed = 11;
  ThreadPool pool(1);  // the acceptance bar is single-core
  config.pool = &pool;

  const auto off = time_campaign(model, inputs, spec, config, false, reps);
  const auto on = time_campaign(model, inputs, spec, config, true, reps);

  const bool bit_exact = identical(off, on);
  const double total_trials = static_cast<double>(off.result.trials);
  const double off_tps = total_trials / off.seconds;
  const double on_tps = total_trials / on.seconds;
  const double speedup = off.seconds / on.seconds;
  const bool pass = bit_exact && speedup >= 1.5;

  if (json) {
    Json out = Json::object();
    out["bench"] = "campaign_throughput";
    Json cfg = Json::object();
    cfg["prompt_len"] = static_cast<double>(prompt_len);
    cfg["inputs"] = static_cast<double>(inputs.size());
    cfg["trials_per_input"] = static_cast<double>(trials);
    cfg["gen_tokens"] = static_cast<double>(gen_tokens);
    cfg["scheme"] = scheme_name(spec.kind);
    cfg["threads"] = 1.0;
    cfg["smoke"] = smoke;
    out["config"] = cfg;
    Json roff = Json::object();
    roff["seconds"] = off.seconds;
    roff["trials_per_sec"] = off_tps;
    out["reuse_off"] = roff;
    Json ron = Json::object();
    ron["seconds"] = on.seconds;
    ron["trials_per_sec"] = on_tps;
    ron["prefix_hits"] = static_cast<double>(on.prefix_hits);
    ron["prefix_misses"] = static_cast<double>(on.prefix_misses);
    out["reuse_on"] = ron;
    out["speedup"] = speedup;
    out["bit_exact"] = bit_exact;
    out["pass"] = pass;
    std::cout << out.dump() << "\n";
    return pass ? 0 : 1;
  }

  std::cout << "model: d_model=" << model.config().d_model
            << " blocks=" << model.config().n_blocks << ", prompt "
            << prompt_len << " + " << gen_tokens << " decode tokens, "
            << inputs.size() << " inputs x " << trials
            << " trials, best of " << reps << " (single worker)\n\n";

  Table table({"prefix reuse", "seconds", "trials/sec", "prefix hits",
               "prefix misses"});
  table.begin_row().cell("off").num(off.seconds, 3).num(off_tps, 2).cell("-")
      .cell("-");
  table.begin_row().cell("on").num(on.seconds, 3).num(on_tps, 2)
      .count(on.prefix_hits).count(on.prefix_misses);
  table.print(std::cout);

  std::cout << "\ntrial records bit-exact with reuse on vs. off: "
            << (bit_exact ? "yes" : "NO — BUG") << "\n";
  std::cout << "speedup: " << speedup << "x ("
            << (speedup >= 1.5 ? "meets" : "BELOW")
            << " the 1.5x acceptance bar)\n";
  return pass ? 0 : 1;
}
