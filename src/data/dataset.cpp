#include "data/dataset.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ft2 {
namespace {

const std::vector<std::string>& name_pool() {
  static const std::vector<std::string> v = {
      "alice", "bob",   "carol", "dave",  "erin",  "frank", "grace", "heidi",
      "ivan",  "judy",  "karl",  "laura", "mike",  "nina",  "oscar", "peggy",
      "quinn", "ruth",  "sam",   "tina",  "ursula", "victor", "wendy", "tom"};
  return v;
}

const std::vector<std::string>& city_pool() {
  static const std::vector<std::string> v = {
      "paris",  "london", "tokyo",  "cairo",  "lima",   "oslo",
      "madrid", "berlin", "sydney", "moscow", "rome",   "dublin",
      "athens", "vienna", "quito",  "accra"};
  return v;
}

const std::vector<std::string>& object_pool() {
  static const std::vector<std::string> v = {
      "apples",  "books",  "coins",  "pens",    "marbles", "stamps",
      "cards",   "shells", "stones", "tickets", "keys",    "rings",
      "plums",   "mangos", "melons", "grapes"};
  return v;
}

const std::vector<std::string>& hobby_pool() {
  static const std::vector<std::string> v = {
      "music", "chess", "tennis", "painting", "cooking", "hiking",
      "soccer", "reading"};
  return v;
}

template <typename T>
const T& pick(const std::vector<T>& pool, Xoshiro256& rng) {
  return pool[rng.uniform(pool.size())];
}

/// Picks `n` distinct indices from [0, pool_size).
std::vector<std::size_t> pick_distinct(std::size_t pool_size, std::size_t n,
                                       Xoshiro256& rng) {
  FT2_ASSERT(n <= pool_size);
  std::vector<std::size_t> idx(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) idx[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = i + rng.uniform(pool_size - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(n);
  return idx;
}

Sample finish_sample(std::string prompt, std::string target,
                     std::string reference) {
  const Vocab& vocab = Vocab::shared();
  Sample s;
  s.prompt_text = std::move(prompt);
  s.target_text = std::move(target);
  s.reference = std::move(reference);
  s.prompt_tokens = vocab.encode(s.prompt_text);
  s.target_tokens = vocab.encode(s.target_text);
  s.target_tokens.push_back(Vocab::kEos);
  for (int t : s.prompt_tokens) {
    FT2_CHECK_MSG(t != Vocab::kUnk, "generator emitted OOV word in: "
                                        << s.prompt_text);
  }
  for (int t : s.target_tokens) {
    FT2_CHECK_MSG(t != Vocab::kUnk, "generator emitted OOV word in: "
                                        << s.target_text);
  }
  return s;
}

/// Shared fact structure for both QA surface languages.
struct Facts {
  std::string who_lives, city;
  std::string who_has, object;
  int count = 0;
  std::string who_likes, hobby;
  int question = 0;  // 0 = where, 1 = how many, 2 = what likes
};

Facts make_facts(Xoshiro256& rng) {
  Facts f;
  const auto names = pick_distinct(name_pool().size(), 3, rng);
  f.who_lives = name_pool()[names[0]];
  f.who_has = name_pool()[names[1]];
  f.who_likes = name_pool()[names[2]];
  f.city = pick(city_pool(), rng);
  f.object = pick(object_pool(), rng);
  f.count = static_cast<int>(2 + rng.uniform(28));  // 2..29
  f.hobby = pick(hobby_pool(), rng);
  f.question = static_cast<int>(rng.uniform(3));
  return f;
}

class SynthQaGenerator : public DatasetGenerator {
 public:
  DatasetKind kind() const override { return DatasetKind::kSynthQA; }

  Sample generate(Xoshiro256& rng) const override {
    const Facts f = make_facts(rng);
    std::vector<std::string> facts = {
        f.who_lives + " lives in " + f.city + " .",
        f.who_has + " has " + std::to_string(f.count) + " " + f.object + " .",
        f.who_likes + " likes " + f.hobby + " ."};
    // Shuffle fact order so position carries no signal.
    for (std::size_t i = facts.size(); i > 1; --i) {
      std::swap(facts[i - 1], facts[rng.uniform(i)]);
    }
    std::string prompt = "context :";
    for (const auto& fact : facts) prompt += " " + fact;
    // Multi-token answer sentences put the decisive answer token several
    // generation steps after the first token, so faults during the
    // "following tokens" phase can actually cause SDCs.
    std::string target;
    std::string reference;
    switch (f.question) {
      case 0:
        prompt += " question : where does " + f.who_lives + " live ?";
        target = f.who_lives + " lives in " + f.city;
        reference = f.city;
        break;
      case 1:
        prompt += " question : how many " + f.object + " does " + f.who_has +
                  " have ?";
        target = f.who_has + " has " + std::to_string(f.count) + " " + f.object;
        reference = std::to_string(f.count);
        break;
      default:
        prompt += " question : what does " + f.who_likes + " like ?";
        target = f.who_likes + " likes " + f.hobby;
        reference = f.hobby;
        break;
    }
    prompt += " answer :";
    return finish_sample(std::move(prompt), std::move(target),
                         std::move(reference));
  }
};

class SynthXqaGenerator : public DatasetGenerator {
 public:
  DatasetKind kind() const override { return DatasetKind::kSynthXQA; }

  Sample generate(Xoshiro256& rng) const override {
    const Facts f = make_facts(rng);
    std::vector<std::string> facts = {
        f.who_lives + " habite a " + f.city + " .",
        f.who_has + " possede " + std::to_string(f.count) + " " + f.object +
            " .",
        f.who_likes + " aime " + f.hobby + " ."};
    for (std::size_t i = facts.size(); i > 1; --i) {
      std::swap(facts[i - 1], facts[rng.uniform(i)]);
    }
    std::string prompt = "contexte :";
    for (const auto& fact : facts) prompt += " " + fact;
    std::string target;
    std::string reference;
    switch (f.question) {
      case 0:
        prompt += " demande : ou habite " + f.who_lives + " ?";
        target = f.who_lives + " habite a " + f.city;
        reference = f.city;
        break;
      case 1:
        prompt += " demande : combien de " + f.object + " possede " +
                  f.who_has + " ?";
        target = f.who_has + " possede " + std::to_string(f.count) + " " +
                 f.object;
        reference = std::to_string(f.count);
        break;
      default:
        prompt += " demande : quoi aime " + f.who_likes + " ?";
        target = f.who_likes + " aime " + f.hobby;
        reference = f.hobby;
        break;
    }
    prompt += " reponse :";
    return finish_sample(std::move(prompt), std::move(target),
                         std::move(reference));
  }
};

class SynthMathGenerator : public DatasetGenerator {
 public:
  DatasetKind kind() const override { return DatasetKind::kSynthMath; }

  Sample generate(Xoshiro256& rng) const override {
    const std::string& who = pick(name_pool(), rng);
    const std::string& object = pick(object_pool(), rng);
    int value = static_cast<int>(2 + rng.uniform(19));  // 2..20
    std::string prompt =
        "question : " + who + " has " + std::to_string(value) + " " + object +
        " .";
    const std::size_t steps = 1 + rng.uniform(2);  // 1 or 2 operations
    for (std::size_t s = 0; s < steps; ++s) {
      const int delta = static_cast<int>(1 + rng.uniform(9));  // 1..9
      // Choose an op that keeps the running value in [0, 29].
      bool plus = rng.uniform(2) == 0;
      if (value + delta > 29) plus = false;
      if (value - delta < 0) plus = true;
      if (plus) {
        prompt += (rng.uniform(2) == 0)
                      ? " he buys " + std::to_string(delta) + " more ."
                      : " he finds " + std::to_string(delta) + " more .";
        value += delta;
      } else {
        prompt += (rng.uniform(2) == 0)
                      ? " he loses " + std::to_string(delta) + " ."
                      : " he gives away " + std::to_string(delta) + " .";
        value -= delta;
      }
    }
    prompt += " how many " + object + " does " + who + " have now ? answer :";
    std::string target =
        who + " has " + std::to_string(value) + " " + object + " . the total is " +
        std::to_string(value);
    return finish_sample(std::move(prompt), std::move(target),
                         std::to_string(value));
  }
};

}  // namespace

std::vector<Sample> DatasetGenerator::generate_many(std::size_t n,
                                                    std::uint64_t seed) const {
  Xoshiro256 rng(seed);
  std::vector<Sample> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(generate(rng));
  return out;
}

std::unique_ptr<DatasetGenerator> make_generator(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kSynthQA:
      return std::make_unique<SynthQaGenerator>();
    case DatasetKind::kSynthXQA:
      return std::make_unique<SynthXqaGenerator>();
    case DatasetKind::kSynthMath:
      return std::make_unique<SynthMathGenerator>();
  }
  throw Error("unknown dataset kind");
}

}  // namespace ft2
