// Shared word-level vocabulary and tokenizer.
//
// One fixed vocabulary covers all three synthetic tasks so every model in
// the zoo can run every dataset (as in the paper, where all models share
// a text interface). Tokens are whitespace-separated words; numbers 0..99
// are atomic tokens so arithmetic answers are single-token units.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace ft2 {

class Vocab {
 public:
  Vocab();

  static constexpr int kPad = 0;
  static constexpr int kBos = 1;
  static constexpr int kEos = 2;
  static constexpr int kUnk = 3;

  std::size_t size() const { return words_.size(); }

  /// Token id for a word; kUnk when out of vocabulary.
  int id(const std::string& word) const;

  /// True when the word is present in the vocabulary.
  bool contains(const std::string& word) const;

  const std::string& word(int id) const;

  /// Whitespace tokenization; unknown words map to <unk>.
  std::vector<int> encode(const std::string& text) const;

  /// Joins tokens with single spaces, skipping <pad>/<bos>/<eos>.
  std::string decode(const std::vector<int>& tokens) const;

  /// Process-wide shared instance.
  static const Vocab& shared();

 private:
  void add(const std::string& word);

  std::vector<std::string> words_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace ft2
