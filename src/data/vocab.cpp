#include "data/vocab.hpp"

#include <sstream>

#include "common/check.hpp"

namespace ft2 {
namespace {

// Entity pools shared by the generators (declared here so the vocabulary is
// guaranteed to cover everything the generators can emit).
const char* kNames[] = {"alice", "bob",   "carol", "dave",  "erin",  "frank",
                        "grace", "heidi", "ivan",  "judy",  "karl",  "laura",
                        "mike",  "nina",  "oscar", "peggy", "quinn", "ruth",
                        "sam",   "tina",  "ursula", "victor", "wendy", "tom"};
const char* kCities[] = {"paris",  "london", "tokyo",  "cairo",  "lima",
                         "oslo",   "madrid", "berlin", "sydney", "moscow",
                         "rome",   "dublin", "athens", "vienna", "quito",
                         "accra"};
const char* kObjects[] = {"apples",  "books",   "coins",  "pens",
                          "marbles", "stamps",  "cards",  "shells",
                          "stones",  "tickets", "keys",   "rings",
                          "plums",   "mangos",  "melons", "grapes"};
const char* kHobbies[] = {"music",   "chess",  "tennis", "painting",
                          "cooking", "hiking", "soccer", "reading"};

// English template words (SynthQA + SynthMath).
const char* kEnglish[] = {
    "context", ":",    "question", "answer", ".",     "?",     "where",
    "does",    "live", "in",       "lives",  "has",   "have",  "how",
    "many",    "what", "likes",    "like",   "the",   "he",    "she",
    "buys",    "loses", "gives",   "away",   "more",  "then",  "now",
    "is",      "of",   "and",      "finds",  "eats",  "total", "left"};

// Pseudo-multilingual template words (SynthXQA — XTREME stand-in).
const char* kXling[] = {"contexte", "demande", "reponse", "ou",     "habite",
                        "a",        "combien", "de",      "possede", "quoi",
                        "aime",     "il",      "elle",    "achete",  "perd",
                        "donne",    "encore",  "alors"};

}  // namespace

Vocab::Vocab() {
  add("<pad>");
  add("<bos>");
  add("<eos>");
  add("<unk>");
  for (int n = 0; n <= 99; ++n) add(std::to_string(n));
  for (const char* w : kNames) add(w);
  for (const char* w : kCities) add(w);
  for (const char* w : kObjects) add(w);
  for (const char* w : kHobbies) add(w);
  for (const char* w : kEnglish) add(w);
  for (const char* w : kXling) add(w);
}

void Vocab::add(const std::string& word) {
  if (index_.contains(word)) return;
  index_.emplace(word, static_cast<int>(words_.size()));
  words_.push_back(word);
}

int Vocab::id(const std::string& word) const {
  auto it = index_.find(word);
  return it == index_.end() ? kUnk : it->second;
}

bool Vocab::contains(const std::string& word) const {
  return index_.contains(word);
}

const std::string& Vocab::word(int token) const {
  FT2_CHECK_MSG(token >= 0 && static_cast<std::size_t>(token) < words_.size(),
                "token id out of range: " << token);
  return words_[static_cast<std::size_t>(token)];
}

std::vector<int> Vocab::encode(const std::string& text) const {
  std::vector<int> out;
  std::istringstream is(text);
  std::string word;
  while (is >> word) out.push_back(id(word));
  return out;
}

std::string Vocab::decode(const std::vector<int>& tokens) const {
  std::string out;
  for (int t : tokens) {
    if (t == kPad || t == kBos || t == kEos) continue;
    if (t < 0 || static_cast<std::size_t>(t) >= words_.size()) continue;
    if (!out.empty()) out += ' ';
    out += words_[static_cast<std::size_t>(t)];
  }
  return out;
}

const Vocab& Vocab::shared() {
  static const Vocab vocab;
  return vocab;
}

}  // namespace ft2
