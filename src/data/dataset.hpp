// Synthetic generative tasks with definite reference answers.
//
// Stand-ins for the paper's datasets (§2 "Substitutions" in DESIGN.md):
//  * SynthQA   — fact-retrieval question answering      (SQuAD 2.0 stand-in)
//  * SynthXQA  — the same task with a disjoint, pseudo-multilingual surface
//                vocabulary                              (XTREME stand-in)
//  * SynthMath — small arithmetic word problems          (GSM8K stand-in)
//
// Every sample carries a prompt ending in the answer cue and a reference
// answer, so fault-injection outcomes can be classified automatically
// exactly as in the paper (answer-containment => Masked, else SDC).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/vocab.hpp"

namespace ft2 {

enum class DatasetKind { kSynthQA, kSynthXQA, kSynthMath };

constexpr const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kSynthQA: return "synthqa";
    case DatasetKind::kSynthXQA: return "synthxqa";
    case DatasetKind::kSynthMath: return "synthmath";
  }
  return "unknown";
}

/// The paper's task-type split: QA datasets vs the math dataset.
constexpr bool is_math_dataset(DatasetKind kind) {
  return kind == DatasetKind::kSynthMath;
}

struct Sample {
  std::string prompt_text;         ///< ends with the answer cue ("answer :")
  std::string target_text;         ///< full answer sentence the model emits
  std::string reference;           ///< key answer span for containment check
  std::vector<int> prompt_tokens;  ///< encoded prompt
  std::vector<int> target_tokens;  ///< encoded target sentence + <eos>
};

class DatasetGenerator {
 public:
  virtual ~DatasetGenerator() = default;

  virtual DatasetKind kind() const = 0;
  virtual Sample generate(Xoshiro256& rng) const = 0;

  std::string name() const { return dataset_name(kind()); }

  /// Deterministic batch: `n` samples from a fresh stream seeded by `seed`.
  std::vector<Sample> generate_many(std::size_t n, std::uint64_t seed) const;
};

std::unique_ptr<DatasetGenerator> make_generator(DatasetKind kind);

/// All dataset kinds, in paper order.
inline const std::vector<DatasetKind>& all_datasets() {
  static const std::vector<DatasetKind> kinds = {
      DatasetKind::kSynthQA, DatasetKind::kSynthXQA, DatasetKind::kSynthMath};
  return kinds;
}

}  // namespace ft2
