// Semantic-correctness matcher (the paper's outcome-classification rule).
//
// Paper §2.3: an output is Masked if it is identical to the fault-free text
// OR semantically correct — "if the answer does not contain or partially
// contains the reference answer, it is classified as a wrong answer".
// We implement containment at word level: the reference answer's word
// sequence must appear contiguously in the generated text.
#pragma once

#include <string>
#include <vector>

namespace ft2 {

/// Lower-cases and collapses whitespace into single spaces.
std::string normalize_text(const std::string& text);

/// True when `reference`'s word sequence appears contiguously in
/// `generated` (after normalization). An empty reference never matches.
bool contains_reference(const std::string& generated,
                        const std::string& reference);

/// Token-level variant used on raw generation output.
bool contains_reference_tokens(const std::vector<int>& generated,
                               const std::vector<int>& reference);

}  // namespace ft2
