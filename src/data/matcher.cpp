#include "data/matcher.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ft2 {

std::string normalize_text(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  bool pending_space = false;
  for (char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    if (std::isspace(c)) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out += ' ';
      pending_space = false;
    }
    out += static_cast<char>(std::tolower(c));
  }
  return out;
}

namespace {

std::vector<std::string> words_of(const std::string& text) {
  std::istringstream is(normalize_text(text));
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

}  // namespace

bool contains_reference(const std::string& generated,
                        const std::string& reference) {
  const auto ref = words_of(reference);
  if (ref.empty()) return false;
  const auto gen = words_of(generated);
  if (gen.size() < ref.size()) return false;
  for (std::size_t start = 0; start + ref.size() <= gen.size(); ++start) {
    if (std::equal(ref.begin(), ref.end(), gen.begin() + static_cast<long>(start))) {
      return true;
    }
  }
  return false;
}

bool contains_reference_tokens(const std::vector<int>& generated,
                               const std::vector<int>& reference) {
  if (reference.empty() || generated.size() < reference.size()) return false;
  for (std::size_t start = 0; start + reference.size() <= generated.size();
       ++start) {
    if (std::equal(reference.begin(), reference.end(),
                   generated.begin() + static_cast<long>(start))) {
      return true;
    }
  }
  return false;
}

}  // namespace ft2
