// The model zoo: seven tiny trained stand-ins for the paper's seven LLMs.
//
//   paper model      repo name   architecture family
//   OPT-6.7B         opt-sm      OPT   (LayerNorm, learned pos, ReLU MLP)
//   OPT-2.7B         opt-xs      OPT   (smaller)
//   GPTJ-6B          gptj-sm     GPT-J (parallel block, RoPE, GELU MLP)
//   Llama2-7B        llama-sm    Llama (RMSNorm, RoPE, SiLU gate/up/down)
//   Vicuna-7B        vicuna-sm   Llama (different seed — a "fine-tune")
//   Qwen2-7B         qwen2-sm    Llama + QKV bias
//   Qwen2-1.5B       qwen2-xs    Llama + QKV bias (smaller)
//
// Models are trained once on the synthetic tasks and cached as checkpoints
// in $FT2_MODEL_DIR (default ./models). ensure_model() trains on a cache
// miss, so any bench/example is self-bootstrapping.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "train/trainer.hpp"

namespace ft2 {

struct ZooEntry {
  std::string name;        ///< repo-local name, e.g. "opt-sm"
  std::string paper_name;  ///< the paper model it stands in for
  ModelConfig config;
  std::vector<DatasetKind> tasks;  ///< datasets this model is trained on
  std::uint64_t seed = 1;
  TrainerConfig trainer;

  bool supports(DatasetKind kind) const {
    for (DatasetKind k : tasks) {
      if (k == kind) return true;
    }
    return false;
  }
};

/// All zoo entries, in the paper's Table 2 order.
const std::vector<ZooEntry>& model_zoo();

/// Entry by repo name; throws ft2::Error for unknown names.
const ZooEntry& zoo_entry(const std::string& name);

/// Directory where checkpoints are cached ($FT2_MODEL_DIR or ./models).
std::string model_cache_dir();

/// Returns the trained model for `name`, loading the cached checkpoint or
/// training + caching on a miss. Results are memoized per process.
std::shared_ptr<const TransformerLM> ensure_model(const std::string& name,
                                                  bool quiet = false);

/// Trains `entry` from scratch (ignoring any cache) and returns the model.
std::shared_ptr<TransformerLM> train_zoo_model(const ZooEntry& entry,
                                               bool quiet = false);

/// Fixed generation lengths used by every experiment (the analogue of the
/// paper's 60 QA / 180 math tokens, scaled to our answer lengths).
std::size_t generation_tokens(DatasetKind kind);

}  // namespace ft2
