#include "zoo/zoo.hpp"

#include <filesystem>
#include <iostream>
#include <map>
#include <mutex>

#include "common/env.hpp"
#include "nn/checkpoint.hpp"

namespace ft2 {
namespace {

ModelConfig base_config(ArchFamily arch) {
  ModelConfig c;
  c.arch = arch;
  c.vocab_size = Vocab::shared().size();
  c.max_seq = 96;
  switch (arch) {
    case ArchFamily::kOpt:
      c.activation = Activation::kRelu;
      c.norm = NormKind::kLayerNorm;
      c.position = PositionKind::kLearned;
      c.linear_bias = true;
      break;
    case ArchFamily::kGptj:
      c.activation = Activation::kGelu;
      c.norm = NormKind::kLayerNorm;
      c.position = PositionKind::kRotary;
      c.parallel_block = true;
      c.linear_bias = true;
      break;
    case ArchFamily::kLlama:
      c.activation = Activation::kSilu;
      c.norm = NormKind::kRmsNorm;
      c.position = PositionKind::kRotary;
      c.linear_bias = false;
      break;
  }
  return c;
}

TrainerConfig qa_trainer(std::uint64_t seed) {
  TrainerConfig t;
  t.steps = env_size("FT2_TRAIN_STEPS", 3000);
  t.batch_size = 8;
  t.peak_lr = 2e-3f;
  t.seed = seed;
  t.eval_every = 100;
  t.min_steps = 300;
  t.eval_samples = 48;
  t.target_accuracy = 0.99;
  return t;
}

TrainerConfig math_trainer(std::uint64_t seed) {
  TrainerConfig t = qa_trainer(seed);
  t.steps = env_size("FT2_TRAIN_STEPS_MATH", 12000);
  t.min_steps = 600;
  // Math is the hardest task: give it half the batch mixture
  // (tasks are {qa, xqa, math} for math-capable models).
  t.task_weights = {0.25, 0.25, 0.5};
  return t;
}

std::vector<ZooEntry> build_zoo() {
  std::vector<ZooEntry> zoo;
  const std::vector<DatasetKind> qa_tasks = {DatasetKind::kSynthQA,
                                             DatasetKind::kSynthXQA};
  const std::vector<DatasetKind> all_tasks = {
      DatasetKind::kSynthQA, DatasetKind::kSynthXQA, DatasetKind::kSynthMath};

  {
    ZooEntry e;
    e.name = "opt-sm";
    e.paper_name = "OPT-6.7B";
    e.config = base_config(ArchFamily::kOpt);
    e.config.name = e.name;
    e.config.d_model = 64;
    e.config.n_heads = 4;
    e.config.n_blocks = 2;
    e.config.d_ff = 256;
    e.tasks = qa_tasks;
    e.seed = 101;
    e.trainer = qa_trainer(e.seed);
    zoo.push_back(e);
  }
  {
    ZooEntry e;
    e.name = "opt-xs";
    e.paper_name = "OPT-2.7B";
    e.config = base_config(ArchFamily::kOpt);
    e.config.name = e.name;
    e.config.d_model = 48;
    e.config.n_heads = 4;
    e.config.n_blocks = 2;
    e.config.d_ff = 192;
    e.tasks = qa_tasks;
    e.seed = 102;
    e.trainer = qa_trainer(e.seed);
    zoo.push_back(e);
  }
  {
    ZooEntry e;
    e.name = "gptj-sm";
    e.paper_name = "GPTJ-6B";
    e.config = base_config(ArchFamily::kGptj);
    e.config.name = e.name;
    e.config.d_model = 64;
    e.config.n_heads = 4;
    e.config.n_blocks = 2;
    e.config.d_ff = 256;
    e.tasks = qa_tasks;
    e.seed = 103;
    e.trainer = qa_trainer(e.seed);
    zoo.push_back(e);
  }
  {
    ZooEntry e;
    e.name = "llama-sm";
    e.paper_name = "Llama2-7B";
    e.config = base_config(ArchFamily::kLlama);
    e.config.name = e.name;
    e.config.d_model = 64;
    e.config.n_heads = 4;
    e.config.n_blocks = 2;
    e.config.d_ff = 176;
    e.tasks = all_tasks;
    e.seed = 104;
    e.trainer = math_trainer(e.seed);
    zoo.push_back(e);
  }
  {
    ZooEntry e;
    e.name = "vicuna-sm";
    e.paper_name = "Vicuna-7B";
    e.config = base_config(ArchFamily::kLlama);
    e.config.name = e.name;
    e.config.d_model = 64;
    e.config.n_heads = 4;
    e.config.n_blocks = 2;
    e.config.d_ff = 176;
    e.tasks = qa_tasks;
    e.seed = 105;
    e.trainer = qa_trainer(e.seed);
    zoo.push_back(e);
  }
  {
    ZooEntry e;
    e.name = "qwen2-sm";
    e.paper_name = "Qwen2-7B";
    e.config = base_config(ArchFamily::kLlama);
    e.config.name = e.name;
    e.config.d_model = 64;
    e.config.n_heads = 4;
    e.config.n_blocks = 2;
    e.config.d_ff = 176;
    e.config.qkv_bias = true;
    e.tasks = all_tasks;
    e.seed = 106;
    e.trainer = math_trainer(e.seed);
    zoo.push_back(e);
  }
  {
    ZooEntry e;
    e.name = "qwen2-xs";
    e.paper_name = "Qwen2-1.5B";
    e.config = base_config(ArchFamily::kLlama);
    e.config.name = e.name;
    e.config.d_model = 48;
    e.config.n_heads = 4;
    e.config.n_blocks = 2;
    e.config.d_ff = 128;
    e.config.qkv_bias = true;
    e.tasks = qa_tasks;
    e.seed = 107;
    e.trainer = qa_trainer(e.seed);
    zoo.push_back(e);
  }
  return zoo;
}

}  // namespace

const std::vector<ZooEntry>& model_zoo() {
  static const std::vector<ZooEntry> zoo = build_zoo();
  return zoo;
}

const ZooEntry& zoo_entry(const std::string& name) {
  for (const auto& e : model_zoo()) {
    if (e.name == name) return e;
  }
  throw Error("unknown zoo model: " + name);
}

std::string model_cache_dir() {
  return env_string("FT2_MODEL_DIR", "models");
}

std::size_t generation_tokens(DatasetKind kind) {
  // Analogue of the paper's fixed 60 (QA) / 180 (math) generated tokens,
  // scaled to our answer lengths: ~120% of the last answer-token position.
  return is_math_dataset(kind) ? 16 : 10;
}

std::shared_ptr<TransformerLM> train_zoo_model(const ZooEntry& entry,
                                               bool quiet) {
  Xoshiro256 rng(entry.seed);
  auto model = std::make_shared<TransformerLM>(
      entry.config, init_weights(entry.config, rng));

  std::vector<std::unique_ptr<DatasetGenerator>> gens;
  std::vector<const DatasetGenerator*> tasks;
  for (DatasetKind kind : entry.tasks) {
    gens.push_back(make_generator(kind));
    tasks.push_back(gens.back().get());
  }

  if (!quiet) {
    std::cerr << "[zoo] training " << entry.name << " ("
              << model->weights().parameter_count() << " params) ..."
              << std::endl;
  }
  const auto report = train_model(
      *model, tasks, entry.trainer,
      quiet ? std::function<void(std::size_t, float)>{}
            : [](std::size_t step, float loss) {
                if ((step + 1) % 200 == 0) {
                  std::cerr << "[zoo]   step " << (step + 1) << " loss "
                            << loss << std::endl;
                }
              });
  if (!quiet) {
    std::cerr << "[zoo] " << entry.name << ": " << report.steps_run
              << " steps, accuracy " << report.final_accuracy << std::endl;
  }
  return model;
}

std::shared_ptr<const TransformerLM> ensure_model(const std::string& name,
                                                  bool quiet) {
  static std::mutex mutex;
  static std::map<std::string, std::shared_ptr<const TransformerLM>> cache;
  std::lock_guard lock(mutex);
  if (auto it = cache.find(name); it != cache.end()) return it->second;

  const ZooEntry& entry = zoo_entry(name);
  const std::string dir = model_cache_dir();
  const std::string path = dir + "/" + name + ".ft2m";

  std::shared_ptr<const TransformerLM> model;
  if (checkpoint_exists(path)) {
    try {
      ModelConfig config;
      ModelWeights weights;
      load_checkpoint(path, config, weights);
      model = std::make_shared<TransformerLM>(std::move(config),
                                              std::move(weights));
      if (!quiet) std::cerr << "[zoo] loaded " << path << std::endl;
    } catch (const Error& e) {
      // Corrupt or format-incompatible cache: retrain below and overwrite.
      std::cerr << "[zoo] discarding unreadable checkpoint " << path << ": "
                << e.what() << std::endl;
    }
  }
  if (!model) {
    auto trained = train_zoo_model(entry, quiet);
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    save_checkpoint(path, trained->config(), trained->weights());
    if (!quiet) std::cerr << "[zoo] saved " << path << std::endl;
    model = trained;
  }
  cache.emplace(name, model);
  return model;
}

}  // namespace ft2
