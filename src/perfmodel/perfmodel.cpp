#include "perfmodel/perfmodel.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace ft2::perfmodel {

GpuSpec a100() {
  // NVIDIA A100 SXM4 80GB: 312 TFLOP/s dense FP16, 2039 GB/s HBM2e.
  return GpuSpec{"A100", 312.0, 2039.0, 0.40, 0.60, 0.35};
}

GpuSpec h100() {
  // NVIDIA H100 SXM5: 989 TFLOP/s dense FP16, 3350 GB/s HBM3.
  return GpuSpec{"H100", 989.0, 3350.0, 0.40, 0.60, 0.35};
}

const std::vector<LlmSpec>& paper_models() {
  // name, d_model, blocks, d_ff, vocab, heads, kv_heads, gated, tied.
  static const std::vector<LlmSpec> models = {
      {"OPT-6.7B", 4096, 32, 16384, 50272, 32, 0, false, true},
      {"OPT-2.7B", 2560, 32, 10240, 50272, 32, 0, false, true},
      {"GPTJ-6B", 4096, 28, 16384, 50400, 16, 0, false, false},
      {"Llama2-7B", 4096, 32, 11008, 32000, 32, 0, true, false},
      {"Vicuna-7B", 4096, 32, 11008, 32000, 32, 0, true, false},
      {"Qwen2-7B", 3584, 28, 18944, 152064, 28, 4, true, false},
      {"Qwen2-1.5B", 1536, 28, 8960, 151936, 12, 2, true, true},
  };
  return models;
}

const LlmSpec& paper_model(const std::string& name) {
  for (const auto& m : paper_models()) {
    if (m.name == name) return m;
  }
  throw Error("unknown paper model: " + name);
}

std::size_t param_count(const LlmSpec& m) {
  const std::size_t kv_heads = m.kv_heads == 0 ? m.n_heads : m.kv_heads;
  const std::size_t head_dim = m.d_model / m.n_heads;
  const std::size_t kv_width = kv_heads * head_dim;
  // Q and O are square; K and V shrink under grouped-query attention.
  const std::size_t attn =
      2 * m.d_model * m.d_model + 2 * m.d_model * kv_width;
  const std::size_t mlp = (m.gated_mlp ? 3 : 2) * m.d_model * m.d_ff;
  const std::size_t blocks = m.n_blocks * (attn + mlp);
  const std::size_t emb =
      (m.tied_embeddings ? 1u : 2u) * m.vocab * m.d_model;
  return blocks + emb;
}

double flops_per_token(const LlmSpec& m, std::size_t ctx) {
  // 2 FLOPs per MAC per parameter, plus attention QK^T and PV:
  // 2 heads-worth matmuls of [1, d] x [d, ctx] per block => 4*d*ctx FLOPs.
  const double proj = 2.0 * static_cast<double>(param_count(m));
  const double attn = 4.0 * static_cast<double>(m.d_model) *
                      static_cast<double>(ctx) *
                      static_cast<double>(m.n_blocks);
  return proj + attn;
}

double prefill_seconds(const LlmSpec& m, const GpuSpec& g,
                       std::size_t prompt_len) {
  double flops = 0.0;
  for (std::size_t t = 0; t < prompt_len; ++t) {
    flops += flops_per_token(m, t + 1);
  }
  return flops / (g.fp16_tflops * 1e12 * g.mfu * g.sw_eff);
}

double decode_seconds(const LlmSpec& m, const GpuSpec& g, std::size_t ctx) {
  // Weight traffic + KV cache traffic; compare against the compute roof and
  // take the max (decode is virtually always bandwidth-bound at batch 1).
  const double weight_bytes =
      static_cast<double>(param_count(m)) *
      static_cast<double>(m.bytes_per_param);
  const std::size_t kv_heads = m.kv_heads == 0 ? m.n_heads : m.kv_heads;
  const double kv_width = static_cast<double>(kv_heads * (m.d_model / m.n_heads));
  const double kv_bytes = 2.0 * static_cast<double>(ctx) * kv_width *
                          static_cast<double>(m.n_blocks) *
                          static_cast<double>(m.bytes_per_param);
  const double mem_time =
      (weight_bytes + kv_bytes) / (g.hbm_gbps * 1e9 * g.bw_eff * g.sw_eff);
  const double compute_time =
      flops_per_token(m, ctx) / (g.fp16_tflops * 1e12 * g.mfu * g.sw_eff);
  return std::max(mem_time, compute_time);
}

double inference_seconds(const LlmSpec& m, const GpuSpec& g,
                         std::size_t prompt_len, std::size_t gen_tokens) {
  FT2_CHECK(gen_tokens >= 1);
  double t = prefill_seconds(m, g, prompt_len);
  for (std::size_t i = 1; i < gen_tokens; ++i) {
    t += decode_seconds(m, g, prompt_len + i);
  }
  return t;
}

double first_token_fraction(const LlmSpec& m, const GpuSpec& g,
                            std::size_t prompt_len, std::size_t gen_tokens) {
  const double first = prefill_seconds(m, g, prompt_len);
  const double total = inference_seconds(m, g, prompt_len, gen_tokens);
  return first / total;
}

double profiling_hours(const LlmSpec& m, const GpuSpec& g,
                       std::size_t n_inputs, std::size_t prompt_len,
                       std::size_t gen_tokens) {
  return static_cast<double>(n_inputs) *
         inference_seconds(m, g, prompt_len, gen_tokens) / 3600.0;
}

double protection_overhead_fraction(const LlmSpec& m, const GpuSpec& g,
                                    std::size_t prompt_len,
                                    std::size_t gen_tokens,
                                    std::size_t protected_per_block,
                                    double avg_width) {
  // One elementwise clamp pass = read + write of the protected output.
  const double per_pos_bytes = 2.0 * avg_width *
                               static_cast<double>(m.bytes_per_param) *
                               static_cast<double>(protected_per_block) *
                               static_cast<double>(m.n_blocks);
  const double positions =
      static_cast<double>(prompt_len) + static_cast<double>(gen_tokens) - 1.0;
  const double clamp_time =
      positions * per_pos_bytes / (g.hbm_gbps * 1e9 * g.bw_eff * g.sw_eff);
  // Plus a fixed kernel-launch cost per protected layer per decode step.
  const double launch_s = 1.5e-6;
  const double launches = static_cast<double>(gen_tokens) *
                          static_cast<double>(protected_per_block) *
                          static_cast<double>(m.n_blocks) * launch_s;
  const double base = inference_seconds(m, g, prompt_len, gen_tokens);
  return (clamp_time + launches) / base;
}

}  // namespace ft2::perfmodel
