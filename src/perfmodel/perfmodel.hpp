// Analytical GPU performance model for the paper-scale experiments.
//
// The paper's cost results (Fig. 4 profiling hours, Fig. 10 first-token time
// share, part of Fig. 14 overhead) were measured on A100/H100 GPUs running
// the real 2.7B-7.6B models. We reproduce them with a roofline model:
//   * prefill is compute-bound:  time = FLOPs / (peak_fp16 * MFU);
//   * decode is bandwidth-bound: time = bytes_touched / (HBM_bw * eff)
//     (weights + KV cache read per token);
//   * range-restriction protection is an elementwise pass over each
//     protected layer output: bandwidth-bound read+write.
#pragma once

#include <string>
#include <vector>

namespace ft2::perfmodel {

struct GpuSpec {
  std::string name;
  double fp16_tflops = 0.0;  ///< dense FP16 tensor throughput, TFLOP/s
  double hbm_gbps = 0.0;     ///< HBM bandwidth, GB/s
  double mfu = 0.40;         ///< achieved fraction of peak compute (prefill)
  double bw_eff = 0.60;      ///< achieved fraction of peak bandwidth (decode)
  /// Software efficiency of the serving stack relative to the roofline.
  /// The paper runs eager-mode HuggingFace inference, which reaches only a
  /// fraction of a tuned engine's throughput; 0.35 calibrates our modeled
  /// per-inference times into the paper's measured 1.35-6.4 s range.
  double sw_eff = 0.35;
};

GpuSpec a100();
GpuSpec h100();

/// Paper-scale transformer configuration (the real models of Table 2).
struct LlmSpec {
  std::string name;
  std::size_t d_model = 0;
  std::size_t n_blocks = 0;
  std::size_t d_ff = 0;
  std::size_t vocab = 0;
  std::size_t n_heads = 0;
  std::size_t kv_heads = 0;  ///< GQA key/value heads; 0 means = n_heads
  bool gated_mlp = false;    ///< Llama family: gate/up/down (3 MLP matrices)
  bool tied_embeddings = false;  ///< lm_head shares the token embedding
  std::size_t bytes_per_param = 2;  ///< FP16
};

/// Specs of the seven evaluated models.
const std::vector<LlmSpec>& paper_models();
const LlmSpec& paper_model(const std::string& name);

/// Total parameter count (embeddings + blocks + lm head).
std::size_t param_count(const LlmSpec& m);

/// Matmul FLOPs to process one token at context length `ctx`
/// (2*params for projections + attention score/value FLOPs).
double flops_per_token(const LlmSpec& m, std::size_t ctx);

/// Seconds to prefill a `prompt_len`-token prompt (compute-bound batch).
double prefill_seconds(const LlmSpec& m, const GpuSpec& g,
                       std::size_t prompt_len);

/// Seconds to decode one token at context length `ctx` (bandwidth-bound).
double decode_seconds(const LlmSpec& m, const GpuSpec& g, std::size_t ctx);

/// End-to-end greedy inference time: prefill + gen_tokens-1 decodes.
double inference_seconds(const LlmSpec& m, const GpuSpec& g,
                         std::size_t prompt_len, std::size_t gen_tokens);

/// Fraction of inference time spent generating the first token (Fig. 10).
double first_token_fraction(const LlmSpec& m, const GpuSpec& g,
                            std::size_t prompt_len, std::size_t gen_tokens);

/// Offline bound-profiling time in hours: `n_inputs` full inferences
/// (Fig. 4; 20% of the training set in the paper).
double profiling_hours(const LlmSpec& m, const GpuSpec& g,
                       std::size_t n_inputs, std::size_t prompt_len,
                       std::size_t gen_tokens);

/// Relative runtime overhead of range-restriction protection applied to
/// `protected_outputs_per_block` layer-output vectors per block (one
/// read+write elementwise pass each over d_model/d_ff wide vectors, modelled
/// as an average `avg_width` wide output), for the whole inference
/// (Fig. 14's modeled counterpart).
double protection_overhead_fraction(const LlmSpec& m, const GpuSpec& g,
                                    std::size_t prompt_len,
                                    std::size_t gen_tokens,
                                    std::size_t protected_per_block,
                                    double avg_width);

}  // namespace ft2::perfmodel
