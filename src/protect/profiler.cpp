#include "protect/profiler.hpp"

#include "numeric/f16.hpp"

namespace ft2 {

BoundStore profile_offline_bounds(const TransformerLM& model,
                                  const DatasetGenerator& gen,
                                  std::size_t n_inputs, std::uint64_t seed,
                                  std::size_t max_new_tokens) {
  const auto samples = gen.generate_many(n_inputs, seed);
  BoundRecorderHook recorder(model.config());
  InferenceSession session(model);
  session.hooks().add(&recorder);

  GenerateOptions options;
  options.max_new_tokens = max_new_tokens;
  options.eos_token = Vocab::kEos;
  options.fp16 = true;

  for (const auto& sample : samples) {
    std::vector<int> prompt;
    prompt.push_back(Vocab::kBos);
    prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                  sample.prompt_tokens.end());
    session.generate(prompt, options);
  }
  return recorder.take_bounds();
}

BoundStore profile_offline_bounds_with_typical(
    const TransformerLM& model, const DatasetGenerator& gen,
    std::size_t n_inputs, std::uint64_t seed, std::size_t max_new_tokens) {
  const auto samples = gen.generate_many(n_inputs, seed);
  BoundRecorderHook recorder(model.config());
  ActivationStatsHook stats(16.0f, 64);
  InferenceSession session(model);
  session.hooks().add(&recorder);
  session.hooks().add(&stats);

  GenerateOptions options;
  options.max_new_tokens = max_new_tokens;
  options.eos_token = Vocab::kEos;
  options.fp16 = true;
  for (const auto& sample : samples) {
    std::vector<int> prompt;
    prompt.push_back(Vocab::kBos);
    prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                  sample.prompt_tokens.end());
    session.generate(prompt, options);
  }

  BoundStore bounds = recorder.take_bounds();
  for (const LayerSite& site : stats.observed_sites()) {
    const auto* s = stats.find(site);
    if (s != nullptr && bounds.at(site).valid()) {
      bounds.at(site).typical =
          static_cast<float>(s->histogram.quantile(0.5));
    }
  }
  return bounds;
}

BoundStore profile_offline_bounds_quantile(
    const TransformerLM& model, const DatasetGenerator& gen,
    std::size_t n_inputs, std::uint64_t seed, double q,
    std::size_t max_new_tokens) {
  FT2_CHECK_MSG(q >= 0.0 && q < 0.5, "quantile q must be in [0, 0.5)");
  const auto samples = gen.generate_many(n_inputs, seed);
  ActivationStatsHook stats(16.0f, 64);
  InferenceSession session(model);
  session.hooks().add(&stats);

  GenerateOptions options;
  options.max_new_tokens = max_new_tokens;
  options.eos_token = Vocab::kEos;
  options.fp16 = true;
  for (const auto& sample : samples) {
    std::vector<int> prompt;
    prompt.push_back(Vocab::kBos);
    prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                  sample.prompt_tokens.end());
    session.generate(prompt, options);
  }

  BoundStore bounds(model.config());
  for (const LayerSite& site : stats.observed_sites()) {
    const auto* s = stats.find(site);
    if (s == nullptr || s->stats.count() == 0) continue;
    Bounds& bd = bounds.at(site);
    bd.lo = static_cast<float>(s->histogram.quantile(q));
    bd.hi = static_cast<float>(s->histogram.quantile(1.0 - q));
    bd.typical = static_cast<float>(s->histogram.quantile(0.5));
  }
  return bounds;
}

void ActivationStatsHook::on_output(const HookContext& ctx,
                                    std::span<float> values) {
  const auto key = std::make_pair(ctx.site.block,
                                  static_cast<int>(ctx.site.kind));
  auto it = sites_.find(key);
  if (it == sites_.end()) {
    it = sites_.emplace(key, SiteStats(range_, bins_)).first;
  }
  SiteStats& s = it->second;
  for (float v : values) {
    s.histogram.add(static_cast<double>(v));
    if (!std::isnan(v)) s.stats.add(static_cast<double>(v));
    if (nan_vulnerable_f16(v)) ++s.nan_vulnerable;
    ++s.total;
  }
}

const ActivationStatsHook::SiteStats* ActivationStatsHook::find(
    const LayerSite& site) const {
  const auto it =
      sites_.find(std::make_pair(site.block, static_cast<int>(site.kind)));
  return it == sites_.end() ? nullptr : &it->second;
}

ActivationStatsHook::SiteStats ActivationStatsHook::aggregate(
    LayerKind kind) const {
  SiteStats agg(range_, bins_);
  for (const auto& [key, s] : sites_) {
    if (key.second != static_cast<int>(kind)) continue;
    agg.histogram.merge(s.histogram);
    agg.stats.merge(s.stats);
    agg.nan_vulnerable += s.nan_vulnerable;
    agg.total += s.total;
  }
  return agg;
}

std::vector<LayerSite> ActivationStatsHook::observed_sites() const {
  std::vector<LayerSite> out;
  for (const auto& [key, s] : sites_) {
    out.push_back(LayerSite{key.first, static_cast<LayerKind>(key.second)});
  }
  return out;
}

}  // namespace ft2
