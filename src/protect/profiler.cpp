#include "protect/profiler.hpp"

#include "numeric/f16.hpp"

namespace ft2 {

BoundStore profile_offline_bounds(const TransformerLM& model,
                                  const DatasetGenerator& gen,
                                  const OfflineProfileOptions& options) {
  FT2_CHECK_MSG(options.quantile >= 0.0 && options.quantile < 0.5,
                "quantile must be in [0, 0.5)");
  const bool need_stats = options.with_typical || options.quantile > 0.0;
  const auto samples = gen.generate_many(options.n_inputs, options.seed);

  BoundRecorderHook recorder(model.config());
  ActivationStatsHook stats(options.stats_range, options.stats_bins);
  InferenceSession session(model);
  const HookRegistration recorder_reg = session.hooks().add(recorder);
  HookRegistration stats_reg;
  if (need_stats) stats_reg = session.hooks().add(stats);

  GenerateOptions gen_options;
  gen_options.max_new_tokens = options.max_new_tokens;
  gen_options.eos_token = Vocab::kEos;
  gen_options.fp16 = true;
  gen_options.prefill_chunk = options.prefill_chunk;

  for (const auto& sample : samples) {
    std::vector<int> prompt;
    prompt.push_back(Vocab::kBos);
    prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                  sample.prompt_tokens.end());
    session.generate(prompt, gen_options);
  }

  if (options.quantile > 0.0) {
    BoundStore bounds(model.config());
    for (const LayerSite& site : stats.observed_sites()) {
      const auto* s = stats.find(site);
      if (s == nullptr || s->stats.count() == 0) continue;
      Bounds& bd = bounds.at(site);
      bd.lo = static_cast<float>(s->histogram.quantile(options.quantile));
      bd.hi =
          static_cast<float>(s->histogram.quantile(1.0 - options.quantile));
      bd.typical = static_cast<float>(s->histogram.quantile(0.5));
    }
    return bounds;
  }

  BoundStore bounds = recorder.take_bounds();
  if (options.with_typical) {
    for (const LayerSite& site : stats.observed_sites()) {
      const auto* s = stats.find(site);
      if (s != nullptr && bounds.at(site).valid()) {
        bounds.at(site).typical =
            static_cast<float>(s->histogram.quantile(0.5));
      }
    }
  }
  return bounds;
}

void ActivationStatsHook::on_output(const HookContext& ctx,
                                    std::span<float> values) {
  const auto key = std::make_pair(ctx.site.block,
                                  static_cast<int>(ctx.site.kind));
  auto it = sites_.find(key);
  if (it == sites_.end()) {
    it = sites_.emplace(key, SiteStats(range_, bins_)).first;
  }
  SiteStats& s = it->second;
  for (float v : values) {
    s.histogram.add(static_cast<double>(v));
    if (!std::isnan(v)) s.stats.add(static_cast<double>(v));
    if (nan_vulnerable_f16(v)) ++s.nan_vulnerable;
    ++s.total;
  }
}

const ActivationStatsHook::SiteStats* ActivationStatsHook::find(
    const LayerSite& site) const {
  const auto it =
      sites_.find(std::make_pair(site.block, static_cast<int>(site.kind)));
  return it == sites_.end() ? nullptr : &it->second;
}

ActivationStatsHook::SiteStats ActivationStatsHook::aggregate(
    LayerKind kind) const {
  SiteStats agg(range_, bins_);
  for (const auto& [key, s] : sites_) {
    if (key.second != static_cast<int>(kind)) continue;
    agg.histogram.merge(s.histogram);
    agg.stats.merge(s.stats);
    agg.nan_vulnerable += s.nan_vulnerable;
    agg.total += s.total;
  }
  return agg;
}

std::vector<LayerSite> ActivationStatsHook::observed_sites() const {
  std::vector<LayerSite> out;
  for (const auto& [key, s] : sites_) {
    out.push_back(LayerSite{key.first, static_cast<LayerKind>(key.second)});
  }
  return out;
}

}  // namespace ft2
