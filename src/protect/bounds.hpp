// Per-layer neuron-value bounds used by range-restriction protection.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "nn/config.hpp"
#include "nn/layer_kind.hpp"

namespace ft2 {

/// [lo, hi] observed range of a layer's output neurons. NaN observations
/// are ignored (a NaN carries no range information).
struct Bounds {
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  /// A "typical" in-distribution value (median), used by the Dr.DNA-style
  /// clip-to-typical correction policy (paper §4.3 discusses and rejects
  /// distribution-based replacement for generative LLMs). 0 when unknown.
  float typical = 0.0f;

  bool valid() const { return lo <= hi; }

  void observe(float v) {
    if (std::isnan(v)) return;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }

  void observe_span(std::span<const float> values) {
    for (float v : values) observe(v);
  }

  void merge(const Bounds& other) {
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
  }

  /// Symmetric scaling about 0 by `factor` (the paper's bound scaling:
  /// widen limited-data bounds so normal values are not clipped).
  Bounds scaled(float factor) const {
    Bounds b;
    b.lo = lo < 0.0f ? lo * factor : lo / factor;
    b.hi = hi > 0.0f ? hi * factor : hi / factor;
    b.typical = typical;
    return b;
  }

  bool contains(float v) const { return v >= lo && v <= hi; }
};

/// Bounds for every (block, layer-kind) site of a model. Storage is two
/// floats per site — the paper's "only two bound values are stored for each
/// layer" memory-overhead argument, exposed via memory_bytes().
class BoundStore {
 public:
  BoundStore() = default;
  explicit BoundStore(const ModelConfig& config)
      : n_blocks_(config.n_blocks),
        bounds_(config.n_blocks * kLayerKindCount) {}

  bool empty() const { return bounds_.empty(); }
  std::size_t n_blocks() const { return n_blocks_; }

  Bounds& at(const LayerSite& site) {
    return bounds_[index(site)];
  }
  const Bounds& at(const LayerSite& site) const {
    return bounds_[index(site)];
  }

  void reset() {
    for (auto& b : bounds_) b = Bounds{};
  }

  void merge(const BoundStore& other) {
    FT2_CHECK(other.bounds_.size() == bounds_.size());
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
      bounds_[i].merge(other.bounds_[i]);
    }
  }

  /// Number of sites with valid (observed) bounds.
  std::size_t valid_count() const {
    std::size_t n = 0;
    for (const auto& b : bounds_) n += b.valid() ? 1 : 0;
    return n;
  }

  /// Bytes needed to store the bounds of the valid sites (2 floats each).
  std::size_t memory_bytes() const { return valid_count() * 2 * sizeof(float); }

 private:
  std::size_t index(const LayerSite& site) const {
    const auto b = static_cast<std::size_t>(site.block);
    const auto k = static_cast<std::size_t>(site.kind);
    FT2_ASSERT(b < n_blocks_ && k < kLayerKindCount);
    return b * kLayerKindCount + k;
  }

  std::size_t n_blocks_ = 0;
  std::vector<Bounds> bounds_;
};

}  // namespace ft2
