#include "protect/drift.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace ft2 {

std::vector<double> headroom_buckets() {
  // Linear 0.05 steps across [0, 1]: headroom is a fraction, and the
  // interesting shape (mass piling up near 0 as bounds tighten) is linear,
  // not exponential.
  std::vector<double> uppers;
  for (int i = 1; i <= 20; ++i) uppers.push_back(0.05 * i);
  return uppers;
}

BoundDriftMonitor::BoundDriftMonitor(const ProtectionHook& protection,
                                     DriftMonitorOptions options)
    : protection_(protection),
      options_(options),
      headroom_uppers_(headroom_buckets()) {
  MetricsRegistry* reg = options_.obs.metrics != nullptr ? options_.obs.metrics
                                                         : default_metrics();
  for (LayerKind k : protection_.spec().covered) {
    const std::size_t kind = static_cast<std::size_t>(k);
    covered_mask_[kind] = true;
    if (reg != nullptr) {
      headroom_hist_[kind] = reg->histogram(
          "protect.headroom." + std::string(layer_kind_name(k)),
          headroom_uppers_);
      if (headroom_hist_[kind].enabled()) {
        local_counts_[kind].assign(headroom_uppers_.size() + 1, 0);
      }
    }
  }
  if (reg != nullptr) {
    near_clip_gauge_ = reg->gauge("protect.headroom.near_clip_frac");
  }
}

void BoundDriftMonitor::on_generation_begin() {
  for (Bounds& b : observed_) b = Bounds{};
}

void BoundDriftMonitor::on_generation_end() {
  for (std::size_t kind = 0; kind < kLayerKindCount; ++kind) {
    std::vector<std::uint64_t>& local = local_counts_[kind];
    if (local.empty()) continue;
    headroom_hist_[kind].observe_prebucketed(local, local_sums_[kind]);
    std::fill(local.begin(), local.end(), 0);
    local_sums_[kind] = 0.0;
  }
  near_clip_gauge_.set(near_clip_fraction());
}

double BoundDriftMonitor::near_clip_fraction() const {
  return total_dispatches_ == 0
             ? 0.0
             : static_cast<double>(near_clip_dispatches_) /
                   static_cast<double>(total_dispatches_);
}

void BoundDriftMonitor::on_output(const HookContext& ctx,
                                  std::span<float> values) {
  // First-token dispatches are still *recording* bounds — there is nothing
  // to measure headroom against yet (and for online schemes the bounds
  // would be half-formed).
  if (ctx.first_token_phase) return;
  const std::size_t kind = static_cast<std::size_t>(ctx.site.kind);
  if (!covered_mask_[kind]) return;

  const SchemeSpec& spec = protection_.spec();
  const BoundStore& store =
      spec.online ? protection_.online_bounds() : protection_.offline_bounds();
  const Bounds enforced = store.at(ctx.site).scaled(spec.bound_scale);
  if (!enforced.valid()) return;

  // Usage: the largest fraction of the enforced interval any value reaches
  // (positive values against hi, negative against lo). Post-correction a
  // clipped value sits exactly on the bound -> usage 1, headroom 0. The
  // scan keeps only the span min/max — v/hi is monotonic in v, so the
  // extremes decide usage and the divisions hoist out of the loop (this is
  // the decode hot path; see the overhead numbers in docs/OBSERVABILITY.md).
  float mn = std::numeric_limits<float>::infinity();
  float mx = -std::numeric_limits<float>::infinity();
  for (float v : values) {
    mn = std::min(mn, v);  // NaN compares false: contributes to neither
    mx = std::max(mx, v);
  }
  Bounds& seen = observed_[kind];
  seen.lo = std::min(seen.lo, mn);
  seen.hi = std::max(seen.hi, mx);
  double usage = 0.0;
  if (mx > 0.0f && enforced.hi > 0.0f) {
    usage = std::max(usage, static_cast<double>(mx) /
                                static_cast<double>(enforced.hi));
  }
  if (mn < 0.0f && enforced.lo < 0.0f) {
    usage = std::max(usage, static_cast<double>(mn) /
                                static_cast<double>(enforced.lo));
  }

  const double headroom = std::max(0.0, 1.0 - usage);
  std::vector<std::uint64_t>& local = local_counts_[kind];
  if (!local.empty()) {
    // Same "le" bucketing HistogramCell::add applies; headroom <= 1 means
    // the overflow slot stays empty, but keep it for shape parity.
    const std::size_t bucket = static_cast<std::size_t>(
        std::lower_bound(headroom_uppers_.begin(), headroom_uppers_.end(),
                         headroom) -
        headroom_uppers_.begin());
    ++local[bucket];
    local_sums_[kind] += headroom;
  }
  ++total_dispatches_;
  if (headroom <= options_.near_clip_threshold) ++near_clip_dispatches_;
}

}  // namespace ft2
