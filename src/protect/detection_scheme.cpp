#include "protect/detection_scheme.hpp"

#include <cstdlib>
#include <sstream>

#include "protect/abft_linear.hpp"
#include "protect/adaptive.hpp"
#include "tensor/dispatch.hpp"

namespace ft2 {

const BoundStore& DetectionScheme::empty_bounds() {
  static const BoundStore store;
  return store;
}

// ---------------------------------------------------------------------------
// RangeRestrictScheme

namespace {

/// RangeRestrictScheme's boundary snapshot: the online first-token bounds
/// (all there is — offline bounds are immutable for the generation).
struct RangeSchemeState final : SchemeState {
  BoundStore online_bounds;
};

}  // namespace

RangeRestrictScheme::RangeRestrictScheme(const ModelConfig& config,
                                         SchemeSpec spec,
                                         BoundStore offline_bounds)
    : DetectionScheme(std::move(spec)),
      offline_bounds_(std::move(offline_bounds)),
      online_bounds_(config) {
  FT2_CHECK_MSG(!spec_.needs_offline_bounds || !offline_bounds_.empty(),
                "scheme " << spec_display_name(spec_)
                          << " requires offline bounds");
  if (offline_bounds_.empty()) {
    // Invalid (never-observed) bounds: range_restrict degrades to NaN-only
    // correction, which is what bound-less protection can still do.
    offline_bounds_ = BoundStore(config);
  }
}

void RangeRestrictScheme::begin_generation() {
  if (spec_.online) online_bounds_.reset();
}

void RangeRestrictScheme::detect_and_correct(const HookContext& ctx,
                                             std::span<float> values,
                                             ProtectionStats& delta,
                                             ClipObserver* observer) {
  // `values` may span several positions (blocked prefill). Every operation
  // below is elementwise or an order-insensitive min/max, and bounds are
  // per-site (not per-position), so the flat span needs no row iteration
  // and the results match per-position dispatch exactly.
  if (spec_.online && ctx.first_token_phase) {
    // First-token phase: no bounds yet. Correct NaN (always detectable)
    // and record the observed range for the remaining tokens.
    delta.values_checked = values.size();
    delta.nan_corrected = correct_nan_to_zero(values);
    online_bounds_.at(ctx.site).observe_span(values);
  } else {
    const Bounds& raw = spec_.online ? online_bounds_.at(ctx.site)
                                     : offline_bounds_.at(ctx.site);
    range_restrict(values, raw.scaled(spec_.bound_scale), spec_.policy,
                   spec_.correct_nan, &delta, spec_.detect_only, observer);
  }
}

bool RangeRestrictScheme::plan_epilogue(const HookContext& ctx,
                                        KernelEpilogue& epi) const {
  // Mirror detect_and_correct branch for branch: every mode below is
  // elementwise with constant per-site bounds, so it can run inside the
  // kernel's store epilogue. absorb_epilogue handles the one non-elementwise
  // piece (first-token observe_span) over the finished span.
  if (spec_.online && ctx.first_token_phase) {
    epi.protect = KernelEpilogue::Protect::kFirstToken;
    return true;
  }
  const Bounds& raw = spec_.online ? online_bounds_.at(ctx.site)
                                   : offline_bounds_.at(ctx.site);
  const Bounds scaled = raw.scaled(spec_.bound_scale);
  epi.detect_only = spec_.detect_only;
  if (!scaled.valid()) {
    // range_restrict with invalid bounds: NaN-only correction, or nothing
    // at all (not even values_checked) without correct_nan.
    epi.protect = spec_.correct_nan ? KernelEpilogue::Protect::kNanOnly
                                    : KernelEpilogue::Protect::kNone;
    return true;
  }
  epi.protect = KernelEpilogue::Protect::kBounds;
  epi.correct_nan = spec_.correct_nan;
  epi.lo = scaled.lo;
  epi.hi = scaled.hi;
  switch (spec_.policy) {
    case ClipPolicy::kToBound:
      epi.lo_sub = scaled.lo;
      epi.hi_sub = scaled.hi;
      break;
    case ClipPolicy::kToZero:
      epi.lo_sub = 0.0f;
      epi.hi_sub = 0.0f;
      break;
    case ClipPolicy::kToTypical:
      epi.lo_sub = scaled.typical;
      epi.hi_sub = scaled.typical;
      break;
  }
  return true;
}

void RangeRestrictScheme::absorb_epilogue(const HookContext& ctx,
                                          std::span<const float> values,
                                          const KernelEpilogue& epi,
                                          const EpilogueTally& tally) {
  (void)tally;
  if (epi.protect == KernelEpilogue::Protect::kFirstToken) {
    // The kernel already zeroed NaNs; fold the finished span into the
    // online bounds in flat order — the exact observe_span call (on
    // identical data) the hook path makes. Doing this here rather than in
    // the kernel keeps ±0 min/max ordering out of the parallel tiles.
    online_bounds_.at(ctx.site).observe_span(values);
  }
}

std::shared_ptr<const SchemeState> RangeRestrictScheme::capture_state() const {
  auto state = std::make_shared<RangeSchemeState>();
  state->online_bounds = online_bounds_;
  return state;
}

void RangeRestrictScheme::restore_state(const SchemeState* state) {
  const auto* range = dynamic_cast<const RangeSchemeState*>(state);
  if (range == nullptr) return;
  online_bounds_ = range->online_bounds;
}

// ---------------------------------------------------------------------------
// Parameters

namespace {

const std::string* find_param(const SchemeParams& params,
                              const std::string& key) {
  const auto it = params.find(key);
  return it == params.end() ? nullptr : &it->second;
}

}  // namespace

float scheme_param_float(const SchemeParams& params, const std::string& key,
                         float fallback, std::string_view scheme) {
  const std::string* raw = find_param(params, key);
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const float value = std::strtof(raw->c_str(), &end);
  FT2_CHECK_MSG(end != raw->c_str() && *end == '\0',
                "scheme " << scheme << ": parameter " << key << "='" << *raw
                          << "' is not a number");
  return value;
}

bool scheme_param_bool(const SchemeParams& params, const std::string& key,
                       bool fallback, std::string_view scheme) {
  const std::string* raw = find_param(params, key);
  if (raw == nullptr) return fallback;
  if (*raw == "1" || *raw == "true") return true;
  if (*raw == "0" || *raw == "false") return false;
  FT2_CHECK_MSG(false, "scheme " << scheme << ": parameter " << key << "='"
                                 << *raw << "' is not a bool (0/1/true/false)");
  return fallback;
}

void require_known_params(const SchemeParams& params,
                          std::initializer_list<std::string_view> known,
                          std::string_view scheme) {
  for (const auto& [key, value] : params) {
    bool ok = false;
    for (std::string_view k : known) ok = ok || key == k;
    if (ok) continue;
    std::ostringstream names;
    const char* sep = "";
    for (std::string_view k : known) {
      names << sep << k;
      sep = ", ";
    }
    FT2_CHECK_MSG(false, "scheme " << scheme << ": unknown parameter '" << key
                                   << "' (known: "
                                   << (known.size() == 0 ? "none" : names.str())
                                   << ")");
  }
}

// ---------------------------------------------------------------------------
// Registry

namespace {

SchemeInfo range_scheme_info(SchemeKind kind, std::string summary,
                             bool needs_offline_bounds) {
  SchemeInfo info;
  info.name = scheme_name(kind);
  info.summary = std::move(summary);
  info.needs_offline_bounds = needs_offline_bounds;
  info.make = [kind](const ModelConfig& config, const SchemeParams& params,
                     BoundStore offline) -> std::unique_ptr<DetectionScheme> {
    require_known_params(params, {"scale", "detect_only"}, scheme_name(kind));
    SchemeSpec spec = scheme_spec(kind, config);
    spec.bound_scale =
        scheme_param_float(params, "scale", spec.bound_scale, spec.name);
    spec.detect_only =
        scheme_param_bool(params, "detect_only", spec.detect_only, spec.name);
    return std::make_unique<RangeRestrictScheme>(config, std::move(spec),
                                                 std::move(offline));
  };
  return info;
}

}  // namespace

SchemeRegistry::SchemeRegistry() {
  add(range_scheme_info(SchemeKind::kNone,
                        "no protection (fault-impact baseline)", false));
  add(range_scheme_info(
      SchemeKind::kRanger,
      "offline bounds on activation outputs, clip-to-zero, no NaN fix", true));
  add(range_scheme_info(
      SchemeKind::kMaxiMals,
      "offline bounds on attention/MLP outputs, clip-to-zero x1.25", true));
  add(range_scheme_info(
      SchemeKind::kGlobalClipper,
      "offline bounds on V_PROJ/OUT_PROJ, clip-to-zero", true));
  add(range_scheme_info(
      SchemeKind::kFt2,
      "online first-token bounds on critical layers, clip-to-bound x2",
      false));
  add(range_scheme_info(
      SchemeKind::kFt2Offline,
      "FT2 coverage/policy with offline-profiled bounds", true));
  {
    SchemeInfo info;
    info.name = "abft-linear";
    info.summary =
        "per-row column-sum checksums on linear outputs, first-token "
        "calibrated (params: margin, scale)";
    info.make = [](const ModelConfig& config, const SchemeParams& params,
                   BoundStore) -> std::unique_ptr<DetectionScheme> {
      require_known_params(params, {"margin", "scale"}, "abft-linear");
      AbftLinearOptions options;
      options.margin =
          scheme_param_float(params, "margin", options.margin, "abft-linear");
      options.scale =
          scheme_param_float(params, "scale", options.scale, "abft-linear");
      return std::make_unique<AbftLinearScheme>(config, options);
    };
    add(std::move(info));
  }
  {
    SchemeInfo info;
    info.name = "ft2-adaptive";
    info.summary =
        "FT2 bounds that re-profile online when in-bounds headroom drops "
        "below the near-clip threshold (params: threshold, scale)";
    info.make = [](const ModelConfig& config, const SchemeParams& params,
                   BoundStore) -> std::unique_ptr<DetectionScheme> {
      require_known_params(params, {"threshold", "scale"}, "ft2-adaptive");
      AdaptiveFt2Options options;
      options.threshold = scheme_param_float(params, "threshold",
                                             options.threshold, "ft2-adaptive");
      options.scale =
          scheme_param_float(params, "scale", options.scale, "ft2-adaptive");
      return std::make_unique<AdaptiveFt2Scheme>(config, options);
    };
    add(std::move(info));
  }
}

SchemeRegistry& SchemeRegistry::instance() {
  static SchemeRegistry registry;
  return registry;
}

void SchemeRegistry::add(SchemeInfo info) {
  FT2_CHECK_MSG(!info.name.empty(), "scheme registration requires a name");
  FT2_CHECK_MSG(find(info.name) == nullptr,
                "scheme '" << info.name << "' is already registered");
  FT2_CHECK_MSG(info.make != nullptr,
                "scheme '" << info.name << "' registered without a factory");
  entries_.push_back(std::move(info));
}

const SchemeInfo* SchemeRegistry::find(std::string_view name) const {
  for (const SchemeInfo& info : entries_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::vector<std::string> all_scheme_names() {
  std::vector<std::string> names;
  for (const SchemeInfo& info : SchemeRegistry::instance().entries()) {
    names.push_back(info.name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// SchemeRef

SchemeRef SchemeRef::parse(std::string_view text) {
  SchemeRef ref;
  const std::size_t colon = text.find(':');
  ref.name = std::string(text.substr(0, colon));
  if (SchemeRegistry::instance().find(ref.name) == nullptr) {
    std::ostringstream known;
    const char* sep = "";
    for (const std::string& name : all_scheme_names()) {
      known << sep << name;
      sep = ", ";
    }
    FT2_CHECK_MSG(false, "unknown scheme '" << ref.name
                                            << "' (known: " << known.str()
                                            << ")");
  }
  if (colon == std::string_view::npos) return ref;
  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view pair = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    const std::size_t eq = pair.find('=');
    FT2_CHECK_MSG(eq != std::string_view::npos && eq > 0,
                  "scheme '" << ref.name << "': malformed parameter '" << pair
                             << "' (expected key=value)");
    ref.params[std::string(pair.substr(0, eq))] =
        std::string(pair.substr(eq + 1));
  }
  return ref;
}

std::string SchemeRef::display() const {
  if (params.empty()) return name;
  std::ostringstream os;
  os << name;
  char sep = ':';
  for (const auto& [key, value] : params) {
    os << sep << key << '=' << value;
    sep = ',';
  }
  return os.str();
}

bool SchemeRef::needs_offline_bounds() const {
  const SchemeInfo* info = SchemeRegistry::instance().find(name);
  FT2_CHECK_MSG(info != nullptr, "unknown scheme '" << name << "'");
  return info->needs_offline_bounds;
}

std::unique_ptr<DetectionScheme> SchemeRef::instantiate(
    const ModelConfig& config, BoundStore offline_bounds) const {
  const SchemeInfo* info = SchemeRegistry::instance().find(name);
  FT2_CHECK_MSG(info != nullptr, "unknown scheme '" << name << "'");
  std::unique_ptr<DetectionScheme> scheme =
      info->make(config, params, std::move(offline_bounds));
  FT2_CHECK_MSG(scheme != nullptr,
                "scheme '" << name << "' factory returned null");
  return scheme;
}

}  // namespace ft2
