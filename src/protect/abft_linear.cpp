#include "protect/abft_linear.hpp"

#include <cmath>

namespace ft2 {

namespace {

/// Boundary snapshot: both calibration stores plus the per-kind mismatch
/// tallies (so restoring republishes counter increments like the driver
/// does for checked/nan/oob).
struct AbftState final : SchemeState {
  BoundStore row_sums;
  BoundStore elem_bounds;
  std::array<std::size_t, kLayerKindCount> kind_mismatches{};
};

/// Shifts row-local range_restrict indices back into dispatched-span
/// coordinates so the driver's observer attributes clips to the right
/// sequence position.
class OffsetObserver final : public ClipObserver {
 public:
  OffsetObserver(ClipObserver* inner, std::size_t offset)
      : inner_(inner), offset_(offset) {}
  void on_oob(float original, std::size_t index) override {
    inner_->on_oob(original, offset_ + index);
  }

 private:
  ClipObserver* inner_;
  std::size_t offset_;
};

double row_sum(std::span<const float> row) {
  double sum = 0.0;
  for (float v : row) sum += static_cast<double>(v);
  return sum;
}

SchemeSpec abft_spec(const ModelConfig& config, const AbftLinearOptions& options) {
  SchemeSpec spec;
  spec.kind = SchemeKind::kNone;  // not part of the legacy enum family
  spec.name = "abft-linear";
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    const LayerKind kind = static_cast<LayerKind>(k);
    if (is_linear_layer(kind) && config.has_layer(kind)) {
      spec.covered.push_back(kind);
    }
  }
  spec.policy = ClipPolicy::kToBound;
  spec.correct_nan = true;
  spec.bound_scale = options.scale;
  spec.online = true;  // first-token calibration, like FT2
  return spec;
}

}  // namespace

AbftLinearScheme::AbftLinearScheme(const ModelConfig& config,
                                   AbftLinearOptions options)
    : DetectionScheme(abft_spec(config, options)),
      options_(options),
      row_sums_(config),
      elem_bounds_(config) {}

void AbftLinearScheme::bind_metrics(MetricsRegistry& metrics) {
  for (LayerKind k : spec().covered) {
    mismatch_counters_[static_cast<std::size_t>(k)] = metrics.counter(
        "protect.checksum_mismatch." + std::string(layer_kind_name(k)));
  }
}

void AbftLinearScheme::begin_generation() {
  row_sums_.reset();
  elem_bounds_.reset();
}

bool AbftLinearScheme::row_sum_ok(const Bounds& calibrated,
                                  double sum) const {
  if (!std::isfinite(sum)) return false;
  const double lo = calibrated.lo;
  const double hi = calibrated.hi;
  const double center = 0.5 * (lo + hi);
  const double half = 0.5 * (hi - lo);
  // Small relative slack keeps a degenerate (single-observation) interval
  // from flagging fault-free numerical noise.
  const double tolerance =
      static_cast<double>(options_.margin) *
      (half + 1e-3 * (std::abs(center) + 1.0));
  return std::abs(sum - center) <= tolerance;
}

void AbftLinearScheme::detect_and_correct(const HookContext& ctx,
                                          std::span<float> values,
                                          ProtectionStats& delta,
                                          ClipObserver* observer) {
  const std::size_t width = ctx.width(values.size());
  const std::size_t rows = width == 0 ? 0 : values.size() / width;

  if (ctx.first_token_phase) {
    // Calibration: NaN-only correction while recording the fault-free
    // row-sum range and the elementwise range.
    delta.values_checked = values.size();
    delta.nan_corrected = correct_nan_to_zero(values);
    Bounds& calibrated = row_sums_.at(ctx.site);
    for (std::size_t r = 0; r < rows; ++r) {
      calibrated.observe(static_cast<float>(row_sum(ctx.row(values, r))));
    }
    elem_bounds_.at(ctx.site).observe_span(values);
    return;
  }

  delta.values_checked = values.size();
  const Bounds& calibrated = row_sums_.at(ctx.site);
  const Bounds clamp = elem_bounds_.at(ctx.site).scaled(options_.scale);
  const std::size_t kind = static_cast<std::size_t>(ctx.site.kind);
  for (std::size_t r = 0; r < rows; ++r) {
    std::span<float> row = ctx.row(values, r);
    delta.nan_corrected += correct_nan_to_zero(row);
    if (!calibrated.valid()) continue;  // site never ran in the first token
    if (row_sum_ok(calibrated, row_sum(row))) continue;
    ++mismatches_;
    ++kind_mismatches_[kind];
    mismatch_counters_[kind].inc();
    // The checksum localizes the row, not the element: clamp the whole row
    // against the scaled elementwise bounds (NaNs are already zeroed).
    ProtectionStats sub;
    OffsetObserver offset(observer, r * width);
    range_restrict(row, clamp, ClipPolicy::kToBound, /*correct_nan=*/false,
                   &sub, /*detect_only=*/false,
                   observer != nullptr ? &offset : nullptr);
    delta.oob_corrected += sub.oob_corrected;
  }
}

std::shared_ptr<const SchemeState> AbftLinearScheme::capture_state() const {
  auto state = std::make_shared<AbftState>();
  state->row_sums = row_sums_;
  state->elem_bounds = elem_bounds_;
  state->kind_mismatches = kind_mismatches_;
  return state;
}

void AbftLinearScheme::restore_state(const SchemeState* state) {
  const auto* abft = dynamic_cast<const AbftState*>(state);
  if (abft == nullptr) return;
  row_sums_ = abft->row_sums;
  elem_bounds_ = abft->elem_bounds;
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    const std::size_t n = abft->kind_mismatches[k];
    if (n == 0) continue;
    kind_mismatches_[k] += n;
    mismatches_ += n;
    mismatch_counters_[k].inc(n);
  }
}

}  // namespace ft2
