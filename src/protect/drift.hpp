// Bound-drift monitor: the online analogue of the paper's Fig. 9.
//
// FT2's safety argument is that 2x-scaled first-token bounds stay wide
// enough for every later token. This hook measures exactly that, live: for
// each covered layer-kind dispatch after the first-token phase it computes
// how much of the enforced (scaled) bound interval the span's values
// actually use, and exports the remaining headroom as a
// `protect.headroom.<KIND>` histogram plus a near-clip gauge. A headroom of
// 1 means the layer output never approached the bound; 0 means some value
// sat exactly on it (or was clipped onto it).
//
// Strictly observational: the monitor never writes to the value span and
// the ProtectionHook never reads from it, so generated tokens, protection
// stats and campaign outcomes are bit-identical with the monitor attached
// or not (pinned by tests/protect/drift_test.cpp). Register it AFTER the
// ProtectionHook so it observes post-correction values.
#pragma once

#include <array>
#include <cstddef>

#include "nn/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "protect/bounds.hpp"
#include "protect/scheme.hpp"

namespace ft2 {

struct DriftMonitorOptions {
  /// A dispatch whose headroom is <= this fraction counts as "near clip"
  /// (the numerator of protect.headroom.near_clip_frac).
  double near_clip_threshold = 0.10;
  /// Observability sinks; `obs.metrics` receives the protect.headroom.*
  /// exports, nullptr selects the process default (or no publishing when
  /// metrics are disabled).
  ObsSinks obs;
};

/// Histogram buckets for bound-usage headroom in [0, 1].
std::vector<double> headroom_buckets();

class BoundDriftMonitor : public OutputHook {
 public:
  /// `protection` must outlive the monitor; its scheme decides which layer
  /// kinds are covered and which (scaled) bounds the headroom is measured
  /// against. The monitor reads the protection hook's bounds at dispatch
  /// time, so online (first-token) bounds work naturally.
  explicit BoundDriftMonitor(const ProtectionHook& protection,
                             DriftMonitorOptions options = {});

  void on_generation_begin() override;
  void on_output(const HookContext& ctx, std::span<float> values) override;
  /// Publishes the generation's locally accumulated headroom samples to the
  /// registry. The hot path only bumps plain per-monitor arrays; registry
  /// atomics happen once per generation here (keeps the decode overhead
  /// within the 1% budget — numbers in docs/OBSERVABILITY.md).
  void on_generation_end() override;

  /// Running observed min/max per layer kind across every monitored
  /// dispatch (post-first-token, post-correction).
  const Bounds& observed(LayerKind kind) const {
    return observed_[static_cast<std::size_t>(kind)];
  }

  /// Monitored dispatches since construction / the counts feeding the
  /// near-clip gauge.
  std::size_t total_dispatches() const { return total_dispatches_; }
  std::size_t near_clip_dispatches() const { return near_clip_dispatches_; }

  /// Fraction of monitored dispatches that came within the near-clip
  /// threshold of a bound (0 when nothing was monitored yet).
  double near_clip_fraction() const;

 private:
  const ProtectionHook& protection_;
  DriftMonitorOptions options_;
  std::array<bool, kLayerKindCount> covered_mask_{};
  std::array<Bounds, kLayerKindCount> observed_{};
  std::array<HistogramMetric, kLayerKindCount> headroom_hist_{};
  Gauge near_clip_gauge_;
  std::size_t total_dispatches_ = 0;
  std::size_t near_clip_dispatches_ = 0;
  // Per-generation local accumulators, flushed by on_generation_end():
  // one pre-bucketed count vector + sample sum per covered kind (empty for
  // uncovered kinds or when the registry is disabled).
  std::vector<double> headroom_uppers_;
  std::array<std::vector<std::uint64_t>, kLayerKindCount> local_counts_{};
  std::array<double, kLayerKindCount> local_sums_{};
};

}  // namespace ft2
