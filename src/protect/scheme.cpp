#include "protect/scheme.hpp"

#include <algorithm>

#include "protect/critical.hpp"

namespace ft2 {

bool SchemeSpec::covers(LayerKind k) const {
  return std::find(covered.begin(), covered.end(), k) != covered.end();
}

SchemeSpec scheme_spec(SchemeKind kind, const ModelConfig& config) {
  SchemeSpec spec;
  spec.kind = kind;
  auto keep_present = [&config](std::vector<LayerKind> kinds) {
    std::vector<LayerKind> out;
    for (LayerKind k : kinds) {
      if (config.has_layer(k)) out.push_back(k);
    }
    return out;
  };

  switch (kind) {
    case SchemeKind::kNone:
      break;
    case SchemeKind::kRanger:
      spec.covered = {LayerKind::kMlpAct};
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = false;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kMaxiMals:
      spec.covered = keep_present(
          {LayerKind::kOutProj, LayerKind::kFc2, LayerKind::kDownProj});
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = true;
      spec.bound_scale = 1.25f;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kGlobalClipper:
      spec.covered = {LayerKind::kVProj, LayerKind::kOutProj};
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = true;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kFt2:
      spec.covered = critical_layers(config);
      spec.policy = ClipPolicy::kToBound;
      spec.correct_nan = true;
      spec.bound_scale = 2.0f;
      spec.online = true;
      break;
    case SchemeKind::kFt2Offline:
      spec.covered = critical_layers(config);
      spec.policy = ClipPolicy::kToBound;
      spec.correct_nan = true;
      spec.needs_offline_bounds = true;
      break;
  }
  return spec;
}

ProtectionHook::ProtectionHook(const ModelConfig& config, SchemeSpec spec,
                               BoundStore offline_bounds,
                               MetricsRegistry* metrics)
    : config_(config),
      spec_(std::move(spec)),
      offline_bounds_(std::move(offline_bounds)),
      online_bounds_(config) {
  FT2_CHECK_MSG(!spec_.needs_offline_bounds || !offline_bounds_.empty(),
                "scheme " << scheme_name(spec_.kind)
                          << " requires offline bounds");
  if (offline_bounds_.empty()) {
    // Invalid (never-observed) bounds: range_restrict degrades to NaN-only
    // correction, which is what bound-less protection can still do.
    offline_bounds_ = BoundStore(config_);
  }
  for (LayerKind k : spec_.covered) {
    covered_mask_[static_cast<std::size_t>(k)] = true;
  }
  if (metrics != nullptr) {
    for (LayerKind k : spec_.covered) {
      KindMetrics& km = kind_metrics_[static_cast<std::size_t>(k)];
      const std::string kind(layer_kind_name(k));
      km.checked = metrics->counter("protect.checked." + kind);
      km.nan = metrics->counter("protect.nan." + kind);
      km.oob = metrics->counter("protect.oob." + kind);
      km.clip_magnitude = metrics->histogram("protect.clip_magnitude." + kind,
                                             magnitude_buckets());
    }
  }
}

ProtectionStats ProtectionHook::stats() const {
  ProtectionStats total;
  for (const ProtectionStats& s : kind_stats_) total.merge(s);
  return total;
}

void ProtectionHook::on_generation_begin() {
  if (spec_.online) online_bounds_.reset();
  clip_log_.clear();
  first_detect_pos_ = -1;
}

ProtectionState ProtectionHook::capture_state() const {
  ProtectionState state;
  state.online_bounds = online_bounds_;
  state.kind_stats = kind_stats_;
  state.clips = clip_log_;
  state.first_detect_pos = first_detect_pos_;
  return state;
}

void ProtectionHook::restore_state(const ProtectionState& state) {
  online_bounds_ = state.online_bounds;
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    const ProtectionStats& s = state.kind_stats[k];
    if (s.values_checked == 0 && s.nan_corrected == 0 && s.oob_corrected == 0) {
      continue;
    }
    kind_stats_[k].merge(s);
    // Publish the skipped prefix's increments so the registry counters
    // advance exactly as a full from-scratch run would have.
    KindMetrics& km = kind_metrics_[k];
    km.checked.inc(s.values_checked);
    km.nan.inc(s.nan_corrected);
    km.oob.inc(s.oob_corrected);
  }
  clip_log_ = state.clips;
  if (state.first_detect_pos >= 0 &&
      (first_detect_pos_ < 0 || state.first_detect_pos < first_detect_pos_)) {
    first_detect_pos_ = state.first_detect_pos;
  }
  for (const ClipEvent& clip : state.clips) {
    kind_metrics_[static_cast<std::size_t>(clip.kind)].clip_magnitude.observe(
        std::abs(static_cast<double>(clip.original)));
  }
}

namespace {

/// Feeds out-of-bound originals into one kind's clip-magnitude histogram
/// and, when a capture log is supplied, records positioned ClipEvents for
/// ProtectionState / campaign flight records.
class MagnitudeObserver final : public ClipObserver {
 public:
  MagnitudeObserver(HistogramMetric hist, LayerKind kind,
                    std::size_t base_position, std::size_t row_width,
                    std::vector<ClipEvent>* log)
      : hist_(hist),
        kind_(kind),
        base_position_(base_position),
        row_width_(row_width),
        log_(log) {}
  void on_oob(float original, std::size_t index) override {
    hist_.observe(std::abs(static_cast<double>(original)));
    if (log_ != nullptr) {
      log_->push_back(
          ClipEvent{kind_, base_position_ + index / row_width_, original});
    }
  }

 private:
  HistogramMetric hist_;
  LayerKind kind_;
  std::size_t base_position_;
  std::size_t row_width_;
  std::vector<ClipEvent>* log_;
};

}  // namespace

void ProtectionHook::on_output(const HookContext& ctx,
                               std::span<float> values) {
  // `values` may span several positions (blocked prefill). Every operation
  // below is elementwise or an order-insensitive min/max, and bounds are
  // per-site (not per-position), so the flat span needs no row iteration
  // and the results match per-position dispatch exactly.
  if (spec_.kind == SchemeKind::kNone) return;
  const std::size_t kind = static_cast<std::size_t>(ctx.site.kind);
  if (!covered_mask_[kind]) return;
  ProtectionStats& tally = kind_stats_[kind];
  KindMetrics& km = kind_metrics_[kind];

  // Tally per call into a delta so the registry counters advance by
  // exactly what this dispatch corrected; merging the delta into the
  // per-kind tally reproduces the old single-struct accounting bit for
  // bit (integer adds in dispatch order).
  ProtectionStats delta;
  if (spec_.online && ctx.first_token_phase) {
    // First-token phase: no bounds yet. Correct NaN (always detectable)
    // and record the observed range for the remaining tokens.
    delta.values_checked = values.size();
    delta.nan_corrected = correct_nan_to_zero(values);
    online_bounds_.at(ctx.site).observe_span(values);
  } else {
    const Bounds& raw =
        spec_.online ? online_bounds_.at(ctx.site) : offline_bounds_.at(ctx.site);
    MagnitudeObserver observer(km.clip_magnitude, ctx.site.kind, ctx.position,
                               ctx.width(values.size()),
                               capture_clips_ ? &clip_log_ : nullptr);
    range_restrict(values, raw.scaled(spec_.bound_scale), spec_.policy,
                   spec_.correct_nan, &delta, spec_.detect_only,
                   km.clip_magnitude.enabled() || capture_clips_ ? &observer
                                                                 : nullptr);
  }
  if ((delta.nan_corrected != 0 || delta.oob_corrected != 0) &&
      first_detect_pos_ < 0) {
    // Dispatches arrive in nondecreasing position order, so the first
    // detecting dispatch carries the earliest position (span-start
    // granularity during chunked prefill).
    first_detect_pos_ = static_cast<long long>(ctx.position);
  }
  tally.merge(delta);
  km.checked.inc(delta.values_checked);
  km.nan.inc(delta.nan_corrected);
  km.oob.inc(delta.oob_corrected);
}

std::size_t ProtectionHook::bound_memory_bytes() const {
  return protected_layer_count() * 2 * sizeof(float);
}

std::size_t ProtectionHook::protected_layer_count() const {
  return spec_.covered.size() * config_.n_blocks;
}

}  // namespace ft2
