#include "protect/scheme.hpp"

#include <algorithm>
#include <cmath>

#include "protect/critical.hpp"
#include "protect/detection_scheme.hpp"
#include "tensor/dispatch.hpp"

namespace ft2 {

bool SchemeSpec::covers(LayerKind k) const {
  return std::find(covered.begin(), covered.end(), k) != covered.end();
}

SchemeSpec scheme_spec(SchemeKind kind, const ModelConfig& config) {
  SchemeSpec spec;
  spec.kind = kind;
  spec.name = scheme_name(kind);
  auto keep_present = [&config](std::vector<LayerKind> kinds) {
    std::vector<LayerKind> out;
    for (LayerKind k : kinds) {
      if (config.has_layer(k)) out.push_back(k);
    }
    return out;
  };

  switch (kind) {
    case SchemeKind::kNone:
      break;
    case SchemeKind::kRanger:
      spec.covered = {LayerKind::kMlpAct};
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = false;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kMaxiMals:
      spec.covered = keep_present(
          {LayerKind::kOutProj, LayerKind::kFc2, LayerKind::kDownProj});
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = true;
      spec.bound_scale = 1.25f;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kGlobalClipper:
      spec.covered = {LayerKind::kVProj, LayerKind::kOutProj};
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = true;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kFt2:
      spec.covered = critical_layers(config);
      spec.policy = ClipPolicy::kToBound;
      spec.correct_nan = true;
      spec.bound_scale = 2.0f;
      spec.online = true;
      break;
    case SchemeKind::kFt2Offline:
      spec.covered = critical_layers(config);
      spec.policy = ClipPolicy::kToBound;
      spec.correct_nan = true;
      spec.needs_offline_bounds = true;
      break;
  }
  return spec;
}

std::string spec_display_name(const SchemeSpec& spec) {
  return spec.name.empty() ? scheme_name(spec.kind) : spec.name;
}

ProtectionHook::ProtectionHook(const ModelConfig& config,
                               std::unique_ptr<DetectionScheme> scheme,
                               ObsSinks obs)
    : config_(config), scheme_(std::move(scheme)) {
  FT2_CHECK_MSG(scheme_ != nullptr, "ProtectionHook requires a scheme");
  for (LayerKind k : scheme_->spec().covered) {
    covered_mask_[static_cast<std::size_t>(k)] = true;
  }
  if (obs.metrics != nullptr) {
    for (LayerKind k : scheme_->spec().covered) {
      KindMetrics& km = kind_metrics_[static_cast<std::size_t>(k)];
      const std::string kind(layer_kind_name(k));
      km.checked = obs.metrics->counter("protect.checked." + kind);
      km.nan = obs.metrics->counter("protect.nan." + kind);
      km.oob = obs.metrics->counter("protect.oob." + kind);
      km.clip_magnitude = obs.metrics->histogram(
          "protect.clip_magnitude." + kind, magnitude_buckets());
    }
    scheme_->bind_metrics(*obs.metrics);
  }
}

ProtectionHook::ProtectionHook(const ModelConfig& config, SchemeSpec spec,
                               BoundStore offline_bounds,
                               MetricsRegistry* metrics)
    : ProtectionHook(config,
                     std::make_unique<RangeRestrictScheme>(
                         config, std::move(spec), std::move(offline_bounds)),
                     ObsSinks{metrics, nullptr}) {}

ProtectionHook::~ProtectionHook() = default;

ProtectionStats ProtectionHook::stats() const {
  ProtectionStats total;
  for (const ProtectionStats& s : kind_stats_) total.merge(s);
  return total;
}

const SchemeSpec& ProtectionHook::spec() const { return scheme_->spec(); }

const BoundStore& ProtectionHook::online_bounds() const {
  return scheme_->online_bounds();
}

const BoundStore& ProtectionHook::offline_bounds() const {
  return scheme_->offline_bounds();
}

void ProtectionHook::on_generation_begin() {
  scheme_->begin_generation();
  clip_log_.clear();
  first_detect_pos_ = -1;
}

ProtectionState ProtectionHook::capture_state() const {
  ProtectionState state;
  state.kind_stats = kind_stats_;
  state.clips = clip_log_;
  state.first_detect_pos = first_detect_pos_;
  state.scheme = scheme_->capture_state();
  return state;
}

void ProtectionHook::restore_state(const ProtectionState& state) {
  scheme_->restore_state(state.scheme.get());
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    const ProtectionStats& s = state.kind_stats[k];
    if (s.values_checked == 0 && s.nan_corrected == 0 && s.oob_corrected == 0) {
      continue;
    }
    kind_stats_[k].merge(s);
    // Publish the skipped prefix's increments so the registry counters
    // advance exactly as a full from-scratch run would have.
    KindMetrics& km = kind_metrics_[k];
    km.checked.inc(s.values_checked);
    km.nan.inc(s.nan_corrected);
    km.oob.inc(s.oob_corrected);
  }
  clip_log_ = state.clips;
  if (state.first_detect_pos >= 0 &&
      (first_detect_pos_ < 0 || state.first_detect_pos < first_detect_pos_)) {
    first_detect_pos_ = state.first_detect_pos;
  }
  for (const ClipEvent& clip : state.clips) {
    kind_metrics_[static_cast<std::size_t>(clip.kind)].clip_magnitude.observe(
        std::abs(static_cast<double>(clip.original)));
  }
}

namespace {

/// Feeds out-of-bound originals into one kind's clip-magnitude histogram
/// and, when a capture log is supplied, records positioned ClipEvents for
/// ProtectionState / campaign flight records.
class MagnitudeObserver final : public ClipObserver {
 public:
  MagnitudeObserver(HistogramMetric hist, LayerKind kind,
                    std::size_t base_position, std::size_t row_width,
                    std::vector<ClipEvent>* log)
      : hist_(hist),
        kind_(kind),
        base_position_(base_position),
        row_width_(row_width),
        log_(log) {}
  void on_oob(float original, std::size_t index) override {
    hist_.observe(std::abs(static_cast<double>(original)));
    if (log_ != nullptr) {
      log_->push_back(
          ClipEvent{kind_, base_position_ + index / row_width_, original});
    }
  }

 private:
  HistogramMetric hist_;
  LayerKind kind_;
  std::size_t base_position_;
  std::size_t row_width_;
  std::vector<ClipEvent>* log_;
};

}  // namespace

void ProtectionHook::on_output(const HookContext& ctx,
                               std::span<float> values) {
  const std::size_t kind = static_cast<std::size_t>(ctx.site.kind);
  if (!covered_mask_[kind]) return;
  ProtectionStats& tally = kind_stats_[kind];
  KindMetrics& km = kind_metrics_[kind];

  // The scheme tallies per call into a delta so the registry counters
  // advance by exactly what this dispatch corrected; merging the delta
  // into the per-kind tally reproduces single-struct accounting bit for
  // bit (integer adds in dispatch order).
  ProtectionStats delta;
  MagnitudeObserver observer(km.clip_magnitude, ctx.site.kind, ctx.position,
                             ctx.width(values.size()),
                             capture_clips_ ? &clip_log_ : nullptr);
  scheme_->detect_and_correct(
      ctx, values, delta,
      km.clip_magnitude.enabled() || capture_clips_ ? &observer : nullptr);
  if ((delta.nan_corrected != 0 || delta.oob_corrected != 0) &&
      first_detect_pos_ < 0) {
    // Dispatches arrive in nondecreasing position order, so the first
    // detecting dispatch carries the earliest position (span-start
    // granularity during chunked prefill).
    first_detect_pos_ = static_cast<long long>(ctx.position);
  }
  tally.merge(delta);
  km.checked.inc(delta.values_checked);
  km.nan.inc(delta.nan_corrected);
  km.oob.inc(delta.oob_corrected);
}

bool ProtectionHook::plan_fused(const HookContext& ctx, KernelEpilogue& epi) {
  const std::size_t kind = static_cast<std::size_t>(ctx.site.kind);
  if (!covered_mask_[kind]) return false;
  if (!scheme_->plan_epilogue(ctx, epi)) return false;
  // Per-event originals are only needed where the hook path would have
  // passed an observer (clip-magnitude histogram live, or clip capture on).
  epi.record_events =
      kind_metrics_[kind].clip_magnitude.enabled() || capture_clips_;
  return true;
}

void ProtectionHook::absorb_fused(const HookContext& ctx,
                                  std::span<const float> values,
                                  const KernelEpilogue& epi,
                                  const EpilogueTally& tally) {
  // Mirror of on_output's accounting, fed from the kernel tally instead of
  // detect_and_correct. Kept in lockstep: same delta merge order, same
  // counter increments, same first-detect rule, same event attribution
  // (position = ctx.position + flat_index / row_width).
  const std::size_t kind = static_cast<std::size_t>(ctx.site.kind);
  ProtectionStats& kind_tally = kind_stats_[kind];
  KindMetrics& km = kind_metrics_[kind];

  ProtectionStats delta;
  if (epi.protect != KernelEpilogue::Protect::kNone) {
    delta.values_checked = values.size();
  }
  delta.nan_corrected = tally.nan;
  delta.oob_corrected = tally.oob;
  scheme_->absorb_epilogue(ctx, values, epi, tally);
  if ((delta.nan_corrected != 0 || delta.oob_corrected != 0) &&
      first_detect_pos_ < 0) {
    first_detect_pos_ = static_cast<long long>(ctx.position);
  }
  kind_tally.merge(delta);
  km.checked.inc(delta.values_checked);
  km.nan.inc(delta.nan_corrected);
  km.oob.inc(delta.oob_corrected);
  const std::size_t row_width = ctx.width(values.size());
  for (const EpilogueEvent& event : tally.events) {
    km.clip_magnitude.observe(std::abs(static_cast<double>(event.original)));
    if (capture_clips_) {
      clip_log_.push_back(ClipEvent{ctx.site.kind,
                                    ctx.position + event.index / row_width,
                                    event.original});
    }
  }
}

std::size_t ProtectionHook::bound_memory_bytes() const {
  return scheme_->state_memory_bytes(config_);
}

std::size_t ProtectionHook::protected_layer_count() const {
  return spec().covered.size() * config_.n_blocks;
}

}  // namespace ft2
