#include "protect/scheme.hpp"

#include <algorithm>

#include "protect/critical.hpp"

namespace ft2 {

bool SchemeSpec::covers(LayerKind k) const {
  return std::find(covered.begin(), covered.end(), k) != covered.end();
}

SchemeSpec scheme_spec(SchemeKind kind, const ModelConfig& config) {
  SchemeSpec spec;
  spec.kind = kind;
  auto keep_present = [&config](std::vector<LayerKind> kinds) {
    std::vector<LayerKind> out;
    for (LayerKind k : kinds) {
      if (config.has_layer(k)) out.push_back(k);
    }
    return out;
  };

  switch (kind) {
    case SchemeKind::kNone:
      break;
    case SchemeKind::kRanger:
      spec.covered = {LayerKind::kMlpAct};
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = false;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kMaxiMals:
      spec.covered = keep_present(
          {LayerKind::kOutProj, LayerKind::kFc2, LayerKind::kDownProj});
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = true;
      spec.bound_scale = 1.25f;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kGlobalClipper:
      spec.covered = {LayerKind::kVProj, LayerKind::kOutProj};
      spec.policy = ClipPolicy::kToZero;
      spec.correct_nan = true;
      spec.needs_offline_bounds = true;
      break;
    case SchemeKind::kFt2:
      spec.covered = critical_layers(config);
      spec.policy = ClipPolicy::kToBound;
      spec.correct_nan = true;
      spec.bound_scale = 2.0f;
      spec.online = true;
      break;
    case SchemeKind::kFt2Offline:
      spec.covered = critical_layers(config);
      spec.policy = ClipPolicy::kToBound;
      spec.correct_nan = true;
      spec.needs_offline_bounds = true;
      break;
  }
  return spec;
}

ProtectionHook::ProtectionHook(const ModelConfig& config, SchemeSpec spec,
                               BoundStore offline_bounds)
    : config_(config),
      spec_(std::move(spec)),
      offline_bounds_(std::move(offline_bounds)),
      online_bounds_(config) {
  FT2_CHECK_MSG(!spec_.needs_offline_bounds || !offline_bounds_.empty(),
                "scheme " << scheme_name(spec_.kind)
                          << " requires offline bounds");
  if (offline_bounds_.empty()) {
    // Invalid (never-observed) bounds: range_restrict degrades to NaN-only
    // correction, which is what bound-less protection can still do.
    offline_bounds_ = BoundStore(config_);
  }
  for (LayerKind k : spec_.covered) {
    covered_mask_[static_cast<std::size_t>(k)] = true;
  }
}

void ProtectionHook::on_generation_begin() {
  if (spec_.online) online_bounds_.reset();
}

void ProtectionHook::on_output(const HookContext& ctx,
                               std::span<float> values) {
  // `values` may span several positions (blocked prefill). Every operation
  // below is elementwise or an order-insensitive min/max, and bounds are
  // per-site (not per-position), so the flat span needs no row iteration
  // and the results match per-position dispatch exactly.
  if (spec_.kind == SchemeKind::kNone) return;
  if (!covered_mask_[static_cast<std::size_t>(ctx.site.kind)]) return;

  if (spec_.online) {
    if (ctx.first_token_phase) {
      // First-token phase: no bounds yet. Correct NaN (always detectable)
      // and record the observed range for the remaining tokens.
      stats_.values_checked += values.size();
      stats_.nan_corrected += correct_nan_to_zero(values);
      online_bounds_.at(ctx.site).observe_span(values);
      return;
    }
    const Bounds& raw = online_bounds_.at(ctx.site);
    range_restrict(values, raw.scaled(spec_.bound_scale), spec_.policy,
                   spec_.correct_nan, &stats_, spec_.detect_only);
    return;
  }

  const Bounds& raw = offline_bounds_.at(ctx.site);
  range_restrict(values, raw.scaled(spec_.bound_scale), spec_.policy,
                 spec_.correct_nan, &stats_, spec_.detect_only);
}

std::size_t ProtectionHook::bound_memory_bytes() const {
  return protected_layer_count() * 2 * sizeof(float);
}

std::size_t ProtectionHook::protected_layer_count() const {
  return spec_.covered.size() * config_.n_blocks;
}

}  // namespace ft2
