// abft-linear: statistical ABFT over linear-layer outputs.
//
// Classical ABFT verifies a GEMM with checksum-extended operands; ReaLM's
// observation is that for LLM inference a *statistical* checksum over the
// output suffices: the column sum of a linear layer's per-position output
// row is a stable quantity, so a transient fault that corrupts any element
// shifts the row sum far outside its fault-free range. This scheme applies
// that idea online, FT2-style:
//  * first-token phase — NaN-only correction while calibrating, per site,
//    the fault-free row-sum range AND elementwise value bounds;
//  * later positions — per row: correct NaNs, recompute the row sum, and
//    flag the row when the sum deviates from the calibrated interval by
//    more than `margin` half-widths. Flagged rows take the bound-clamp
//    fallback (clip-to-bound against the scaled elementwise bounds), since
//    the checksum localizes the faulty row but not the faulty element.
// Detection cost is one add per element (the row sum); correction cost is
// paid only on flagged rows. Each flagged row increments
// protect.checksum_mismatch.<KIND>.
#pragma once

#include "protect/detection_scheme.hpp"

namespace ft2 {

struct AbftLinearOptions {
  /// Tolerated row-sum deviation, in calibrated half-widths (plus a small
  /// relative slack so a degenerate zero-width calibration still accepts
  /// fault-free rounding noise). Smaller = more sensitive + more benign
  /// clipping.
  float margin = 4.0f;
  /// Scaling of the calibrated elementwise bounds used by the fallback
  /// clamp on flagged rows (FT2's x2 default).
  float scale = 2.0f;
};

class AbftLinearScheme final : public DetectionScheme {
 public:
  explicit AbftLinearScheme(const ModelConfig& config,
                            AbftLinearOptions options = {});

  void bind_metrics(MetricsRegistry& metrics) override;
  void begin_generation() override;
  void detect_and_correct(const HookContext& ctx, std::span<float> values,
                          ProtectionStats& delta,
                          ClipObserver* observer) override;
  std::shared_ptr<const SchemeState> capture_state() const override;
  void restore_state(const SchemeState* state) override;
  /// The calibrated elementwise bounds (the fallback-clamp store).
  const BoundStore& online_bounds() const override { return elem_bounds_; }
  /// Four floats per covered site: the row-sum interval plus the
  /// elementwise bounds.
  std::size_t state_memory_bytes(const ModelConfig& config) const override {
    return spec().covered.size() * config.n_blocks * 4 * sizeof(float);
  }

  /// Rows flagged by the checksum so far (across generations, like the
  /// driver's per-kind tallies).
  std::size_t checksum_mismatches() const { return mismatches_; }
  /// The calibrated per-site row-sum intervals ([lo, hi] of Bounds).
  const BoundStore& row_sum_bounds() const { return row_sums_; }

 private:
  bool row_sum_ok(const Bounds& calibrated, double sum) const;

  AbftLinearOptions options_;
  BoundStore row_sums_;     ///< per-site fault-free row-sum range
  BoundStore elem_bounds_;  ///< per-site elementwise range (fallback clamp)
  std::array<Counter, kLayerKindCount> mismatch_counters_{};
  std::array<std::size_t, kLayerKindCount> kind_mismatches_{};
  std::size_t mismatches_ = 0;
};

}  // namespace ft2
