// Protection driver and scheme descriptors.
//
// The protection layer is split in two (see protect/detection_scheme.hpp
// for the pluggable half):
//  * DetectionScheme — the detection/correction algorithm itself, behind a
//    small virtual interface (range restriction, checksums, ...). Schemes
//    are registered by name and resolved at runtime.
//  * ProtectionHook (this header) — the thin driver that owns everything a
//    scheme should not have to reimplement: per-layer-kind tallies,
//    protect.* metric publication, the clip-event log, first-detection
//    accounting, generation lifecycle, and capture/restore of the whole
//    bundle for prefix-reuse campaigns.
//
// Coverage of the built-in range-restriction schemes follows the paper's
// Table 1:
//   Ranger         — activation-layer outputs only, clip-to-zero, no NaN fix.
//   MaxiMals       — attention-block and MLP outputs (OUT_PROJ, FC2,
//                    DOWN_PROJ), clip-to-zero, NaN fix, mild bound scaling.
//   Global Clipper — attention linear outputs V_PROJ and OUT_PROJ,
//                    clip-to-zero, NaN fix.
//   FT2            — all critical layers from the architectural heuristic,
//                    clip-to-BOUND, NaN fix, online first-token bounds x2.
//   FT2-Offline    — FT2 coverage/policy with offline-profiled bounds
//                    (the take-away #7 ablation).
// All baselines require offline-profiled bounds; only FT2 is online-only.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/hooks.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "protect/bounds.hpp"
#include "protect/range_restriction.hpp"

namespace ft2 {

class DetectionScheme;
class SchemeState;

/// One out-of-bound correction, attributed to the layer kind and the
/// sequence position of the clipped value (forensics: campaign flight
/// records carry these so `ft2 report` can localize detections without
/// rerunning the trial).
struct ClipEvent {
  LayerKind kind = LayerKind::kQProj;
  std::size_t position = 0;  ///< sequence position of the clipped value
  float original = 0.0f;     ///< pre-correction value
};

/// Point-in-time snapshot of a ProtectionHook's per-generation state, taken
/// at a token boundary of a fault-free run and restored into a fresh hook
/// when a trial forks from that boundary (prefix-reuse campaigns). Carries
/// the driver-side accumulation (per-kind correction tallies, out-of-bound
/// events, first detection) plus an opaque snapshot of the scheme's private
/// state (online first-token bounds, checksum calibration, ...).
struct ProtectionState {
  std::array<ProtectionStats, kLayerKindCount> kind_stats{};
  /// Out-of-bound events observed so far, in dispatch order (recorded only
  /// while clip capture is enabled on the source hook).
  std::vector<ClipEvent> clips;
  /// Earliest sequence position where any correction (NaN or out-of-bound)
  /// fired, -1 when none has.
  long long first_detect_pos = -1;
  /// Scheme-private state at the boundary (DetectionScheme::capture_state;
  /// null when the scheme carries none). Immutable and shared: restoring
  /// never mutates the snapshot.
  std::shared_ptr<const SchemeState> scheme;
};

/// The built-in range-restriction scheme family (the paper's Table 1).
/// This enum only enumerates that family; the full scheme zoo — including
/// checksum and adaptive detectors — lives in the string-keyed registry
/// (protect/detection_scheme.hpp), which is what CLI and campaign paths
/// resolve names against.
enum class SchemeKind {
  kNone = 0,
  kRanger,
  kMaxiMals,
  kGlobalClipper,
  kFt2,
  kFt2Offline,
};

constexpr const char* scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNone: return "none";
    case SchemeKind::kRanger: return "ranger";
    case SchemeKind::kMaxiMals: return "maximals";
    case SchemeKind::kGlobalClipper: return "global_clipper";
    case SchemeKind::kFt2: return "ft2";
    case SchemeKind::kFt2Offline: return "ft2_offline";
  }
  return "unknown";
}

/// Resolved protection parameters for one scheme on one architecture.
struct SchemeSpec {
  SchemeKind kind = SchemeKind::kNone;
  /// Registry/display name ("ft2", "abft-linear", ...). scheme_spec() fills
  /// it from the kind; schemes built by the registry carry their registered
  /// name. Threaded into TrialRecord::scheme by campaigns.
  std::string name;
  std::vector<LayerKind> covered;  ///< protected layer kinds
  ClipPolicy policy = ClipPolicy::kToZero;
  bool correct_nan = false;
  float bound_scale = 1.0f;
  bool online = false;             ///< first-token bounds (FT2) vs offline
  bool needs_offline_bounds = false;
  bool detect_only = false;        ///< count violations without correcting

  bool covers(LayerKind k) const;
};

/// Coverage/policy of `kind` for the given architecture.
SchemeSpec scheme_spec(SchemeKind kind, const ModelConfig& config);

/// Display name of a spec for records and tables: the registered name when
/// set, otherwise the legacy enum name.
std::string spec_display_name(const SchemeSpec& spec);

/// The protection hook: drives a DetectionScheme during generation.
///
/// The driver dispatches every covered layer output to the scheme's
/// detect_and_correct, accumulates the per-kind tallies it reports,
/// publishes protect.* metrics, records clip events and the earliest
/// detection position, and snapshots/restores the whole bundle (driver
/// accounting + scheme-private state) for prefix-reuse campaign forks.
class ProtectionHook : public OutputHook {
 public:
  /// Drives `scheme` (never null). When `obs.metrics` is non-null the hook
  /// publishes per-layer-kind event counters (protect.checked/nan/
  /// oob.<KIND>), clip-magnitude histograms (protect.clip_magnitude.<KIND>)
  /// and any scheme-private metrics to it; metrics never change what the
  /// hook corrects — values and stats are bit-identical with metrics on or
  /// off. (`obs.tracer` is carried for uniformity; the hook emits no spans.)
  ProtectionHook(const ModelConfig& config,
                 std::unique_ptr<DetectionScheme> scheme, ObsSinks obs = {});

  /// Convenience: a range-restriction scheme resolved from its spec.
  /// `offline_bounds` may be empty for online schemes / kNone.
  ProtectionHook(const ModelConfig& config, SchemeSpec spec,
                 BoundStore offline_bounds = BoundStore{},
                 MetricsRegistry* metrics = nullptr);

  ~ProtectionHook() override;
  ProtectionHook(ProtectionHook&&) = default;
  ProtectionHook& operator=(ProtectionHook&&) = default;

  void on_generation_begin() override;
  void on_output(const HookContext& ctx, std::span<float> values) override;

  /// Fused-epilogue negotiation: delegates to the scheme's plan_epilogue
  /// for covered sites (uncovered sites and non-fusable schemes keep the
  /// hook path) and sets epi.record_events when clip magnitudes or the
  /// clip log need per-event originals. absorb_fused reproduces on_output's
  /// accounting — per-kind tallies, protect.* counters, clip events,
  /// first-detect — exactly, from the kernel's tally.
  bool plan_fused(const HookContext& ctx, KernelEpilogue& epi) override;
  void absorb_fused(const HookContext& ctx, std::span<const float> values,
                    const KernelEpilogue& epi,
                    const EpilogueTally& tally) override;

  /// Total corrections across all layer kinds. The tallies are kept per
  /// kind internally; this façade sums them, preserving the exact values
  /// the single-struct accounting produced.
  ProtectionStats stats() const;

  /// Corrections attributed to one layer kind.
  const ProtectionStats& stats(LayerKind kind) const {
    return kind_stats_[static_cast<std::size_t>(kind)];
  }

  /// The driven scheme's resolved spec (coverage, policy, scaling).
  const SchemeSpec& spec() const;

  /// The scheme under the driver (for scheme-specific inspection).
  DetectionScheme& scheme() { return *scheme_; }
  const DetectionScheme& scheme() const { return *scheme_; }

  /// Online bounds captured during the current/most recent generation
  /// (valid after the first-token phase of an FT2 run; an empty store for
  /// schemes without online bounds).
  const BoundStore& online_bounds() const;

  /// Offline (profiled) bounds the scheme protects with; invalid entries
  /// for online schemes constructed without profiles.
  const BoundStore& offline_bounds() const;

  /// Out-of-bound events recorded this generation (only while clip capture
  /// is on — see set_clip_capture).
  const std::vector<ClipEvent>& clip_events() const { return clip_log_; }

  /// Earliest sequence position where any correction fired this generation
  /// (-1 = none). During chunked prefill the granularity is the dispatched
  /// span's first position; decode dispatches are single-position, so the
  /// value is exact wherever detection latency matters.
  long long first_detect_position() const { return first_detect_pos_; }

  /// Records every out-of-bound original value so capture_state() can carry
  /// it. Off by default (the common path stays allocation-free); turn on
  /// for the fault-free recording run of a prefix-reuse campaign.
  void set_clip_capture(bool on) { capture_clips_ = on; }

  /// Captures the per-generation state at the current token boundary.
  ProtectionState capture_state() const;

  /// Restores captured state into this hook as if it had processed the
  /// recorded prefix itself: scheme-private state and per-kind tallies are
  /// reinstated, the prefix's protect.* counter increments are published to
  /// the metrics registry, and recorded clips replay into the
  /// clip-magnitude histograms. Call after on_generation_begin (which
  /// resets scheme state), e.g. from InferenceSession::resume_from's
  /// on_resume hook.
  void restore_state(const ProtectionState& state);

  /// Memory footprint of the per-site state this scheme stores (paper
  /// §5.2.2 — two bound floats per protected layer instance for the
  /// range-restriction family; checksum schemes report their calibration
  /// storage on top).
  std::size_t bound_memory_bytes() const;

  /// Number of protected layer instances (covered kinds x blocks).
  std::size_t protected_layer_count() const;

 private:
  /// protect.* handles for one covered layer kind (inert without metrics).
  struct KindMetrics {
    Counter checked;
    Counter nan;
    Counter oob;
    HistogramMetric clip_magnitude;
  };

  ModelConfig config_;
  std::unique_ptr<DetectionScheme> scheme_;
  std::array<bool, kLayerKindCount> covered_mask_{};
  std::array<ProtectionStats, kLayerKindCount> kind_stats_{};
  std::array<KindMetrics, kLayerKindCount> kind_metrics_{};
  bool capture_clips_ = false;
  std::vector<ClipEvent> clip_log_;
  long long first_detect_pos_ = -1;
};

}  // namespace ft2
