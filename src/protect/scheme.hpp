// Protection schemes: FT2 and the range-restriction baselines.
//
// Coverage follows the paper's Table 1:
//   Ranger         — activation-layer outputs only, clip-to-zero, no NaN fix.
//   MaxiMals       — attention-block and MLP outputs (OUT_PROJ, FC2,
//                    DOWN_PROJ), clip-to-zero, NaN fix, mild bound scaling.
//   Global Clipper — attention linear outputs V_PROJ and OUT_PROJ,
//                    clip-to-zero, NaN fix.
//   FT2            — all critical layers from the architectural heuristic,
//                    clip-to-BOUND, NaN fix, online first-token bounds x2.
//   FT2-Offline    — FT2 coverage/policy with offline-profiled bounds
//                    (the take-away #7 ablation).
// All baselines require offline-profiled bounds; only FT2 is online-only.
#pragma once

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "nn/hooks.hpp"
#include "obs/metrics.hpp"
#include "protect/bounds.hpp"
#include "protect/range_restriction.hpp"

namespace ft2 {

/// One out-of-bound correction, attributed to the layer kind and the
/// sequence position of the clipped value (forensics: campaign flight
/// records carry these so `ft2 report` can localize detections without
/// rerunning the trial).
struct ClipEvent {
  LayerKind kind = LayerKind::kQProj;
  std::size_t position = 0;  ///< sequence position of the clipped value
  float original = 0.0f;     ///< pre-correction value
};

/// Point-in-time snapshot of a ProtectionHook's per-generation state, taken
/// at a token boundary of a fault-free run and restored into a fresh hook
/// when a trial forks from that boundary (prefix-reuse campaigns). Carries
/// everything the hook accumulated over the skipped prefix: the online
/// first-token bounds, the per-kind correction tallies, and the individual
/// out-of-bound events (so clip-magnitude histograms replay exactly).
struct ProtectionState {
  BoundStore online_bounds;
  std::array<ProtectionStats, kLayerKindCount> kind_stats{};
  /// Out-of-bound events observed so far, in dispatch order (recorded only
  /// while clip capture is enabled on the source hook).
  std::vector<ClipEvent> clips;
  /// Earliest sequence position where any correction (NaN or out-of-bound)
  /// fired, -1 when none has.
  long long first_detect_pos = -1;
};

enum class SchemeKind {
  kNone = 0,
  kRanger,
  kMaxiMals,
  kGlobalClipper,
  kFt2,
  kFt2Offline,
};

constexpr const char* scheme_name(SchemeKind kind) {
  switch (kind) {
    case SchemeKind::kNone: return "none";
    case SchemeKind::kRanger: return "ranger";
    case SchemeKind::kMaxiMals: return "maximals";
    case SchemeKind::kGlobalClipper: return "global_clipper";
    case SchemeKind::kFt2: return "ft2";
    case SchemeKind::kFt2Offline: return "ft2_offline";
  }
  return "unknown";
}

inline const std::vector<SchemeKind>& all_schemes() {
  static const std::vector<SchemeKind> kinds = {
      SchemeKind::kNone,          SchemeKind::kRanger,
      SchemeKind::kMaxiMals,      SchemeKind::kGlobalClipper,
      SchemeKind::kFt2,           SchemeKind::kFt2Offline};
  return kinds;
}

/// Resolved protection parameters for one scheme on one architecture.
struct SchemeSpec {
  SchemeKind kind = SchemeKind::kNone;
  std::vector<LayerKind> covered;  ///< protected layer kinds
  ClipPolicy policy = ClipPolicy::kToZero;
  bool correct_nan = false;
  float bound_scale = 1.0f;
  bool online = false;             ///< first-token bounds (FT2) vs offline
  bool needs_offline_bounds = false;
  bool detect_only = false;        ///< count violations without correcting

  bool covers(LayerKind k) const;
};

/// Coverage/policy of `kind` for the given architecture.
SchemeSpec scheme_spec(SchemeKind kind, const ModelConfig& config);

/// The protection hook: applies a SchemeSpec during generation.
///
/// Offline schemes clamp every covered layer at every position using the
/// supplied profiled bounds. FT2 (online) records bounds during the
/// first-token phase (with NaN correction only) and protects subsequent
/// positions with those bounds scaled by `bound_scale`.
class ProtectionHook : public OutputHook {
 public:
  /// `offline_bounds` may be empty for online schemes / kNone. When
  /// `metrics` is non-null the hook publishes per-layer-kind event
  /// counters (protect.checked/nan/oob.<KIND>) and clip-magnitude
  /// histograms (protect.clip_magnitude.<KIND>) to it; metrics never
  /// change what the hook corrects — values and stats are bit-identical
  /// with metrics on or off.
  ProtectionHook(const ModelConfig& config, SchemeSpec spec,
                 BoundStore offline_bounds = BoundStore{},
                 MetricsRegistry* metrics = nullptr);

  void on_generation_begin() override;
  void on_output(const HookContext& ctx, std::span<float> values) override;

  /// Total corrections across all layer kinds. The tallies are kept per
  /// kind internally; this façade sums them, preserving the exact values
  /// the single-struct accounting produced.
  ProtectionStats stats() const;

  /// Corrections attributed to one layer kind.
  const ProtectionStats& stats(LayerKind kind) const {
    return kind_stats_[static_cast<std::size_t>(kind)];
  }

  const SchemeSpec& spec() const { return spec_; }

  /// Online bounds captured during the current/most recent generation
  /// (valid after the first-token phase of an FT2 run).
  const BoundStore& online_bounds() const { return online_bounds_; }

  /// Offline (profiled) bounds this hook protects with; invalid entries for
  /// online schemes constructed without profiles.
  const BoundStore& offline_bounds() const { return offline_bounds_; }

  /// Out-of-bound events recorded this generation (only while clip capture
  /// is on — see set_clip_capture).
  const std::vector<ClipEvent>& clip_events() const { return clip_log_; }

  /// Earliest sequence position where any correction fired this generation
  /// (-1 = none). During chunked prefill the granularity is the dispatched
  /// span's first position; decode dispatches are single-position, so the
  /// value is exact wherever detection latency matters.
  long long first_detect_position() const { return first_detect_pos_; }

  /// Records every out-of-bound original value so capture_state() can carry
  /// it. Off by default (the common path stays allocation-free); turn on
  /// for the fault-free recording run of a prefix-reuse campaign.
  void set_clip_capture(bool on) { capture_clips_ = on; }

  /// Captures the per-generation state at the current token boundary.
  ProtectionState capture_state() const;

  /// Restores captured state into this hook as if it had processed the
  /// recorded prefix itself: online bounds and per-kind tallies are merged
  /// in, the prefix's protect.* counter increments are published to the
  /// metrics registry, and recorded clips replay into the clip-magnitude
  /// histograms. Call after on_generation_begin (which resets online
  /// bounds), e.g. from InferenceSession::resume_from's on_resume hook.
  void restore_state(const ProtectionState& state);

  /// Memory footprint of the bounds this scheme stores (paper §5.2.2).
  std::size_t bound_memory_bytes() const;

  /// Number of protected layer instances (covered kinds x blocks).
  std::size_t protected_layer_count() const;

 private:
  /// protect.* handles for one covered layer kind (inert without metrics).
  struct KindMetrics {
    Counter checked;
    Counter nan;
    Counter oob;
    HistogramMetric clip_magnitude;
  };

  ModelConfig config_;
  SchemeSpec spec_;
  BoundStore offline_bounds_;
  BoundStore online_bounds_;
  std::array<bool, kLayerKindCount> covered_mask_{};
  std::array<ProtectionStats, kLayerKindCount> kind_stats_{};
  std::array<KindMetrics, kLayerKindCount> kind_metrics_{};
  bool capture_clips_ = false;
  std::vector<ClipEvent> clip_log_;
  long long first_detect_pos_ = -1;
};

}  // namespace ft2
