#include "protect/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "protect/critical.hpp"

namespace ft2 {

namespace {

struct AdaptiveState final : SchemeState {
  BoundStore online_bounds;
  std::array<std::size_t, kLayerKindCount> kind_adapts{};
};

SchemeSpec adaptive_spec(const ModelConfig& config,
                         const AdaptiveFt2Options& options) {
  SchemeSpec spec = scheme_spec(SchemeKind::kFt2, config);
  spec.name = "ft2-adaptive";
  spec.bound_scale = options.scale;
  return spec;
}

}  // namespace

AdaptiveFt2Scheme::AdaptiveFt2Scheme(const ModelConfig& config,
                                     AdaptiveFt2Options options)
    : DetectionScheme(adaptive_spec(config, options)),
      options_(options),
      online_bounds_(config) {}

void AdaptiveFt2Scheme::bind_metrics(MetricsRegistry& metrics) {
  for (LayerKind k : spec().covered) {
    adapt_counters_[static_cast<std::size_t>(k)] = metrics.counter(
        "protect.adapt." + std::string(layer_kind_name(k)));
  }
}

void AdaptiveFt2Scheme::begin_generation() { online_bounds_.reset(); }

void AdaptiveFt2Scheme::detect_and_correct(const HookContext& ctx,
                                           std::span<float> values,
                                           ProtectionStats& delta,
                                           ClipObserver* observer) {
  if (ctx.first_token_phase) {
    // Identical to FT2's first-token phase: NaN-only correction while the
    // bounds record.
    delta.values_checked = values.size();
    delta.nan_corrected = correct_nan_to_zero(values);
    online_bounds_.at(ctx.site).observe_span(values);
    return;
  }

  // Pre-correction span extremes (NaN compares false: contributes to
  // neither) — the same scan the drift monitor uses for headroom.
  float mn = std::numeric_limits<float>::infinity();
  float mx = -std::numeric_limits<float>::infinity();
  for (float v : values) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }

  Bounds& raw = online_bounds_.at(ctx.site);
  const Bounds enforced = raw.scaled(spec_.bound_scale);
  range_restrict(values, enforced, spec_.policy, spec_.correct_nan, &delta,
                 spec_.detect_only, observer);

  // Re-profile only on clean dispatches: a corrected excursion is a
  // suspected fault and must not widen the bounds it violated.
  if (delta.nan_corrected != 0 || delta.oob_corrected != 0) return;
  if (!enforced.valid()) return;
  double usage = 0.0;
  if (mx > 0.0f && enforced.hi > 0.0f) {
    usage = std::max(
        usage, static_cast<double>(mx) / static_cast<double>(enforced.hi));
  }
  if (mn < 0.0f && enforced.lo < 0.0f) {
    usage = std::max(
        usage, static_cast<double>(mn) / static_cast<double>(enforced.lo));
  }
  const double headroom = std::max(0.0, 1.0 - usage);
  if (headroom > static_cast<double>(options_.threshold)) return;
  raw.observe(mn);
  raw.observe(mx);
  const std::size_t kind = static_cast<std::size_t>(ctx.site.kind);
  ++adapts_;
  ++kind_adapts_[kind];
  adapt_counters_[kind].inc();
}

std::shared_ptr<const SchemeState> AdaptiveFt2Scheme::capture_state() const {
  auto state = std::make_shared<AdaptiveState>();
  state->online_bounds = online_bounds_;
  state->kind_adapts = kind_adapts_;
  return state;
}

void AdaptiveFt2Scheme::restore_state(const SchemeState* state) {
  const auto* adaptive = dynamic_cast<const AdaptiveState*>(state);
  if (adaptive == nullptr) return;
  online_bounds_ = adaptive->online_bounds;
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    const std::size_t n = adaptive->kind_adapts[k];
    if (n == 0) continue;
    kind_adapts_[k] += n;
    adapts_ += n;
    adapt_counters_[k].inc(n);
  }
}

}  // namespace ft2
