#include "protect/bounds_io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace ft2 {

LayerKind layer_kind_from_name(const std::string& name) {
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    const auto kind = static_cast<LayerKind>(k);
    if (name == layer_kind_name(kind)) return kind;
  }
  throw Error("unknown layer kind name: " + name);
}

void save_bounds(const std::string& path, const BoundStore& bounds) {
  std::ofstream os(path, std::ios::trunc);
  FT2_CHECK_MSG(os.good(), "cannot open bounds file for write: " << path);
  os << "ft2-bounds v1 " << bounds.n_blocks() << "\n";
  char lo_buf[64], hi_buf[64], ty_buf[64];
  for (std::size_t b = 0; b < bounds.n_blocks(); ++b) {
    for (std::size_t k = 0; k < kLayerKindCount; ++k) {
      const LayerSite site{static_cast<int>(b), static_cast<LayerKind>(k)};
      const Bounds& bd = bounds.at(site);
      if (!bd.valid()) continue;
      std::snprintf(lo_buf, sizeof(lo_buf), "%a", static_cast<double>(bd.lo));
      std::snprintf(hi_buf, sizeof(hi_buf), "%a", static_cast<double>(bd.hi));
      std::snprintf(ty_buf, sizeof(ty_buf), "%a",
                    static_cast<double>(bd.typical));
      os << b << ' ' << layer_kind_name(site.kind) << ' ' << lo_buf << ' '
         << hi_buf << ' ' << ty_buf << '\n';
    }
  }
  FT2_CHECK_MSG(os.good(), "bounds write failed: " << path);
}

BoundStore load_bounds(const std::string& path, const ModelConfig& config) {
  std::ifstream is(path);
  FT2_CHECK_MSG(is.good(), "cannot open bounds file: " << path);
  std::string magic, version;
  std::size_t n_blocks = 0;
  is >> magic >> version >> n_blocks;
  FT2_CHECK_MSG(magic == "ft2-bounds" && version == "v1",
                "bad bounds header in " << path);
  FT2_CHECK_MSG(n_blocks == config.n_blocks,
                "bounds file has " << n_blocks << " blocks, model has "
                                   << config.n_blocks);
  BoundStore bounds(config);
  std::size_t block;
  std::string kind_name, lo_str, hi_str, ty_str;
  while (is >> block >> kind_name >> lo_str >> hi_str >> ty_str) {
    FT2_CHECK_MSG(block < n_blocks, "bounds block out of range: " << block);
    const LayerKind kind = layer_kind_from_name(kind_name);
    Bounds& bd = bounds.at({static_cast<int>(block), kind});
    bd.lo = std::strtof(lo_str.c_str(), nullptr);
    bd.hi = std::strtof(hi_str.c_str(), nullptr);
    bd.typical = std::strtof(ty_str.c_str(), nullptr);
    FT2_CHECK_MSG(bd.valid(), "invalid bounds entry in " << path);
  }
  return bounds;
}

}  // namespace ft2
