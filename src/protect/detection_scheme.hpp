// The pluggable half of the protection layer: DetectionScheme and the
// string-keyed scheme registry.
//
// A DetectionScheme implements one detection/correction algorithm behind a
// small virtual interface; the ProtectionHook driver (protect/scheme.hpp)
// owns the shared accounting around it. New detectors plug in by
// subclassing DetectionScheme and registering a factory, after which every
// consumer — `ft2 campaign --scheme`, serve-bench, the example zoo loops —
// resolves them by name with optional `name:key=value,...` parameters.
//
// Built-in registry entries:
//   none | ranger | maximals | global_clipper | ft2 | ft2_offline
//       — the range-restriction family (RangeRestrictScheme; parameters
//         `scale`, `detect_only`);
//   abft-linear  — per-row column-sum checksums on linear-layer outputs
//                  with first-token statistical calibration (ReaLM-style
//                  statistical ABFT; parameters `margin`, `scale`);
//   ft2-adaptive — FT2 bounds that re-profile online when in-bounds
//                  headroom crosses a near-clip threshold (parameters
//                  `threshold`, `scale`).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "protect/scheme.hpp"

namespace ft2 {

/// Opaque immutable snapshot of a scheme's private per-generation state
/// (online bounds, checksum calibration, ...). Captured at token boundaries
/// of fault-free recordings and shared by every trial that forks there.
class SchemeState {
 public:
  virtual ~SchemeState() = default;
};

/// One detection/correction algorithm. Implementations own only their
/// algorithm state; tallies, metrics publication, clip logging and
/// first-detect accounting live in the ProtectionHook driver.
class DetectionScheme {
 public:
  virtual ~DetectionScheme() = default;

  /// Resolved coverage/policy descriptor (drives the hook's covered-kind
  /// dispatch, drift monitoring and reporting).
  const SchemeSpec& spec() const { return spec_; }

  /// Called once when the driver is constructed with a live registry so
  /// the scheme can create handles for its private protect.* metrics.
  /// (Standard checked/nan/oob counters and clip-magnitude histograms are
  /// published by the driver — do not duplicate them here.)
  virtual void bind_metrics(MetricsRegistry& metrics) { (void)metrics; }

  /// Resets per-generation state (the driver forwards
  /// OutputHook::on_generation_begin).
  virtual void begin_generation() {}

  /// Detects (and corrects, unless spec().detect_only) faults in one
  /// dispatched span. `values` is the [ctx.n_positions x width] row-major
  /// output view, mutated in place. Report work through `delta`
  /// (values_checked / nan_corrected / oob_corrected for this dispatch
  /// only) and call `observer->on_oob(original, index)` (null-checked) for
  /// every out-of-bound correction so the driver can log clip events and
  /// magnitudes.
  virtual void detect_and_correct(const HookContext& ctx,
                                  std::span<float> values,
                                  ProtectionStats& delta,
                                  ClipObserver* observer) = 0;

  /// Fused-epilogue negotiation (tensor/dispatch.hpp). A scheme whose
  /// detect_and_correct can be expressed as a per-element KernelEpilogue
  /// (quantize → NaN fix → clip against constant bounds) fills in `epi`
  /// (everything except `quantize` and `record_events`, which the driver
  /// owns) and returns true; the GEMM kernel then applies the protection
  /// in-register as tiles are stored, and the driver calls absorb_epilogue
  /// with the finished span plus the kernel's tally. The contract is strict
  /// bit-equality: planned epilogue + absorb must reproduce exactly the
  /// values, counts and clip events detect_and_correct would have produced
  /// on the same dispatch. Schemes with cross-element logic (checksums,
  /// adaptive re-profiling) simply return false and keep the hook path.
  virtual bool plan_epilogue(const HookContext& ctx,
                             KernelEpilogue& epi) const {
    (void)ctx;
    (void)epi;
    return false;
  }
  /// Post-dispatch completion of a planned epilogue: `values` is the
  /// finished (quantized/corrected) span. RangeRestrictScheme uses this to
  /// fold first-token spans into its online bounds — over the final values
  /// in flat order, exactly as the hook path's observe_span would.
  virtual void absorb_epilogue(const HookContext& ctx,
                               std::span<const float> values,
                               const KernelEpilogue& epi,
                               const EpilogueTally& tally) {
    (void)ctx;
    (void)values;
    (void)epi;
    (void)tally;
  }

  /// Snapshot of scheme-private state at a token boundary (null when the
  /// scheme carries none).
  virtual std::shared_ptr<const SchemeState> capture_state() const {
    return nullptr;
  }

  /// Reinstates a capture_state() snapshot into a freshly begun generation
  /// as if the scheme had processed the recorded prefix itself, including
  /// re-publishing any scheme-private metric increments the prefix
  /// accumulated. `state` may be null (no-op).
  virtual void restore_state(const SchemeState* state) { (void)state; }

  /// Bounds views for monitors/tests; schemes without the corresponding
  /// store return a shared empty store.
  virtual const BoundStore& online_bounds() const { return empty_bounds(); }
  virtual const BoundStore& offline_bounds() const { return empty_bounds(); }

  /// Per-site state footprint (paper §5.2.2). Default: two bound floats
  /// per covered layer instance.
  virtual std::size_t state_memory_bytes(const ModelConfig& config) const {
    return spec_.covered.size() * config.n_blocks * 2 * sizeof(float);
  }

 protected:
  explicit DetectionScheme(SchemeSpec spec) : spec_(std::move(spec)) {}
  static const BoundStore& empty_bounds();

  SchemeSpec spec_;
};

/// The built-in range-restriction scheme (Table 1 family): offline schemes
/// clamp every covered layer at every position using profiled bounds; FT2
/// (online) records bounds during the first-token phase (with NaN
/// correction only) and protects subsequent positions with those bounds
/// scaled by spec().bound_scale.
class RangeRestrictScheme final : public DetectionScheme {
 public:
  /// Throws ft2::Error when `spec.needs_offline_bounds` and
  /// `offline_bounds` is empty; an empty store otherwise degrades to
  /// invalid (never-observed) bounds, i.e. NaN-only correction.
  RangeRestrictScheme(const ModelConfig& config, SchemeSpec spec,
                      BoundStore offline_bounds = BoundStore{});

  void begin_generation() override;
  void detect_and_correct(const HookContext& ctx, std::span<float> values,
                          ProtectionStats& delta,
                          ClipObserver* observer) override;
  bool plan_epilogue(const HookContext& ctx,
                     KernelEpilogue& epi) const override;
  void absorb_epilogue(const HookContext& ctx, std::span<const float> values,
                       const KernelEpilogue& epi,
                       const EpilogueTally& tally) override;
  std::shared_ptr<const SchemeState> capture_state() const override;
  void restore_state(const SchemeState* state) override;
  const BoundStore& online_bounds() const override { return online_bounds_; }
  const BoundStore& offline_bounds() const override { return offline_bounds_; }

 private:
  BoundStore offline_bounds_;
  BoundStore online_bounds_;
};

/// Free-form scheme parameters parsed from `name:key=value,...`.
using SchemeParams = std::map<std::string, std::string>;

/// Factory helpers for parameter validation/conversion. Unknown keys and
/// malformed values throw ft2::Error naming the scheme.
float scheme_param_float(const SchemeParams& params, const std::string& key,
                         float fallback, std::string_view scheme);
bool scheme_param_bool(const SchemeParams& params, const std::string& key,
                       bool fallback, std::string_view scheme);
void require_known_params(const SchemeParams& params,
                          std::initializer_list<std::string_view> known,
                          std::string_view scheme);

/// One registry entry: name, help line, and the factory.
struct SchemeInfo {
  std::string name;
  std::string summary;  ///< one-liner for CLI help / `ft2 scheme-names`
  /// The factory must be handed profiled bounds (campaigns/CLI profile or
  /// load them before instantiating).
  bool needs_offline_bounds = false;
  std::function<std::unique_ptr<DetectionScheme>(
      const ModelConfig& config, const SchemeParams& params,
      BoundStore offline_bounds)>
      make;
};

/// Process-wide scheme registry. Built-ins are registered on first use;
/// user code may add() custom schemes at startup (name must be unique).
/// Registration order is enumeration order.
class SchemeRegistry {
 public:
  static SchemeRegistry& instance();

  /// Throws ft2::Error on a duplicate or empty name.
  void add(SchemeInfo info);

  const SchemeInfo* find(std::string_view name) const;
  const std::vector<SchemeInfo>& entries() const { return entries_; }

 private:
  SchemeRegistry();
  std::vector<SchemeInfo> entries_;
};

/// Names of every registered scheme, in registration order (built-ins
/// first). Replaces the old hard-coded all_schemes() enum list: CLI help
/// and zoo loops enumerate the registry, so new schemes appear everywhere
/// automatically.
std::vector<std::string> all_scheme_names();

/// A parsed scheme reference: registry name plus parameters.
struct SchemeRef {
  std::string name;
  SchemeParams params;

  /// Parses `name` or `name:key=value,key=value`. Throws ft2::Error for an
  /// unknown scheme (listing the registered names) or malformed syntax.
  static SchemeRef parse(std::string_view text);

  /// Canonical display form (`ft2-adaptive:threshold=0.05`); parameters in
  /// map (sorted-key) order. Campaigns thread this into
  /// TrialRecord::scheme.
  std::string display() const;

  bool needs_offline_bounds() const;

  /// Instantiates the scheme via its registered factory.
  std::unique_ptr<DetectionScheme> instantiate(
      const ModelConfig& config, BoundStore offline_bounds = BoundStore{}) const;
};

}  // namespace ft2
