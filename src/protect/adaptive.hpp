// ft2-adaptive: FT2 online bounds with closed-loop re-profiling.
//
// PR 5's BoundDriftMonitor showed that first-token bounds can drift tight
// over a long generation: benign activations creep toward the enforced
// bounds (headroom -> 0) until legitimate values get clipped. This scheme
// closes the loop. It behaves exactly like FT2 (first-token bound
// recording, clip-to-bound x scale afterwards) but measures, per dispatch,
// the same headroom the drift monitor reports; when a *clean* dispatch
// (no NaN, nothing out of bounds) lands within `threshold` of the enforced
// bounds, the observed span extremes are merged back into the raw online
// bounds — re-profiling them online so the enforced interval keeps a
// safety margin ahead of the benign distribution. Faulty dispatches are
// never absorbed: anything corrected is excluded from re-profiling, so a
// detected excursion cannot widen the bounds. Each widening increments
// protect.adapt.<KIND>.
#pragma once

#include "protect/detection_scheme.hpp"

namespace ft2 {

struct AdaptiveFt2Options {
  /// Near-clip headroom threshold (the drift monitor's default): a clean
  /// dispatch with headroom <= threshold triggers a re-profile.
  float threshold = 0.10f;
  /// Bound scaling, as FT2 (enforced = raw x scale).
  float scale = 2.0f;
};

class AdaptiveFt2Scheme final : public DetectionScheme {
 public:
  explicit AdaptiveFt2Scheme(const ModelConfig& config,
                             AdaptiveFt2Options options = {});

  void bind_metrics(MetricsRegistry& metrics) override;
  void begin_generation() override;
  void detect_and_correct(const HookContext& ctx, std::span<float> values,
                          ProtectionStats& delta,
                          ClipObserver* observer) override;
  std::shared_ptr<const SchemeState> capture_state() const override;
  void restore_state(const SchemeState* state) override;
  const BoundStore& online_bounds() const override { return online_bounds_; }

  /// Re-profile events so far (across generations, like the driver's
  /// per-kind tallies).
  std::size_t adapt_events() const { return adapts_; }

 private:
  AdaptiveFt2Options options_;
  BoundStore online_bounds_;
  std::array<Counter, kLayerKindCount> adapt_counters_{};
  std::array<std::size_t, kLayerKindCount> kind_adapts_{};
  std::size_t adapts_ = 0;
};

}  // namespace ft2
