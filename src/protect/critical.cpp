#include "protect/critical.hpp"

#include <functional>

#include "common/check.hpp"

namespace ft2 {
namespace {

/// DFS from node `start`'s successors: returns true when some path reaches a
/// linear (or the next-linear sentinel) without crossing a guard op.
bool reaches_linear_unguarded(const LayerGraph& g, int start) {
  std::vector<char> visited(static_cast<std::size_t>(g.size()), 0);
  std::function<bool(int)> dfs = [&](int n) -> bool {
    const OpNode& node = g.node(n);
    if (node.op == OpKind::kLinear || node.op == OpKind::kNextLinear) {
      return true;  // reached the next linear layer with no guard in between
    }
    if (is_guard_op(node.op)) return false;  // this path is guarded
    if (visited[static_cast<std::size_t>(n)]) return false;
    visited[static_cast<std::size_t>(n)] = 1;
    for (int s : node.successors) {
      if (dfs(s)) return true;
    }
    return false;
  };
  for (int s : g.node(start).successors) {
    if (dfs(s)) return true;
  }
  return false;
}

}  // namespace

bool layer_is_critical(const LayerGraph& g, LayerKind kind) {
  const int node = g.find_linear(kind);
  FT2_CHECK_MSG(node >= 0, "layer kind not present in graph: "
                               << layer_kind_name(kind));
  return reaches_linear_unguarded(g, node);
}

std::vector<LayerKind> critical_layers(const ModelConfig& config) {
  const LayerGraph g = LayerGraph::build(config);
  std::vector<LayerKind> out;
  for (LayerKind kind : config.block_layers()) {
    if (!is_linear_layer(kind)) continue;
    if (layer_is_critical(g, kind)) out.push_back(kind);
  }
  return out;
}

std::vector<LayerKind> non_critical_layers(const ModelConfig& config) {
  const LayerGraph g = LayerGraph::build(config);
  std::vector<LayerKind> out;
  for (LayerKind kind : config.block_layers()) {
    if (!is_linear_layer(kind)) continue;
    if (!layer_is_critical(g, kind)) out.push_back(kind);
  }
  return out;
}

}  // namespace ft2
