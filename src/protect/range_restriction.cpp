#include "protect/range_restriction.hpp"

#include <cmath>

namespace ft2 {

void range_restrict(std::span<float> values, const Bounds& bounds,
                    ClipPolicy policy, bool correct_nan,
                    ProtectionStats* stats, bool detect_only,
                    ClipObserver* observer) {
  if (!bounds.valid()) {
    if (correct_nan) {
      std::size_t n = 0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (!std::isnan(values[i])) continue;
        if (!detect_only) values[i] = 0.0f;
        ++n;
        if (observer != nullptr) observer->on_nan(i);
      }
      if (stats != nullptr) {
        stats->values_checked += values.size();
        stats->nan_corrected += n;
      }
    }
    return;
  }
  std::size_t nan_fixed = 0;
  std::size_t oob_fixed = 0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    float& v = values[i];
    if (std::isnan(v)) {
      if (correct_nan) {
        if (!detect_only) v = 0.0f;
        ++nan_fixed;
        if (observer != nullptr) observer->on_nan(i);
      }
      continue;
    }
    if (v > bounds.hi || v < bounds.lo) {
      if (observer != nullptr) observer->on_oob(v, i);
      if (!detect_only) {
        switch (policy) {
          case ClipPolicy::kToBound:
            v = v > bounds.hi ? bounds.hi : bounds.lo;
            break;
          case ClipPolicy::kToZero:
            v = 0.0f;
            break;
          case ClipPolicy::kToTypical:
            v = bounds.typical;
            break;
        }
      }
      ++oob_fixed;
    }
  }
  if (stats != nullptr) {
    stats->values_checked += values.size();
    stats->nan_corrected += nan_fixed;
    stats->oob_corrected += oob_fixed;
  }
}

std::size_t correct_nan_to_zero(std::span<float> values) {
  std::size_t n = 0;
  for (float& v : values) {
    if (std::isnan(v)) {
      v = 0.0f;
      ++n;
    }
  }
  return n;
}

}  // namespace ft2
