// Offline bound profiling and activation-distribution profiling.
//
// Offline profiling reproduces what the baselines require: fault-free
// forward passes over a profiling dataset, recording per-site min/max.
// The distribution profiler backs Figs. 8 and 12 (value histograms and the
// NaN-vulnerable fraction per layer).
#pragma once

#include <map>

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "numeric/stats.hpp"
#include "protect/bounds.hpp"

namespace ft2 {

/// Hook that records min/max of every layer output it sees.
class BoundRecorderHook : public OutputHook {
 public:
  explicit BoundRecorderHook(const ModelConfig& config) : bounds_(config) {}

  void on_output(const HookContext& ctx, std::span<float> values) override {
    bounds_.at(ctx.site).observe_span(values);
  }

  const BoundStore& bounds() const { return bounds_; }
  BoundStore take_bounds() { return std::move(bounds_); }

 private:
  BoundStore bounds_;
};

/// Configuration for offline bound profiling (the single entry point that
/// replaced the profile_offline_bounds / _with_typical / _quantile trio).
struct OfflineProfileOptions {
  std::size_t n_inputs = 16;        ///< profiling samples to run
  std::uint64_t seed = 1;           ///< dataset generator seed
  std::size_t max_new_tokens = 24;  ///< decode length per sample
  /// Fill each site's Bounds::typical with the empirical median (the
  /// profile the Dr.DNA-style clip-to-typical policy needs).
  bool with_typical = false;
  /// 0 = min/max bounds; q in (0, 0.5) = [q, 1-q] empirical quantile
  /// bounds (tighter bounds catch smaller faulty deviations but clip the
  /// benign tail — the precision/recall knob; typical is always the
  /// median when quantile profiling is on).
  double quantile = 0.0;
  float stats_range = 16.0f;   ///< histogram range for typical/quantile
  std::size_t stats_bins = 64; ///< histogram bins for typical/quantile
  /// Blocked-prefill chunk for the profiling runs (purely a speed knob —
  /// chunking is bit-exact, so recorded bounds do not depend on it).
  std::size_t prefill_chunk = 32;
};

/// Runs fault-free generations of `gen`'s samples through the model and
/// returns per-site bounds — the classical offline profiling step of
/// Ranger/MaxiMals/Global Clipper (paper §3.2). See OfflineProfileOptions
/// for the typical/quantile variants.
BoundStore profile_offline_bounds(const TransformerLM& model,
                                  const DatasetGenerator& gen,
                                  const OfflineProfileOptions& options = {});

/// Per-site activation statistics: histogram + NaN-vulnerable fraction.
class ActivationStatsHook : public OutputHook {
 public:
  /// Histograms span [-range, range] with `bins` bins.
  ActivationStatsHook(float range = 8.0f, std::size_t bins = 64)
      : range_(range), bins_(bins) {}

  void on_output(const HookContext& ctx, std::span<float> values) override;

  struct SiteStats {
    Histogram histogram;
    RunningStats stats;
    std::size_t nan_vulnerable = 0;  ///< |v| in (1,2): FP16 exponent 01111
    std::size_t total = 0;

    explicit SiteStats(float range, std::size_t bins)
        : histogram(-range, range, bins) {}

    double nan_vulnerable_fraction() const {
      return total == 0 ? 0.0
                        : static_cast<double>(nan_vulnerable) /
                              static_cast<double>(total);
    }
  };

  /// Aggregated stats for a layer kind across all blocks (empty optional ->
  /// kind never observed). Key: (block, kind) pairs are kept separately too.
  const SiteStats* find(const LayerSite& site) const;
  SiteStats aggregate(LayerKind kind) const;
  std::vector<LayerSite> observed_sites() const;

 private:
  float range_;
  std::size_t bins_;
  std::map<std::pair<int, int>, SiteStats> sites_;
};

}  // namespace ft2
