// Offline bound profiling and activation-distribution profiling.
//
// Offline profiling reproduces what the baselines require: fault-free
// forward passes over a profiling dataset, recording per-site min/max.
// The distribution profiler backs Figs. 8 and 12 (value histograms and the
// NaN-vulnerable fraction per layer).
#pragma once

#include <map>

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "numeric/stats.hpp"
#include "protect/bounds.hpp"

namespace ft2 {

/// Hook that records min/max of every layer output it sees.
class BoundRecorderHook : public OutputHook {
 public:
  explicit BoundRecorderHook(const ModelConfig& config) : bounds_(config) {}

  void on_output(const HookContext& ctx, std::span<float> values) override {
    bounds_.at(ctx.site).observe_span(values);
  }

  const BoundStore& bounds() const { return bounds_; }
  BoundStore take_bounds() { return std::move(bounds_); }

 private:
  BoundStore bounds_;
};

/// Runs `n_inputs` fault-free generations of `gen`'s samples through the
/// model and returns per-site bounds — the classical offline profiling step
/// of Ranger/MaxiMals/Global Clipper (paper §3.2).
BoundStore profile_offline_bounds(const TransformerLM& model,
                                  const DatasetGenerator& gen,
                                  std::size_t n_inputs, std::uint64_t seed,
                                  std::size_t max_new_tokens = 24);

/// Like profile_offline_bounds, but additionally fills each site's
/// `typical` value with the empirical median of its activations (the
/// profile the Dr.DNA-style clip-to-typical policy needs).
BoundStore profile_offline_bounds_with_typical(
    const TransformerLM& model, const DatasetGenerator& gen,
    std::size_t n_inputs, std::uint64_t seed,
    std::size_t max_new_tokens = 24);

/// Quantile bounds: [q, 1-q] empirical quantiles instead of min/max.
/// Tighter bounds catch smaller faulty deviations but clip the benign tail
/// — the precision/recall knob of range restriction (ablation material;
/// q = 0 degenerates to min/max). `typical` is filled with the median.
BoundStore profile_offline_bounds_quantile(
    const TransformerLM& model, const DatasetGenerator& gen,
    std::size_t n_inputs, std::uint64_t seed, double q,
    std::size_t max_new_tokens = 24);

/// Per-site activation statistics: histogram + NaN-vulnerable fraction.
class ActivationStatsHook : public OutputHook {
 public:
  /// Histograms span [-range, range] with `bins` bins.
  ActivationStatsHook(float range = 8.0f, std::size_t bins = 64)
      : range_(range), bins_(bins) {}

  void on_output(const HookContext& ctx, std::span<float> values) override;

  struct SiteStats {
    Histogram histogram;
    RunningStats stats;
    std::size_t nan_vulnerable = 0;  ///< |v| in (1,2): FP16 exponent 01111
    std::size_t total = 0;

    explicit SiteStats(float range, std::size_t bins)
        : histogram(-range, range, bins) {}

    double nan_vulnerable_fraction() const {
      return total == 0 ? 0.0
                        : static_cast<double>(nan_vulnerable) /
                              static_cast<double>(total);
    }
  };

  /// Aggregated stats for a layer kind across all blocks (empty optional ->
  /// kind never observed). Key: (block, kind) pairs are kept separately too.
  const SiteStats* find(const LayerSite& site) const;
  SiteStats aggregate(LayerKind kind) const;
  std::vector<LayerSite> observed_sites() const;

 private:
  float range_;
  std::size_t bins_;
  std::map<std::pair<int, int>, SiteStats> sites_;
};

}  // namespace ft2
