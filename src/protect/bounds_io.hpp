// BoundStore (de)serialization.
//
// Text format, one line per valid site:
//   ft2-bounds v1 <n_blocks>
//   <block> <layer-kind-name> <lo-hex> <hi-hex>
// Floats are stored as hexfloat so round trips are exact. Lets the CLI
// split offline profiling from campaign runs, and lets users ship bounds
// with deployed models.
#pragma once

#include <string>

#include "protect/bounds.hpp"

namespace ft2 {

void save_bounds(const std::string& path, const BoundStore& bounds);

/// Loads bounds saved by save_bounds; throws ft2::Error on malformed files
/// or a block-count mismatch with `config`.
BoundStore load_bounds(const std::string& path, const ModelConfig& config);

/// Parses a layer-kind name ("V_PROJ", ...). Throws on unknown names.
LayerKind layer_kind_from_name(const std::string& name);

}  // namespace ft2
