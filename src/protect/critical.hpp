// FT2's critical-layer identification heuristic (paper §4.1.2).
//
// "A layer is deemed critical if no scaling operation or activation layer is
// present before the next linear layer." The analyzer walks the block's
// dataflow graph (nn/layer_graph.hpp) from each linear layer's output: if
// any path reaches another linear layer (including the next block's first
// projection / lm_head, modelled by the sentinel node) without crossing a
// guard op (activation or attention scaling+softmax), the layer is critical.
#pragma once

#include <vector>

#include "nn/layer_graph.hpp"

namespace ft2 {

/// True if the linear layer `kind` is critical in graph `g`.
bool layer_is_critical(const LayerGraph& g, LayerKind kind);

/// All critical linear layer kinds of `config`'s architecture, in block
/// execution order.
std::vector<LayerKind> critical_layers(const ModelConfig& config);

/// All non-critical linear layer kinds.
std::vector<LayerKind> non_critical_layers(const ModelConfig& config);

}  // namespace ft2
