// The range-restriction correction kernel.
//
// Two correction policies exist in the literature:
//  * kToZero  — clip out-of-bound neurons to 0 (CNN-era schemes: Ranger,
//               MaxiMals, Global Clipper);
//  * kToBound — clip to the violated bound (FT2's choice, take-away #8:
//               generative LLMs legitimately produce large neuron values,
//               so zeroing an outlier destroys information).
// NaN handling is separate because NaNs compare false against any bound.
#pragma once

#include <cstddef>
#include <span>

#include "protect/bounds.hpp"

namespace ft2 {

enum class ClipPolicy {
  kToBound,    ///< FT2: clip to the violated bound
  kToZero,     ///< CNN-era schemes: zero the outlier
  kToTypical,  ///< Dr.DNA-style: replace with a typical (median) value
};

struct ProtectionStats {
  std::size_t values_checked = 0;
  std::size_t nan_corrected = 0;
  std::size_t oob_corrected = 0;

  void merge(const ProtectionStats& other) {
    values_checked += other.values_checked;
    nan_corrected += other.nan_corrected;
    oob_corrected += other.oob_corrected;
  }
};

/// Optional per-event observer for range_restrict: called once per
/// corrected (or, in detect_only mode, detected) value with the ORIGINAL
/// pre-correction value and its index into the dispatched span (callers
/// with multi-position spans map the index back to a sequence position).
/// Observers only observe — the correction result is identical with or
/// without one. Used to feed protect.* clip-magnitude histograms without
/// burdening the common no-observer path.
class ClipObserver {
 public:
  virtual ~ClipObserver() = default;
  virtual void on_nan(std::size_t index) { (void)index; }
  virtual void on_oob(float original, std::size_t index) {
    (void)original;
    (void)index;
  }
};

/// Applies range restriction in place. Infinities count as out-of-bound.
/// When `correct_nan` is false NaNs pass through untouched (schemes without
/// NaN handling). `stats` may be null. With `detect_only` the pass counts
/// violations without modifying any value (detector mode). `observer`, when
/// non-null, is notified of every NaN / out-of-bound event.
void range_restrict(std::span<float> values, const Bounds& bounds,
                    ClipPolicy policy, bool correct_nan,
                    ProtectionStats* stats, bool detect_only = false,
                    ClipObserver* observer = nullptr);

/// NaN-only correction (FT2's first-token phase and the Fig. 11 ablation):
/// replaces NaN with 0, leaves all finite values and infinities untouched.
std::size_t correct_nan_to_zero(std::span<float> values);

}  // namespace ft2
