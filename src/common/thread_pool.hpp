// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// The evaluation environment may expose a single hardware thread; the pool
// degrades to inline execution when constructed with <= 1 worker, which keeps
// call sites branch-free.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ft2 {

class ThreadPool {
 public:
  /// Creates `threads` workers. `threads == 0` means hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; fire-and-forget (synchronize via parallel_for or your
  /// own latch).
  void submit(std::function<void()> task);

  /// Runs fn(i) for i in [begin, end), blocking until all iterations finish.
  /// Work is split into contiguous chunks, one per worker. Exceptions inside
  /// fn propagate to the caller (first one wins). Safe to call from inside a
  /// pool task (nested calls execute inline instead of deadlocking on the
  /// queue); partitioning is independent of scheduling, so any kernel whose
  /// per-index work is deterministic stays bit-exact at every pool size.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// True when the calling thread is a worker of any ThreadPool.
  static bool on_worker_thread();

  /// Process-wide default pool (size from FT2_THREADS env or hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace ft2
