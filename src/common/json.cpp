#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace ft2 {

Json& Json::operator[](const std::string& key) {
  FT2_CHECK_MSG(is_object(), "Json::operator[] on non-object");
  auto& object = std::get<Object>(value_);
  for (auto& [k, v] : object.members) {
    if (k == key) return *v;
  }
  object.members.emplace_back(key, std::make_shared<Json>());
  return *object.members.back().second;
}

Json& Json::push_back(Json value) {
  FT2_CHECK_MSG(is_array(), "Json::push_back on non-array");
  auto& array = std::get<Array>(value_);
  array.items.push_back(std::make_shared<Json>(std::move(value)));
  return *array.items.back();
}

std::size_t Json::size() const {
  if (is_object()) return std::get<Object>(value_).members.size();
  if (is_array()) return std::get<Array>(value_).items.size();
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

namespace {

void write_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no inf/nan
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    os << static_cast<long long>(d);
  } else {
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << d;
    os << tmp.str();
  }
}

}  // namespace

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  const std::string pad =
      indent < 0 ? "" : std::string(static_cast<std::size_t>(indent) *
                                        static_cast<std::size_t>(depth + 1),
                                    ' ');
  const std::string close_pad =
      indent < 0 ? ""
                 : std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ');
  const char* nl = indent < 0 ? "" : "\n";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&value_)) {
    write_number(os, *d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    os << '"' << escape(*s) << '"';
  } else if (const Object* object = std::get_if<Object>(&value_)) {
    if (object->members.empty()) {
      os << "{}";
      return;
    }
    os << '{' << nl;
    for (std::size_t i = 0; i < object->members.size(); ++i) {
      os << pad << '"' << escape(object->members[i].first) << "\": ";
      object->members[i].second->write_impl(os, indent, depth + 1);
      if (i + 1 < object->members.size()) os << ',';
      os << nl;
    }
    os << close_pad << '}';
  } else if (const Array* array = std::get_if<Array>(&value_)) {
    if (array->items.empty()) {
      os << "[]";
      return;
    }
    os << '[' << nl;
    for (std::size_t i = 0; i < array->items.size(); ++i) {
      os << pad;
      array->items[i]->write_impl(os, indent, depth + 1);
      if (i + 1 < array->items.size()) os << ',';
      os << nl;
    }
    os << close_pad << ']';
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

double Json::as_double() const {
  const double* d = std::get_if<double>(&value_);
  FT2_CHECK_MSG(d != nullptr, "Json::as_double on non-number");
  return *d;
}

bool Json::as_bool() const {
  const bool* b = std::get_if<bool>(&value_);
  FT2_CHECK_MSG(b != nullptr, "Json::as_bool on non-bool");
  return *b;
}

const std::string& Json::as_string() const {
  const std::string* s = std::get_if<std::string>(&value_);
  FT2_CHECK_MSG(s != nullptr, "Json::as_string on non-string");
  return *s;
}

const Json* Json::find(const std::string& key) const {
  FT2_CHECK_MSG(is_object(), "Json::find on non-object");
  for (const auto& [k, v] : std::get<Object>(value_).members) {
    if (k == key) return v.get();
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* member = find(key);
  FT2_CHECK_MSG(member != nullptr, "Json object has no member '" << key << "'");
  return *member;
}

const Json& Json::at(std::size_t index) const {
  FT2_CHECK_MSG(is_array(), "Json::at(index) on non-array");
  const auto& items = std::get<Array>(value_).items;
  FT2_CHECK_MSG(index < items.size(),
                "Json array index " << index << " out of range (size "
                                    << items.size() << ")");
  return *items[index];
}

std::vector<std::string> Json::keys() const {
  FT2_CHECK_MSG(is_object(), "Json::keys on non-object");
  std::vector<std::string> out;
  for (const auto& [k, v] : std::get<Object>(value_).members) {
    out.push_back(k);
  }
  return out;
}

namespace {

/// Recursive-descent parser over one contiguous buffer. Depth is bounded so
/// adversarial nesting cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value(0);
    skip_ws();
    FT2_CHECK_MSG(pos_ == text_.size(),
                  "JSON: trailing characters at offset " << pos_);
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " +
                what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json object = Json::object();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      const std::string key = parse_string();
      expect(':');
      object[key] = parse_value(depth + 1);
      const char next = peek();
      ++pos_;
      if (next == '}') return object;
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json array = Json::array();
    if (peek() == ']') {
      ++pos_;
      return array;
    }
    while (true) {
      array.push_back(parse_value(depth + 1));
      const char next = peek();
      ++pos_;
      if (next == ']') return array;
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("invalid \\u escape");
            }
          }
          // UTF-8 encode (the writer only escapes control characters, so
          // surrogate pairs never round-trip through our own output; decode
          // them anyway for externally produced files).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ft2
