#include "common/json.hpp"

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace ft2 {

Json& Json::operator[](const std::string& key) {
  FT2_CHECK_MSG(is_object(), "Json::operator[] on non-object");
  auto& object = std::get<Object>(value_);
  for (auto& [k, v] : object.members) {
    if (k == key) return *v;
  }
  object.members.emplace_back(key, std::make_shared<Json>());
  return *object.members.back().second;
}

Json& Json::push_back(Json value) {
  FT2_CHECK_MSG(is_array(), "Json::push_back on non-array");
  auto& array = std::get<Array>(value_);
  array.items.push_back(std::make_shared<Json>(std::move(value)));
  return *array.items.back();
}

std::size_t Json::size() const {
  if (is_object()) return std::get<Object>(value_).members.size();
  if (is_array()) return std::get<Array>(value_).items.size();
  return 0;
}

std::string Json::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

namespace {

void write_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";  // JSON has no inf/nan
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    os << static_cast<long long>(d);
  } else {
    std::ostringstream tmp;
    tmp.precision(12);
    tmp << d;
    os << tmp.str();
  }
}

}  // namespace

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  const std::string pad =
      indent < 0 ? "" : std::string(static_cast<std::size_t>(indent) *
                                        static_cast<std::size_t>(depth + 1),
                                    ' ');
  const std::string close_pad =
      indent < 0 ? ""
                 : std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ');
  const char* nl = indent < 0 ? "" : "\n";

  if (std::holds_alternative<std::nullptr_t>(value_)) {
    os << "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    os << (*b ? "true" : "false");
  } else if (const double* d = std::get_if<double>(&value_)) {
    write_number(os, *d);
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    os << '"' << escape(*s) << '"';
  } else if (const Object* object = std::get_if<Object>(&value_)) {
    if (object->members.empty()) {
      os << "{}";
      return;
    }
    os << '{' << nl;
    for (std::size_t i = 0; i < object->members.size(); ++i) {
      os << pad << '"' << escape(object->members[i].first) << "\": ";
      object->members[i].second->write_impl(os, indent, depth + 1);
      if (i + 1 < object->members.size()) os << ',';
      os << nl;
    }
    os << close_pad << '}';
  } else if (const Array* array = std::get_if<Array>(&value_)) {
    if (array->items.empty()) {
      os << "[]";
      return;
    }
    os << '[' << nl;
    for (std::size_t i = 0; i < array->items.size(); ++i) {
      os << pad;
      array->items[i]->write_impl(os, indent, depth + 1);
      if (i + 1 < array->items.size()) os << ',';
      os << nl;
    }
    os << close_pad << ']';
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

}  // namespace ft2
