// Minimal JSON value builder, writer and parser.
//
// Bench binaries and the CLI dump structured results (campaign tables,
// bounds, fault plans) for downstream plotting; the forensics layer reads
// them back (campaign flight-recorder JSONL via `ft2 report`, Chrome-trace
// shape validation in tests), so parsing is supported too via Json::parse.
#pragma once

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ft2 {

class Json {
 public:
  Json() : value_(nullptr) {}                      // null
  Json(bool b) : value_(b) {}                      // NOLINT(runtime/explicit)
  Json(double d) : value_(d) {}                    // NOLINT(runtime/explicit)
  Json(int i) : value_(static_cast<double>(i)) {}  // NOLINT(runtime/explicit)
  Json(std::size_t u)                              // NOLINT(runtime/explicit)
      : value_(static_cast<double>(u)) {}
  Json(const char* s) : value_(std::string(s)) {}  // NOLINT(runtime/explicit)
  Json(std::string s) : value_(std::move(s)) {}    // NOLINT(runtime/explicit)

  static Json object() {
    Json j;
    j.value_ = Object{};
    return j;
  }
  static Json array() {
    Json j;
    j.value_ = Array{};
    return j;
  }

  /// Parses one JSON document (throws ft2::Error on malformed input or
  /// trailing garbage). Numbers parse as double — the same representation
  /// the writer emits.
  static Json parse(std::string_view text);

  /// Object member access (creates the member; the Json must be an object).
  Json& operator[](const std::string& key);

  /// Appends to an array (the Json must be an array).
  Json& push_back(Json value);

  bool is_object() const { return std::holds_alternative<Object>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_null() const {
    return std::holds_alternative<std::nullptr_t>(value_);
  }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  std::size_t size() const;

  /// Typed read access (throws ft2::Error on a type mismatch).
  double as_double() const;
  bool as_bool() const;
  const std::string& as_string() const;

  /// Member lookup on an object: null when absent (throws on a non-object).
  const Json* find(const std::string& key) const;
  /// Member access that throws when the key is absent.
  const Json& at(const std::string& key) const;
  /// Array element access (bounds-checked).
  const Json& at(std::size_t index) const;
  /// Object member names in insertion order (throws on a non-object).
  std::vector<std::string> keys() const;

  /// Serialization; `indent` < 0 emits compact single-line JSON.
  void write(std::ostream& os, int indent = 2) const;
  std::string dump(int indent = 2) const;

  /// Escapes a string per RFC 8259.
  static std::string escape(const std::string& s);

 private:
  struct Object {
    // Insertion-ordered for stable output.
    std::vector<std::pair<std::string, std::shared_ptr<Json>>> members;
  };
  struct Array {
    std::vector<std::shared_ptr<Json>> items;
  };

  void write_impl(std::ostream& os, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, Object, Array>
      value_;
};

}  // namespace ft2
