// Tiny command-line argument parser for the ft2 CLI and tools.
//
// Supports `--key value`, `--key=value`, boolean `--flag`, and positional
// arguments. Unknown options throw, so typos fail loudly.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ft2 {

class ArgParser {
 public:
  /// `spec` declares known options: name -> takes_value. Example:
  ///   ArgParser args(argc, argv, {{"dataset", true}, {"protect", false}});
  ArgParser(int argc, const char* const* argv,
            std::map<std::string, bool> spec);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& name) const { return values_.contains(name); }

  std::string get(const std::string& name, const std::string& fallback) const;
  std::size_t get_size(const std::string& name, std::size_t fallback) const;
  double get_double(const std::string& name, double fallback) const;

 private:
  std::map<std::string, bool> spec_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ft2
