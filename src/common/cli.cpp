#include "common/cli.hpp"

#include <cstdlib>

#include "common/check.hpp"

namespace ft2 {

ArgParser::ArgParser(int argc, const char* const* argv,
                     std::map<std::string, bool> spec)
    : spec_(std::move(spec)) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    const auto it = spec_.find(arg);
    FT2_CHECK_MSG(it != spec_.end(), "unknown option --" << arg);
    if (it->second) {  // takes a value
      if (!has_inline_value) {
        FT2_CHECK_MSG(i + 1 < argc, "option --" << arg << " needs a value");
        value = argv[++i];
      }
      values_[arg] = value;
    } else {
      FT2_CHECK_MSG(!has_inline_value, "option --" << arg
                                                   << " takes no value");
      values_[arg] = "1";
    }
  }
}

std::string ArgParser::get(const std::string& name,
                           const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::size_t ArgParser::get_size(const std::string& name,
                                std::size_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return static_cast<std::size_t>(std::strtoull(it->second.c_str(), nullptr,
                                                10));
}

double ArgParser::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace ft2
