// Error-handling primitives for the ft2 library.
//
// FT2_CHECK is used for recoverable precondition violations (throws
// ft2::Error so callers/tests can observe them); FT2_ASSERT guards internal
// invariants and is compiled out in release builds unless FT2_ENABLE_ASSERTS
// is defined.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ft2 {

/// Exception type thrown by all ft2 precondition checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "FT2_CHECK failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace ft2

#define FT2_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ft2::detail::throw_check_failure(#cond, __FILE__, __LINE__, "");    \
  } while (0)

#define FT2_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream ft2_os_;                                           \
      ft2_os_ << msg;                                                       \
      ::ft2::detail::throw_check_failure(#cond, __FILE__, __LINE__,         \
                                         ft2_os_.str());                    \
    }                                                                       \
  } while (0)

#if !defined(NDEBUG) || defined(FT2_ENABLE_ASSERTS)
#define FT2_ASSERT(cond) FT2_CHECK(cond)
#else
#define FT2_ASSERT(cond) ((void)0)
#endif
