// Console table / CSV rendering used by the benchmark harness to print the
// rows and series each paper figure reports.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ft2 {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision. Rendering pads every column to its widest
/// cell, mirroring the look of the paper's result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Starts a new row builder; use cell()/num()/pct() then end_row().
  Table& begin_row();
  Table& cell(const std::string& value);
  Table& num(double value, int precision = 3);
  Table& pct(double fraction, int precision = 2);  // renders 0.0123 -> "1.23%"
  Table& count(std::size_t value);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return header_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }

  /// Column-aligned rendering with a separator line after the header.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

  /// Formats helpers shared by bench code.
  static std::string format(double value, int precision);
  static std::string format_pct(double fraction, int precision);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool building_ = false;
};

}  // namespace ft2
