#include "common/rng.hpp"

#include <cmath>

namespace ft2 {

double Xoshiro256::normal() {
  // Box-Muller; guard against log(0).
  double u1 = uniform_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kPhiloxW0 = 0x9E3779B9u;
constexpr std::uint32_t kPhiloxW1 = 0xBB67AE85u;

inline std::uint32_t mulhi32(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::uint32_t>(
      (static_cast<std::uint64_t>(a) * b) >> 32);
}

}  // namespace

Philox4x32::Counter Philox4x32::round10(Counter ctr, Key key) {
  for (int round = 0; round < 10; ++round) {
    const std::uint32_t hi0 = mulhi32(kPhiloxM0, ctr[0]);
    const std::uint32_t lo0 = kPhiloxM0 * ctr[0];
    const std::uint32_t hi1 = mulhi32(kPhiloxM1, ctr[2]);
    const std::uint32_t lo1 = kPhiloxM1 * ctr[2];
    ctr = {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
    key[0] += kPhiloxW0;
    key[1] += kPhiloxW1;
  }
  return ctr;
}

void PhiloxStream::refill() {
  Philox4x32::Counter ctr = base_;
  ctr[2] = static_cast<std::uint32_t>(block_id_);
  ctr[3] = static_cast<std::uint32_t>(block_id_ >> 32);
  block_ = Philox4x32::round10(ctr, key_);
  ++block_id_;
  index_ = 0;
}

}  // namespace ft2
