#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace ft2 {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FT2_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  FT2_CHECK_MSG(cells.size() == header_.size(),
                "row has " << cells.size() << " cells, expected "
                           << header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::begin_row() {
  FT2_CHECK_MSG(!building_, "previous row not finished");
  pending_.clear();
  building_ = true;
  return *this;
}

Table& Table::cell(const std::string& value) {
  FT2_CHECK(building_);
  pending_.push_back(value);
  if (pending_.size() == header_.size()) {
    rows_.push_back(pending_);
    pending_.clear();
    building_ = false;
  }
  return *this;
}

Table& Table::num(double value, int precision) {
  return cell(format(value, precision));
}

Table& Table::pct(double fraction, int precision) {
  return cell(format_pct(fraction, precision));
}

Table& Table::count(std::size_t value) { return cell(std::to_string(value)); }

std::string Table::format(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::format_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace ft2
