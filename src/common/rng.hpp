// Deterministic random number generation.
//
// Two generators are provided:
//  * Xoshiro256** — fast sequential generator used for training / data
//    generation where a single evolving stream is fine.
//  * Philox4x32 — counter-based generator used by the fault-injection
//    campaign runner: trial i of campaign c always sees the same random
//    stream regardless of execution order or thread count, which makes
//    campaigns reproducible and resumable.
#pragma once

#include <array>
#include <cstdint>

namespace ft2 {

/// SplitMix64: used to seed other generators from a single 64-bit seed.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** by Blackman & Vigna. Sequential, very fast, 2^256-1 period.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;
  /// Full generator state: capture with state(), restore with set_state().
  /// Used by session snapshots to resume a sampling decode mid-stream.
  using State = std::array<std::uint64_t, 4>;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  const State& state() const { return state_; }
  void set_state(const State& state) { state_ = state; }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Uses Lemire's multiply-shift rejection-free mapping
  /// (bias < 2^-64, negligible for our purposes).
  std::uint64_t uniform(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float uniform_float(float lo, float hi) {
    return lo + static_cast<float>(uniform_double()) * (hi - lo);
  }

  /// Standard normal via Box-Muller (no cached second value; simple and
  /// deterministic).
  double normal();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Philox4x32-10 counter-based RNG (Salmon et al., SC'11).
///
/// A (key, counter) pair deterministically produces four 32-bit outputs.
/// `PhiloxStream` wraps it as a convenient per-trial stream: construct with
/// (seed, stream_id) and draw values; the same (seed, stream_id) always
/// yields the same sequence independent of any other stream.
class Philox4x32 {
 public:
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static Counter round10(Counter ctr, Key key);
};

/// Convenience stream view over Philox: an independent, reproducible RNG
/// identified by (seed, stream). Satisfies UniformRandomBitGenerator.
class PhiloxStream {
 public:
  using result_type = std::uint32_t;

  PhiloxStream(std::uint64_t seed, std::uint64_t stream) {
    key_ = {static_cast<std::uint32_t>(seed),
            static_cast<std::uint32_t>(seed >> 32)};
    base_ = {static_cast<std::uint32_t>(stream),
             static_cast<std::uint32_t>(stream >> 32), 0, 0};
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint32_t{0}; }

  result_type operator()() {
    if (index_ == 4) refill();
    return block_[index_++];
  }

  std::uint64_t next_u64() {
    const std::uint64_t lo = (*this)();
    const std::uint64_t hi = (*this)();
    return (hi << 32) | lo;
  }

  /// Uniform in [0, n).
  std::uint64_t uniform(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  double uniform_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

 private:
  void refill();

  Philox4x32::Key key_{};
  Philox4x32::Counter base_{};
  std::array<std::uint32_t, 4> block_{};
  std::uint64_t block_id_ = 0;
  int index_ = 4;
};

}  // namespace ft2
