// Typed access to environment-variable configuration knobs.
//
// Campaign sizes, model cache locations and thread counts are configurable
// via FT2_* environment variables so the same bench binaries scale from CI
// smoke runs to paper-scale statistics.
#pragma once

#include <cstddef>
#include <string>

namespace ft2 {

/// Returns the value of `name`, or `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Returns `name` parsed as size_t, or `fallback` when unset/unparsable.
std::size_t env_size(const char* name, std::size_t fallback);

/// Returns `name` parsed as double, or `fallback` when unset/unparsable.
double env_double(const char* name, double fallback);

/// Returns true for "1", "true", "yes", "on" (case-insensitive).
bool env_flag(const char* name, bool fallback);

}  // namespace ft2
