#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

#include "common/env.hpp"

namespace ft2 {

namespace {
thread_local bool tl_on_worker_thread = false;
}  // namespace

bool ThreadPool::on_worker_thread() { return tl_on_worker_thread; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads <= 1) return;  // inline-execution mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  tl_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = workers_.empty() ? 1 : workers_.size();
  // Nested use (a pool task calling parallel_for) runs inline: blocking a
  // worker on the queue it is supposed to drain can deadlock once every
  // worker waits. Inline execution keeps results identical — partitioning
  // never affects per-index arithmetic.
  if (workers == 1 || n == 1 || tl_on_worker_thread) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::size_t chunks = std::min(workers, n);
  const std::size_t chunk_size = (n + chunks - 1) / chunks;
  std::atomic<std::size_t> remaining{chunks};
  std::exception_ptr error;
  std::mutex error_mutex;
  std::mutex done_mutex;
  std::condition_variable done_cv;

  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    const std::size_t hi = std::min(end, lo + chunk_size);
    submit([&, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!error) error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard lock(done_mutex);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(env_size("FT2_THREADS", 0));
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  ThreadPool::global().parallel_for(begin, end, fn);
}

}  // namespace ft2
