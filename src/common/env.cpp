#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace ft2 {

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return value;
}

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return static_cast<std::size_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end == value) return fallback;
  return parsed;
}

bool env_flag(const char* name, bool fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  std::string v(value);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace ft2
