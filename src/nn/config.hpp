// Model architecture configuration.
//
// Three block families cover the paper's seven models:
//  * kOpt   — OPT-style: LayerNorm (pre-LN), learned positional embeddings,
//             ReLU MLP (FC1/FC2), biases everywhere. (OPT-6.7B/2.7B)
//  * kGptj  — GPT-J-style: parallel attention+MLP from a single LayerNorm,
//             rotary embeddings, GELU MLP (FC1/FC2). (GPTJ-6B)
//  * kLlama — Llama-style: RMSNorm, rotary embeddings, SiLU gate/up/down
//             MLP, no biases (Qwen2 adds QKV biases). (Llama2/Vicuna/Qwen2)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "nn/layer_kind.hpp"

namespace ft2 {

enum class ArchFamily { kOpt, kGptj, kLlama };

enum class Activation { kRelu, kGelu, kSilu };

enum class NormKind { kLayerNorm, kRmsNorm };

enum class PositionKind { kLearned, kRotary };

struct ModelConfig {
  std::string name = "model";
  ArchFamily arch = ArchFamily::kOpt;
  std::size_t vocab_size = 0;
  std::size_t d_model = 64;
  std::size_t n_heads = 4;
  std::size_t n_blocks = 2;
  std::size_t d_ff = 256;
  std::size_t max_seq = 160;
  Activation activation = Activation::kRelu;
  NormKind norm = NormKind::kLayerNorm;
  PositionKind position = PositionKind::kLearned;
  bool parallel_block = false;  // GPT-J: attention and MLP share the input LN
  bool linear_bias = true;      // biases on all linear layers (OPT/GPT-J)
  bool qkv_bias = false;        // Qwen2: biases on Q/K/V only
  float norm_eps = 1e-5f;
  float rope_theta = 10000.0f;

  std::size_t head_dim() const { return d_model / n_heads; }

  /// Layer kinds present in one decoder block of this architecture,
  /// in execution order (linear layers + the MLP activation output).
  std::vector<LayerKind> block_layers() const {
    if (arch == ArchFamily::kLlama) {
      return {LayerKind::kQProj,    LayerKind::kKProj,   LayerKind::kVProj,
              LayerKind::kOutProj,  LayerKind::kGateProj, LayerKind::kUpProj,
              LayerKind::kMlpAct,   LayerKind::kDownProj};
    }
    return {LayerKind::kQProj,   LayerKind::kKProj, LayerKind::kVProj,
            LayerKind::kOutProj, LayerKind::kFc1,   LayerKind::kMlpAct,
            LayerKind::kFc2};
  }

  /// Output width of a layer-kind site in this architecture.
  std::size_t layer_output_dim(LayerKind kind) const {
    switch (kind) {
      case LayerKind::kQProj:
      case LayerKind::kKProj:
      case LayerKind::kVProj:
      case LayerKind::kOutProj:
      case LayerKind::kFc2:
      case LayerKind::kDownProj:
        return d_model;
      case LayerKind::kFc1:
      case LayerKind::kGateProj:
      case LayerKind::kUpProj:
      case LayerKind::kMlpAct:
        return d_ff;
      case LayerKind::kCount:
        break;
    }
    return 0;
  }

  /// True if `kind` exists in this architecture's blocks.
  bool has_layer(LayerKind kind) const {
    for (LayerKind k : block_layers()) {
      if (k == kind) return true;
    }
    return false;
  }

  /// Whether a given linear layer has a bias vector.
  bool layer_has_bias(LayerKind kind) const {
    if (linear_bias) return true;
    if (qkv_bias &&
        (kind == LayerKind::kQProj || kind == LayerKind::kKProj ||
         kind == LayerKind::kVProj)) {
      return true;
    }
    return false;
  }
};

}  // namespace ft2
