// Taxonomy of observable layer outputs inside a decoder block.
//
// These names mirror the paper's Table 1 / Figure 1. Linear kinds are fault-
// injection targets and protection targets; MLP_ACT is the activation-layer
// output (the protection target of Ranger).
#pragma once

#include <array>
#include <string_view>

namespace ft2 {

enum class LayerKind : int {
  kQProj = 0,
  kKProj,
  kVProj,
  kOutProj,
  kFc1,       // OPT/GPT-J first MLP linear
  kFc2,       // OPT/GPT-J second MLP linear
  kGateProj,  // Llama-family gate
  kUpProj,    // Llama-family up
  kDownProj,  // Llama-family down
  kMlpAct,    // activation-layer output (not a linear layer)
  kCount
};

constexpr std::size_t kLayerKindCount = static_cast<std::size_t>(LayerKind::kCount);

constexpr std::string_view layer_kind_name(LayerKind kind) {
  switch (kind) {
    case LayerKind::kQProj: return "Q_PROJ";
    case LayerKind::kKProj: return "K_PROJ";
    case LayerKind::kVProj: return "V_PROJ";
    case LayerKind::kOutProj: return "OUT_PROJ";
    case LayerKind::kFc1: return "FC1";
    case LayerKind::kFc2: return "FC2";
    case LayerKind::kGateProj: return "GATE_PROJ";
    case LayerKind::kUpProj: return "UP_PROJ";
    case LayerKind::kDownProj: return "DOWN_PROJ";
    case LayerKind::kMlpAct: return "MLP_ACT";
    case LayerKind::kCount: break;
  }
  return "UNKNOWN";
}

constexpr bool is_linear_layer(LayerKind kind) {
  return kind != LayerKind::kMlpAct && kind != LayerKind::kCount;
}

/// A concrete layer-output site inside a model: block index + layer kind.
struct LayerSite {
  int block = 0;
  LayerKind kind = LayerKind::kQProj;

  friend bool operator==(const LayerSite&, const LayerSite&) = default;
};

}  // namespace ft2
