// Dataflow graph of one decoder block, used by the critical-layer analyzer.
//
// FT2's heuristic is purely architectural: "a layer is critical if no
// scaling operation or activation layer is present before the next linear
// layer". This graph captures exactly the op taxonomy that heuristic needs:
// linear layers, guard ops (activation, attention scaling+softmax) and
// non-guard ops (residual add, elementwise mul, norms, RoPE, attention
// weighting). Residual edges are modelled explicitly because they are the
// reason OUT_PROJ/FC2/DOWN_PROJ faults escape the following norm.
#pragma once

#include <string>
#include <vector>

#include "nn/config.hpp"

namespace ft2 {

enum class OpKind {
  kInput,          ///< block input (residual stream)
  kLinear,         ///< a projection; `layer` identifies which
  kActivation,     ///< ReLU/GELU/SiLU — a guard op
  kAttentionScale, ///< QK^T * 1/sqrt(d) + softmax — a guard op
  kWeighting,      ///< probs @ V (convex combination; NOT a guard)
  kElementwiseMul, ///< gated-MLP multiply (NOT a guard)
  kResidualAdd,    ///< residual fusion (NOT a guard)
  kNorm,           ///< LayerNorm/RMSNorm (NOT a guard; see paper §4.1.1)
  kRope,           ///< rotary embedding (NOT a guard)
  kNextLinear,     ///< sentinel: first linear consumer after the block
};

/// True for ops that bound/shrink extreme faulty values on their way to the
/// next linear layer.
constexpr bool is_guard_op(OpKind op) {
  return op == OpKind::kActivation || op == OpKind::kAttentionScale;
}

struct OpNode {
  OpKind op = OpKind::kInput;
  LayerKind layer = LayerKind::kCount;  // set for kLinear nodes
  std::string name;
  std::vector<int> successors;
};

/// The per-block dataflow graph of a model architecture.
class LayerGraph {
 public:
  /// Builds the block graph for `config`'s architecture.
  static LayerGraph build(const ModelConfig& config);

  const std::vector<OpNode>& nodes() const { return nodes_; }
  const OpNode& node(int i) const { return nodes_[static_cast<std::size_t>(i)]; }
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Index of the linear node with the given kind, or -1.
  int find_linear(LayerKind kind) const;

  /// All linear layer kinds present in the graph (excluding the sentinel).
  std::vector<LayerKind> linear_kinds() const;

 private:
  int add(OpKind op, std::string name, LayerKind layer = LayerKind::kCount);
  void connect(int from, int to);

  std::vector<OpNode> nodes_;
};

}  // namespace ft2
