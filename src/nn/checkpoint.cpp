#include "nn/checkpoint.hpp"

#include <cstdint>
#include <fstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ft2 {
namespace {

constexpr char kMagic[4] = {'F', 'T', '2', 'M'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& is) {
  T value{};
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  FT2_CHECK_MSG(is.good(), "checkpoint truncated");
  return value;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const auto len = read_pod<std::uint32_t>(is);
  FT2_CHECK_MSG(len < (1u << 20), "checkpoint string too large");
  std::string s(len, '\0');
  is.read(s.data(), static_cast<std::streamsize>(len));
  FT2_CHECK_MSG(is.good(), "checkpoint truncated");
  return s;
}

void write_config(std::ostream& os, const ModelConfig& c) {
  write_string(os, c.name);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(c.arch));
  write_pod<std::uint64_t>(os, c.vocab_size);
  write_pod<std::uint64_t>(os, c.d_model);
  write_pod<std::uint64_t>(os, c.n_heads);
  write_pod<std::uint64_t>(os, c.n_blocks);
  write_pod<std::uint64_t>(os, c.d_ff);
  write_pod<std::uint64_t>(os, c.max_seq);
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(c.activation));
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(c.norm));
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(c.position));
  write_pod<std::uint8_t>(os, c.parallel_block ? 1 : 0);
  write_pod<std::uint8_t>(os, c.linear_bias ? 1 : 0);
  write_pod<std::uint8_t>(os, c.qkv_bias ? 1 : 0);
  write_pod<float>(os, c.norm_eps);
  write_pod<float>(os, c.rope_theta);
}

ModelConfig read_config(std::istream& is) {
  ModelConfig c;
  c.name = read_string(is);
  c.arch = static_cast<ArchFamily>(read_pod<std::uint32_t>(is));
  c.vocab_size = read_pod<std::uint64_t>(is);
  c.d_model = read_pod<std::uint64_t>(is);
  c.n_heads = read_pod<std::uint64_t>(is);
  c.n_blocks = read_pod<std::uint64_t>(is);
  c.d_ff = read_pod<std::uint64_t>(is);
  c.max_seq = read_pod<std::uint64_t>(is);
  c.activation = static_cast<Activation>(read_pod<std::uint32_t>(is));
  c.norm = static_cast<NormKind>(read_pod<std::uint32_t>(is));
  c.position = static_cast<PositionKind>(read_pod<std::uint32_t>(is));
  c.parallel_block = read_pod<std::uint8_t>(is) != 0;
  c.linear_bias = read_pod<std::uint8_t>(is) != 0;
  c.qkv_bias = read_pod<std::uint8_t>(is) != 0;
  c.norm_eps = read_pod<float>(is);
  c.rope_theta = read_pod<float>(is);
  return c;
}

// Generous ceilings for this project's micro models. Their purpose is to
// turn a corrupt or layout-incompatible file into a clean ft2::Error
// instead of a multi-gigabyte allocation (std::bad_alloc) inside
// init_weights when a stale checkpoint deserialises into garbage dims.
constexpr std::uint64_t kMaxDim = 1u << 20;

void validate_config(const ModelConfig& c, const std::string& path) {
  auto in_range = [](std::uint64_t v) { return v > 0 && v <= kMaxDim; };
  FT2_CHECK_MSG(in_range(c.vocab_size) && in_range(c.d_model) &&
                    in_range(c.n_heads) && in_range(c.n_blocks) &&
                    in_range(c.d_ff) && in_range(c.max_seq),
                "implausible dimensions in checkpoint " << path
                    << " (corrupt or incompatible file): vocab="
                    << c.vocab_size << " d_model=" << c.d_model
                    << " heads=" << c.n_heads << " blocks=" << c.n_blocks
                    << " d_ff=" << c.d_ff << " max_seq=" << c.max_seq);
  FT2_CHECK_MSG(c.n_heads <= c.d_model && c.d_model % c.n_heads == 0,
                "checkpoint " << path << ": d_model " << c.d_model
                              << " not divisible by n_heads " << c.n_heads);
  FT2_CHECK_MSG(static_cast<std::uint32_t>(c.arch) <=
                        static_cast<std::uint32_t>(ArchFamily::kLlama) &&
                    static_cast<std::uint32_t>(c.activation) <=
                        static_cast<std::uint32_t>(Activation::kSilu) &&
                    static_cast<std::uint32_t>(c.norm) <=
                        static_cast<std::uint32_t>(NormKind::kRmsNorm) &&
                    static_cast<std::uint32_t>(c.position) <=
                        static_cast<std::uint32_t>(PositionKind::kRotary),
                "checkpoint " << path << ": enum field out of range");
}

}  // namespace

void save_checkpoint(const std::string& path, const ModelConfig& config,
                     const ModelWeights& weights) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  FT2_CHECK_MSG(os.good(), "cannot open checkpoint for write: " << path);
  os.write(kMagic, 4);
  write_pod<std::uint32_t>(os, kVersion);
  write_config(os, config);

  const auto params = weights.named_parameters();
  write_pod<std::uint64_t>(os, params.size());
  for (const auto& [name, tensor] : params) {
    write_string(os, name);
    write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(tensor->rank()));
    for (std::size_t d : tensor->shape()) write_pod<std::uint64_t>(os, d);
    os.write(reinterpret_cast<const char*>(tensor->data()),
             static_cast<std::streamsize>(tensor->numel() * sizeof(float)));
  }
  FT2_CHECK_MSG(os.good(), "checkpoint write failed: " << path);
}

void load_checkpoint(const std::string& path, ModelConfig& config,
                     ModelWeights& weights) {
  std::ifstream is(path, std::ios::binary);
  FT2_CHECK_MSG(is.good(), "cannot open checkpoint: " << path);
  char magic[4];
  is.read(magic, 4);
  FT2_CHECK_MSG(is.good() && std::equal(magic, magic + 4, kMagic),
                "bad checkpoint magic in " << path);
  const auto version = read_pod<std::uint32_t>(is);
  FT2_CHECK_MSG(version == kVersion, "unsupported checkpoint version "
                                         << version);
  config = read_config(is);
  validate_config(config, path);

  // Allocate weight storage of the right shapes, then overwrite by name.
  Xoshiro256 rng(0);
  weights = init_weights(config, rng);
  auto params = weights.named_parameters();

  const auto n = read_pod<std::uint64_t>(is);
  FT2_CHECK_MSG(n == params.size(), "checkpoint has " << n
                                                      << " params, model has "
                                                      << params.size());
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string name = read_string(is);
    const auto rank = read_pod<std::uint32_t>(is);
    FT2_CHECK_MSG(rank >= 1 && rank <= 4,
                  "implausible rank " << rank << " for " << name << " in "
                                      << path);
    std::vector<std::size_t> shape(rank);
    for (auto& d : shape) {
      d = read_pod<std::uint64_t>(is);
      FT2_CHECK_MSG(d > 0 && d <= kMaxDim, "implausible dim " << d << " for "
                                               << name << " in " << path);
    }

    Tensor* target = nullptr;
    for (auto& [pname, t] : params) {
      if (pname == name) {
        target = t;
        break;
      }
    }
    FT2_CHECK_MSG(target != nullptr, "unknown parameter in checkpoint: "
                                         << name);
    FT2_CHECK_MSG(target->shape() == shape,
                  "shape mismatch for " << name << ": checkpoint "
                                        << Tensor(shape).shape_string()
                                        << " vs model "
                                        << target->shape_string());
    is.read(reinterpret_cast<char*>(target->data()),
            static_cast<std::streamsize>(target->numel() * sizeof(float)));
    FT2_CHECK_MSG(is.good(), "checkpoint truncated while reading " << name);
  }
}

bool checkpoint_exists(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  char magic[4];
  is.read(magic, 4);
  return is.good() && std::equal(magic, magic + 4, kMagic);
}

}  // namespace ft2
