// Binary checkpoint (de)serialization for trained models.
//
// Format (little-endian):
//   magic "FT2M" | u32 version | config block | u64 n_params |
//   repeated { u32 name_len | name | u32 rank | u64 dims[rank] | f32 data[] }
#pragma once

#include <string>

#include "nn/config.hpp"
#include "nn/weights.hpp"

namespace ft2 {

/// Serializes config+weights to `path`. Throws ft2::Error on I/O failure.
void save_checkpoint(const std::string& path, const ModelConfig& config,
                     const ModelWeights& weights);

/// Loads a checkpoint saved by save_checkpoint. Throws ft2::Error on
/// missing file, bad magic, or parameter shape mismatch.
void load_checkpoint(const std::string& path, ModelConfig& config,
                     ModelWeights& weights);

/// True if `path` exists and starts with the checkpoint magic.
bool checkpoint_exists(const std::string& path);

}  // namespace ft2
