// Weight containers for the decoder-only transformer.
//
// Biases are rank-1 tensors so the trainer can treat every parameter
// uniformly. Weight matrices use the PyTorch Linear layout [out, in].
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "nn/config.hpp"
#include "tensor/tensor.hpp"

namespace ft2 {

struct LinearWeights {
  Tensor w;  // [out, in]
  Tensor b;  // [out] or empty
  bool has_bias = false;

  std::span<const float> bias_span() const {
    return has_bias ? b.span() : std::span<const float>{};
  }
};

struct NormWeights {
  Tensor gamma;  // [d]
  Tensor beta;   // [d]; empty for RMSNorm
};

struct BlockWeights {
  LinearWeights q, k, v, o;
  LinearWeights fc1;  // FC1 for OPT/GPT-J, GATE_PROJ for Llama
  LinearWeights fc2;  // FC2 for OPT/GPT-J, DOWN_PROJ for Llama
  LinearWeights up;   // UP_PROJ, Llama family only
  NormWeights norm1;
  NormWeights norm2;  // unused when parallel_block
};

struct ModelWeights {
  Tensor tok_emb;          // [vocab, d]
  Tensor pos_emb;          // [max_seq, d], learned-position models only
  NormWeights final_norm;
  LinearWeights lm_head;   // [vocab, d], no bias
  std::vector<BlockWeights> blocks;

  /// Every trainable tensor, paired with a stable debug name.
  std::vector<std::pair<std::string, Tensor*>> named_parameters();
  std::vector<std::pair<std::string, const Tensor*>> named_parameters() const;

  std::size_t parameter_count() const;
};

/// Allocates and randomly initializes weights for `config` (GPT-2-style
/// init: N(0, 0.02), residual-output projections scaled by 1/sqrt(2L),
/// norms at identity).
ModelWeights init_weights(const ModelConfig& config, Xoshiro256& rng);

/// Access the LinearWeights of a (block, linear-kind) site.
LinearWeights& linear_at(ModelWeights& weights, const ModelConfig& config,
                         const LayerSite& site);

/// Order-sensitive FNV-1a digest over every named parameter (name, shape
/// and raw f32 bytes). Two models share a digest iff they share trained
/// weights, which is what shard manifests record so a resumed campaign
/// shard can refuse to continue against a different checkpoint.
std::uint64_t weights_digest(const ModelWeights& weights);

/// weights_digest as the fixed-width hex string stored in shard manifests.
std::string weights_digest_hex(const ModelWeights& weights);

}  // namespace ft2
