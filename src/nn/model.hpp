// Decoder-only transformer inference engine with hookable layer outputs.
//
// The engine processes one position at a time against a KV cache (prompt
// tokens are prefilled sequentially; generation continues incrementally).
// When FP16 execution is modelled, every observable tensor — linear outputs,
// activation outputs, attention output, residual stream, norm outputs — is
// quantized onto the binary16 grid, so injected bit flips and range
// restriction see exactly the values a half-precision GPU run would store.
#pragma once

#include <span>

#include "nn/config.hpp"
#include "nn/hooks.hpp"
#include "nn/kv_cache.hpp"
#include "nn/weights.hpp"

namespace ft2 {

/// Scratch buffers reused across positions (sized once per model config).
struct Workspace {
  Tensor x;         // [1, d] residual stream
  Tensor h;         // [1, d] normed input
  Tensor q, k, v;   // [1, d]
  Tensor attn_out;  // [1, d]
  Tensor o;         // [1, d]
  Tensor f1, f_up, act;  // [1, d_ff]
  Tensor f2;        // [1, d]
  Tensor scores;    // [1, max_seq]
  Tensor final_h;   // [1, d]
  std::size_t current_pos = 0;  // position being processed (hook context)

  explicit Workspace(const ModelConfig& config);
};

/// Execution configuration: numeric-semantics knobs that model different
/// hardware. `fp16` selects half-precision value semantics; `chunked_accum`
/// accumulates dot products in 8-wide partial sums (a different tiling /
/// reduction order, as a different GPU generation would use) — results stay
/// semantically equivalent but differ in float rounding, which is exactly
/// what the hardware-sensitivity experiment (Fig. 16) varies.
struct ExecConfig {
  bool fp16 = true;
  bool chunked_accum = false;
};

class TransformerLM {
 public:
  TransformerLM(ModelConfig config, ModelWeights weights);

  const ModelConfig& config() const { return config_; }
  ModelWeights& weights() { return weights_; }
  const ModelWeights& weights() const { return weights_; }

  /// Computes logits for the token at sequence position `pos`.
  /// Preconditions: cache.length() == pos. Appends this position's K/V to
  /// the cache and advances it. `logits` must have vocab_size elements.
  /// Hooks fire for every observable layer output.
  void forward_position(int token, std::size_t pos, KvCache& cache,
                        const HookChain& hooks, const ExecConfig& exec,
                        bool first_token_phase, Workspace& ws,
                        std::span<float> logits) const;

  /// Backward-compatible overload taking only the fp16 flag.
  void forward_position(int token, std::size_t pos, KvCache& cache,
                        const HookChain& hooks, bool fp16,
                        bool first_token_phase, Workspace& ws,
                        std::span<float> logits) const {
    forward_position(token, pos, cache, hooks, ExecConfig{fp16, false},
                     first_token_phase, ws, logits);
  }

  KvCache make_cache() const {
    return KvCache(config_.n_blocks, config_.max_seq, config_.d_model);
  }

 private:
  void attention(const BlockWeights& blk, std::size_t block_idx,
                 std::size_t pos, KvCache& cache, const HookChain& hooks,
                 const ExecConfig& exec, bool first_token,
                 Workspace& ws) const;
  void mlp(const BlockWeights& blk, std::size_t block_idx, const Tensor& input,
           const HookChain& hooks, const ExecConfig& exec, bool first_token,
           Workspace& ws) const;
  void apply_norm(const NormWeights& nw, const Tensor& in, Tensor& out) const;

  ModelConfig config_;
  ModelWeights weights_;
};

/// Decoding options. Default is greedy (temperature 0), which every
/// fault-injection experiment uses for determinism; temperature/top-k
/// sampling is available for application use and is itself deterministic
/// given `sample_seed`.
struct GenerateOptions {
  std::size_t max_new_tokens = 32;
  int eos_token = -1;      ///< stop when this token is produced (< 0: never)
  bool fp16 = true;        ///< model FP16 value semantics
  bool chunked_accum = false;  ///< alternate reduction order (see ExecConfig)
  float temperature = 0.0f;    ///< 0 = greedy; > 0 = softmax sampling
  std::size_t top_k = 0;       ///< 0 = all tokens; else sample among top-k
  std::uint64_t sample_seed = 1;  ///< RNG seed for sampling decode
};

struct GenerateResult {
  std::vector<int> tokens;        ///< generated tokens (no prompt, no EOS)
  std::size_t positions_run = 0;  ///< forward positions executed
  bool hit_max = false;           ///< stopped by max_new_tokens/max_seq
};

/// Stateful generation session: owns the cache, workspace and hook chain.
class InferenceSession {
 public:
  explicit InferenceSession(const TransformerLM& model);

  HookChain& hooks() { return hooks_; }

  /// Greedy generation. Prompt tokens are prefilled sequentially (the
  /// "first token generation" phase of the paper); hooks observe every
  /// position.
  GenerateResult generate(std::span<const int> prompt,
                          const GenerateOptions& options);

 private:
  const TransformerLM& model_;
  KvCache cache_;
  Workspace ws_;
  HookChain hooks_;
  std::vector<float> logits_;
};

}  // namespace ft2
