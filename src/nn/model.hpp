// Decoder-only transformer inference engine with hookable layer outputs.
//
// The engine has two execution paths against the same KV cache:
//   - forward_position: one position at a time (incremental decode, and the
//     reference prefill path);
//   - forward_span: a blocked prefill that pushes a CHUNK of prompt
//     positions through each layer as an MxK * KxN GEMM parallelised over a
//     thread pool, with causal attention rows computed per position.
// The blocked path is bit-exact with running forward_position over the same
// positions: every output element is one dot product with a fixed
// accumulation order computed by exactly one task, cross-position dataflow
// only passes through the KV cache (stored after hooks, exactly like the
// sequential path), and hooks observe each site's values in increasing
// position order.
//
// When FP16 execution is modelled, every observable tensor — linear outputs,
// activation outputs, attention output, residual stream, norm outputs — is
// quantized onto the binary16 grid, so injected bit flips and range
// restriction see exactly the values a half-precision GPU run would store.
#pragma once

#include <span>

#include "nn/config.hpp"
#include "nn/hooks.hpp"
#include "nn/kv_cache.hpp"
#include "nn/weights.hpp"

namespace ft2 {

class ThreadPool;  // common/thread_pool.hpp

/// Scratch buffers reused across positions. Rows 1..capacity-1 are only used
/// by the blocked prefill; the sequential path always works in row 0.
struct Workspace {
  Tensor x;         // [cap, d] residual stream
  Tensor h;         // [cap, d] normed input
  Tensor q, k, v;   // [cap, d]
  Tensor attn_out;  // [cap, d]
  Tensor o;         // [cap, d]
  Tensor f1, f_up, act;  // [cap, d_ff]
  Tensor f2;        // [cap, d]
  Tensor scores;    // [cap, max_seq]
  Tensor final_h;   // [1, d]
  std::size_t current_pos = 0;  // position being processed (hook context)

  explicit Workspace(const ModelConfig& config, std::size_t chunk_capacity = 1);

  /// Rows currently allocated for blocked processing.
  std::size_t chunk_capacity() const { return x.dim(0); }

  /// Grows the scratch buffers to hold at least `rows` positions. No-op when
  /// already large enough; existing row-0 contents are not preserved.
  void ensure_chunk_capacity(const ModelConfig& config, std::size_t rows);
};

/// Execution configuration: numeric-semantics knobs that model different
/// hardware. `fp16` selects half-precision value semantics; `chunked_accum`
/// accumulates dot products in 8-wide partial sums (a different tiling /
/// reduction order, as a different GPU generation would use) — results stay
/// semantically equivalent but differ in float rounding, which is exactly
/// what the hardware-sensitivity experiment (Fig. 16) varies. `pool` selects
/// the thread pool for the blocked prefill (null = process-wide pool); the
/// pool size never affects results, only wall-clock time.
struct ExecConfig {
  bool fp16 = true;
  bool chunked_accum = false;
  ThreadPool* pool = nullptr;
};

class TransformerLM {
 public:
  TransformerLM(ModelConfig config, ModelWeights weights);

  const ModelConfig& config() const { return config_; }
  ModelWeights& weights() { return weights_; }
  const ModelWeights& weights() const { return weights_; }

  /// Computes logits for the token at sequence position `pos`.
  /// Preconditions: cache.length() == pos. Appends this position's K/V to
  /// the cache and advances it. `logits` must have vocab_size elements.
  /// Hooks fire for every observable layer output.
  void forward_position(int token, std::size_t pos, KvCache& cache,
                        const HookChain& hooks, const ExecConfig& exec,
                        bool first_token_phase, Workspace& ws,
                        std::span<float> logits) const;

  /// Backward-compatible overload taking only the fp16 flag.
  void forward_position(int token, std::size_t pos, KvCache& cache,
                        const HookChain& hooks, bool fp16,
                        bool first_token_phase, Workspace& ws,
                        std::span<float> logits) const {
    forward_position(token, pos, cache, hooks, ExecConfig{fp16, false},
                     first_token_phase, ws, logits);
  }

  /// Blocked prefill: processes `tokens` at sequence positions
  /// [pos0, pos0 + tokens.size()) through every layer as a batched GEMM,
  /// appends the chunk's K/V to the cache in one shot and applies causal
  /// attention per chunk row. Bit-exact with calling forward_position for
  /// each position in order, at any pool size (see file header). Hooks fire
  /// once per layer site with a [n_positions x width] span view. `logits`
  /// receives the output for the LAST span position only (intermediate
  /// prefill logits are never observed by generate); pass an empty span to
  /// skip the LM head entirely.
  void forward_span(std::span<const int> tokens, std::size_t pos0,
                    KvCache& cache, const HookChain& hooks,
                    const ExecConfig& exec, bool first_token_phase,
                    Workspace& ws, std::span<float> logits) const;

  KvCache make_cache() const {
    return KvCache(config_.n_blocks, config_.max_seq, config_.d_model);
  }

 private:
  void attention(const BlockWeights& blk, std::size_t block_idx,
                 std::size_t pos, KvCache& cache, const HookChain& hooks,
                 const ExecConfig& exec, bool first_token,
                 Workspace& ws) const;
  void mlp(const BlockWeights& blk, std::size_t block_idx, const Tensor& input,
           const HookChain& hooks, const ExecConfig& exec, bool first_token,
           Workspace& ws) const;
  void attention_span(const BlockWeights& blk, std::size_t block_idx,
                      std::size_t pos0, std::size_t n, KvCache& cache,
                      const HookChain& hooks, const ExecConfig& exec,
                      bool first_token, Workspace& ws, ThreadPool& pool) const;
  void mlp_span(const BlockWeights& blk, std::size_t block_idx,
                const Tensor& input, std::size_t pos0, std::size_t n,
                const HookChain& hooks, const ExecConfig& exec,
                bool first_token, Workspace& ws, ThreadPool& pool) const;
  void apply_norm_row(const NormWeights& nw, std::span<const float> in,
                      std::span<float> out) const;

  ModelConfig config_;
  ModelWeights weights_;
};

/// Decoding options. Default is greedy (temperature 0), which every
/// fault-injection experiment uses for determinism; temperature/top-k
/// sampling is available for application use and is itself deterministic
/// given `sample_seed`.
struct GenerateOptions {
  std::size_t max_new_tokens = 32;
  int eos_token = -1;      ///< stop when this token is produced (< 0: never)
  bool fp16 = true;        ///< model FP16 value semantics
  bool chunked_accum = false;  ///< alternate reduction order (see ExecConfig)
  float temperature = 0.0f;    ///< 0 = greedy; > 0 = softmax sampling
  std::size_t top_k = 0;       ///< 0 = all tokens; else sample among top-k
  std::uint64_t sample_seed = 1;  ///< RNG seed for sampling decode
  /// Prompt positions processed per blocked-prefill chunk. 1 = fully
  /// sequential reference path; 0 = the whole prompt in one chunk. Chunking
  /// is bit-exact with the sequential path, so this is purely a speed knob.
  std::size_t prefill_chunk = 32;
  ThreadPool* pool = nullptr;  ///< pool for blocked prefill (null = global)
};

struct GenerateResult {
  std::vector<int> tokens;        ///< generated tokens (no prompt, no EOS)
  std::size_t positions_run = 0;  ///< forward positions executed
  bool hit_max = false;           ///< stopped by max_new_tokens/max_seq
};

/// Stateful generation session: owns the cache, workspace and hook chain.
class InferenceSession {
 public:
  explicit InferenceSession(const TransformerLM& model);

  HookChain& hooks() { return hooks_; }

  /// Greedy generation. Prompt tokens are prefilled in blocked chunks of
  /// `options.prefill_chunk` positions (the "first token generation" phase
  /// of the paper) — bit-exact with sequential prefill; hooks observe every
  /// position. Decode then continues one position at a time.
  GenerateResult generate(std::span<const int> prompt,
                          const GenerateOptions& options);

 private:
  const TransformerLM& model_;
  KvCache cache_;
  Workspace ws_;
  HookChain hooks_;
  std::vector<float> logits_;
};

}  // namespace ft2
