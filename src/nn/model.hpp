// Decoder-only transformer inference engine with hookable layer outputs.
//
// The engine has two execution paths against the same KV cache:
//   - forward_position: one position at a time (incremental decode, and the
//     reference prefill path);
//   - forward_span: a blocked prefill that pushes a CHUNK of prompt
//     positions through each layer as an MxK * KxN GEMM parallelised over a
//     thread pool, with causal attention rows computed per position.
// The blocked path is bit-exact with running forward_position over the same
// positions: every output element is one dot product with a fixed
// accumulation order computed by exactly one task, cross-position dataflow
// only passes through the KV cache (stored after hooks, exactly like the
// sequential path), and hooks observe each site's values in increasing
// position order.
//
// When FP16 execution is modelled, every observable tensor — linear outputs,
// activation outputs, attention output, residual stream, norm outputs — is
// quantized onto the binary16 grid, so injected bit flips and range
// restriction see exactly the values a half-precision GPU run would store.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/config.hpp"
#include "nn/hooks.hpp"
#include "nn/kv_cache.hpp"
#include "nn/weights.hpp"
#include "tensor/ops.hpp"

namespace ft2 {

class ThreadPool;  // common/thread_pool.hpp

/// Scratch buffers reused across positions. Rows 1..capacity-1 are only
/// used by the blocked prefill and the batched decode; the sequential path
/// always works in row 0.
struct Workspace {
  Tensor x;         // [cap, d] residual stream
  Tensor h;         // [cap, d] normed input
  Tensor q, k, v;   // [cap, d]
  Tensor attn_out;  // [cap, d]
  Tensor o;         // [cap, d]
  Tensor f1, f_up, act;  // [cap, d_ff]
  Tensor f2;        // [cap, d]
  Tensor scores;    // [cap, max_seq]
  Tensor final_h;   // [cap, d]
  Tensor logits;    // [cap, vocab] (batched decode LM head)
  std::size_t current_pos = 0;  // position being processed (hook context)

  explicit Workspace(const ModelConfig& config, std::size_t chunk_capacity = 1);

  /// Rows currently allocated for blocked processing.
  std::size_t chunk_capacity() const { return x.dim(0); }

  /// Grows the scratch buffers to hold at least `rows` positions. No-op when
  /// already large enough; existing row-0 contents are not preserved.
  void ensure_chunk_capacity(const ModelConfig& config, std::size_t rows);
};

/// Execution configuration: numeric-semantics knobs that model different
/// hardware. `fp16` selects half-precision value semantics; `chunked_accum`
/// accumulates dot products in 8-wide partial sums (a different tiling /
/// reduction order, as a different GPU generation would use) — results stay
/// semantically equivalent but differ in float rounding, which is exactly
/// what the hardware-sensitivity experiment (Fig. 16) varies. `pool` selects
/// the thread pool for the blocked prefill (null = process-wide pool); the
/// pool size never affects results, only wall-clock time.
struct ExecConfig {
  bool fp16 = true;
  bool chunked_accum = false;
  ThreadPool* pool = nullptr;
};

struct PackedDecodeWeights;  // defined below

/// One sequence's slot in a batched decode step (forward_batch). The cache,
/// hook chain and logits belong to the slot's session; forward_batch never
/// lets dataflow cross slots — only the read-only weights and the scratch
/// workspace rows are shared — so each sequence computes exactly what a solo
/// forward_position call would.
struct DecodeSlot {
  int token = -1;              ///< token to feed at this step
  std::size_t pos = 0;         ///< sequence position (== cache->length())
  KvCache* cache = nullptr;    ///< this sequence's KV cache
  const HookChain* hooks = nullptr;  ///< this sequence's hook chain
  std::span<float> logits;     ///< [vocab_size] output for this sequence
};

class TransformerLM {
 public:
  TransformerLM(ModelConfig config, ModelWeights weights);

  const ModelConfig& config() const { return config_; }
  ModelWeights& weights() { return weights_; }
  const ModelWeights& weights() const { return weights_; }

  /// Computes logits for the token at sequence position `pos`.
  /// Preconditions: cache.length() == pos. Appends this position's K/V to
  /// the cache and advances it. `logits` must have vocab_size elements.
  /// Hooks fire for every observable layer output.
  void forward_position(int token, std::size_t pos, KvCache& cache,
                        const HookChain& hooks, const ExecConfig& exec,
                        bool first_token_phase, Workspace& ws,
                        std::span<float> logits) const;

  /// Backward-compatible overload taking only the fp16 flag.
  void forward_position(int token, std::size_t pos, KvCache& cache,
                        const HookChain& hooks, bool fp16,
                        bool first_token_phase, Workspace& ws,
                        std::span<float> logits) const {
    forward_position(token, pos, cache, hooks, ExecConfig{fp16, false},
                     first_token_phase, ws, logits);
  }

  /// Blocked prefill: processes `tokens` at sequence positions
  /// [pos0, pos0 + tokens.size()) through every layer as a batched GEMM,
  /// appends the chunk's K/V to the cache in one shot and applies causal
  /// attention per chunk row. Bit-exact with calling forward_position for
  /// each position in order, at any pool size (see file header). Hooks fire
  /// once per layer site with a [n_positions x width] span view. `logits`
  /// receives the output for the LAST span position only (intermediate
  /// prefill logits are never observed by generate); pass an empty span to
  /// skip the LM head entirely.
  void forward_span(std::span<const int> tokens, std::size_t pos0,
                    KvCache& cache, const HookChain& hooks,
                    const ExecConfig& exec, bool first_token_phase,
                    Workspace& ws, std::span<float> logits) const;

  /// Batched decode: advances every slot's sequence by one position in a
  /// single pass, stacking the B slots' rows into a B x K * K x N GEMM per
  /// linear layer (the serve engine's continuous-batching kernel). Each
  /// slot keeps its own cache, hook chain and logits; hooks fire per slot
  /// row with single-position contexts, in slot order at every site, so a
  /// slot's hook chain observes exactly the call sequence forward_position
  /// would produce (batching is invisible to per-sequence state).
  /// Bit-exact with calling forward_position once per slot, at any batch
  /// size and pool size. Decode always runs with first_token_phase ==
  /// false. `packed` (optional) supplies pre-packed GEMM tiles — a pure
  /// layout cache that must match this model's current weights.
  void forward_batch(std::span<DecodeSlot> slots, const ExecConfig& exec,
                     Workspace& ws,
                     const PackedDecodeWeights* packed = nullptr) const;

  KvCache make_cache() const {
    return KvCache(config_.n_blocks, config_.max_seq, config_.d_model);
  }

 private:
  void attention(const BlockWeights& blk, std::size_t block_idx,
                 std::size_t pos, KvCache& cache, const HookChain& hooks,
                 const ExecConfig& exec, bool first_token,
                 Workspace& ws) const;
  void mlp(const BlockWeights& blk, std::size_t block_idx, const Tensor& input,
           const HookChain& hooks, const ExecConfig& exec, bool first_token,
           Workspace& ws) const;
  void attention_span(const BlockWeights& blk, std::size_t block_idx,
                      std::size_t pos0, std::size_t n, KvCache& cache,
                      const HookChain& hooks, const ExecConfig& exec,
                      bool first_token, Workspace& ws, ThreadPool& pool) const;
  void mlp_span(const BlockWeights& blk, std::size_t block_idx,
                const Tensor& input, std::size_t pos0, std::size_t n,
                const HookChain& hooks, const ExecConfig& exec,
                bool first_token, Workspace& ws, ThreadPool& pool) const;
  void attention_batch(const BlockWeights& blk, std::size_t block_idx,
                       std::span<DecodeSlot> slots, const ExecConfig& exec,
                       Workspace& ws, ThreadPool& pool,
                       const PackedDecodeWeights* packed) const;
  void mlp_batch(const BlockWeights& blk, std::size_t block_idx,
                 const Tensor& input, std::span<DecodeSlot> slots,
                 const ExecConfig& exec, Workspace& ws, ThreadPool& pool,
                 const PackedDecodeWeights* packed) const;
  void apply_norm_row(const NormWeights& nw, std::span<const float> in,
                      std::span<float> out) const;

  ModelConfig config_;
  ModelWeights weights_;
};

/// Pre-packed k-outer GEMM tiles for every decode-path linear layer of one
/// model (attention projections, MLP, LM head). The batched decode re-runs
/// each layer's GEMM every step over a handful of rows; packing once here
/// removes the per-call repack that linear_forward_span amortizes over
/// whole prefill chunks. Packing is pure layout — results stay bit-exact.
/// Snapshot semantics: weights mutated after construction (e.g.
/// ScopedWeightFault) are not reflected; rebuild to observe them.
struct PackedDecodeWeights {
  struct Block {
    PackedLinear q, k, v, o;
    PackedLinear fc1, up, fc2;  ///< up only for Llama-family gate/up/down
  };
  std::vector<Block> blocks;
  PackedLinear lm_head;

  explicit PackedDecodeWeights(const TransformerLM& model);

  std::size_t memory_bytes() const;
};

/// Decoding options. Default is greedy (temperature 0), which every
/// fault-injection experiment uses for determinism; temperature/top-k
/// sampling is available for application use and is itself deterministic
/// given `sample_seed`.
struct GenerateOptions {
  std::size_t max_new_tokens = 32;
  int eos_token = -1;      ///< stop when this token is produced (< 0: never)
  bool fp16 = true;        ///< model FP16 value semantics
  bool chunked_accum = false;  ///< alternate reduction order (see ExecConfig)
  float temperature = 0.0f;    ///< 0 = greedy; > 0 = softmax sampling
  std::size_t top_k = 0;       ///< 0 = all tokens; else sample among top-k
  std::uint64_t sample_seed = 1;  ///< RNG seed for sampling decode
  /// Prompt positions processed per blocked-prefill chunk. 1 = fully
  /// sequential reference path; 0 = the whole prompt in one chunk. Chunking
  /// is bit-exact with the sequential path, so this is purely a speed knob.
  std::size_t prefill_chunk = 32;
  ThreadPool* pool = nullptr;  ///< pool for blocked prefill (null = global)
};

struct GenerateResult {
  std::vector<int> tokens;        ///< generated tokens (no prompt, no EOS)
  std::size_t positions_run = 0;  ///< forward positions executed
  bool hit_max = false;           ///< stopped by max_new_tokens/max_seq
  bool cancelled = false;         ///< stopped early by ServeEngine::cancel
};

/// Runs the blocked prompt prefill exactly as InferenceSession::generate
/// does: chunks of `options.prefill_chunk` positions (0 = whole prompt,
/// 1-wide chunks go through forward_position), logits computed only from
/// the chunk containing the last prompt position. Does NOT bracket the
/// hook chain with begin/end — the caller owns the generation scope.
/// Returns the number of prompt positions run (the prompt is truncated to
/// the model's max_seq). Shared by InferenceSession and ServeEngine so the
/// two paths cannot drift.
std::size_t run_prefill(const TransformerLM& model,
                        std::span<const int> prompt,
                        const GenerateOptions& options, KvCache& cache,
                        const HookChain& hooks, Workspace& ws,
                        std::span<float> logits);

/// Temperature / top-k sampling over logits — the decode-step token choice
/// for `temperature > 0`. Deterministic given `rng`; NaN-poisoned logits
/// fall back to the argmax candidate. Shared by InferenceSession and
/// ServeEngine so batched decode draws exactly the per-session RNG stream.
int sample_from_logits(std::span<const float> logits, float temperature,
                       std::size_t top_k, Xoshiro256& rng);

/// Immutable record of one completed generation, reusable as a shared
/// fault-free prefix by forked sessions (InferenceSession::resume_from).
///
/// A greedy (or fixed-seed sampling) generation is deterministic, and the
/// KV cache is append-only — a position's K/V rows are written exactly once
/// and never touched again. One snapshot of the final cache therefore
/// serves EVERY token boundary of the run: forking at position p only needs
/// rows [0, p), which are a prefix of the recorded rows. The snapshot keeps
/// a compact copy (first stored rows only, not max_seq) behind a
/// shared_ptr, so any number of concurrent forks share it without copying.
struct SessionSnapshot {
  std::size_t prompt_len = 0;  ///< prefilled positions (prompt, truncated)
  GenerateOptions options;     ///< options the recorded run used
  GenerateResult result;       ///< the recorded (fault-free) result
  /// K/V rows [0, prompt_len + result.tokens.size() - 1) of the run,
  /// stored compactly ([rows, d_model] tensors, no max_seq slack).
  std::shared_ptr<const KvCache> cache;
  /// Sampling-RNG state after choosing token s (one entry per token), so a
  /// temperature > 0 fork draws exactly the suffix of the recorded stream.
  std::vector<Xoshiro256::State> rng_at;

  bool valid() const { return cache != nullptr && !result.tokens.empty(); }

  /// Fork positions span [prompt_len, last_boundary()]. Boundary b
  /// (position prompt_len + b) is the instant just before the decode
  /// forward at that position; last_boundary() is after the final forward.
  std::size_t last_boundary() const {
    return prompt_len + result.tokens.size() - 1;
  }
};

/// Stateful generation session: owns the cache, workspace and hook chain.
class InferenceSession {
 public:
  explicit InferenceSession(const TransformerLM& model);

  HookChain& hooks() { return hooks_; }

  /// Greedy generation. Prompt tokens are prefilled in blocked chunks of
  /// `options.prefill_chunk` positions (the "first token generation" phase
  /// of the paper) — bit-exact with sequential prefill; hooks observe every
  /// position. Decode then continues one position at a time.
  GenerateResult generate(std::span<const int> prompt,
                          const GenerateOptions& options);

  /// Runs generate() while recording a SessionSnapshot for later forking.
  /// The generated result is bit-identical to a plain generate() call —
  /// recording only copies state, never alters the computation.
  ///
  /// `on_boundary(b)` fires once per token boundary with the hook chain
  /// quiescent: b = 0 right after prefill, b = k after the decode forward
  /// at position prompt_len + k - 1. Capture per-generation hook state
  /// (e.g. ProtectionHook::capture_state) there; resume_from(snap, pos)
  /// pairs with the capture at boundary pos - prompt_len.
  GenerateResult generate_recorded(
      std::span<const int> prompt, const GenerateOptions& options,
      SessionSnapshot& snap,
      const std::function<void(std::size_t)>& on_boundary = {});

  /// Forks this session from a recorded generation at sequence position
  /// `pos` (in [snap.prompt_len, snap.last_boundary()]): the KV cache
  /// adopts the snapshot's rows [0, pos) as an immutable shared prefix
  /// (O(tail) setup, no prefix copy), the sampling RNG resumes mid-stream,
  /// and generation continues with the recorded tokens up to `pos` already
  /// emitted. With the same hooks and hook state as the recorded run this
  /// reproduces its result bit for bit; with a fault injector registered it
  /// produces exactly what a full from-scratch faulty run would.
  ///
  /// `on_resume` fires after on_generation_begin has been dispatched and
  /// the cache/RNG restored, before the first forward — restore hook state
  /// (ProtectionHook::restore_state) there, so the begin reset cannot
  /// clobber it.
  GenerateResult resume_from(const SessionSnapshot& snap, std::size_t pos,
                             const std::function<void()>& on_resume = {});

 private:
  /// The decode loop shared by generate / generate_recorded / resume_from
  /// (one structure, so the three paths cannot drift). `on_token(step)`
  /// fires right after a token is pushed; `after_forward(step)` after the
  /// forward that ends iteration `step`.
  void decode_loop(const GenerateOptions& options, std::size_t first_step,
                   std::size_t pos, Xoshiro256& sampler,
                   GenerateResult& result,
                   const std::function<void(std::size_t)>& on_token,
                   const std::function<void(std::size_t)>& after_forward);

  const TransformerLM& model_;
  KvCache cache_;
  Workspace ws_;
  HookChain hooks_;
  std::vector<float> logits_;
};

}  // namespace ft2
