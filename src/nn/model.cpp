#include "nn/model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace ft2 {

namespace {

std::vector<std::size_t> shape2(std::size_t rows, std::size_t cols) {
  return {rows, cols};
}

}  // namespace

Workspace::Workspace(const ModelConfig& config, std::size_t chunk_capacity)
    : x(shape2(std::max<std::size_t>(chunk_capacity, 1), config.d_model)),
      h(x.shape()),
      q(x.shape()),
      k(x.shape()),
      v(x.shape()),
      attn_out(x.shape()),
      o(x.shape()),
      f1(shape2(x.dim(0), config.d_ff)),
      f_up(f1.shape()),
      act(f1.shape()),
      f2(x.shape()),
      scores(shape2(x.dim(0), config.max_seq)),
      final_h(x.shape()),
      logits(shape2(x.dim(0), config.vocab_size)) {}

void Workspace::ensure_chunk_capacity(const ModelConfig& config,
                                      std::size_t rows) {
  if (rows <= chunk_capacity()) return;
  *this = Workspace(config, rows);
}

TransformerLM::TransformerLM(ModelConfig config, ModelWeights weights)
    : config_(std::move(config)), weights_(std::move(weights)) {
  FT2_CHECK(weights_.blocks.size() == config_.n_blocks);
}

void TransformerLM::apply_norm_row(const NormWeights& nw,
                                   std::span<const float> in,
                                   std::span<float> out) const {
  if (config_.norm == NormKind::kLayerNorm) {
    layernorm_row(in, nw.gamma.span(), nw.beta.span(), config_.norm_eps, out);
  } else {
    rmsnorm_row(in, nw.gamma.span(), config_.norm_eps, out);
  }
}

namespace {

inline void maybe_quantize(std::span<float> v, bool fp16) {
  if (fp16) quantize_span_f16(v);
}

/// Fusion plan for one hook dispatch: whether any store-epilogue work runs
/// in the kernel (tensor/dispatch.hpp) and which hook, if any, supplied
/// the protection half.
struct FusedPlan {
  bool active = false;          ///< any fused work (quantize and/or protect)
  OutputHook* provider = nullptr;  ///< first hook, when it accepted fusion
  KernelEpilogue epi;
};

/// Negotiates the fused store epilogue for one dispatch. Fusion covers the
/// engine's own FP16 quantize pass plus — when the chain's FIRST hook
/// accepts plan_fused — the protection sweep. Chains led by a non-fusing
/// hook (e.g. a campaign's fault injector, which must corrupt values
/// BEFORE protection sees them), chunked-accumulation mode, and the
/// FT2_FUSED_EPILOGUE=0 kill switch all fall back to the legacy two-pass
/// path; results are bit-identical either way.
inline FusedPlan plan_output_fusion(const HookChain& hooks,
                                    const HookContext& ctx,
                                    const ExecConfig& exec) {
  FusedPlan plan;
  if (exec.chunked_accum || !fused_epilogue_enabled()) return plan;
  plan.epi.quantize = exec.fp16;
  OutputHook* first = hooks.first_hook();
  if (first != nullptr && first->plan_fused(ctx, plan.epi)) {
    plan.provider = first;
  }
  plan.active = plan.epi.quantize || plan.provider != nullptr;
  return plan;
}

/// Applies a negotiated plan to an already-computed span (the sites whose
/// producer is not a fused GEMM: single-row linears, activation outputs,
/// batched decode rows) in one sweep, then completes hook dispatch. With
/// no active plan this is the legacy quantize + full dispatch.
inline void finish_output(std::span<float> values, const HookContext& ctx,
                          const HookChain& hooks, const ExecConfig& exec) {
  const FusedPlan plan = plan_output_fusion(hooks, ctx, exec);
  if (!plan.active) {
    maybe_quantize(values, exec.fp16);
    hooks.dispatch(ctx, values);
    return;
  }
  EpilogueTally tally;
  active_kernel_ops().epilogue_span(
      values.data(), values.size(), 0, plan.epi,
      plan.provider != nullptr ? &tally : nullptr);
  if (plan.provider != nullptr) {
    plan.provider->absorb_fused(ctx, values, plan.epi, tally);
    hooks.dispatch_tail(ctx, values);
  } else {
    hooks.dispatch(ctx, values);
  }
}

inline void run_linear(const LinearWeights& lw, const Tensor& in, Tensor& out,
                       const ExecConfig& exec, const HookChain& hooks,
                       int block, LayerKind kind, std::size_t pos,
                       bool first_token) {
  if (exec.chunked_accum) {
    linear_forward_row_chunked(in.row(0), lw.w, lw.bias_span(), out.row(0));
  } else {
    linear_forward_row(in.row(0), lw.w, lw.bias_span(), out.row(0));
  }
  HookContext ctx{LayerSite{block, kind}, pos, first_token};
  finish_output(out.row(0), ctx, hooks, exec);
}

/// Blocked counterpart of run_linear: GEMM over the first `rows` rows of
/// `in`, FP16 quantization of the chunk (elementwise, so identical to
/// per-row quantization), and ONE hook dispatch carrying the whole
/// [rows x width] span. Per-element accumulation order matches run_linear.
/// With an active fusion plan the quantize/protect sweep runs inside the
/// GEMM store epilogue instead of as separate passes.
inline void run_linear_span(const LinearWeights& lw, const Tensor& in,
                            std::size_t rows, Tensor& out,
                            const ExecConfig& exec, ThreadPool& pool,
                            const HookChain& hooks, int block, LayerKind kind,
                            std::size_t pos0, bool first_token) {
  const std::size_t width = out.dim(1);
  HookContext ctx{LayerSite{block, kind}, pos0, first_token, rows, width};
  const FusedPlan plan = plan_output_fusion(hooks, ctx, exec);
  if (!plan.active) {
    linear_forward_span(in, rows, lw.w, lw.bias_span(), out,
                        exec.chunked_accum, pool);
    std::span<float> view{out.data(), rows * width};
    maybe_quantize(view, exec.fp16);
    hooks.dispatch(ctx, view);
    return;
  }
  EpilogueTally tally;
  linear_forward_span(in, rows, lw.w, lw.bias_span(), out,
                      /*chunked_accum=*/false, pool, &plan.epi,
                      plan.provider != nullptr ? &tally : nullptr);
  std::span<float> view{out.data(), rows * width};
  if (plan.provider != nullptr) {
    plan.provider->absorb_fused(ctx, view, plan.epi, tally);
    hooks.dispatch_tail(ctx, view);
  } else {
    hooks.dispatch(ctx, view);
  }
}

/// Cross-sequence counterpart of run_linear: one GEMM over the B slot rows,
/// then per-row quantization and a per-slot single-position hook dispatch —
/// each slot's chain sees exactly the context run_linear would have built
/// for it. Decode never runs in the first-token phase. `pl` supplies
/// pre-packed tiles (non-chunked accumulation only). Slots carry
/// independent hook chains, so fusion is per row (a one-sweep epilogue
/// after the GEMM) rather than inside the shared GEMM store.
inline void run_linear_batch(const LinearWeights& lw, const PackedLinear* pl,
                             const Tensor& in, std::span<DecodeSlot> slots,
                             Tensor& out, const ExecConfig& exec,
                             ThreadPool& pool, int block, LayerKind kind) {
  const std::size_t rows = slots.size();
  if (pl != nullptr && !exec.chunked_accum) {
    linear_forward_span_packed(in, rows, *pl, out, pool);
  } else {
    linear_forward_span(in, rows, lw.w, lw.bias_span(), out,
                        exec.chunked_accum, pool);
  }
  for (std::size_t r = 0; r < rows; ++r) {
    HookContext ctx{LayerSite{block, kind}, slots[r].pos,
                    /*first_token_phase=*/false};
    finish_output(out.row(r), ctx, *slots[r].hooks, exec);
  }
}

}  // namespace

void TransformerLM::attention(const BlockWeights& blk, std::size_t block_idx,
                              std::size_t pos, KvCache& cache,
                              const HookChain& hooks, const ExecConfig& exec,
                              bool first_token, Workspace& ws) const {
  const bool fp16 = exec.fp16;
  const int b = static_cast<int>(block_idx);
  run_linear(blk.q, ws.h, ws.q, exec, hooks, b, LayerKind::kQProj, pos,
             first_token);
  run_linear(blk.k, ws.h, ws.k, exec, hooks, b, LayerKind::kKProj, pos,
             first_token);
  run_linear(blk.v, ws.h, ws.v, exec, hooks, b, LayerKind::kVProj, pos,
             first_token);

  const std::size_t n_heads = config_.n_heads;
  const std::size_t head_dim = config_.head_dim();
  if (config_.position == PositionKind::kRotary) {
    rope_apply(ws.q.row(0), n_heads, head_dim, pos, config_.rope_theta);
    rope_apply(ws.k.row(0), n_heads, head_dim, pos, config_.rope_theta);
    maybe_quantize(ws.q.row(0), fp16);
    maybe_quantize(ws.k.row(0), fp16);
  }

  cache.store(block_idx, pos, ws.k.row(0), ws.v.row(0));

  // Scaled dot-product attention over positions [0, pos].
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const std::size_t len = pos + 1;
  auto out = ws.attn_out.row(0);
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t hh = 0; hh < n_heads; ++hh) {
    const std::size_t off = hh * head_dim;
    auto scores = ws.scores.row(0).subspan(0, len);
    const float* qh = ws.q.row(0).data() + off;
    for (std::size_t j = 0; j < len; ++j) {
      const float* kh = cache.key(block_idx, j).data() + off;
      float dot = 0.0f;
      for (std::size_t i = 0; i < head_dim; ++i) dot += qh[i] * kh[i];
      scores[j] = dot * scale;
    }
    maybe_quantize(scores, fp16);
    softmax(scores);
    maybe_quantize(scores, fp16);
    float* oh = out.data() + off;
    for (std::size_t j = 0; j < len; ++j) {
      const float p = scores[j];
      if (p == 0.0f) continue;
      const float* vh = cache.value(block_idx, j).data() + off;
      for (std::size_t i = 0; i < head_dim; ++i) oh[i] += p * vh[i];
    }
  }
  maybe_quantize(out, fp16);

  run_linear(blk.o, ws.attn_out, ws.o, exec, hooks, b, LayerKind::kOutProj,
             pos, first_token);
}

void TransformerLM::mlp(const BlockWeights& blk, std::size_t block_idx,
                        const Tensor& input, const HookChain& hooks,
                        const ExecConfig& exec, bool first_token,
                        Workspace& ws) const {
  const bool fp16 = exec.fp16;
  const int b = static_cast<int>(block_idx);
  const bool llama = config_.arch == ArchFamily::kLlama;
  // `pos` only matters for hook context; reuse the attention position via
  // ws.scores? Instead we thread pos through ws: simplest is to record it.
  const std::size_t pos = ws.current_pos;

  if (llama) {
    run_linear(blk.fc1, input, ws.f1, exec, hooks, b, LayerKind::kGateProj,
               pos, first_token);
    run_linear(blk.up, input, ws.f_up, exec, hooks, b, LayerKind::kUpProj,
               pos, first_token);
    std::copy(ws.f1.row(0).begin(), ws.f1.row(0).end(), ws.act.row(0).begin());
    silu(ws.act.row(0));
    finish_output(ws.act.row(0),
                  HookContext{LayerSite{b, LayerKind::kMlpAct}, pos,
                              first_token},
                  hooks, exec);
    mul_inplace(ws.act.row(0), ws.f_up.row(0));
    maybe_quantize(ws.act.row(0), fp16);
    run_linear(blk.fc2, ws.act, ws.f2, exec, hooks, b, LayerKind::kDownProj,
               pos, first_token);
  } else {
    run_linear(blk.fc1, input, ws.f1, exec, hooks, b, LayerKind::kFc1, pos,
               first_token);
    std::copy(ws.f1.row(0).begin(), ws.f1.row(0).end(), ws.act.row(0).begin());
    if (config_.activation == Activation::kRelu) {
      relu(ws.act.row(0));
    } else {
      gelu(ws.act.row(0));
    }
    finish_output(ws.act.row(0),
                  HookContext{LayerSite{b, LayerKind::kMlpAct}, pos,
                              first_token},
                  hooks, exec);
    run_linear(blk.fc2, ws.act, ws.f2, exec, hooks, b, LayerKind::kFc2, pos,
               first_token);
  }
}

void TransformerLM::forward_position(int token, std::size_t pos,
                                     KvCache& cache, const HookChain& hooks,
                                     const ExecConfig& exec,
                                     bool first_token_phase, Workspace& ws,
                                     std::span<float> logits) const {
  const bool fp16 = exec.fp16;
  FT2_CHECK_MSG(cache.length() == pos,
                "cache length " << cache.length() << " != pos " << pos);
  FT2_CHECK(pos < config_.max_seq);
  FT2_CHECK(token >= 0 &&
            static_cast<std::size_t>(token) < config_.vocab_size);
  FT2_CHECK(logits.size() == config_.vocab_size);
  ws.current_pos = pos;

  // Embedding (+ learned positions for OPT).
  auto x = ws.x.row(0);
  auto emb = weights_.tok_emb.row(static_cast<std::size_t>(token));
  std::copy(emb.begin(), emb.end(), x.begin());
  if (config_.position == PositionKind::kLearned) {
    add_inplace(x, weights_.pos_emb.row(pos));
  }
  maybe_quantize(x, fp16);

  for (std::size_t bi = 0; bi < config_.n_blocks; ++bi) {
    const auto& blk = weights_.blocks[bi];
    apply_norm_row(blk.norm1, ws.x.row(0), ws.h.row(0));
    maybe_quantize(ws.h.row(0), fp16);

    attention(blk, bi, pos, cache, hooks, exec, first_token_phase, ws);

    if (config_.parallel_block) {
      // GPT-J: MLP reads the same normed input; single residual add.
      mlp(blk, bi, ws.h, hooks, exec, first_token_phase, ws);
      add_inplace(x, ws.o.row(0));
      add_inplace(x, ws.f2.row(0));
      maybe_quantize(x, fp16);
    } else {
      add_inplace(x, ws.o.row(0));
      maybe_quantize(x, fp16);
      apply_norm_row(blk.norm2, ws.x.row(0), ws.h.row(0));
      maybe_quantize(ws.h.row(0), fp16);
      mlp(blk, bi, ws.h, hooks, exec, first_token_phase, ws);
      add_inplace(x, ws.f2.row(0));
      maybe_quantize(x, fp16);
    }
  }
  cache.advance();

  apply_norm_row(weights_.final_norm, ws.x.row(0), ws.final_h.row(0));
  maybe_quantize(ws.final_h.row(0), fp16);
  linear_forward_row(ws.final_h.row(0), weights_.lm_head.w, {}, logits);
}

void TransformerLM::attention_span(const BlockWeights& blk,
                                   std::size_t block_idx, std::size_t pos0,
                                   std::size_t n, KvCache& cache,
                                   const HookChain& hooks,
                                   const ExecConfig& exec, bool first_token,
                                   Workspace& ws, ThreadPool& pool) const {
  const bool fp16 = exec.fp16;
  const int b = static_cast<int>(block_idx);
  run_linear_span(blk.q, ws.h, n, ws.q, exec, pool, hooks, b,
                  LayerKind::kQProj, pos0, first_token);
  run_linear_span(blk.k, ws.h, n, ws.k, exec, pool, hooks, b,
                  LayerKind::kKProj, pos0, first_token);
  run_linear_span(blk.v, ws.h, n, ws.v, exec, pool, hooks, b,
                  LayerKind::kVProj, pos0, first_token);

  const std::size_t n_heads = config_.n_heads;
  const std::size_t head_dim = config_.head_dim();
  if (config_.position == PositionKind::kRotary) {
    for (std::size_t r = 0; r < n; ++r) {
      rope_apply(ws.q.row(r), n_heads, head_dim, pos0 + r, config_.rope_theta);
      rope_apply(ws.k.row(r), n_heads, head_dim, pos0 + r, config_.rope_theta);
      maybe_quantize(ws.q.row(r), fp16);
      maybe_quantize(ws.k.row(r), fp16);
    }
  }

  // All of the chunk's K/V lands in the cache before any attention row runs:
  // row r attends over [0, pos0 + r], which includes earlier chunk rows.
  // Hooks already ran (above), so the stored values match the sequential
  // path, where each position's K/V is hooked, roped and stored before the
  // next position executes.
  for (std::size_t r = 0; r < n; ++r) {
    cache.store(block_idx, pos0 + r, ws.k.row(r), ws.v.row(r));
  }

  // Causal attention, one independent task per chunk row (fixed loop order
  // inside a row keeps it bit-exact with the sequential path).
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  pool.parallel_for(0, n, [&](std::size_t r) {
    const std::size_t len = pos0 + r + 1;
    auto out = ws.attn_out.row(r);
    std::fill(out.begin(), out.end(), 0.0f);
    for (std::size_t hh = 0; hh < n_heads; ++hh) {
      const std::size_t off = hh * head_dim;
      auto scores = ws.scores.row(r).subspan(0, len);
      const float* qh = ws.q.row(r).data() + off;
      for (std::size_t j = 0; j < len; ++j) {
        const float* kh = cache.key(block_idx, j).data() + off;
        float dot = 0.0f;
        for (std::size_t i = 0; i < head_dim; ++i) dot += qh[i] * kh[i];
        scores[j] = dot * scale;
      }
      maybe_quantize(scores, fp16);
      softmax(scores);
      maybe_quantize(scores, fp16);
      float* oh = out.data() + off;
      for (std::size_t j = 0; j < len; ++j) {
        const float p = scores[j];
        if (p == 0.0f) continue;
        const float* vh = cache.value(block_idx, j).data() + off;
        for (std::size_t i = 0; i < head_dim; ++i) oh[i] += p * vh[i];
      }
    }
    maybe_quantize(out, fp16);
  });

  run_linear_span(blk.o, ws.attn_out, n, ws.o, exec, pool, hooks, b,
                  LayerKind::kOutProj, pos0, first_token);
}

void TransformerLM::mlp_span(const BlockWeights& blk, std::size_t block_idx,
                             const Tensor& input, std::size_t pos0,
                             std::size_t n, const HookChain& hooks,
                             const ExecConfig& exec, bool first_token,
                             Workspace& ws, ThreadPool& pool) const {
  const bool fp16 = exec.fp16;
  const int b = static_cast<int>(block_idx);
  const bool llama = config_.arch == ArchFamily::kLlama;
  const std::size_t d_ff = config_.d_ff;
  std::span<float> act_view{ws.act.data(), n * d_ff};

  if (llama) {
    run_linear_span(blk.fc1, input, n, ws.f1, exec, pool, hooks, b,
                    LayerKind::kGateProj, pos0, first_token);
    run_linear_span(blk.up, input, n, ws.f_up, exec, pool, hooks, b,
                    LayerKind::kUpProj, pos0, first_token);
    std::copy_n(ws.f1.data(), n * d_ff, ws.act.data());
    silu(act_view);
    finish_output(act_view,
                  HookContext{LayerSite{b, LayerKind::kMlpAct}, pos0,
                              first_token, n, d_ff},
                  hooks, exec);
    mul_inplace(act_view, {ws.f_up.data(), n * d_ff});
    maybe_quantize(act_view, fp16);
    run_linear_span(blk.fc2, ws.act, n, ws.f2, exec, pool, hooks, b,
                    LayerKind::kDownProj, pos0, first_token);
  } else {
    run_linear_span(blk.fc1, input, n, ws.f1, exec, pool, hooks, b,
                    LayerKind::kFc1, pos0, first_token);
    std::copy_n(ws.f1.data(), n * d_ff, ws.act.data());
    if (config_.activation == Activation::kRelu) {
      relu(act_view);
    } else {
      gelu(act_view);
    }
    finish_output(act_view,
                  HookContext{LayerSite{b, LayerKind::kMlpAct}, pos0,
                              first_token, n, d_ff},
                  hooks, exec);
    run_linear_span(blk.fc2, ws.act, n, ws.f2, exec, pool, hooks, b,
                    LayerKind::kFc2, pos0, first_token);
  }
}

void TransformerLM::forward_span(std::span<const int> tokens, std::size_t pos0,
                                 KvCache& cache, const HookChain& hooks,
                                 const ExecConfig& exec,
                                 bool first_token_phase, Workspace& ws,
                                 std::span<float> logits) const {
  const std::size_t n = tokens.size();
  const bool fp16 = exec.fp16;
  FT2_CHECK(n > 0);
  FT2_CHECK_MSG(cache.length() == pos0,
                "cache length " << cache.length() << " != pos0 " << pos0);
  FT2_CHECK(pos0 + n <= config_.max_seq);
  FT2_CHECK(logits.empty() || logits.size() == config_.vocab_size);
  ws.ensure_chunk_capacity(config_, n);
  ws.current_pos = pos0;
  ThreadPool& pool = exec.pool != nullptr ? *exec.pool : ThreadPool::global();

  for (std::size_t r = 0; r < n; ++r) {
    const int token = tokens[r];
    FT2_CHECK(token >= 0 &&
              static_cast<std::size_t>(token) < config_.vocab_size);
    auto x = ws.x.row(r);
    auto emb = weights_.tok_emb.row(static_cast<std::size_t>(token));
    std::copy(emb.begin(), emb.end(), x.begin());
    if (config_.position == PositionKind::kLearned) {
      add_inplace(x, weights_.pos_emb.row(pos0 + r));
    }
    maybe_quantize(x, fp16);
  }

  for (std::size_t bi = 0; bi < config_.n_blocks; ++bi) {
    const auto& blk = weights_.blocks[bi];
    for (std::size_t r = 0; r < n; ++r) {
      apply_norm_row(blk.norm1, ws.x.row(r), ws.h.row(r));
      maybe_quantize(ws.h.row(r), fp16);
    }

    attention_span(blk, bi, pos0, n, cache, hooks, exec, first_token_phase,
                   ws, pool);

    if (config_.parallel_block) {
      mlp_span(blk, bi, ws.h, pos0, n, hooks, exec, first_token_phase, ws,
               pool);
      for (std::size_t r = 0; r < n; ++r) {
        auto x = ws.x.row(r);
        add_inplace(x, ws.o.row(r));
        add_inplace(x, ws.f2.row(r));
        maybe_quantize(x, fp16);
      }
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        auto x = ws.x.row(r);
        add_inplace(x, ws.o.row(r));
        maybe_quantize(x, fp16);
        apply_norm_row(blk.norm2, ws.x.row(r), ws.h.row(r));
        maybe_quantize(ws.h.row(r), fp16);
      }
      mlp_span(blk, bi, ws.h, pos0, n, hooks, exec, first_token_phase, ws,
               pool);
      for (std::size_t r = 0; r < n; ++r) {
        auto x = ws.x.row(r);
        add_inplace(x, ws.f2.row(r));
        maybe_quantize(x, fp16);
      }
    }
  }
  cache.advance(n);

  if (logits.empty()) return;
  // Only the last span position's logits are observable: generate() ignores
  // intermediate prefill logits, so the blocked path never computes them.
  apply_norm_row(weights_.final_norm, ws.x.row(n - 1), ws.final_h.row(0));
  maybe_quantize(ws.final_h.row(0), fp16);
  linear_forward_row(ws.final_h.row(0), weights_.lm_head.w, {}, logits);
}

void TransformerLM::attention_batch(const BlockWeights& blk,
                                    std::size_t block_idx,
                                    std::span<DecodeSlot> slots,
                                    const ExecConfig& exec, Workspace& ws,
                                    ThreadPool& pool,
                                    const PackedDecodeWeights* packed) const {
  const bool fp16 = exec.fp16;
  const int b = static_cast<int>(block_idx);
  const std::size_t n = slots.size();
  const PackedDecodeWeights::Block* pb =
      packed != nullptr ? &packed->blocks[block_idx] : nullptr;
  run_linear_batch(blk.q, pb != nullptr ? &pb->q : nullptr, ws.h, slots,
                   ws.q, exec, pool, b, LayerKind::kQProj);
  run_linear_batch(blk.k, pb != nullptr ? &pb->k : nullptr, ws.h, slots,
                   ws.k, exec, pool, b, LayerKind::kKProj);
  run_linear_batch(blk.v, pb != nullptr ? &pb->v : nullptr, ws.h, slots,
                   ws.v, exec, pool, b, LayerKind::kVProj);

  const std::size_t n_heads = config_.n_heads;
  const std::size_t head_dim = config_.head_dim();
  if (config_.position == PositionKind::kRotary) {
    for (std::size_t r = 0; r < n; ++r) {
      rope_apply(ws.q.row(r), n_heads, head_dim, slots[r].pos,
                 config_.rope_theta);
      rope_apply(ws.k.row(r), n_heads, head_dim, slots[r].pos,
                 config_.rope_theta);
      maybe_quantize(ws.q.row(r), fp16);
      maybe_quantize(ws.k.row(r), fp16);
    }
  }

  for (std::size_t r = 0; r < n; ++r) {
    slots[r].cache->store(block_idx, slots[r].pos, ws.k.row(r), ws.v.row(r));
  }

  // Causal attention, one independent task per slot — each row reads only
  // its own sequence's cache, with the sequential path's fixed loop order.
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  pool.parallel_for(0, n, [&](std::size_t r) {
    const KvCache& cache = *slots[r].cache;
    const std::size_t len = slots[r].pos + 1;
    auto out = ws.attn_out.row(r);
    std::fill(out.begin(), out.end(), 0.0f);
    for (std::size_t hh = 0; hh < n_heads; ++hh) {
      const std::size_t off = hh * head_dim;
      auto scores = ws.scores.row(r).subspan(0, len);
      const float* qh = ws.q.row(r).data() + off;
      for (std::size_t j = 0; j < len; ++j) {
        const float* kh = cache.key(block_idx, j).data() + off;
        float dot = 0.0f;
        for (std::size_t i = 0; i < head_dim; ++i) dot += qh[i] * kh[i];
        scores[j] = dot * scale;
      }
      maybe_quantize(scores, fp16);
      softmax(scores);
      maybe_quantize(scores, fp16);
      float* oh = out.data() + off;
      for (std::size_t j = 0; j < len; ++j) {
        const float p = scores[j];
        if (p == 0.0f) continue;
        const float* vh = cache.value(block_idx, j).data() + off;
        for (std::size_t i = 0; i < head_dim; ++i) oh[i] += p * vh[i];
      }
    }
    maybe_quantize(out, fp16);
  });

  run_linear_batch(blk.o, pb != nullptr ? &pb->o : nullptr, ws.attn_out,
                   slots, ws.o, exec, pool, b, LayerKind::kOutProj);
}

void TransformerLM::mlp_batch(const BlockWeights& blk, std::size_t block_idx,
                              const Tensor& input,
                              std::span<DecodeSlot> slots,
                              const ExecConfig& exec, Workspace& ws,
                              ThreadPool& pool,
                              const PackedDecodeWeights* packed) const {
  const bool fp16 = exec.fp16;
  const int b = static_cast<int>(block_idx);
  const bool llama = config_.arch == ArchFamily::kLlama;
  const std::size_t n = slots.size();
  const std::size_t d_ff = config_.d_ff;
  std::span<float> act_view{ws.act.data(), n * d_ff};
  const PackedDecodeWeights::Block* pb =
      packed != nullptr ? &packed->blocks[block_idx] : nullptr;

  // Per-slot MlpAct finish: the activation is elementwise, so row r holds
  // exactly the values the sequential path hands this slot's chain (the
  // quantize/protect sweep is fused per row when the slot's chain accepts).
  const auto finish_act = [&] {
    for (std::size_t r = 0; r < n; ++r) {
      HookContext ctx{LayerSite{b, LayerKind::kMlpAct}, slots[r].pos,
                      /*first_token_phase=*/false};
      finish_output(ws.act.row(r), ctx, *slots[r].hooks, exec);
    }
  };

  if (llama) {
    run_linear_batch(blk.fc1, pb != nullptr ? &pb->fc1 : nullptr, input,
                     slots, ws.f1, exec, pool, b, LayerKind::kGateProj);
    run_linear_batch(blk.up, pb != nullptr ? &pb->up : nullptr, input, slots,
                     ws.f_up, exec, pool, b, LayerKind::kUpProj);
    std::copy_n(ws.f1.data(), n * d_ff, ws.act.data());
    silu(act_view);
    finish_act();
    mul_inplace(act_view, {ws.f_up.data(), n * d_ff});
    maybe_quantize(act_view, fp16);
    run_linear_batch(blk.fc2, pb != nullptr ? &pb->fc2 : nullptr, ws.act,
                     slots, ws.f2, exec, pool, b, LayerKind::kDownProj);
  } else {
    run_linear_batch(blk.fc1, pb != nullptr ? &pb->fc1 : nullptr, input,
                     slots, ws.f1, exec, pool, b, LayerKind::kFc1);
    std::copy_n(ws.f1.data(), n * d_ff, ws.act.data());
    if (config_.activation == Activation::kRelu) {
      relu(act_view);
    } else {
      gelu(act_view);
    }
    finish_act();
    run_linear_batch(blk.fc2, pb != nullptr ? &pb->fc2 : nullptr, ws.act,
                     slots, ws.f2, exec, pool, b, LayerKind::kFc2);
  }
}

void TransformerLM::forward_batch(std::span<DecodeSlot> slots,
                                  const ExecConfig& exec, Workspace& ws,
                                  const PackedDecodeWeights* packed) const {
  const std::size_t n = slots.size();
  if (n == 0) return;
  const bool fp16 = exec.fp16;
  for (const DecodeSlot& s : slots) {
    FT2_CHECK(s.cache != nullptr && s.hooks != nullptr);
    FT2_CHECK_MSG(s.cache->length() == s.pos,
                  "slot cache length " << s.cache->length() << " != pos "
                                       << s.pos);
    FT2_CHECK(s.pos < config_.max_seq);
    FT2_CHECK(s.token >= 0 &&
              static_cast<std::size_t>(s.token) < config_.vocab_size);
    FT2_CHECK(s.logits.size() == config_.vocab_size);
  }
  if (packed != nullptr) {
    FT2_CHECK_MSG(packed->blocks.size() == config_.n_blocks,
                  "packed weights built for a different model");
  }
  ws.ensure_chunk_capacity(config_, n);
  ThreadPool& pool = exec.pool != nullptr ? *exec.pool : ThreadPool::global();

  for (std::size_t r = 0; r < n; ++r) {
    auto x = ws.x.row(r);
    auto emb =
        weights_.tok_emb.row(static_cast<std::size_t>(slots[r].token));
    std::copy(emb.begin(), emb.end(), x.begin());
    if (config_.position == PositionKind::kLearned) {
      add_inplace(x, weights_.pos_emb.row(slots[r].pos));
    }
    maybe_quantize(x, fp16);
  }

  for (std::size_t bi = 0; bi < config_.n_blocks; ++bi) {
    const auto& blk = weights_.blocks[bi];
    for (std::size_t r = 0; r < n; ++r) {
      apply_norm_row(blk.norm1, ws.x.row(r), ws.h.row(r));
      maybe_quantize(ws.h.row(r), fp16);
    }

    attention_batch(blk, bi, slots, exec, ws, pool, packed);

    if (config_.parallel_block) {
      mlp_batch(blk, bi, ws.h, slots, exec, ws, pool, packed);
      for (std::size_t r = 0; r < n; ++r) {
        auto x = ws.x.row(r);
        add_inplace(x, ws.o.row(r));
        add_inplace(x, ws.f2.row(r));
        maybe_quantize(x, fp16);
      }
    } else {
      for (std::size_t r = 0; r < n; ++r) {
        auto x = ws.x.row(r);
        add_inplace(x, ws.o.row(r));
        maybe_quantize(x, fp16);
        apply_norm_row(blk.norm2, ws.x.row(r), ws.h.row(r));
        maybe_quantize(ws.h.row(r), fp16);
      }
      mlp_batch(blk, bi, ws.h, slots, exec, ws, pool, packed);
      for (std::size_t r = 0; r < n; ++r) {
        auto x = ws.x.row(r);
        add_inplace(x, ws.f2.row(r));
        maybe_quantize(x, fp16);
      }
    }
  }
  for (std::size_t r = 0; r < n; ++r) slots[r].cache->advance();

  // LM head: every slot's logits are observable each decode step. The
  // sequential path always uses the non-chunked kernel here, so the batch
  // does too (packed tiles share that accumulation order). No quantization
  // and no hooks on logits — exactly like forward_position.
  for (std::size_t r = 0; r < n; ++r) {
    apply_norm_row(weights_.final_norm, ws.x.row(r), ws.final_h.row(r));
    maybe_quantize(ws.final_h.row(r), fp16);
  }
  if (packed != nullptr) {
    linear_forward_span_packed(ws.final_h, n, packed->lm_head, ws.logits,
                               pool);
  } else {
    linear_forward_span(ws.final_h, n, weights_.lm_head.w, {}, ws.logits,
                        /*chunked_accum=*/false, pool);
  }
  for (std::size_t r = 0; r < n; ++r) {
    auto row = ws.logits.row(r);
    std::copy(row.begin(), row.end(), slots[r].logits.begin());
  }
}

PackedDecodeWeights::PackedDecodeWeights(const TransformerLM& model) {
  const ModelConfig& config = model.config();
  const ModelWeights& w = model.weights();
  const bool llama = config.arch == ArchFamily::kLlama;
  blocks.reserve(config.n_blocks);
  for (std::size_t bi = 0; bi < config.n_blocks; ++bi) {
    const BlockWeights& blk = w.blocks[bi];
    Block p;
    p.q = PackedLinear(blk.q.w, blk.q.bias_span());
    p.k = PackedLinear(blk.k.w, blk.k.bias_span());
    p.v = PackedLinear(blk.v.w, blk.v.bias_span());
    p.o = PackedLinear(blk.o.w, blk.o.bias_span());
    p.fc1 = PackedLinear(blk.fc1.w, blk.fc1.bias_span());
    if (llama) p.up = PackedLinear(blk.up.w, blk.up.bias_span());
    p.fc2 = PackedLinear(blk.fc2.w, blk.fc2.bias_span());
    blocks.push_back(std::move(p));
  }
  lm_head = PackedLinear(w.lm_head.w, {});
}

std::size_t PackedDecodeWeights::memory_bytes() const {
  std::size_t total = lm_head.memory_bytes();
  for (const Block& b : blocks) {
    total += b.q.memory_bytes() + b.k.memory_bytes() + b.v.memory_bytes() +
             b.o.memory_bytes() + b.fc1.memory_bytes() + b.up.memory_bytes() +
             b.fc2.memory_bytes();
  }
  return total;
}

InferenceSession::InferenceSession(const TransformerLM& model)
    : model_(model),
      cache_(model.make_cache()),
      ws_(model.config()),
      logits_(model.config().vocab_size) {}

std::size_t run_prefill(const TransformerLM& model,
                        std::span<const int> prompt,
                        const GenerateOptions& options, KvCache& cache,
                        const HookChain& hooks, Workspace& ws,
                        std::span<float> logits) {
  const ExecConfig exec{options.fp16, options.chunked_accum, options.pool};
  const std::size_t max_seq = model.config().max_seq;
  const std::size_t prompt_len = std::min(prompt.size(), max_seq);
  const std::size_t chunk =
      options.prefill_chunk == 0 ? prompt_len : options.prefill_chunk;
  std::size_t pos = 0;
  while (pos < prompt_len) {
    const std::size_t n = std::min(chunk, prompt_len - pos);
    // Logits are only needed from the chunk containing the last prompt
    // position; earlier chunks skip the LM head entirely.
    const bool last_chunk = pos + n == prompt_len;
    if (n == 1) {
      model.forward_position(prompt[pos], pos, cache, hooks, exec,
                             /*first_token_phase=*/true, ws, logits);
    } else {
      model.forward_span(prompt.subspan(pos, n), pos, cache, hooks, exec,
                         /*first_token_phase=*/true, ws,
                         last_chunk ? logits : std::span<float>{});
    }
    pos += n;
  }
  return prompt_len;
}

int sample_from_logits(std::span<const float> logits, float temperature,
                       std::size_t top_k, Xoshiro256& rng) {
  const std::size_t vocab = logits.size();
  std::vector<std::size_t> order(vocab);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return logits[a] > logits[b];
  });
  const std::size_t k =
      top_k == 0 ? vocab : std::min(top_k, vocab);

  // Stable softmax over the candidate set at the given temperature.
  std::vector<double> probs(k);
  const double mx = static_cast<double>(logits[order[0]]);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double z =
        (static_cast<double>(logits[order[i]]) - mx) / temperature;
    probs[i] = std::exp(z);
    sum += probs[i];
  }
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    return static_cast<int>(order[0]);  // NaN-poisoned logits: fall back
  }
  double u = rng.uniform_double() * sum;
  for (std::size_t i = 0; i < k; ++i) {
    u -= probs[i];
    if (u <= 0.0) return static_cast<int>(order[i]);
  }
  return static_cast<int>(order[k - 1]);
}

void InferenceSession::decode_loop(
    const GenerateOptions& options, std::size_t first_step, std::size_t pos,
    Xoshiro256& sampler, GenerateResult& result,
    const std::function<void(std::size_t)>& on_token,
    const std::function<void(std::size_t)>& after_forward) {
  const ExecConfig exec{options.fp16, options.chunked_accum, options.pool};
  const std::size_t max_seq = model_.config().max_seq;
  std::span<float> logits{logits_.data(), logits_.size()};

  // Greedy by default; NaN-poisoned logits: argmax picks the first index
  // when all comparisons are false, which is deterministic (faithful
  // "garbage token" behaviour).
  for (std::size_t step = first_step; step < options.max_new_tokens; ++step) {
    const int next =
        options.temperature > 0.0f
            ? sample_from_logits(logits, options.temperature, options.top_k,
                                 sampler)
            : static_cast<int>(argmax(logits));
    if (options.eos_token >= 0 && next == options.eos_token) break;
    result.tokens.push_back(next);
    if (on_token) on_token(step);
    if (step + 1 == options.max_new_tokens || pos >= max_seq) {
      result.hit_max = true;
      break;
    }
    model_.forward_position(next, pos, cache_, hooks_, exec,
                            /*first_token_phase=*/false, ws_, logits);
    ++pos;
    ++result.positions_run;
    if (after_forward) after_forward(step);
  }
}

GenerateResult InferenceSession::generate(std::span<const int> prompt,
                                          const GenerateOptions& options) {
  FT2_CHECK(!prompt.empty());
  GenerateResult result;
  // A session may alternate between forked trials and full generations; a
  // forked cache only owns its tail, so full runs start from a fresh cache.
  if (cache_.forked()) cache_ = model_.make_cache();
  cache_.reset();
  GenerationScope scope(hooks_);

  std::span<float> logits{logits_.data(), logits_.size()};

  // Prefill: the "first token generation" phase, processed in blocked
  // chunks (bit-exact with the sequential path at any chunk size).
  const std::size_t pos =
      run_prefill(model_, prompt, options, cache_, hooks_, ws_, logits);
  result.positions_run = pos;

  Xoshiro256 sampler(options.sample_seed);
  decode_loop(options, 0, pos, sampler, result, {}, {});
  return result;
}

GenerateResult InferenceSession::generate_recorded(
    std::span<const int> prompt, const GenerateOptions& options,
    SessionSnapshot& snap,
    const std::function<void(std::size_t)>& on_boundary) {
  FT2_CHECK(!prompt.empty());
  GenerateResult result;
  if (cache_.forked()) cache_ = model_.make_cache();
  cache_.reset();
  GenerationScope scope(hooks_);

  std::span<float> logits{logits_.data(), logits_.size()};
  const std::size_t pos =
      run_prefill(model_, prompt, options, cache_, hooks_, ws_, logits);
  result.positions_run = pos;

  snap = SessionSnapshot{};
  snap.prompt_len = pos;
  snap.options = options;
  if (on_boundary) on_boundary(0);

  Xoshiro256 sampler(options.sample_seed);
  decode_loop(
      options, 0, pos, sampler, result,
      /*on_token=*/
      [&](std::size_t) { snap.rng_at.push_back(sampler.state()); },
      /*after_forward=*/
      [&](std::size_t step) {
        if (on_boundary) on_boundary(step + 1);
      });
  scope.end();

  snap.result = result;
  // Retain only the rows the run actually stored (copy hygiene: no max_seq
  // slack travels with the snapshot).
  snap.cache = std::make_shared<const KvCache>(
      cache_.prefix_copy(cache_.length()));
  return result;
}

GenerateResult InferenceSession::resume_from(
    const SessionSnapshot& snap, std::size_t pos,
    const std::function<void()>& on_resume) {
  FT2_CHECK(snap.valid());
  FT2_CHECK_MSG(pos >= snap.prompt_len && pos <= snap.last_boundary(),
                "fork position " << pos << " outside ["
                                 << snap.prompt_len << ", "
                                 << snap.last_boundary() << "]");
  const GenerateOptions& options = snap.options;
  const std::size_t s = pos - snap.prompt_len;
  const std::size_t max_seq = model_.config().max_seq;

  GenerateResult result;
  result.tokens.assign(snap.result.tokens.begin(),
                       snap.result.tokens.begin() +
                           static_cast<std::ptrdiff_t>(s + 1));
  result.positions_run = pos;  // prefill + decode forwards before the fork

  // O(tail) fork: rows [0, pos) are shared with the snapshot; the owned
  // tail covers exactly the forwards this continuation can still run.
  const std::size_t horizon =
      std::min(snap.prompt_len + options.max_new_tokens - 1, max_seq);
  cache_ = KvCache::forked(snap.cache, pos, horizon > pos ? horizon - pos : 0);

  GenerationScope scope(hooks_);
  if (on_resume) on_resume();

  Xoshiro256 sampler(options.sample_seed);
  sampler.set_state(snap.rng_at[s]);

  // Tail of the recorded run's iteration s: it ended either by hitting the
  // generation limit (no forward left to run) or with the forward at `pos`.
  if (s + 1 == options.max_new_tokens || pos >= max_seq) {
    result.hit_max = true;
    return result;
  }
  std::span<float> logits{logits_.data(), logits_.size()};
  const ExecConfig exec{options.fp16, options.chunked_accum, options.pool};
  model_.forward_position(result.tokens.back(), pos, cache_, hooks_, exec,
                          /*first_token_phase=*/false, ws_, logits);
  ++pos;
  ++result.positions_run;
  decode_loop(options, s + 1, pos, sampler, result, {}, {});
  return result;
}

}  // namespace ft2
