#include "nn/model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ft2 {

Workspace::Workspace(const ModelConfig& config)
    : x({std::size_t{1}, config.d_model}),
      h({std::size_t{1}, config.d_model}),
      q({std::size_t{1}, config.d_model}),
      k({std::size_t{1}, config.d_model}),
      v({std::size_t{1}, config.d_model}),
      attn_out({std::size_t{1}, config.d_model}),
      o({std::size_t{1}, config.d_model}),
      f1({std::size_t{1}, config.d_ff}),
      f_up({std::size_t{1}, config.d_ff}),
      act({std::size_t{1}, config.d_ff}),
      f2({std::size_t{1}, config.d_model}),
      scores({std::size_t{1}, config.max_seq}),
      final_h({std::size_t{1}, config.d_model}) {}

TransformerLM::TransformerLM(ModelConfig config, ModelWeights weights)
    : config_(std::move(config)), weights_(std::move(weights)) {
  FT2_CHECK(weights_.blocks.size() == config_.n_blocks);
}

void TransformerLM::apply_norm(const NormWeights& nw, const Tensor& in,
                               Tensor& out) const {
  if (config_.norm == NormKind::kLayerNorm) {
    layernorm_rows(in, nw.gamma.span(), nw.beta.span(), config_.norm_eps, out);
  } else {
    rmsnorm_rows(in, nw.gamma.span(), config_.norm_eps, out);
  }
}

namespace {

inline void maybe_quantize(std::span<float> v, bool fp16) {
  if (fp16) quantize_span_f16(v);
}

/// Dot product accumulated in 8-wide partial sums: a different reduction
/// order from the sequential kernel, standing in for a different GPU
/// generation's tiling (Fig. 16 hardware sensitivity).
void linear_forward_row_chunked(std::span<const float> x, const Tensor& w,
                                std::span<const float> bias,
                                std::span<float> y) {
  const std::size_t n = w.dim(0);
  const std::size_t k = w.dim(1);
  const float* wd = w.data();
  for (std::size_t o = 0; o < n; ++o) {
    const float* row = wd + o * k;
    float partial[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t i = 0;
    for (; i + 8 <= k; i += 8) {
      for (std::size_t lane = 0; lane < 8; ++lane) {
        partial[lane] += row[i + lane] * x[i + lane];
      }
    }
    float acc = bias.empty() ? 0.0f : bias[o];
    for (; i < k; ++i) acc += row[i] * x[i];
    // Pairwise tree reduction of the lanes.
    partial[0] += partial[4];
    partial[1] += partial[5];
    partial[2] += partial[6];
    partial[3] += partial[7];
    partial[0] += partial[2];
    partial[1] += partial[3];
    y[o] = acc + partial[0] + partial[1];
  }
}

inline void run_linear(const LinearWeights& lw, const Tensor& in, Tensor& out,
                       const ExecConfig& exec, const HookChain& hooks,
                       int block, LayerKind kind, std::size_t pos,
                       bool first_token) {
  if (exec.chunked_accum) {
    linear_forward_row_chunked(in.row(0), lw.w, lw.bias_span(), out.row(0));
  } else {
    linear_forward_row(in.row(0), lw.w, lw.bias_span(), out.row(0));
  }
  maybe_quantize(out.row(0), exec.fp16);
  HookContext ctx{LayerSite{block, kind}, pos, first_token};
  hooks.dispatch(ctx, out.row(0));
}

}  // namespace

void TransformerLM::attention(const BlockWeights& blk, std::size_t block_idx,
                              std::size_t pos, KvCache& cache,
                              const HookChain& hooks, const ExecConfig& exec,
                              bool first_token, Workspace& ws) const {
  const bool fp16 = exec.fp16;
  const int b = static_cast<int>(block_idx);
  run_linear(blk.q, ws.h, ws.q, exec, hooks, b, LayerKind::kQProj, pos,
             first_token);
  run_linear(blk.k, ws.h, ws.k, exec, hooks, b, LayerKind::kKProj, pos,
             first_token);
  run_linear(blk.v, ws.h, ws.v, exec, hooks, b, LayerKind::kVProj, pos,
             first_token);

  const std::size_t n_heads = config_.n_heads;
  const std::size_t head_dim = config_.head_dim();
  if (config_.position == PositionKind::kRotary) {
    rope_apply(ws.q.row(0), n_heads, head_dim, pos, config_.rope_theta);
    rope_apply(ws.k.row(0), n_heads, head_dim, pos, config_.rope_theta);
    maybe_quantize(ws.q.row(0), fp16);
    maybe_quantize(ws.k.row(0), fp16);
  }

  cache.store(block_idx, pos, ws.k.row(0), ws.v.row(0));

  // Scaled dot-product attention over positions [0, pos].
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  const std::size_t len = pos + 1;
  auto out = ws.attn_out.row(0);
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t hh = 0; hh < n_heads; ++hh) {
    const std::size_t off = hh * head_dim;
    auto scores = ws.scores.row(0).subspan(0, len);
    const float* qh = ws.q.row(0).data() + off;
    for (std::size_t j = 0; j < len; ++j) {
      const float* kh = cache.key(block_idx, j).data() + off;
      float dot = 0.0f;
      for (std::size_t i = 0; i < head_dim; ++i) dot += qh[i] * kh[i];
      scores[j] = dot * scale;
    }
    maybe_quantize(scores, fp16);
    softmax(scores);
    maybe_quantize(scores, fp16);
    float* oh = out.data() + off;
    for (std::size_t j = 0; j < len; ++j) {
      const float p = scores[j];
      if (p == 0.0f) continue;
      const float* vh = cache.value(block_idx, j).data() + off;
      for (std::size_t i = 0; i < head_dim; ++i) oh[i] += p * vh[i];
    }
  }
  maybe_quantize(out, fp16);

  run_linear(blk.o, ws.attn_out, ws.o, exec, hooks, b, LayerKind::kOutProj,
             pos, first_token);
}

void TransformerLM::mlp(const BlockWeights& blk, std::size_t block_idx,
                        const Tensor& input, const HookChain& hooks,
                        const ExecConfig& exec, bool first_token,
                        Workspace& ws) const {
  const bool fp16 = exec.fp16;
  const int b = static_cast<int>(block_idx);
  const bool llama = config_.arch == ArchFamily::kLlama;
  // `pos` only matters for hook context; reuse the attention position via
  // ws.scores? Instead we thread pos through ws: simplest is to record it.
  const std::size_t pos = ws.current_pos;

  if (llama) {
    run_linear(blk.fc1, input, ws.f1, exec, hooks, b, LayerKind::kGateProj,
               pos, first_token);
    run_linear(blk.up, input, ws.f_up, exec, hooks, b, LayerKind::kUpProj,
               pos, first_token);
    std::copy(ws.f1.row(0).begin(), ws.f1.row(0).end(), ws.act.row(0).begin());
    silu(ws.act.row(0));
    maybe_quantize(ws.act.row(0), fp16);
    hooks.dispatch(HookContext{LayerSite{b, LayerKind::kMlpAct}, pos,
                               first_token},
                   ws.act.row(0));
    mul_inplace(ws.act.row(0), ws.f_up.row(0));
    maybe_quantize(ws.act.row(0), fp16);
    run_linear(blk.fc2, ws.act, ws.f2, exec, hooks, b, LayerKind::kDownProj,
               pos, first_token);
  } else {
    run_linear(blk.fc1, input, ws.f1, exec, hooks, b, LayerKind::kFc1, pos,
               first_token);
    std::copy(ws.f1.row(0).begin(), ws.f1.row(0).end(), ws.act.row(0).begin());
    if (config_.activation == Activation::kRelu) {
      relu(ws.act.row(0));
    } else {
      gelu(ws.act.row(0));
    }
    maybe_quantize(ws.act.row(0), fp16);
    hooks.dispatch(HookContext{LayerSite{b, LayerKind::kMlpAct}, pos,
                               first_token},
                   ws.act.row(0));
    run_linear(blk.fc2, ws.act, ws.f2, exec, hooks, b, LayerKind::kFc2, pos,
               first_token);
  }
}

void TransformerLM::forward_position(int token, std::size_t pos,
                                     KvCache& cache, const HookChain& hooks,
                                     const ExecConfig& exec,
                                     bool first_token_phase, Workspace& ws,
                                     std::span<float> logits) const {
  const bool fp16 = exec.fp16;
  FT2_CHECK_MSG(cache.length() == pos,
                "cache length " << cache.length() << " != pos " << pos);
  FT2_CHECK(pos < config_.max_seq);
  FT2_CHECK(token >= 0 &&
            static_cast<std::size_t>(token) < config_.vocab_size);
  FT2_CHECK(logits.size() == config_.vocab_size);
  ws.current_pos = pos;

  // Embedding (+ learned positions for OPT).
  auto x = ws.x.row(0);
  auto emb = weights_.tok_emb.row(static_cast<std::size_t>(token));
  std::copy(emb.begin(), emb.end(), x.begin());
  if (config_.position == PositionKind::kLearned) {
    add_inplace(x, weights_.pos_emb.row(pos));
  }
  maybe_quantize(x, fp16);

  for (std::size_t bi = 0; bi < config_.n_blocks; ++bi) {
    const auto& blk = weights_.blocks[bi];
    apply_norm(blk.norm1, ws.x, ws.h);
    maybe_quantize(ws.h.row(0), fp16);

    attention(blk, bi, pos, cache, hooks, exec, first_token_phase, ws);

    if (config_.parallel_block) {
      // GPT-J: MLP reads the same normed input; single residual add.
      mlp(blk, bi, ws.h, hooks, exec, first_token_phase, ws);
      add_inplace(x, ws.o.row(0));
      add_inplace(x, ws.f2.row(0));
      maybe_quantize(x, fp16);
    } else {
      add_inplace(x, ws.o.row(0));
      maybe_quantize(x, fp16);
      apply_norm(blk.norm2, ws.x, ws.h);
      maybe_quantize(ws.h.row(0), fp16);
      mlp(blk, bi, ws.h, hooks, exec, first_token_phase, ws);
      add_inplace(x, ws.f2.row(0));
      maybe_quantize(x, fp16);
    }
  }
  cache.advance();

  apply_norm(weights_.final_norm, ws.x, ws.final_h);
  maybe_quantize(ws.final_h.row(0), fp16);
  linear_forward_row(ws.final_h.row(0), weights_.lm_head.w, {}, logits);
}

InferenceSession::InferenceSession(const TransformerLM& model)
    : model_(model),
      cache_(model.make_cache()),
      ws_(model.config()),
      logits_(model.config().vocab_size) {}

namespace {

/// Temperature / top-k sampling over logits. Deterministic given `rng`.
int sample_token(std::span<const float> logits, float temperature,
                 std::size_t top_k, Xoshiro256& rng) {
  const std::size_t vocab = logits.size();
  std::vector<std::size_t> order(vocab);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return logits[a] > logits[b];
  });
  const std::size_t k =
      top_k == 0 ? vocab : std::min(top_k, vocab);

  // Stable softmax over the candidate set at the given temperature.
  std::vector<double> probs(k);
  const double mx = static_cast<double>(logits[order[0]]);
  double sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double z =
        (static_cast<double>(logits[order[i]]) - mx) / temperature;
    probs[i] = std::exp(z);
    sum += probs[i];
  }
  if (!(sum > 0.0) || !std::isfinite(sum)) {
    return static_cast<int>(order[0]);  // NaN-poisoned logits: fall back
  }
  double u = rng.uniform_double() * sum;
  for (std::size_t i = 0; i < k; ++i) {
    u -= probs[i];
    if (u <= 0.0) return static_cast<int>(order[i]);
  }
  return static_cast<int>(order[k - 1]);
}

}  // namespace

GenerateResult InferenceSession::generate(std::span<const int> prompt,
                                          const GenerateOptions& options) {
  FT2_CHECK(!prompt.empty());
  GenerateResult result;
  cache_.reset();
  hooks_.begin();

  const std::size_t max_seq = model_.config().max_seq;
  std::span<float> logits{logits_.data(), logits_.size()};

  const ExecConfig exec{options.fp16, options.chunked_accum};

  // Prefill: the "first token generation" phase.
  std::size_t pos = 0;
  for (int token : prompt) {
    if (pos >= max_seq) break;
    model_.forward_position(token, pos, cache_, hooks_, exec,
                            /*first_token_phase=*/true, ws_, logits);
    ++pos;
    ++result.positions_run;
  }

  // Decode. Greedy by default; NaN-poisoned logits: argmax picks the first
  // index when all comparisons are false, which is deterministic (faithful
  // "garbage token" behaviour).
  Xoshiro256 sampler(options.sample_seed);
  for (std::size_t step = 0; step < options.max_new_tokens; ++step) {
    const int next =
        options.temperature > 0.0f
            ? sample_token(logits, options.temperature, options.top_k,
                           sampler)
            : static_cast<int>(argmax(logits));
    if (options.eos_token >= 0 && next == options.eos_token) break;
    result.tokens.push_back(next);
    if (step + 1 == options.max_new_tokens || pos >= max_seq) {
      result.hit_max = true;
      break;
    }
    model_.forward_position(next, pos, cache_, hooks_, exec,
                            /*first_token_phase=*/false, ws_, logits);
    ++pos;
    ++result.positions_run;
  }

  hooks_.end();
  return result;
}

}  // namespace ft2
