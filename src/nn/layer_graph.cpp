#include "nn/layer_graph.hpp"

#include "common/check.hpp"

namespace ft2 {

int LayerGraph::add(OpKind op, std::string name, LayerKind layer) {
  OpNode node;
  node.op = op;
  node.layer = layer;
  node.name = std::move(name);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void LayerGraph::connect(int from, int to) {
  FT2_ASSERT(from >= 0 && from < size() && to >= 0 && to < size());
  nodes_[static_cast<std::size_t>(from)].successors.push_back(to);
}

int LayerGraph::find_linear(LayerKind kind) const {
  for (int i = 0; i < size(); ++i) {
    const auto& n = node(i);
    if (n.op == OpKind::kLinear && n.layer == kind) return i;
  }
  return -1;
}

std::vector<LayerKind> LayerGraph::linear_kinds() const {
  std::vector<LayerKind> out;
  for (const auto& n : nodes_) {
    if (n.op == OpKind::kLinear) out.push_back(n.layer);
  }
  return out;
}

LayerGraph LayerGraph::build(const ModelConfig& config) {
  LayerGraph g;
  const bool llama = config.arch == ArchFamily::kLlama;
  const bool rotary = config.position == PositionKind::kRotary;

  const int input = g.add(OpKind::kInput, "input");
  const int norm1 = g.add(OpKind::kNorm, "norm1");
  g.connect(input, norm1);

  const int q = g.add(OpKind::kLinear, "q_proj", LayerKind::kQProj);
  const int k = g.add(OpKind::kLinear, "k_proj", LayerKind::kKProj);
  const int v = g.add(OpKind::kLinear, "v_proj", LayerKind::kVProj);
  g.connect(norm1, q);
  g.connect(norm1, k);
  g.connect(norm1, v);

  int q_out = q;
  int k_out = k;
  if (rotary) {
    const int rq = g.add(OpKind::kRope, "rope_q");
    const int rk = g.add(OpKind::kRope, "rope_k");
    g.connect(q, rq);
    g.connect(k, rk);
    q_out = rq;
    k_out = rk;
  }

  const int scale = g.add(OpKind::kAttentionScale, "attn_scale_softmax");
  g.connect(q_out, scale);
  g.connect(k_out, scale);

  const int weighting = g.add(OpKind::kWeighting, "attn_weighting");
  g.connect(scale, weighting);
  g.connect(v, weighting);

  const int out_proj = g.add(OpKind::kLinear, "out_proj", LayerKind::kOutProj);
  g.connect(weighting, out_proj);

  // The sentinel consumer: next block's norm feeds its Q/K/V projections and
  // the final norm feeds lm_head — from the heuristic's point of view both
  // are "the next linear layer" reached through non-guard ops only.
  const int next_linear = g.add(OpKind::kNextLinear, "next_linear");

  if (config.parallel_block) {
    // GPT-J: attention and MLP branch from the same norm; one residual add.
    const int fc1 = g.add(OpKind::kLinear, "fc_in", LayerKind::kFc1);
    g.connect(norm1, fc1);
    const int act = g.add(OpKind::kActivation, "act");
    g.connect(fc1, act);
    const int fc2 = g.add(OpKind::kLinear, "fc_out", LayerKind::kFc2);
    g.connect(act, fc2);
    const int add = g.add(OpKind::kResidualAdd, "residual_add");
    g.connect(input, add);
    g.connect(out_proj, add);
    g.connect(fc2, add);
    g.connect(add, next_linear);
    return g;
  }

  const int add1 = g.add(OpKind::kResidualAdd, "residual_add1");
  g.connect(input, add1);
  g.connect(out_proj, add1);
  const int norm2 = g.add(OpKind::kNorm, "norm2");
  g.connect(add1, norm2);

  int mlp_out;
  if (llama) {
    const int gate = g.add(OpKind::kLinear, "gate_proj", LayerKind::kGateProj);
    const int up = g.add(OpKind::kLinear, "up_proj", LayerKind::kUpProj);
    g.connect(norm2, gate);
    g.connect(norm2, up);
    const int act = g.add(OpKind::kActivation, "silu");
    g.connect(gate, act);
    const int mul = g.add(OpKind::kElementwiseMul, "gate_mul");
    g.connect(act, mul);
    g.connect(up, mul);
    const int down = g.add(OpKind::kLinear, "down_proj", LayerKind::kDownProj);
    g.connect(mul, down);
    mlp_out = down;
  } else {
    const int fc1 = g.add(OpKind::kLinear, "fc1", LayerKind::kFc1);
    g.connect(norm2, fc1);
    const int act = g.add(OpKind::kActivation, "act");
    g.connect(fc1, act);
    const int fc2 = g.add(OpKind::kLinear, "fc2", LayerKind::kFc2);
    g.connect(act, fc2);
    mlp_out = fc2;
  }

  const int add2 = g.add(OpKind::kResidualAdd, "residual_add2");
  g.connect(add1, add2);
  g.connect(mlp_out, add2);
  g.connect(add2, next_linear);
  return g;
}

}  // namespace ft2
