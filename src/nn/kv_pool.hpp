// Fixed-block K/V storage pool for paged caches.
//
// A KvBlockPool owns a fixed arena of physical blocks, each holding
// `block_rows` K/V rows for EVERY transformer layer (one [rows, d_model]
// slab per layer for keys and one for values). A paged KvCache maps its
// logical sequence positions onto pool blocks through a block table, so a
// request's resident footprint grows in block-sized steps with its actual
// length instead of being a dense max_seq allocation up front — the pool,
// not max_seq capacity, is what bounds concurrent sequences.
//
// Blocks are ref-counted: several caches may map the same block (shared
// prompt prefixes across live serve requests, and plain KvCache copies).
// Shared blocks are immutable from a writer's point of view — a cache that
// stores into a block with more than one reference first copies it into a
// fresh private block (copy-on-write), so a sharer can never observe
// another sequence's writes.
//
// Allocation is a LIFO free list: deterministic given the same operation
// sequence, O(1) per block, no fragmentation (all blocks are the same
// size). The pool is single-threaded like the serve engine that owns it.
//
// `PagedKvCache` is not a separate type: paged storage is a mode of
// KvCache itself (KvCache::paged), so DecodeSlot, forward_batch and the
// attention read path are untouched — kernels read rows through the same
// key()/value() indirection and never see the block table.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "tensor/tensor.hpp"

namespace ft2 {

class KvBlockPool {
 public:
  using BlockId = std::uint32_t;
  static constexpr BlockId kInvalidBlock = ~BlockId{0};

  /// `n_layers` transformer blocks, `d_model` columns per row,
  /// `total_blocks` physical blocks of `block_rows` rows each.
  KvBlockPool(std::size_t n_layers, std::size_t d_model,
              std::size_t total_blocks, std::size_t block_rows = 16);

  std::size_t n_layers() const { return n_layers_; }
  std::size_t d_model() const { return d_model_; }
  std::size_t block_rows() const { return block_rows_; }
  std::size_t total_blocks() const { return refs_.size(); }
  std::size_t used_blocks() const { return refs_.size() - free_.size(); }
  std::size_t free_blocks() const { return free_.size(); }

  /// K + V bytes of one physical block across every layer.
  std::size_t block_bytes() const {
    return 2 * n_layers_ * block_rows_ * d_model_ * sizeof(float);
  }
  /// Total bytes of the arena.
  std::size_t arena_bytes() const { return total_blocks() * block_bytes(); }

  /// Pops a free block (ref count 1). Returns false when the pool is
  /// exhausted — the caller decides whether to evict or back off.
  bool try_alloc(BlockId& out);

  /// Adds a reference to a live block (prefix sharing / cache copies).
  void add_ref(BlockId b) {
    FT2_ASSERT(b < refs_.size() && refs_[b] > 0);
    ++refs_[b];
  }

  /// Drops one reference; the block returns to the free list at zero.
  void release(BlockId b);

  std::uint32_t ref_count(BlockId b) const {
    FT2_ASSERT(b < refs_.size());
    return refs_[b];
  }

  /// Row `r` of block `b` in layer `layer`'s key / value slab.
  std::span<float> key_row(std::size_t layer, BlockId b, std::size_t r) {
    FT2_ASSERT(layer < n_layers_ && b < refs_.size() && r < block_rows_);
    return keys_[layer].row(b * block_rows_ + r);
  }
  std::span<const float> key_row(std::size_t layer, BlockId b,
                                 std::size_t r) const {
    FT2_ASSERT(layer < n_layers_ && b < refs_.size() && r < block_rows_);
    return keys_[layer].row(b * block_rows_ + r);
  }
  std::span<float> value_row(std::size_t layer, BlockId b, std::size_t r) {
    FT2_ASSERT(layer < n_layers_ && b < refs_.size() && r < block_rows_);
    return values_[layer].row(b * block_rows_ + r);
  }
  std::span<const float> value_row(std::size_t layer, BlockId b,
                                   std::size_t r) const {
    FT2_ASSERT(layer < n_layers_ && b < refs_.size() && r < block_rows_);
    return values_[layer].row(b * block_rows_ + r);
  }

  /// Copies every layer's K/V rows of `src` into `dst` (the copy-on-write
  /// step). `dst` must be a live (allocated) block.
  void copy_block(BlockId src, BlockId dst);

 private:
  std::size_t n_layers_;
  std::size_t d_model_;
  std::size_t block_rows_;
  std::vector<Tensor> keys_;    ///< per layer [total_blocks * block_rows, d]
  std::vector<Tensor> values_;  ///< per layer [total_blocks * block_rows, d]
  std::vector<std::uint32_t> refs_;  ///< 0 = free
  std::vector<BlockId> free_;        ///< LIFO free list
};

}  // namespace ft2
