// Per-block key/value cache for incremental decoding.
#pragma once

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "nn/kv_pool.hpp"
#include "tensor/tensor.hpp"

namespace ft2 {

/// Stores keys and values (post-RoPE) for every processed position of every
/// block. Layout per block: [rows, d_model] with head-major columns.
///
/// Three storage modes:
///  * plain — one owned [max_seq, d_model] tensor pair per block (the
///    default for solo generation);
///  * forked — rows [0, prefix_len) are read through an immutable,
///    ref-counted prefix cache shared with other forks, and only a short
///    appendable tail is owned. Forking is O(tail) allocation: no max_seq
///    memcpy, no max_seq zero-init. The fault-injection campaign forks one
///    fault-free prefix into every trial this way.
///  * paged — rows live in fixed-size ref-counted blocks of a KvBlockPool,
///    resolved through a per-cache block table. Physical memory grows in
///    block-sized steps with the stored length (reserve_rows), blocks can
///    be shared across live caches (adopt_shared_prefix), and a store into
///    a shared block copies it first (copy-on-write). The serve engine's
///    paged allocator; see nn/kv_pool.hpp.
///
/// All three modes present the same read/append interface, so the
/// attention kernels and forward_batch never see which one they run on.
class KvCache {
 public:
  using BlockId = KvBlockPool::BlockId;

  KvCache(std::size_t n_blocks, std::size_t max_seq, std::size_t d_model)
      : max_seq_(max_seq), d_model_(d_model) {
    keys_.reserve(n_blocks);
    values_.reserve(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      keys_.emplace_back(Tensor({max_seq, d_model}));
      values_.emplace_back(Tensor({max_seq, d_model}));
    }
  }

  /// Creates a paged cache over `pool`: no physical rows are held until
  /// reserve_rows / adopt_shared_prefix maps blocks. `max_seq` caps the
  /// logical length exactly like the dense constructor.
  static KvCache paged(KvBlockPool& pool, std::size_t max_seq) {
    KvCache out;
    out.pool_ = &pool;
    out.block_rows_ = pool.block_rows();
    out.max_seq_ = max_seq;
    out.d_model_ = pool.d_model();
    return out;
  }

  ~KvCache() { release_storage(); }

  KvCache(KvCache&& other) noexcept { *this = std::move(other); }
  KvCache& operator=(KvCache&& other) noexcept {
    if (this != &other) {
      release_storage();
      max_seq_ = other.max_seq_;
      d_model_ = other.d_model_;
      length_ = other.length_;
      keys_ = std::move(other.keys_);
      values_ = std::move(other.values_);
      prefix_ = std::move(other.prefix_);
      prefix_len_ = other.prefix_len_;
      pool_ = other.pool_;
      block_rows_ = other.block_rows_;
      table_ = std::move(other.table_);
      other.pool_ = nullptr;
      other.table_.clear();
      other.length_ = 0;
    }
    return *this;
  }

  /// Copying a paged cache maps the same blocks with an extra reference —
  /// both copies read the shared rows, and a store from either side copies
  /// the touched block first (copy-on-write), so copies never alias writes.
  KvCache(const KvCache& other)
      : max_seq_(other.max_seq_),
        d_model_(other.d_model_),
        length_(other.length_),
        keys_(other.keys_),
        values_(other.values_),
        prefix_(other.prefix_),
        prefix_len_(other.prefix_len_),
        pool_(other.pool_),
        block_rows_(other.block_rows_),
        table_(other.table_) {
    if (pool_ != nullptr) {
      for (const BlockId b : table_) pool_->add_ref(b);
    }
  }
  KvCache& operator=(const KvCache& other) {
    if (this != &other) *this = KvCache(other);
    return *this;
  }

  /// Compact dense copy of the first `n` stored rows of every block
  /// (tensors shaped [n, d_model], not [max_seq, d_model]) — what a
  /// snapshot or a preemption swap-out needs to retain, at a fraction of
  /// the full cache's footprint. Works for plain and paged caches.
  KvCache prefix_copy(std::size_t n) const {
    FT2_CHECK(prefix_ == nullptr && n <= length_);
    const std::size_t n_layers = pool_ != nullptr ? pool_->n_layers()
                                                  : keys_.size();
    KvCache out(n_layers, n, d_model_);
    for (std::size_t b = 0; b < n_layers; ++b) {
      for (std::size_t pos = 0; pos < n; ++pos) {
        const auto k = key(b, pos);
        const auto v = value(b, pos);
        std::copy(k.begin(), k.end(), out.keys_[b].row(pos).begin());
        std::copy(v.begin(), v.end(), out.values_[b].row(pos).begin());
      }
    }
    out.length_ = n;
    return out;
  }

  /// Creates a forked cache: rows [0, prefix_len) are served read-only from
  /// `prefix` (shared, never copied) and `tail_rows` appendable rows are
  /// owned. length() starts at prefix_len; store()/advance() continue from
  /// there exactly as if the prefix had been computed in place.
  static KvCache forked(std::shared_ptr<const KvCache> prefix,
                        std::size_t prefix_len, std::size_t tail_rows) {
    FT2_CHECK(prefix != nullptr && prefix->prefix_ == nullptr &&
              prefix->pool_ == nullptr);
    FT2_CHECK(prefix_len <= prefix->length_);
    KvCache out(prefix->keys_.size(), tail_rows, prefix->d_model_);
    out.prefix_ = std::move(prefix);
    out.prefix_len_ = prefix_len;
    out.max_seq_ = prefix_len + tail_rows;
    out.length_ = prefix_len;
    return out;
  }

  /// True for caches created by forked(). Forked caches cannot be reset or
  /// re-prefilled from position 0 — make a fresh cache instead.
  bool forked() const { return prefix_ != nullptr; }
  std::size_t prefix_len() const { return prefix_len_; }

  /// True for caches created by paged().
  bool paged() const { return pool_ != nullptr; }
  /// Block table of a paged cache (logical block index -> pool block id).
  const std::vector<BlockId>& block_table() const { return table_; }

  void reset() {
    FT2_ASSERT(prefix_ == nullptr);
    if (pool_ != nullptr) {
      for (const BlockId b : table_) pool_->release(b);
      table_.clear();
    }
    length_ = 0;
  }

  /// Frees all storage (pool blocks back to the pool, owned tensors
  /// dropped). The cache stays usable only via move-assignment afterwards;
  /// the serve engine calls this when a request finishes so its blocks do
  /// not outlive the accounting window.
  void release_storage() {
    if (pool_ != nullptr) {
      for (const BlockId b : table_) pool_->release(b);
      table_.clear();
    }
    keys_.clear();
    values_.clear();
    prefix_.reset();
    length_ = 0;
  }

  std::size_t length() const { return length_; }
  std::size_t max_seq() const { return max_seq_; }

  /// Paged mode: rows with physical backing ([0, physical_rows())).
  std::size_t physical_rows() const {
    return pool_ != nullptr ? table_.size() * block_rows_ : max_seq_;
  }

  /// Paged mode: maps enough blocks that `n` more rows beyond length() have
  /// physical backing. All-or-nothing: on pool exhaustion nothing is
  /// allocated and false is returned (the scheduler evicts and retries).
  /// No-op (true) for non-paged caches.
  bool reserve_rows(std::size_t n) {
    if (pool_ == nullptr) return true;
    FT2_CHECK_MSG(length_ + n <= max_seq_,
                  "reserve_rows past max_seq " << max_seq_);
    const std::size_t need_rows = length_ + n;
    const std::size_t need_blocks = (need_rows + block_rows_ - 1) / block_rows_;
    const std::size_t have = table_.size();
    if (need_blocks <= have) return true;
    for (std::size_t i = have; i < need_blocks; ++i) {
      BlockId b = KvBlockPool::kInvalidBlock;
      if (!pool_->try_alloc(b)) {
        while (table_.size() > have) {
          pool_->release(table_.back());
          table_.pop_back();
        }
        return false;
      }
      table_.push_back(b);
    }
    return true;
  }

  /// Paged mode: adopts `blocks` (adding a reference to each) as this
  /// cache's first rows — the serve engine's copy-on-write prefix sharing.
  /// `rows` of K/V content become readable immediately and length() starts
  /// there; the cache must be empty. Only content covered by `rows` may be
  /// read, and `rows` may end mid-block (a store into that tail block
  /// triggers copy-on-write).
  void adopt_shared_prefix(std::span<const BlockId> blocks, std::size_t rows) {
    FT2_CHECK(pool_ != nullptr && table_.empty() && length_ == 0);
    FT2_CHECK(rows <= blocks.size() * block_rows_ && rows <= max_seq_);
    table_.assign(blocks.begin(), blocks.end());
    for (const BlockId b : table_) pool_->add_ref(b);
    length_ = rows;
  }

  /// Appends k/v for the next position of block `b`. All blocks must append
  /// for a position before advance() is called.
  void store(std::size_t block, std::size_t pos, std::span<const float> k,
             std::span<const float> v) {
    FT2_ASSERT(pos >= prefix_len_ && pos < max_seq_ && k.size() == d_model_ &&
               v.size() == d_model_);
    if (pool_ != nullptr) {
      const std::size_t bi = pos / block_rows_;
      const std::size_t r = pos % block_rows_;
      FT2_ASSERT(bi < table_.size());
      if (block == 0) make_block_writable(bi);
      const auto kd = pool_->key_row(block, table_[bi], r);
      const auto vd = pool_->value_row(block, table_[bi], r);
      std::copy(k.begin(), k.end(), kd.begin());
      std::copy(v.begin(), v.end(), vd.begin());
      return;
    }
    std::copy(k.begin(), k.end(), keys_[block].row(pos - prefix_len_).begin());
    std::copy(v.begin(), v.end(),
              values_[block].row(pos - prefix_len_).begin());
  }

  void advance() {
    FT2_ASSERT(length_ < max_seq_);
    ++length_;
  }

  /// Advances by `n` positions at once (blocked prefill stores a whole chunk
  /// of K/V rows before bumping the length).
  void advance(std::size_t n) {
    FT2_ASSERT(length_ + n <= max_seq_);
    length_ += n;
  }

  std::span<const float> key(std::size_t block, std::size_t pos) const {
    if (pool_ != nullptr) {
      return pool_->key_row(block, table_[pos / block_rows_],
                            pos % block_rows_);
    }
    return pos < prefix_len_ ? prefix_->keys_[block].row(pos)
                             : keys_[block].row(pos - prefix_len_);
  }
  std::span<const float> value(std::size_t block, std::size_t pos) const {
    if (pool_ != nullptr) {
      return pool_->value_row(block, table_[pos / block_rows_],
                              pos % block_rows_);
    }
    return pos < prefix_len_ ? prefix_->values_[block].row(pos)
                             : values_[block].row(pos - prefix_len_);
  }

  /// Bytes of K/V storage mapped by this cache. Plain mode: the dense
  /// allocation. Forked mode: only the owned tail (the shared prefix is
  /// attributed once to the snapshot that owns it). Paged mode: the mapped
  /// blocks — a block shared with other caches is counted here by each
  /// sharer; the serve engine deduplicates by block id when it reports
  /// pool-resident bytes (shared blocks counted once).
  std::size_t memory_bytes() const {
    if (pool_ != nullptr) return table_.size() * pool_->block_bytes();
    std::size_t rows = 0;
    for (const Tensor& k : keys_) rows += k.numel();
    return 2 * rows * sizeof(float);
  }

 private:
  KvCache() = default;

  /// Copy-on-write: a store into a block mapped by more than one cache
  /// first copies it into a fresh private block. Called once per appended
  /// row (on the first layer's store), so every layer of the row lands in
  /// the private copy.
  void make_block_writable(std::size_t bi) {
    const BlockId b = table_[bi];
    if (pool_->ref_count(b) <= 1) return;
    BlockId fresh = KvBlockPool::kInvalidBlock;
    FT2_CHECK_MSG(pool_->try_alloc(fresh),
                  "KvBlockPool exhausted during copy-on-write (reserve "
                  "accounting bug or pool sized below one sequence)");
    pool_->copy_block(b, fresh);
    pool_->release(b);
    table_[bi] = fresh;
  }

  std::size_t max_seq_ = 0;
  std::size_t d_model_ = 0;
  std::size_t length_ = 0;
  std::vector<Tensor> keys_;
  std::vector<Tensor> values_;
  /// Shared immutable prefix (forked mode only): rows [0, prefix_len_) of
  /// every block resolve into this cache; owned tensors hold the tail.
  std::shared_ptr<const KvCache> prefix_;
  std::size_t prefix_len_ = 0;
  /// Paged mode: pool + block table (logical block index -> pool block).
  KvBlockPool* pool_ = nullptr;
  std::size_t block_rows_ = 1;
  std::vector<BlockId> table_;
};

}  // namespace ft2
