// Per-block key/value cache for incremental decoding.
#pragma once

#include <vector>

#include "common/check.hpp"
#include "tensor/tensor.hpp"

namespace ft2 {

/// Stores keys and values (post-RoPE) for every processed position of every
/// block. Layout per block: [max_seq, d_model] with head-major columns.
class KvCache {
 public:
  KvCache(std::size_t n_blocks, std::size_t max_seq, std::size_t d_model)
      : max_seq_(max_seq), d_model_(d_model) {
    keys_.reserve(n_blocks);
    values_.reserve(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      keys_.emplace_back(Tensor({max_seq, d_model}));
      values_.emplace_back(Tensor({max_seq, d_model}));
    }
  }

  void reset() { length_ = 0; }

  std::size_t length() const { return length_; }
  std::size_t max_seq() const { return max_seq_; }

  /// Appends k/v for the next position of block `b`. All blocks must append
  /// for a position before advance() is called.
  void store(std::size_t block, std::size_t pos, std::span<const float> k,
             std::span<const float> v) {
    FT2_ASSERT(pos < max_seq_ && k.size() == d_model_ && v.size() == d_model_);
    std::copy(k.begin(), k.end(), keys_[block].row(pos).begin());
    std::copy(v.begin(), v.end(), values_[block].row(pos).begin());
  }

  void advance() {
    FT2_ASSERT(length_ < max_seq_);
    ++length_;
  }

  /// Advances by `n` positions at once (blocked prefill stores a whole chunk
  /// of K/V rows before bumping the length).
  void advance(std::size_t n) {
    FT2_ASSERT(length_ + n <= max_seq_);
    length_ += n;
  }

  std::span<const float> key(std::size_t block, std::size_t pos) const {
    return keys_[block].row(pos);
  }
  std::span<const float> value(std::size_t block, std::size_t pos) const {
    return values_[block].row(pos);
  }

  /// Bytes of K/V storage held by this cache (the serve engine reports the
  /// aggregate across resident sequences as a capacity counter).
  std::size_t memory_bytes() const {
    return 2 * keys_.size() * max_seq_ * d_model_ * sizeof(float);
  }

 private:
  std::size_t max_seq_;
  std::size_t d_model_;
  std::size_t length_ = 0;
  std::vector<Tensor> keys_;
  std::vector<Tensor> values_;
};

}  // namespace ft2
