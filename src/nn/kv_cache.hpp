// Per-block key/value cache for incremental decoding.
#pragma once

#include <memory>
#include <vector>

#include "common/check.hpp"
#include "tensor/tensor.hpp"

namespace ft2 {

/// Stores keys and values (post-RoPE) for every processed position of every
/// block. Layout per block: [rows, d_model] with head-major columns.
///
/// Two storage modes:
///  * plain — one owned [max_seq, d_model] tensor pair per block (the
///    default for generation and serving);
///  * forked — rows [0, prefix_len) are read through an immutable,
///    ref-counted prefix cache shared with other forks, and only a short
///    appendable tail is owned. Forking is O(tail) allocation: no max_seq
///    memcpy, no max_seq zero-init. The fault-injection campaign forks one
///    fault-free prefix into every trial this way.
class KvCache {
 public:
  KvCache(std::size_t n_blocks, std::size_t max_seq, std::size_t d_model)
      : max_seq_(max_seq), d_model_(d_model) {
    keys_.reserve(n_blocks);
    values_.reserve(n_blocks);
    for (std::size_t b = 0; b < n_blocks; ++b) {
      keys_.emplace_back(Tensor({max_seq, d_model}));
      values_.emplace_back(Tensor({max_seq, d_model}));
    }
  }

  /// Compact copy of the first `n` stored rows of every block (tensors
  /// shaped [n, d_model], not [max_seq, d_model]) — what a snapshot needs
  /// to retain, at a fraction of the full cache's footprint.
  KvCache prefix_copy(std::size_t n) const {
    FT2_CHECK(prefix_ == nullptr && n <= length_);
    KvCache out(keys_.size(), n, d_model_);
    for (std::size_t b = 0; b < keys_.size(); ++b) {
      const auto k = keys_[b].span().subspan(0, n * d_model_);
      const auto v = values_[b].span().subspan(0, n * d_model_);
      std::copy(k.begin(), k.end(), out.keys_[b].span().begin());
      std::copy(v.begin(), v.end(), out.values_[b].span().begin());
    }
    out.length_ = n;
    return out;
  }

  /// Creates a forked cache: rows [0, prefix_len) are served read-only from
  /// `prefix` (shared, never copied) and `tail_rows` appendable rows are
  /// owned. length() starts at prefix_len; store()/advance() continue from
  /// there exactly as if the prefix had been computed in place.
  static KvCache forked(std::shared_ptr<const KvCache> prefix,
                        std::size_t prefix_len, std::size_t tail_rows) {
    FT2_CHECK(prefix != nullptr && prefix->prefix_ == nullptr);
    FT2_CHECK(prefix_len <= prefix->length_);
    KvCache out(prefix->keys_.size(), tail_rows, prefix->d_model_);
    out.prefix_ = std::move(prefix);
    out.prefix_len_ = prefix_len;
    out.max_seq_ = prefix_len + tail_rows;
    out.length_ = prefix_len;
    return out;
  }

  /// True for caches created by forked(). Forked caches cannot be reset or
  /// re-prefilled from position 0 — make a fresh cache instead.
  bool forked() const { return prefix_ != nullptr; }
  std::size_t prefix_len() const { return prefix_len_; }

  void reset() {
    FT2_ASSERT(prefix_ == nullptr);
    length_ = 0;
  }

  std::size_t length() const { return length_; }
  std::size_t max_seq() const { return max_seq_; }

  /// Appends k/v for the next position of block `b`. All blocks must append
  /// for a position before advance() is called.
  void store(std::size_t block, std::size_t pos, std::span<const float> k,
             std::span<const float> v) {
    FT2_ASSERT(pos >= prefix_len_ && pos < max_seq_ && k.size() == d_model_ &&
               v.size() == d_model_);
    std::copy(k.begin(), k.end(), keys_[block].row(pos - prefix_len_).begin());
    std::copy(v.begin(), v.end(),
              values_[block].row(pos - prefix_len_).begin());
  }

  void advance() {
    FT2_ASSERT(length_ < max_seq_);
    ++length_;
  }

  /// Advances by `n` positions at once (blocked prefill stores a whole chunk
  /// of K/V rows before bumping the length).
  void advance(std::size_t n) {
    FT2_ASSERT(length_ + n <= max_seq_);
    length_ += n;
  }

  std::span<const float> key(std::size_t block, std::size_t pos) const {
    return pos < prefix_len_ ? prefix_->keys_[block].row(pos)
                             : keys_[block].row(pos - prefix_len_);
  }
  std::span<const float> value(std::size_t block, std::size_t pos) const {
    return pos < prefix_len_ ? prefix_->values_[block].row(pos)
                             : values_[block].row(pos - prefix_len_);
  }

  /// Bytes of K/V storage owned by this cache (the serve engine reports the
  /// aggregate across resident sequences as a capacity counter). A forked
  /// cache counts only its tail; the shared prefix is attributed once to
  /// the snapshot that owns it.
  std::size_t memory_bytes() const {
    std::size_t rows = 0;
    for (const Tensor& k : keys_) rows += k.numel();
    return 2 * rows * sizeof(float);
  }

 private:
  std::size_t max_seq_;
  std::size_t d_model_;
  std::size_t length_ = 0;
  std::vector<Tensor> keys_;
  std::vector<Tensor> values_;
  /// Shared immutable prefix (forked mode only): rows [0, prefix_len_) of
  /// every block resolve into this cache; owned tensors hold the tail.
  std::shared_ptr<const KvCache> prefix_;
  std::size_t prefix_len_ = 0;
};

}  // namespace ft2
