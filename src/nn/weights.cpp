#include "nn/weights.hpp"

#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace ft2 {
namespace {

void fill_normal(Tensor& t, Xoshiro256& rng, float stddev) {
  for (float& f : t.span()) {
    f = static_cast<float>(rng.normal()) * stddev;
  }
}

LinearWeights make_linear(std::size_t out, std::size_t in, bool bias,
                          Xoshiro256& rng, float stddev) {
  LinearWeights lw;
  lw.w = Tensor({out, in});
  fill_normal(lw.w, rng, stddev);
  lw.has_bias = bias;
  if (bias) lw.b = Tensor({out});
  return lw;
}

NormWeights make_norm(std::size_t d, NormKind kind) {
  NormWeights nw;
  nw.gamma = Tensor::full({d}, 1.0f);
  if (kind == NormKind::kLayerNorm) nw.beta = Tensor({d});
  return nw;
}

}  // namespace

ModelWeights init_weights(const ModelConfig& config, Xoshiro256& rng) {
  FT2_CHECK(config.vocab_size > 0);
  FT2_CHECK(config.d_model % config.n_heads == 0);

  ModelWeights w;
  const float base_std = 0.02f;
  const float resid_std =
      base_std / std::sqrt(2.0f * static_cast<float>(config.n_blocks));

  w.tok_emb = Tensor({config.vocab_size, config.d_model});
  fill_normal(w.tok_emb, rng, base_std);
  if (config.position == PositionKind::kLearned) {
    w.pos_emb = Tensor({config.max_seq, config.d_model});
    fill_normal(w.pos_emb, rng, base_std);
  }
  w.final_norm = make_norm(config.d_model, config.norm);
  w.lm_head = make_linear(config.vocab_size, config.d_model, false, rng,
                          base_std);

  const bool llama = config.arch == ArchFamily::kLlama;
  w.blocks.resize(config.n_blocks);
  for (auto& blk : w.blocks) {
    const bool qkv_bias = config.linear_bias || config.qkv_bias;
    blk.q = make_linear(config.d_model, config.d_model, qkv_bias, rng,
                        base_std);
    blk.k = make_linear(config.d_model, config.d_model, qkv_bias, rng,
                        base_std);
    blk.v = make_linear(config.d_model, config.d_model, qkv_bias, rng,
                        base_std);
    blk.o = make_linear(config.d_model, config.d_model, config.linear_bias,
                        rng, resid_std);
    blk.fc1 = make_linear(config.d_ff, config.d_model, config.linear_bias,
                          rng, base_std);
    blk.fc2 = make_linear(config.d_model, config.d_ff, config.linear_bias,
                          rng, resid_std);
    if (llama) {
      blk.up = make_linear(config.d_ff, config.d_model, config.linear_bias,
                           rng, base_std);
    }
    blk.norm1 = make_norm(config.d_model, config.norm);
    if (!config.parallel_block) blk.norm2 = make_norm(config.d_model, config.norm);
  }
  return w;
}

std::vector<std::pair<std::string, Tensor*>> ModelWeights::named_parameters() {
  std::vector<std::pair<std::string, Tensor*>> out;
  auto add = [&out](const std::string& name, Tensor& t) {
    if (t.numel() > 0) out.emplace_back(name, &t);
  };
  add("tok_emb", tok_emb);
  add("pos_emb", pos_emb);
  add("final_norm.gamma", final_norm.gamma);
  add("final_norm.beta", final_norm.beta);
  add("lm_head.w", lm_head.w);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    auto& blk = blocks[i];
    const std::string p = "block" + std::to_string(i) + ".";
    auto add_linear = [&](const std::string& name, LinearWeights& lw) {
      add(p + name + ".w", lw.w);
      if (lw.has_bias) add(p + name + ".b", lw.b);
    };
    add_linear("q", blk.q);
    add_linear("k", blk.k);
    add_linear("v", blk.v);
    add_linear("o", blk.o);
    add_linear("fc1", blk.fc1);
    add_linear("fc2", blk.fc2);
    if (blk.up.w.numel() > 0) add_linear("up", blk.up);
    add(p + "norm1.gamma", blk.norm1.gamma);
    add(p + "norm1.beta", blk.norm1.beta);
    add(p + "norm2.gamma", blk.norm2.gamma);
    add(p + "norm2.beta", blk.norm2.beta);
  }
  return out;
}

std::vector<std::pair<std::string, const Tensor*>> ModelWeights::named_parameters()
    const {
  auto mut = const_cast<ModelWeights*>(this)->named_parameters();
  std::vector<std::pair<std::string, const Tensor*>> out;
  out.reserve(mut.size());
  for (auto& [name, t] : mut) out.emplace_back(name, t);
  return out;
}

std::size_t ModelWeights::parameter_count() const {
  std::size_t n = 0;
  for (const auto& [name, t] : named_parameters()) n += t->numel();
  return n;
}

LinearWeights& linear_at(ModelWeights& weights, const ModelConfig& config,
                         const LayerSite& site) {
  FT2_CHECK(site.block >= 0 &&
            static_cast<std::size_t>(site.block) < weights.blocks.size());
  auto& blk = weights.blocks[static_cast<std::size_t>(site.block)];
  const bool llama = config.arch == ArchFamily::kLlama;
  switch (site.kind) {
    case LayerKind::kQProj: return blk.q;
    case LayerKind::kKProj: return blk.k;
    case LayerKind::kVProj: return blk.v;
    case LayerKind::kOutProj: return blk.o;
    case LayerKind::kFc1:
      FT2_CHECK(!llama);
      return blk.fc1;
    case LayerKind::kFc2:
      FT2_CHECK(!llama);
      return blk.fc2;
    case LayerKind::kGateProj:
      FT2_CHECK(llama);
      return blk.fc1;
    case LayerKind::kDownProj:
      FT2_CHECK(llama);
      return blk.fc2;
    case LayerKind::kUpProj:
      FT2_CHECK(llama);
      return blk.up;
    default:
      break;
  }
  throw Error("linear_at: not a linear layer kind");
}

std::uint64_t weights_digest(const ModelWeights& weights) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto mix_bytes = [&h](const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      h ^= p[i];
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
  };
  for (const auto& [name, tensor] : weights.named_parameters()) {
    mix_bytes(name.data(), name.size());
    for (std::size_t d : tensor->shape()) mix_bytes(&d, sizeof(d));
    const auto span = tensor->span();
    mix_bytes(span.data(), span.size() * sizeof(float));
  }
  return h;
}

std::string weights_digest_hex(const ModelWeights& weights) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(weights_digest(weights)));
  return buf;
}

}  // namespace ft2
