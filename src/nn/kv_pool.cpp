#include "nn/kv_pool.hpp"

#include <algorithm>

namespace ft2 {

KvBlockPool::KvBlockPool(std::size_t n_layers, std::size_t d_model,
                         std::size_t total_blocks, std::size_t block_rows)
    : n_layers_(n_layers), d_model_(d_model), block_rows_(block_rows) {
  FT2_CHECK_MSG(n_layers > 0 && d_model > 0 && block_rows > 0,
                "degenerate KvBlockPool geometry");
  FT2_CHECK_MSG(total_blocks > 0, "KvBlockPool needs at least one block");
  keys_.reserve(n_layers);
  values_.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) {
    keys_.emplace_back(Tensor({total_blocks * block_rows, d_model}));
    values_.emplace_back(Tensor({total_blocks * block_rows, d_model}));
  }
  refs_.assign(total_blocks, 0);
  free_.reserve(total_blocks);
  // LIFO free list popping from the back: seed it in descending order so
  // the first allocations hand out blocks 0, 1, 2, ...
  for (std::size_t b = total_blocks; b > 0; --b) {
    free_.push_back(static_cast<BlockId>(b - 1));
  }
}

bool KvBlockPool::try_alloc(BlockId& out) {
  if (free_.empty()) return false;
  out = free_.back();
  free_.pop_back();
  FT2_ASSERT(refs_[out] == 0);
  refs_[out] = 1;
  return true;
}

void KvBlockPool::release(BlockId b) {
  FT2_ASSERT(b < refs_.size() && refs_[b] > 0);
  if (--refs_[b] == 0) free_.push_back(b);
}

void KvBlockPool::copy_block(BlockId src, BlockId dst) {
  FT2_ASSERT(src < refs_.size() && dst < refs_.size() && refs_[dst] > 0);
  const std::size_t n = block_rows_ * d_model_;
  for (std::size_t l = 0; l < n_layers_; ++l) {
    const auto ks = keys_[l].span().subspan(src * n, n);
    const auto vs = values_[l].span().subspan(src * n, n);
    std::copy(ks.begin(), ks.end(), keys_[l].span().subspan(dst * n, n).begin());
    std::copy(vs.begin(), vs.end(),
              values_[l].span().subspan(dst * n, n).begin());
  }
}

}  // namespace ft2
