// Output-hook mechanism (the C++ analogue of PyTorch forward hooks).
//
// During inference, every observable layer output — already quantized onto
// the FP16 grid — is passed through the registered hook chain. Hooks may
// read (profilers) or mutate (fault injectors, protection schemes) the
// values. Hooks run in registration order; the fault-injection campaign
// registers the injector before the protection scheme so protection sees
// the corrupted values, exactly like hardware faults preceding a software
// check.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/layer_kind.hpp"

namespace ft2 {

/// Context describing one hook invocation: which site produced the output
/// and at which sequence position (position indexes prompt tokens 0..P-1
/// followed by generated tokens P..).
struct HookContext {
  LayerSite site;
  std::size_t position = 0;     ///< sequence position being computed
  bool first_token_phase = false;  ///< true while generating the first token
};

class OutputHook {
 public:
  virtual ~OutputHook() = default;

  /// Called after the layer output for one position has been computed and
  /// quantized. `values` is the output vector for this position; hooks may
  /// mutate it in place.
  virtual void on_output(const HookContext& ctx, std::span<float> values) = 0;

  /// Called once when a generation run starts / ends (lets schemes reset
  /// per-inference state such as online bounds).
  virtual void on_generation_begin() {}
  virtual void on_generation_end() {}
};

/// Ordered, non-owning hook chain.
class HookChain {
 public:
  void add(OutputHook* hook) { hooks_.push_back(hook); }
  void clear() { hooks_.clear(); }
  bool empty() const { return hooks_.empty(); }
  std::size_t size() const { return hooks_.size(); }

  void begin() const {
    for (auto* h : hooks_) h->on_generation_begin();
  }
  void end() const {
    for (auto* h : hooks_) h->on_generation_end();
  }
  void dispatch(const HookContext& ctx, std::span<float> values) const {
    for (auto* h : hooks_) h->on_output(ctx, values);
  }

 private:
  std::vector<OutputHook*> hooks_;
};

}  // namespace ft2
