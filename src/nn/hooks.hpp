// Output-hook mechanism (the C++ analogue of PyTorch forward hooks).
//
// During inference, every observable layer output — already quantized onto
// the FP16 grid — is passed through the registered hook chain. Hooks may
// read (profilers) or mutate (fault injectors, protection schemes) the
// values. Hooks run in registration order; the fault-injection campaign
// registers the injector before the protection scheme so protection sees
// the corrupted values, exactly like hardware faults preceding a software
// check.
//
// Since the blocked-prefill engine, one dispatch may carry a whole CHUNK of
// sequence positions: `values` is then a row-major [n_positions x width]
// view and HookContext describes the position range. Rows appear in
// increasing position order, and the engine dispatches chunk sites in
// execution order, so iterating rows inside a hook observes exactly the
// per-site value sequence the sequential engine produced.
//
// Registration is scoped: HookChain::add returns a HookRegistration handle
// that unregisters the hook when destroyed, so a hook object can never
// dangle inside a chain that outlives it (and a registration can never
// corrupt a chain that has already been destroyed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "nn/layer_kind.hpp"

namespace ft2 {

struct KernelEpilogue;  // tensor/dispatch.hpp
struct EpilogueTally;

/// Context describing one hook invocation: which site produced the output
/// and which sequence-position range (positions index prompt tokens 0..P-1
/// followed by generated tokens P..). `n_positions == 1` for the sequential
/// engine and incremental decode; the blocked prefill dispatches whole
/// chunks with `n_positions > 1` and `row_stride` elements between
/// consecutive rows of `values`.
struct HookContext {
  LayerSite site;
  std::size_t position = 0;        ///< first sequence position of the span
  bool first_token_phase = false;  ///< true while generating the first token
  std::size_t n_positions = 1;     ///< rows in the span
  std::size_t row_stride = 0;      ///< elements between rows; 0 = whole span

  /// Row width given the dispatched span (row_stride, or the span size for
  /// single-position dispatches constructed without an explicit stride).
  std::size_t width(std::size_t values_size) const {
    return row_stride != 0 ? row_stride : values_size;
  }

  /// Row `r` (position `position + r`) of a dispatched span.
  std::span<float> row(std::span<float> values, std::size_t r) const {
    const std::size_t w = width(values.size());
    return values.subspan(r * w, w);
  }
  std::span<const float> row(std::span<const float> values,
                             std::size_t r) const {
    const std::size_t w = width(values.size());
    return values.subspan(r * w, w);
  }

  std::size_t position_at(std::size_t r) const { return position + r; }

  /// True when sequence position `p` falls inside this span.
  bool contains_position(std::size_t p) const {
    return p >= position && p < position + n_positions;
  }
};

class OutputHook {
 public:
  virtual ~OutputHook() = default;

  /// Called after the layer output for a position span has been computed
  /// and quantized. `values` is the [ctx.n_positions x width] row-major
  /// output view; hooks may mutate it in place. Position-agnostic hooks can
  /// treat `values` as one flat array (rows are contiguous and ordered);
  /// position-sensitive hooks use ctx.row()/ctx.position_at().
  virtual void on_output(const HookContext& ctx, std::span<float> values) = 0;

  /// Called once when a generation run starts / ends (lets schemes reset
  /// per-inference state such as online bounds).
  virtual void on_generation_begin() {}
  virtual void on_generation_end() {}

  /// Fused-epilogue negotiation (tensor/dispatch.hpp). The engine offers
  /// the FIRST hook of a chain the chance to run its work inside the GEMM
  /// store epilogue instead of via on_output. A hook that can express its
  /// on_output semantics as a KernelEpilogue fills `epi` in (the engine has
  /// already set epi.quantize for the execution mode) and returns true; the
  /// engine then skips its on_output for this dispatch and calls
  /// absorb_fused with the finished values and the kernel's tally, where
  /// the hook must reproduce the exact accounting its on_output would have
  /// produced. Only the first hook is offered fusion, so later hooks always
  /// observe fully quantized+protected values, and any chain led by a
  /// non-fusing hook (e.g. a fault injector) transparently falls back to
  /// the hook path — results are bit-identical either way.
  virtual bool plan_fused(const HookContext& ctx, KernelEpilogue& epi) {
    (void)ctx;
    (void)epi;
    return false;
  }
  virtual void absorb_fused(const HookContext& ctx,
                            std::span<const float> values,
                            const KernelEpilogue& epi,
                            const EpilogueTally& tally) {
    (void)ctx;
    (void)values;
    (void)epi;
    (void)tally;
  }
};

namespace detail {
struct HookChainState {
  std::vector<std::pair<std::uint64_t, OutputHook*>> entries;
  std::uint64_t next_id = 1;
};
}  // namespace detail

/// Move-only RAII handle for one hook registration. Destroying (or
/// releasing) it removes the hook from the chain; if the chain died first,
/// release is a no-op. Keep it alive exactly as long as the hook should
/// observe the session.
class HookRegistration {
 public:
  HookRegistration() = default;
  HookRegistration(HookRegistration&& other) noexcept
      : state_(std::move(other.state_)), id_(other.id_) {
    other.id_ = 0;
  }
  HookRegistration& operator=(HookRegistration&& other) noexcept {
    if (this != &other) {
      release();
      state_ = std::move(other.state_);
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }
  HookRegistration(const HookRegistration&) = delete;
  HookRegistration& operator=(const HookRegistration&) = delete;
  ~HookRegistration() { release(); }

  /// True while the hook is still registered on a live chain.
  bool active() const {
    if (id_ == 0) return false;
    const auto state = state_.lock();
    if (!state) return false;
    for (const auto& [id, hook] : state->entries) {
      if (id == id_) return true;
    }
    return false;
  }

  /// Unregisters now (idempotent; safe after the chain is gone).
  void release() {
    if (id_ == 0) return;
    if (const auto state = state_.lock()) {
      auto& entries = state->entries;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (entries[i].first == id_) {
          entries.erase(entries.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    state_.reset();
    id_ = 0;
  }

 private:
  friend class HookChain;
  HookRegistration(std::weak_ptr<detail::HookChainState> state,
                   std::uint64_t id)
      : state_(std::move(state)), id_(id) {}

  std::weak_ptr<detail::HookChainState> state_;
  std::uint64_t id_ = 0;
};

/// Ordered, non-owning hook chain with scoped registration.
class HookChain {
 public:
  HookChain() : state_(std::make_shared<detail::HookChainState>()) {}

  /// Registers `hook` at the end of the chain. The hook stays registered
  /// only while the returned handle lives — hold on to it.
  [[nodiscard]] HookRegistration add(OutputHook& hook) {
    const std::uint64_t id = state_->next_id++;
    state_->entries.emplace_back(id, &hook);
    return HookRegistration(state_, id);
  }

  void clear() { state_->entries.clear(); }
  bool empty() const { return state_->entries.empty(); }
  std::size_t size() const { return state_->entries.size(); }

  void begin() const {
    for (const auto& [id, h] : state_->entries) h->on_generation_begin();
  }
  void end() const {
    for (const auto& [id, h] : state_->entries) h->on_generation_end();
  }
  void dispatch(const HookContext& ctx, std::span<float> values) const {
    for (const auto& [id, h] : state_->entries) h->on_output(ctx, values);
  }

  /// First registered hook (the only fusion candidate), or null when empty.
  OutputHook* first_hook() const {
    return state_->entries.empty() ? nullptr : state_->entries.front().second;
  }
  /// Dispatches to every hook EXCEPT the first — the engine calls this
  /// after a fused dispatch where the first hook's work already ran in the
  /// kernel epilogue (and was absorbed via absorb_fused).
  void dispatch_tail(const HookContext& ctx, std::span<float> values) const {
    for (std::size_t i = 1; i < state_->entries.size(); ++i) {
      state_->entries[i].second->on_output(ctx, values);
    }
  }

 private:
  std::shared_ptr<detail::HookChainState> state_;
};

/// RAII generation bracket: fires on_generation_begin on construction and
/// on_generation_end exactly once on destruction (or an explicit end()).
/// InferenceSession::generate brackets each call with one scope; the serve
/// engine holds a scope per request from admission to completion, so hooks
/// see the same begin/end traffic whether a request runs solo or batched.
class GenerationScope {
 public:
  GenerationScope() = default;
  explicit GenerationScope(const HookChain& chain) : chain_(&chain) {
    chain_->begin();
  }
  GenerationScope(GenerationScope&& other) noexcept : chain_(other.chain_) {
    other.chain_ = nullptr;
  }
  GenerationScope& operator=(GenerationScope&& other) noexcept {
    if (this != &other) {
      end();
      chain_ = other.chain_;
      other.chain_ = nullptr;
    }
    return *this;
  }
  GenerationScope(const GenerationScope&) = delete;
  GenerationScope& operator=(const GenerationScope&) = delete;
  ~GenerationScope() { end(); }

  /// Fires on_generation_end now (idempotent).
  void end() {
    if (chain_ != nullptr) {
      chain_->end();
      chain_ = nullptr;
    }
  }

  bool active() const { return chain_ != nullptr; }

 private:
  const HookChain* chain_ = nullptr;
};

}  // namespace ft2
