#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace ft2 {

void RunningStats::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

ProportionCI proportion_ci(std::size_t successes, std::size_t trials,
                           double z) {
  ProportionCI ci;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  ci.p = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  ci.lo = successes == 0 ? 0.0 : std::max(0.0, center - half);
  ci.hi = successes == trials ? 1.0 : std::min(1.0, center + half);
  ci.margin = (ci.hi - ci.lo) / 2.0;
  return ci;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  FT2_CHECK_MSG(hi > lo && bins > 0, "invalid histogram range/bins");
}

void Histogram::add(double x) {
  if (std::isnan(x)) {
    ++nan_count_;
    return;
  }
  exact_.push_back(x);
  ++total_;
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
}

void Histogram::merge(const Histogram& other) {
  FT2_CHECK(other.counts_.size() == counts_.size() && other.lo_ == lo_ &&
            other.hi_ == hi_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  exact_.insert(exact_.end(), other.exact_.begin(), other.exact_.end());
  total_ += other.total_;
  nan_count_ += other.nan_count_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::fraction_in(double lo, double hi) const {
  if (total_ == 0) return 0.0;
  std::size_t n = 0;
  for (double v : exact_) {
    if (v >= lo && v < hi) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  if (exact_.empty()) return 0.0;
  std::vector<double> sorted = exact_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = std::clamp(q, 0.0, 1.0) *
                     static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << bin_lo(i) << ", " << bin_hi(i) << ") "
       << std::string(bar, '#') << " " << counts_[i] << '\n';
  }
  return os.str();
}

}  // namespace ft2
