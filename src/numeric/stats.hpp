// Streaming statistics, histograms and proportion confidence intervals.
//
// Campaign results in the paper are statistical fault injections with 95%
// confidence intervals (Leveugle et al. / Leemis & Park); RunningStats and
// proportion_ci reproduce that error-margin reporting.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace ft2 {

/// Welford online mean/variance plus min/max tracking.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1 denominator)
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided confidence interval for a binomial proportion.
struct ProportionCI {
  double p = 0.0;       ///< point estimate successes/trials
  double lo = 0.0;      ///< lower bound
  double hi = 0.0;      ///< upper bound
  double margin = 0.0;  ///< half-width (hi - lo) / 2
};

/// Wilson score interval (robust near 0/1, which matters for sub-1% SDC
/// rates). `z` defaults to the 95% two-sided quantile.
ProportionCI proportion_ci(std::size_t successes, std::size_t trials,
                           double z = 1.959964);

/// Fixed-bin histogram over [lo, hi]; out-of-range samples land in
/// saturating edge bins, NaNs are counted separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void merge(const Histogram& other);

  std::size_t bins() const { return counts_.size(); }
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::size_t total() const { return total_; }
  std::size_t nan_count() const { return nan_count_; }

  /// Fraction of samples with value in [lo, hi).
  double fraction_in(double lo, double hi) const;

  /// Empirical quantile of the recorded samples (q in [0, 1]); 0 when no
  /// samples were recorded.
  double quantile(double q) const;

  /// ASCII sparkline-style rendering (one row per bin), used by the
  /// value-distribution benches (Figs. 8 and 12).
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::vector<double> exact_;  // raw samples kept for fraction_in / quantiles
  std::size_t total_ = 0;
  std::size_t nan_count_ = 0;
};

}  // namespace ft2
