#include "numeric/f16.hpp"

#include <cmath>

namespace ft2 {

f16 f16::from_float(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));

  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t abs = x & 0x7FFFFFFFu;

  // NaN: keep a quiet NaN with some mantissa payload.
  if (abs > 0x7F800000u) {
    return from_bits(static_cast<std::uint16_t>(sign | 0x7E00u));
  }
  // Infinity or overflow after rounding. Values >= 65520 round to inf.
  if (abs >= 0x477FF000u) {  // 65520.0f
    return from_bits(static_cast<std::uint16_t>(sign | 0x7C00u));
  }
  // Subnormal half or zero: |f| < 2^-14.
  if (abs < 0x38800000u) {
    // Add the implicit bit and shift; round-to-nearest-even via the
    // "magic add" of 0.5 ulp expressed in float arithmetic.
    const float scaled = std::fabs(f32_from_bits(abs)) * 0x1.0p24f;  // * 2^24
    std::uint32_t q = static_cast<std::uint32_t>(scaled);
    const float rem = scaled - static_cast<float>(q);
    if (rem > 0.5f || (rem == 0.5f && (q & 1u))) ++q;
    if (q > 0x3FFu) {
      // Rounded up into the normal range: 2^-14.
      return from_bits(static_cast<std::uint16_t>(sign | 0x0400u));
    }
    return from_bits(static_cast<std::uint16_t>(sign | q));
  }

  // Normal range: re-bias exponent (127 -> 15) and round mantissa.
  std::uint32_t exp = (abs >> 23) - 127 + 15;
  std::uint32_t mant = abs & 0x7FFFFFu;
  std::uint32_t half = (exp << 10) | (mant >> 13);
  const std::uint32_t round_bits = mant & 0x1FFFu;
  if (round_bits > 0x1000u || (round_bits == 0x1000u && (half & 1u))) {
    ++half;  // may carry into exponent; 65504 -> inf handled by cutoff above
  }
  return from_bits(static_cast<std::uint16_t>(sign | half));
}

float f16::to_float() const {
  const std::uint32_t sign = static_cast<std::uint32_t>(bits_ & 0x8000u) << 16;
  const std::uint32_t exp = exponent_bits();
  const std::uint32_t mant = mantissa_bits();

  std::uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // +/- zero
    } else {
      // Subnormal: value = mant * 2^-24.
      const float v = static_cast<float>(mant) * 0x1.0p-24f;
      std::uint32_t v_bits;
      std::memcpy(&v_bits, &v, sizeof(v_bits));
      out = sign | v_bits;
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // inf / NaN (payload kept)
  } else {
    out = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &out, sizeof(f));
  return f;
}

float quantize_f16(float f) { return f16::from_float(f).to_float(); }

bool nan_vulnerable_f16(float f) {
  const f16 h = f16::from_float(f);
  return h.exponent_bits() == 0x0F && h.mantissa_bits() != 0;
}

std::uint32_t f32_bits(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  return x;
}

float f32_from_bits(std::uint32_t bits) {
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

}  // namespace ft2
