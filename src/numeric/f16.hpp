// IEEE-754 binary16 ("half", FP16) implemented in software.
//
// The FT2 fault model flips bits in the FP16 encoding of linear-layer
// outputs, so the numeric behaviour of this type must be bit-exact IEEE:
//  * 1 sign bit, 5 exponent bits, 10 mantissa bits;
//  * round-to-nearest-even conversion from float;
//  * overflow to +/-inf (values above 65504 in magnitude);
//  * NaN when all exponent bits are set and the mantissa is non-zero.
//
// Values in +/-(1, 2) have exponent pattern 01111; flipping the top exponent
// bit yields 11111 with a (generally) non-zero mantissa => NaN. The paper
// calls +/-(1,2) the "NaN-vulnerable area"; helpers below expose that notion.
#pragma once

#include <cstdint>
#include <cstring>

namespace ft2 {

/// Raw 16-bit storage of a binary16 value plus conversion and
/// classification helpers. Arithmetic is performed by converting to float;
/// tensors quantize layer outputs back onto the FP16 grid (matching FP32
/// accumulation on GPU tensor cores).
class f16 {
 public:
  constexpr f16() = default;

  /// Construct from raw bits (no conversion).
  static constexpr f16 from_bits(std::uint16_t bits) {
    f16 h;
    h.bits_ = bits;
    return h;
  }

  /// Round-to-nearest-even conversion from float, with IEEE overflow,
  /// underflow (subnormals) and NaN handling.
  static f16 from_float(float f);

  float to_float() const;

  constexpr std::uint16_t bits() const { return bits_; }

  constexpr bool sign() const { return (bits_ & 0x8000u) != 0; }
  constexpr std::uint16_t exponent_bits() const {
    return static_cast<std::uint16_t>((bits_ >> 10) & 0x1Fu);
  }
  constexpr std::uint16_t mantissa_bits() const {
    return static_cast<std::uint16_t>(bits_ & 0x3FFu);
  }

  constexpr bool is_nan() const {
    return exponent_bits() == 0x1F && mantissa_bits() != 0;
  }
  constexpr bool is_inf() const {
    return exponent_bits() == 0x1F && mantissa_bits() == 0;
  }
  constexpr bool is_finite() const { return exponent_bits() != 0x1F; }
  constexpr bool is_subnormal() const {
    return exponent_bits() == 0 && mantissa_bits() != 0;
  }
  constexpr bool is_zero() const { return (bits_ & 0x7FFFu) == 0; }

  friend constexpr bool operator==(f16 a, f16 b) { return a.bits_ == b.bits_; }

  static constexpr int kSignBit = 15;
  static constexpr int kExponentHigh = 14;  // most significant exponent bit
  static constexpr int kExponentLow = 10;   // least significant exponent bit
  static constexpr int kBits = 16;
  static constexpr float kMax = 65504.0f;

 private:
  std::uint16_t bits_ = 0;
};

/// Quantizes `f` onto the FP16 grid: float -> f16 -> float. Preserves
/// inf/NaN; finite values round to the nearest representable half.
float quantize_f16(float f);

/// True if `f` lies in the paper's NaN-vulnerable area +/-(1, 2): the FP16
/// exponent pattern is 01111, so flipping the top exponent bit produces
/// 11111 => NaN whenever the mantissa is non-zero (i.e. |f| != exactly 1).
bool nan_vulnerable_f16(float f);

/// Single-precision helpers used by the FP32 fault model (Fig. 15).
std::uint32_t f32_bits(float f);
float f32_from_bits(std::uint32_t bits);

}  // namespace ft2
