#include "core/ft2.hpp"

namespace ft2 {
namespace {

SchemeSpec make_ft2_spec(const ModelConfig& config, float bound_scale) {
  SchemeSpec spec = scheme_spec(SchemeKind::kFt2, config);
  spec.bound_scale = bound_scale;
  return spec;
}

}  // namespace

Ft2Protector::Ft2Protector(const TransformerLM& model, float bound_scale)
    : spec_(make_ft2_spec(model.config(), bound_scale)),
      hook_(model.config(), spec_) {}

void Ft2Protector::attach(InferenceSession& session) {
  registration_ = session.hooks().add(hook_);
}

}  // namespace ft2
