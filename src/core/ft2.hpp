// Umbrella header and high-level facade for the FT2 library.
//
// Typical usage (see examples/quickstart.cpp):
//
//   auto model = ft2::ensure_model("llama-sm");     // or your own model
//   ft2::InferenceSession session(*model);
//   ft2::Ft2Protector ft2(*model);                  // online FT2 protection
//   ft2.attach(session);
//   auto out = session.generate(prompt, options);   // protected inference
//
// The protector identifies critical layers from the architecture graph,
// records bounds during the first-token phase of every generation, and
// range-restricts (clip-to-bound + NaN->0) all critical layer outputs for
// the remaining tokens. No offline profiling, no training data.
#pragma once

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "data/dataset.hpp"
#include "data/matcher.hpp"
#include "data/vocab.hpp"
#include "fi/campaign.hpp"
#include "fi/fault_model.hpp"
#include "fi/fault_site.hpp"
#include "fi/injector.hpp"
#include "nn/checkpoint.hpp"
#include "nn/config.hpp"
#include "nn/layer_graph.hpp"
#include "nn/model.hpp"
#include "numeric/f16.hpp"
#include "numeric/stats.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "perfmodel/perfmodel.hpp"
#include "protect/bounds.hpp"
#include "protect/critical.hpp"
#include "protect/detection_scheme.hpp"
#include "protect/profiler.hpp"
#include "protect/range_restriction.hpp"
#include "protect/scheme.hpp"
#include "serve/serve_engine.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "train/trainer.hpp"
#include "zoo/zoo.hpp"

namespace ft2 {

/// High-level FT2 protection facade: owns the protection hook configured
/// for online first-token operation on the model's critical layers.
class Ft2Protector {
 public:
  /// `bound_scale` defaults to the paper's factor of 2 (take-away #6).
  explicit Ft2Protector(const TransformerLM& model, float bound_scale = 2.0f);

  /// Registers the protection hook on a session. The registration is owned
  /// by the protector: it ends when the protector is destroyed, detached, or
  /// attached elsewhere — the session can safely outlive the protector.
  void attach(InferenceSession& session);

  /// Ends the current registration (no-op when not attached).
  void detach() { registration_.release(); }

  /// True while attached to a live session.
  bool attached() const { return registration_.active(); }

  /// Critical layers being protected.
  const std::vector<LayerKind>& critical() const { return spec_.covered; }

  /// Correction statistics accumulated so far (summed across layer kinds).
  ProtectionStats stats() const { return hook_.stats(); }

  /// Bounds captured during the most recent generation's first-token phase.
  const BoundStore& online_bounds() const { return hook_.online_bounds(); }

  /// Memory used for bounds (two floats per protected layer instance).
  std::size_t bound_memory_bytes() const { return hook_.bound_memory_bytes(); }

  ProtectionHook& hook() { return hook_; }

 private:
  SchemeSpec spec_;
  ProtectionHook hook_;
  HookRegistration registration_;
};

}  // namespace ft2
