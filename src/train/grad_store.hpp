// Gradient buffers aligned with a model's named parameters.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/weights.hpp"

namespace ft2 {

/// One gradient tensor per trainable parameter, addressable by the
/// parameter's Tensor pointer. Gradients accumulate across sequences within
/// a step and are zeroed between steps.
class GradStore {
 public:
  explicit GradStore(ModelWeights& weights) {
    auto params = weights.named_parameters();
    grads_.reserve(params.size());
    for (auto& [name, t] : params) {
      index_.emplace(t, grads_.size());
      grads_.emplace_back(Tensor(t->shape()));
      names_.push_back(name);
    }
  }

  Tensor& grad(const Tensor& param) {
    auto it = index_.find(&param);
    FT2_CHECK_MSG(it != index_.end(), "parameter not registered in GradStore");
    return grads_[it->second];
  }

  bool has(const Tensor& param) const { return index_.contains(&param); }

  std::size_t size() const { return grads_.size(); }
  Tensor& grad_at(std::size_t i) { return grads_[i]; }
  const Tensor& grad_at(std::size_t i) const { return grads_[i]; }
  const std::string& name_at(std::size_t i) const { return names_[i]; }

  void zero() {
    for (auto& g : grads_) g.fill(0.0f);
  }

  /// Global L2 norm across all gradients.
  double global_norm() const;

  /// Scales every gradient by `factor`.
  void scale(float factor);

 private:
  std::vector<Tensor> grads_;
  std::vector<std::string> names_;
  std::unordered_map<const Tensor*, std::size_t> index_;
};

}  // namespace ft2
