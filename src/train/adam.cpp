#include "train/adam.hpp"

#include <cmath>

namespace ft2 {

Adam::Adam(ModelWeights& weights, AdamConfig config) : config_(config) {
  for (auto& [name, t] : weights.named_parameters()) {
    params_.push_back(t);
    m_.emplace_back(Tensor(t->shape()));
    v_.emplace_back(Tensor(t->shape()));
  }
}

void Adam::step(GradStore& grads, float lr) {
  FT2_CHECK(grads.size() == params_.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t p = 0; p < params_.size(); ++p) {
    Tensor& param = *params_[p];
    const Tensor& g = grads.grad_at(p);
    Tensor& m = m_[p];
    Tensor& v = v_[p];
    for (std::size_t i = 0; i < param.numel(); ++i) {
      float grad = g[i];
      if (config_.weight_decay > 0.0f) grad += config_.weight_decay * param[i];
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * grad;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      param[i] -= lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

float lr_schedule(std::size_t step, std::size_t warmup, std::size_t total,
                  float peak, float floor_ratio) {
  if (warmup > 0 && step < warmup) {
    return peak * static_cast<float>(step + 1) / static_cast<float>(warmup);
  }
  if (step >= total) return peak * floor_ratio;
  const float progress = static_cast<float>(step - warmup) /
                         static_cast<float>(std::max<std::size_t>(1, total - warmup));
  const float cosine = 0.5f * (1.0f + std::cos(static_cast<float>(M_PI) * progress));
  return peak * (floor_ratio + (1.0f - floor_ratio) * cosine);
}

}  // namespace ft2
