// Multi-task trainer: fits a tiny decoder-only LM on the synthetic tasks.
//
// Sequences are `<bos> prompt answer <eos>`; the loss emphasizes answer
// positions (weight 1.0) while keeping a small weight on prompt positions
// (0.1) so the model also learns the input distribution — that keeps the
// activation statistics of prompt processing realistic, which matters for
// the first-token bound profiling experiments.
#pragma once

#include <functional>

#include "data/dataset.hpp"
#include "nn/model.hpp"
#include "train/adam.hpp"
#include "train/backprop.hpp"

namespace ft2 {

struct TrainerConfig {
  std::size_t steps = 1500;
  std::size_t batch_size = 8;
  std::size_t warmup_steps = 50;
  float peak_lr = 2e-3f;
  float grad_clip = 1.0f;
  float prompt_loss_weight = 0.1f;
  std::uint64_t seed = 1;
  /// Per-task mixture weights (parallel to the tasks vector passed to
  /// train_model); empty = uniform.
  std::vector<double> task_weights;
  std::size_t eval_every = 250;       ///< 0 disables periodic eval
  std::size_t eval_samples = 40;
  double target_accuracy = 0.995;     ///< stop early when eval reaches this
  std::size_t min_steps = 200;        ///< never stop before this many steps
};

/// Builds the training sequence for one sample.
TrainSequence make_train_sequence(const Sample& sample,
                                  float prompt_loss_weight);

/// Greedy-decode accuracy of `model` on fresh samples from `gen`
/// (fraction whose generated text contains the reference answer).
double evaluate_accuracy(const TransformerLM& model,
                         const DatasetGenerator& gen, std::size_t n,
                         std::uint64_t seed, std::size_t max_new_tokens = 24);

/// Answer-token perplexity of `model` on fresh samples from `gen`
/// (exp of the mean cross-entropy over answer positions).
double evaluate_perplexity(const TransformerLM& model,
                           const DatasetGenerator& gen, std::size_t n,
                           std::uint64_t seed);

struct TrainReport {
  std::size_t steps_run = 0;
  float final_loss = 0.0f;
  double final_accuracy = 0.0;  ///< mean accuracy across the task mix
};

/// Trains `model` on a uniform mixture of the given dataset generators.
/// `progress` (optional) receives (step, loss) for logging.
TrainReport train_model(
    TransformerLM& model,
    const std::vector<const DatasetGenerator*>& tasks,
    const TrainerConfig& config,
    const std::function<void(std::size_t, float)>& progress = {});

}  // namespace ft2
