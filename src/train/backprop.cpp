#include "train/backprop.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace ft2 {
namespace {

// ---------------------------------------------------------------------------
// Small matmul helpers (training shapes are tiny; clarity over blocking).
// Weight layout is [out, in] (PyTorch Linear), so:
//   forward:   Y[T,out] = X[T,in] * W^T            -> matmul_nt
//   input grad dX[T,in]  = dY[T,out] * W            -> matmul_nn
//   weight grad dW[out,in] += dY^T * X              -> matmul_tn_acc
// ---------------------------------------------------------------------------

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& y) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  FT2_ASSERT(b.dim(1) == k);
  if (y.shape() != std::vector<std::size_t>{m, n}) y = Tensor({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* yi = y.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float acc = 0.0f;
      for (std::size_t t = 0; t < k; ++t) acc += ai[t] * bj[t];
      yi[j] = acc;
    }
  }
}

void matmul_nn(const Tensor& a, const Tensor& b, Tensor& y) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  FT2_ASSERT(b.dim(0) == k);
  if (y.shape() != std::vector<std::size_t>{m, n}) y = Tensor({m, n});
  y.fill(0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* yi = y.data() + i * n;
    for (std::size_t t = 0; t < k; ++t) {
      const float av = ai[t];
      if (av == 0.0f) continue;
      const float* bt = b.data() + t * n;
      for (std::size_t j = 0; j < n; ++j) yi[j] += av * bt[j];
    }
  }
}

void matmul_tn_acc(const Tensor& a, const Tensor& b, Tensor& y) {
  // y[n,p] += a[m,n]^T * b[m,p]
  const std::size_t m = a.dim(0), n = a.dim(1), p = b.dim(1);
  FT2_ASSERT(b.dim(0) == m && y.dim(0) == n && y.dim(1) == p);
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * n;
    const float* bi = b.data() + i * p;
    for (std::size_t j = 0; j < n; ++j) {
      const float av = ai[j];
      if (av == 0.0f) continue;
      float* yj = y.data() + j * p;
      for (std::size_t t = 0; t < p; ++t) yj[t] += av * bi[t];
    }
  }
}

void add_rows_acc(const Tensor& dy, Tensor& db) {
  FT2_ASSERT(db.numel() == dy.dim(1));
  for (std::size_t i = 0; i < dy.dim(0); ++i) {
    const float* row = dy.data() + i * dy.dim(1);
    for (std::size_t j = 0; j < dy.dim(1); ++j) db[j] += row[j];
  }
}

// ---------------------------------------------------------------------------
// Norm forward/backward (per row).
// ---------------------------------------------------------------------------

void layernorm_backward_row(std::span<const float> x, std::span<const float> dy,
                            std::span<const float> gamma, float eps,
                            std::span<float> dx, std::span<float> dgamma,
                            std::span<float> dbeta) {
  const std::size_t d = x.size();
  float mean = 0.0f;
  for (float f : x) mean += f;
  mean /= static_cast<float>(d);
  float var = 0.0f;
  for (float f : x) var += (f - mean) * (f - mean);
  var /= static_cast<float>(d);
  const float inv = 1.0f / std::sqrt(var + eps);

  float sum_gdy = 0.0f;
  float sum_gdy_xhat = 0.0f;
  for (std::size_t i = 0; i < d; ++i) {
    const float xhat = (x[i] - mean) * inv;
    const float g = gamma[i] * dy[i];
    sum_gdy += g;
    sum_gdy_xhat += g * xhat;
    dgamma[i] += dy[i] * xhat;
    dbeta[i] += dy[i];
  }
  const float dn = static_cast<float>(d);
  for (std::size_t i = 0; i < d; ++i) {
    const float xhat = (x[i] - mean) * inv;
    dx[i] = (gamma[i] * dy[i] - sum_gdy / dn - xhat * sum_gdy_xhat / dn) * inv;
  }
}

void rmsnorm_backward_row(std::span<const float> x, std::span<const float> dy,
                          std::span<const float> gamma, float eps,
                          std::span<float> dx, std::span<float> dgamma) {
  const std::size_t d = x.size();
  float ms = 0.0f;
  for (float f : x) ms += f * f;
  ms /= static_cast<float>(d);
  const float r = std::sqrt(ms + eps);
  float dot = 0.0f;
  for (std::size_t i = 0; i < d; ++i) {
    dgamma[i] += dy[i] * x[i] / r;
    dot += dy[i] * gamma[i] * x[i];
  }
  const float coef = dot / (static_cast<float>(d) * r * r * r);
  for (std::size_t i = 0; i < d; ++i) {
    dx[i] = gamma[i] * dy[i] / r - x[i] * coef;
  }
}

// ---------------------------------------------------------------------------
// Activation derivatives.
// ---------------------------------------------------------------------------

float act_backward_scalar(Activation act, float x) {
  switch (act) {
    case Activation::kRelu:
      return x > 0.0f ? 1.0f : 0.0f;
    case Activation::kGelu: {
      const float c = 0.7978845608028654f;
      const float u = c * (x + 0.044715f * x * x * x);
      const float t = std::tanh(u);
      const float du = c * (1.0f + 3.0f * 0.044715f * x * x);
      return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
    }
    case Activation::kSilu: {
      const float s = sigmoid_scalar(x);
      return s * (1.0f + x * (1.0f - s));
    }
  }
  return 0.0f;
}

float act_forward_scalar(Activation act, float x) {
  switch (act) {
    case Activation::kRelu: return std::max(x, 0.0f);
    case Activation::kGelu: return gelu_scalar(x);
    case Activation::kSilu: return silu_scalar(x);
  }
  return 0.0f;
}

// ---------------------------------------------------------------------------
// Forward cache.
// ---------------------------------------------------------------------------

struct BlockFwd {
  Tensor x_in;   // [T,d]
  Tensor h1;     // [T,d]
  Tensor q, k, v;  // [T,d] (q,k post-RoPE)
  Tensor probs;  // [H*T*T] causal softmax probabilities
  Tensor attn;   // [T,d]
  Tensor o;      // [T,d]
  Tensor x_mid;  // [T,d]   serial blocks only
  Tensor h2;     // [T,d]   serial blocks only
  Tensor f1;     // [T,f]   pre-activation (fc1 / gate)
  Tensor f_up;   // [T,f]   llama up-proj output
  Tensor act;    // [T,f]   activation output
  Tensor m;      // [T,f]   act * up (llama)
  Tensor f2;     // [T,d]
};

struct ForwardCache {
  Tensor x0;
  std::vector<BlockFwd> blocks;
  Tensor x_final;
  Tensor hf;
  Tensor logits;
};

void norm_forward(const ModelConfig& cfg, const NormWeights& nw,
                  const Tensor& in, Tensor& out) {
  if (cfg.norm == NormKind::kLayerNorm) {
    layernorm_rows(in, nw.gamma.span(), nw.beta.span(), cfg.norm_eps, out);
  } else {
    rmsnorm_rows(in, nw.gamma.span(), cfg.norm_eps, out);
  }
}

void attention_forward(const ModelConfig& cfg, const BlockWeights& blk,
                       BlockFwd& fwd) {
  const std::size_t t_len = fwd.h1.dim(0);
  const std::size_t heads = cfg.n_heads;
  const std::size_t hd = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  matmul_nt(fwd.h1, blk.q.w, fwd.q);
  matmul_nt(fwd.h1, blk.k.w, fwd.k);
  matmul_nt(fwd.h1, blk.v.w, fwd.v);
  auto add_bias = [&](Tensor& y, const LinearWeights& lw) {
    if (!lw.has_bias) return;
    for (std::size_t i = 0; i < t_len; ++i) add_inplace(y.row(i), lw.b.span());
  };
  add_bias(fwd.q, blk.q);
  add_bias(fwd.k, blk.k);
  add_bias(fwd.v, blk.v);

  if (cfg.position == PositionKind::kRotary) {
    for (std::size_t i = 0; i < t_len; ++i) {
      rope_apply(fwd.q.row(i), heads, hd, i, cfg.rope_theta);
      rope_apply(fwd.k.row(i), heads, hd, i, cfg.rope_theta);
    }
  }

  fwd.probs = Tensor({heads, t_len, t_len});
  fwd.attn = Tensor({t_len, cfg.d_model});
  for (std::size_t h = 0; h < heads; ++h) {
    const std::size_t off = h * hd;
    for (std::size_t i = 0; i < t_len; ++i) {
      float* prow = fwd.probs.data() + (h * t_len + i) * t_len;
      const float* qi = fwd.q.row(i).data() + off;
      for (std::size_t j = 0; j <= i; ++j) {
        const float* kj = fwd.k.row(j).data() + off;
        float dot = 0.0f;
        for (std::size_t e = 0; e < hd; ++e) dot += qi[e] * kj[e];
        prow[j] = dot * scale;
      }
      softmax({prow, i + 1});
      float* oi = fwd.attn.row(i).data() + off;
      for (std::size_t e = 0; e < hd; ++e) oi[e] = 0.0f;
      for (std::size_t j = 0; j <= i; ++j) {
        const float p = prow[j];
        const float* vj = fwd.v.row(j).data() + off;
        for (std::size_t e = 0; e < hd; ++e) oi[e] += p * vj[e];
      }
    }
  }

  matmul_nt(fwd.attn, blk.o.w, fwd.o);
  add_bias(fwd.o, blk.o);
}

void mlp_forward(const ModelConfig& cfg, const BlockWeights& blk,
                 const Tensor& input, BlockFwd& fwd) {
  const std::size_t t_len = input.dim(0);
  auto add_bias = [&](Tensor& y, const LinearWeights& lw) {
    if (!lw.has_bias) return;
    for (std::size_t i = 0; i < t_len; ++i) add_inplace(y.row(i), lw.b.span());
  };
  const bool llama = cfg.arch == ArchFamily::kLlama;
  matmul_nt(input, blk.fc1.w, fwd.f1);
  add_bias(fwd.f1, blk.fc1);
  fwd.act = Tensor(fwd.f1.shape());
  for (std::size_t i = 0; i < fwd.f1.numel(); ++i) {
    fwd.act[i] = act_forward_scalar(cfg.activation, fwd.f1[i]);
  }
  if (llama) {
    matmul_nt(input, blk.up.w, fwd.f_up);
    add_bias(fwd.f_up, blk.up);
    fwd.m = Tensor(fwd.act.shape());
    for (std::size_t i = 0; i < fwd.m.numel(); ++i) {
      fwd.m[i] = fwd.act[i] * fwd.f_up[i];
    }
    matmul_nt(fwd.m, blk.fc2.w, fwd.f2);
  } else {
    matmul_nt(fwd.act, blk.fc2.w, fwd.f2);
  }
  add_bias(fwd.f2, blk.fc2);
}

ForwardCache run_forward(const TransformerLM& model,
                         const std::vector<int>& tokens) {
  const ModelConfig& cfg = model.config();
  const ModelWeights& w = model.weights();
  const std::size_t t_len = tokens.size();
  FT2_CHECK(t_len >= 2 && t_len <= cfg.max_seq);

  ForwardCache cache;
  cache.x0 = Tensor({t_len, cfg.d_model});
  for (std::size_t i = 0; i < t_len; ++i) {
    auto row = cache.x0.row(i);
    auto emb = w.tok_emb.row(static_cast<std::size_t>(tokens[i]));
    std::copy(emb.begin(), emb.end(), row.begin());
    if (cfg.position == PositionKind::kLearned) {
      add_inplace(row, w.pos_emb.row(i));
    }
  }

  Tensor x = cache.x0;
  cache.blocks.resize(cfg.n_blocks);
  for (std::size_t b = 0; b < cfg.n_blocks; ++b) {
    const auto& blk = w.blocks[b];
    BlockFwd& fwd = cache.blocks[b];
    fwd.x_in = x;
    fwd.h1 = Tensor(x.shape());
    norm_forward(cfg, blk.norm1, fwd.x_in, fwd.h1);
    fwd.f1 = Tensor({t_len, cfg.d_ff});
    fwd.f_up = Tensor({t_len, cfg.d_ff});
    fwd.f2 = Tensor({t_len, cfg.d_model});

    attention_forward(cfg, blk, fwd);

    if (cfg.parallel_block) {
      mlp_forward(cfg, blk, fwd.h1, fwd);
      for (std::size_t i = 0; i < x.numel(); ++i) {
        x[i] = fwd.x_in[i] + fwd.o[i] + fwd.f2[i];
      }
    } else {
      fwd.x_mid = Tensor(x.shape());
      for (std::size_t i = 0; i < x.numel(); ++i) {
        fwd.x_mid[i] = fwd.x_in[i] + fwd.o[i];
      }
      fwd.h2 = Tensor(x.shape());
      norm_forward(cfg, blk.norm2, fwd.x_mid, fwd.h2);
      mlp_forward(cfg, blk, fwd.h2, fwd);
      for (std::size_t i = 0; i < x.numel(); ++i) {
        x[i] = fwd.x_mid[i] + fwd.f2[i];
      }
    }
  }

  cache.x_final = x;
  cache.hf = Tensor(x.shape());
  norm_forward(cfg, w.final_norm, cache.x_final, cache.hf);
  matmul_nt(cache.hf, w.lm_head.w, cache.logits);
  return cache;
}

/// Masked mean CE loss and (optionally) dlogits.
float loss_and_dlogits(const ForwardCache& cache, const TrainSequence& seq,
                       Tensor* dlogits) {
  const std::size_t t_len = seq.tokens.size();
  const std::size_t vocab = cache.logits.dim(1);
  FT2_CHECK(seq.loss_weight.size() == t_len - 1);

  float total_w = 0.0f;
  for (float wt : seq.loss_weight) total_w += wt;
  if (dlogits != nullptr) {
    *dlogits = Tensor(cache.logits.shape());
  }
  if (total_w <= 0.0f) return 0.0f;

  double loss = 0.0;
  std::vector<float> probs(vocab);
  for (std::size_t t = 0; t + 1 < t_len; ++t) {
    const float wt = seq.loss_weight[t];
    if (wt <= 0.0f) continue;
    const int target = seq.tokens[t + 1];
    auto row = cache.logits.row(t);
    float mx = row[0];
    for (float f : row) mx = std::max(mx, f);
    double sum = 0.0;
    for (std::size_t j = 0; j < vocab; ++j) {
      probs[j] = std::exp(row[j] - mx);
      sum += static_cast<double>(probs[j]);
    }
    const double logz = std::log(sum) + static_cast<double>(mx);
    loss += static_cast<double>(wt) *
            (logz - static_cast<double>(row[static_cast<std::size_t>(target)]));
    if (dlogits != nullptr) {
      auto drow = dlogits->row(t);
      const float inv_sum = static_cast<float>(1.0 / sum);
      for (std::size_t j = 0; j < vocab; ++j) {
        drow[j] = probs[j] * inv_sum * wt / total_w;
      }
      drow[static_cast<std::size_t>(target)] -= wt / total_w;
    }
  }
  return static_cast<float>(loss / static_cast<double>(total_w));
}

void norm_backward(const ModelConfig& cfg, const NormWeights& nw,
                   const Tensor& x, const Tensor& dy, Tensor& dx,
                   GradStore& grads) {
  if (dx.shape() != x.shape()) dx = Tensor(x.shape());
  auto& dgamma = grads.grad(nw.gamma);
  for (std::size_t i = 0; i < x.dim(0); ++i) {
    if (cfg.norm == NormKind::kLayerNorm) {
      auto& dbeta = grads.grad(nw.beta);
      layernorm_backward_row(x.row(i), dy.row(i), nw.gamma.span(),
                             cfg.norm_eps, dx.row(i), dgamma.span(),
                             dbeta.span());
    } else {
      rmsnorm_backward_row(x.row(i), dy.row(i), nw.gamma.span(), cfg.norm_eps,
                           dx.row(i), dgamma.span());
    }
  }
}

void linear_backward(const LinearWeights& lw, const Tensor& input,
                     const Tensor& dy, Tensor* dx_acc, GradStore& grads) {
  matmul_tn_acc(dy, input, grads.grad(lw.w));
  if (lw.has_bias) add_rows_acc(dy, grads.grad(lw.b));
  if (dx_acc != nullptr) {
    Tensor dx;
    matmul_nn(dy, lw.w, dx);
    add_inplace(dx_acc->span(), dx.span());
  }
}

void rope_backward_rows(const ModelConfig& cfg, Tensor& d) {
  // The inverse of a rotation by +angle is a rotation by -angle; gradients
  // transform by the transpose, which for a rotation equals the inverse.
  const std::size_t heads = cfg.n_heads;
  const std::size_t hd = cfg.head_dim();
  const std::size_t half = hd / 2;
  for (std::size_t pos = 0; pos < d.dim(0); ++pos) {
    auto row = d.row(pos);
    for (std::size_t h = 0; h < heads; ++h) {
      float* head = row.data() + h * hd;
      for (std::size_t i = 0; i < half; ++i) {
        const float freq = std::pow(
            cfg.rope_theta, -static_cast<float>(2 * i) / static_cast<float>(hd));
        const float angle = static_cast<float>(pos) * freq;
        const float c = std::cos(angle);
        const float s = std::sin(angle);
        const float a = head[i];
        const float b = head[i + half];
        head[i] = a * c + b * s;
        head[i + half] = -a * s + b * c;
      }
    }
  }
}

void attention_backward(const ModelConfig& cfg, const BlockWeights& blk,
                        const BlockFwd& fwd, const Tensor& d_o, Tensor& dh1,
                        GradStore& grads) {
  const std::size_t t_len = fwd.h1.dim(0);
  const std::size_t heads = cfg.n_heads;
  const std::size_t hd = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // out_proj backward.
  Tensor d_attn;
  matmul_nn(d_o, blk.o.w, d_attn);
  matmul_tn_acc(d_o, fwd.attn, grads.grad(blk.o.w));
  if (blk.o.has_bias) add_rows_acc(d_o, grads.grad(blk.o.b));

  Tensor dq({t_len, cfg.d_model});
  Tensor dk({t_len, cfg.d_model});
  Tensor dv({t_len, cfg.d_model});

  std::vector<float> dprow;
  for (std::size_t h = 0; h < heads; ++h) {
    const std::size_t off = h * hd;
    for (std::size_t i = 0; i < t_len; ++i) {
      const float* prow = fwd.probs.data() + (h * t_len + i) * t_len;
      const float* dai = d_attn.row(i).data() + off;
      dprow.assign(i + 1, 0.0f);
      // dP and dV.
      for (std::size_t j = 0; j <= i; ++j) {
        const float* vj = fwd.v.row(j).data() + off;
        float acc = 0.0f;
        for (std::size_t e = 0; e < hd; ++e) acc += dai[e] * vj[e];
        dprow[j] = acc;
        float* dvj = dv.row(j).data() + off;
        const float p = prow[j];
        for (std::size_t e = 0; e < hd; ++e) dvj[e] += p * dai[e];
      }
      // Softmax backward: ds = p .* (dp - dot(dp, p)).
      float dot = 0.0f;
      for (std::size_t j = 0; j <= i; ++j) dot += dprow[j] * prow[j];
      // dQ/dK.
      const float* qi = fwd.q.row(i).data() + off;
      float* dqi = dq.row(i).data() + off;
      for (std::size_t j = 0; j <= i; ++j) {
        const float ds = prow[j] * (dprow[j] - dot) * scale;
        if (ds == 0.0f) continue;
        const float* kj = fwd.k.row(j).data() + off;
        float* dkj = dk.row(j).data() + off;
        for (std::size_t e = 0; e < hd; ++e) {
          dqi[e] += ds * kj[e];
          dkj[e] += ds * qi[e];
        }
      }
    }
  }

  if (cfg.position == PositionKind::kRotary) {
    rope_backward_rows(cfg, dq);
    rope_backward_rows(cfg, dk);
  }

  linear_backward(blk.q, fwd.h1, dq, &dh1, grads);
  linear_backward(blk.k, fwd.h1, dk, &dh1, grads);
  linear_backward(blk.v, fwd.h1, dv, &dh1, grads);
}

void mlp_backward(const ModelConfig& cfg, const BlockWeights& blk,
                  const Tensor& input, const BlockFwd& fwd, const Tensor& df2,
                  Tensor& d_input, GradStore& grads) {
  const bool llama = cfg.arch == ArchFamily::kLlama;
  if (llama) {
    Tensor dm;
    matmul_nn(df2, blk.fc2.w, dm);
    matmul_tn_acc(df2, fwd.m, grads.grad(blk.fc2.w));
    if (blk.fc2.has_bias) add_rows_acc(df2, grads.grad(blk.fc2.b));

    Tensor dact(fwd.act.shape());
    Tensor dup(fwd.f_up.shape());
    for (std::size_t i = 0; i < dm.numel(); ++i) {
      dact[i] = dm[i] * fwd.f_up[i];
      dup[i] = dm[i] * fwd.act[i];
    }
    Tensor df1(fwd.f1.shape());
    for (std::size_t i = 0; i < df1.numel(); ++i) {
      df1[i] = dact[i] * act_backward_scalar(cfg.activation, fwd.f1[i]);
    }
    linear_backward(blk.fc1, input, df1, &d_input, grads);
    linear_backward(blk.up, input, dup, &d_input, grads);
  } else {
    Tensor dact;
    matmul_nn(df2, blk.fc2.w, dact);
    matmul_tn_acc(df2, fwd.act, grads.grad(blk.fc2.w));
    if (blk.fc2.has_bias) add_rows_acc(df2, grads.grad(blk.fc2.b));

    Tensor df1(fwd.f1.shape());
    for (std::size_t i = 0; i < df1.numel(); ++i) {
      df1[i] = dact[i] * act_backward_scalar(cfg.activation, fwd.f1[i]);
    }
    linear_backward(blk.fc1, input, df1, &d_input, grads);
  }
}

}  // namespace

float forward_loss(const TransformerLM& model, const TrainSequence& seq) {
  const ForwardCache cache = run_forward(model, seq.tokens);
  return loss_and_dlogits(cache, seq, nullptr);
}

Tensor forward_logits(const TransformerLM& model,
                      const std::vector<int>& tokens) {
  return run_forward(model, tokens).logits;
}

float forward_backward(const TransformerLM& model, const TrainSequence& seq,
                       GradStore& grads) {
  const ModelConfig& cfg = model.config();
  const ModelWeights& w = model.weights();
  const ForwardCache cache = run_forward(model, seq.tokens);

  Tensor dlogits;
  const float loss = loss_and_dlogits(cache, seq, &dlogits);

  // lm_head backward.
  Tensor dhf;
  matmul_nn(dlogits, w.lm_head.w, dhf);
  matmul_tn_acc(dlogits, cache.hf, grads.grad(w.lm_head.w));

  Tensor dx;
  norm_backward(cfg, w.final_norm, cache.x_final, dhf, dx, grads);

  for (std::size_t b = cfg.n_blocks; b-- > 0;) {
    const auto& blk = w.blocks[b];
    const BlockFwd& fwd = cache.blocks[b];

    if (cfg.parallel_block) {
      // x_out = x_in + o + f2; dx flows to all three.
      Tensor dh1({fwd.h1.dim(0), cfg.d_model});
      mlp_backward(cfg, blk, fwd.h1, fwd, dx, dh1, grads);
      attention_backward(cfg, blk, fwd, dx, dh1, grads);
      Tensor dx_in;
      norm_backward(cfg, blk.norm1, fwd.x_in, dh1, dx_in, grads);
      add_inplace(dx.span(), dx_in.span());  // dx (residual) + norm path
    } else {
      // x_out = x_mid + f2.
      Tensor dh2({fwd.h2.dim(0), cfg.d_model});
      dh2.fill(0.0f);
      mlp_backward(cfg, blk, fwd.h2, fwd, dx, dh2, grads);
      Tensor dx_mid;
      norm_backward(cfg, blk.norm2, fwd.x_mid, dh2, dx_mid, grads);
      add_inplace(dx_mid.span(), dx.span());  // residual branch

      // x_mid = x_in + o.
      Tensor dh1({fwd.h1.dim(0), cfg.d_model});
      dh1.fill(0.0f);
      attention_backward(cfg, blk, fwd, dx_mid, dh1, grads);
      Tensor dx_in;
      norm_backward(cfg, blk.norm1, fwd.x_in, dh1, dx_in, grads);
      add_inplace(dx_in.span(), dx_mid.span());
      dx = std::move(dx_in);
    }
  }

  // Embedding backward.
  auto& d_tok = grads.grad(w.tok_emb);
  for (std::size_t i = 0; i < seq.tokens.size(); ++i) {
    const auto token = static_cast<std::size_t>(seq.tokens[i]);
    auto drow = dx.row(i);
    float* trow = d_tok.data() + token * cfg.d_model;
    for (std::size_t j = 0; j < cfg.d_model; ++j) trow[j] += drow[j];
    if (cfg.position == PositionKind::kLearned) {
      auto& d_pos = grads.grad(w.pos_emb);
      float* prow = d_pos.data() + i * cfg.d_model;
      for (std::size_t j = 0; j < cfg.d_model; ++j) prow[j] += drow[j];
    }
  }
  return loss;
}

}  // namespace ft2
