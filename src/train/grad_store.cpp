#include "train/grad_store.hpp"

#include <cmath>

namespace ft2 {

double GradStore::global_norm() const {
  double sum = 0.0;
  for (const auto& g : grads_) {
    for (float f : g.span()) sum += static_cast<double>(f) * f;
  }
  return std::sqrt(sum);
}

void GradStore::scale(float factor) {
  for (auto& g : grads_) {
    for (float& f : g.span()) f *= factor;
  }
}

}  // namespace ft2
