// Adam optimizer with linear warmup + cosine decay schedule.
#pragma once

#include <vector>

#include "train/grad_store.hpp"

namespace ft2 {

struct AdamConfig {
  float lr = 3e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.95f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  Adam(ModelWeights& weights, AdamConfig config);

  /// Applies one update using gradients from `grads` at learning rate `lr`.
  void step(GradStore& grads, float lr);

  std::size_t steps_taken() const { return t_; }

 private:
  AdamConfig config_;
  std::vector<Tensor*> params_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::size_t t_ = 0;
};

/// lr(t): linear warmup to `peak` over `warmup` steps, then cosine decay to
/// `peak * floor_ratio` at `total` steps.
float lr_schedule(std::size_t step, std::size_t warmup, std::size_t total,
                  float peak, float floor_ratio = 0.1f);

}  // namespace ft2
