// Teacher-forced forward + manual backward pass over one sequence.
//
// Training runs in FP32 on full [T, d] matrices (no KV cache, no hooks);
// inference uses the hooked incremental path in nn/model.*. Both share the
// same weights, so a trained model is directly usable by the fault-
// injection engine. Gradient correctness is pinned down by finite-difference
// tests (tests/train/backprop_test.cpp).
#pragma once

#include <span>
#include <vector>

#include "nn/model.hpp"
#include "train/grad_store.hpp"

namespace ft2 {

/// One training example: token sequence plus per-position loss weights.
/// Position t (0-based) predicts tokens[t+1] with weight loss_weight[t];
/// loss_weight has size tokens.size() - 1.
struct TrainSequence {
  std::vector<int> tokens;
  std::vector<float> loss_weight;
};

/// Runs forward + backward for `seq`, accumulating parameter gradients into
/// `grads` and returning the (weighted mean) cross-entropy loss. The loss
/// normalizer is the sum of loss weights of this sequence.
float forward_backward(const TransformerLM& model, const TrainSequence& seq,
                       GradStore& grads);

/// Forward-only loss (used by evaluation and the finite-difference tests).
float forward_loss(const TransformerLM& model, const TrainSequence& seq);

/// Full-sequence logits [T, vocab] from the training (batched, FP32)
/// forward path. Used to cross-validate the incremental inference engine.
Tensor forward_logits(const TransformerLM& model,
                      const std::vector<int>& tokens);

}  // namespace ft2
