#include "train/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "data/matcher.hpp"

namespace ft2 {

TrainSequence make_train_sequence(const Sample& sample,
                                  float prompt_loss_weight) {
  TrainSequence seq;
  seq.tokens.push_back(Vocab::kBos);
  seq.tokens.insert(seq.tokens.end(), sample.prompt_tokens.begin(),
                    sample.prompt_tokens.end());
  const std::size_t answer_start = seq.tokens.size();
  seq.tokens.insert(seq.tokens.end(), sample.target_tokens.begin(),
                    sample.target_tokens.end());

  seq.loss_weight.assign(seq.tokens.size() - 1, prompt_loss_weight);
  // Position t predicts token t+1; answer tokens start at answer_start.
  for (std::size_t t = answer_start - 1; t + 1 < seq.tokens.size(); ++t) {
    seq.loss_weight[t] = 1.0f;
  }
  return seq;
}

double evaluate_accuracy(const TransformerLM& model,
                         const DatasetGenerator& gen, std::size_t n,
                         std::uint64_t seed, std::size_t max_new_tokens) {
  const auto samples = gen.generate_many(n, seed);
  InferenceSession session(model);
  GenerateOptions options;
  options.max_new_tokens = max_new_tokens;
  options.eos_token = Vocab::kEos;
  options.fp16 = true;

  std::size_t correct = 0;
  for (const auto& sample : samples) {
    std::vector<int> prompt;
    prompt.push_back(Vocab::kBos);
    prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                  sample.prompt_tokens.end());
    const auto result = session.generate(prompt, options);
    const std::string text = Vocab::shared().decode(result.tokens);
    if (contains_reference(text, sample.reference)) ++correct;
  }
  return n == 0 ? 0.0 : static_cast<double>(correct) / static_cast<double>(n);
}

double evaluate_perplexity(const TransformerLM& model,
                           const DatasetGenerator& gen, std::size_t n,
                           std::uint64_t seed) {
  Xoshiro256 rng(seed);
  double loss_sum = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Sample sample = gen.generate(rng);
    TrainSequence seq = make_train_sequence(sample, 0.0f);
    loss_sum += static_cast<double>(forward_loss(model, seq));
    ++count;
  }
  if (count == 0) return 0.0;
  return std::exp(loss_sum / static_cast<double>(count));
}

TrainReport train_model(
    TransformerLM& model,
    const std::vector<const DatasetGenerator*>& tasks,
    const TrainerConfig& config,
    const std::function<void(std::size_t, float)>& progress) {
  FT2_CHECK(!tasks.empty());
  FT2_CHECK(config.task_weights.empty() ||
            config.task_weights.size() == tasks.size());
  std::vector<double> cumulative;
  if (!config.task_weights.empty()) {
    double total = 0.0;
    for (double w : config.task_weights) total += w;
    FT2_CHECK(total > 0.0);
    double acc = 0.0;
    for (double w : config.task_weights) {
      acc += w / total;
      cumulative.push_back(acc);
    }
  }
  GradStore grads(model.weights());
  Adam adam(model.weights(), AdamConfig{});
  Xoshiro256 rng(config.seed);

  TrainReport report;
  float loss_ema = -1.0f;

  for (std::size_t step = 0; step < config.steps; ++step) {
    grads.zero();
    float loss_sum = 0.0f;
    for (std::size_t i = 0; i < config.batch_size; ++i) {
      std::size_t task_idx = rng.uniform(tasks.size());
      if (!cumulative.empty()) {
        const double u = rng.uniform_double();
        task_idx = 0;
        while (task_idx + 1 < cumulative.size() && u > cumulative[task_idx]) {
          ++task_idx;
        }
      }
      const auto* task = tasks[task_idx];
      const Sample sample = task->generate(rng);
      const TrainSequence seq =
          make_train_sequence(sample, config.prompt_loss_weight);
      loss_sum += forward_backward(model, seq, grads);
    }
    grads.scale(1.0f / static_cast<float>(config.batch_size));

    const double norm = grads.global_norm();
    if (config.grad_clip > 0.0f && norm > config.grad_clip) {
      grads.scale(config.grad_clip / static_cast<float>(norm));
    }
    const float lr = lr_schedule(step, config.warmup_steps, config.steps,
                                 config.peak_lr);
    adam.step(grads, lr);

    const float loss = loss_sum / static_cast<float>(config.batch_size);
    loss_ema = loss_ema < 0.0f ? loss : 0.95f * loss_ema + 0.05f * loss;
    report.final_loss = loss_ema;
    report.steps_run = step + 1;
    if (progress) progress(step, loss);

    const bool check_now = config.eval_every > 0 &&
                           (step + 1) % config.eval_every == 0 &&
                           step + 1 >= config.min_steps;
    if (check_now) {
      double acc = 0.0;
      for (const auto* task : tasks) {
        acc += evaluate_accuracy(model, *task, config.eval_samples,
                                 /*seed=*/9000 + step);
      }
      acc /= static_cast<double>(tasks.size());
      report.final_accuracy = acc;
      if (acc >= config.target_accuracy) break;
    }
  }

  if (report.final_accuracy == 0.0) {
    double acc = 0.0;
    for (const auto* task : tasks) {
      acc += evaluate_accuracy(model, *task, config.eval_samples, 9999);
    }
    report.final_accuracy = acc / static_cast<double>(tasks.size());
  }
  return report;
}

}  // namespace ft2
