#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/thread_pool.hpp"
#include "numeric/f16.hpp"

namespace ft2 {

void linear_forward(const Tensor& x, const Tensor& w,
                    std::span<const float> bias, Tensor& y) {
  FT2_CHECK(x.rank() == 2 && w.rank() == 2);
  const std::size_t m = x.dim(0);
  const std::size_t k = x.dim(1);
  const std::size_t n = w.dim(0);
  FT2_CHECK_MSG(w.dim(1) == k, "linear: x cols " << k << " vs w cols "
                                                 << w.dim(1));
  FT2_CHECK(bias.empty() || bias.size() == n);
  if (y.shape() != std::vector<std::size_t>{m, n}) y = Tensor({m, n});
  for (std::size_t r = 0; r < m; ++r) {
    linear_forward_row(x.row(r), w, bias, y.row(r));
  }
}

void linear_forward_row(std::span<const float> x, const Tensor& w,
                        std::span<const float> bias, std::span<float> y) {
  const std::size_t n = w.dim(0);
  const std::size_t k = w.dim(1);
  FT2_ASSERT(x.size() == k && y.size() == n);
  const float* wd = w.data();
  for (std::size_t o = 0; o < n; ++o) {
    const float* row = wd + o * k;
    float acc = bias.empty() ? 0.0f : bias[o];
    for (std::size_t i = 0; i < k; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
}

void linear_forward_row_chunked(std::span<const float> x, const Tensor& w,
                                std::span<const float> bias,
                                std::span<float> y) {
  const std::size_t n = w.dim(0);
  const std::size_t k = w.dim(1);
  FT2_ASSERT(x.size() == k && y.size() == n);
  const float* wd = w.data();
  for (std::size_t o = 0; o < n; ++o) {
    const float* row = wd + o * k;
    float partial[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t i = 0;
    for (; i + 8 <= k; i += 8) {
      for (std::size_t lane = 0; lane < 8; ++lane) {
        partial[lane] += row[i + lane] * x[i + lane];
      }
    }
    float acc = bias.empty() ? 0.0f : bias[o];
    for (; i < k; ++i) acc += row[i] * x[i];
    // Pairwise tree reduction of the lanes.
    partial[0] += partial[4];
    partial[1] += partial[5];
    partial[2] += partial[6];
    partial[3] += partial[7];
    partial[0] += partial[2];
    partial[1] += partial[3];
    y[o] = acc + partial[0] + partial[1];
  }
}

namespace {

/// Chunked-accumulation tile (the Fig. 16 alternate-reduction-order mode):
/// identical to linear_forward_row_chunked per output element.
void gemm_tile_chunked(std::span<const float> x, const Tensor& w,
                       std::span<const float> bias, std::span<float> y,
                       std::size_t o_lo, std::size_t o_hi) {
  const std::size_t k = w.dim(1);
  const float* wd = w.data();
  for (std::size_t o = o_lo; o < o_hi; ++o) {
    const float* row = wd + o * k;
    float partial[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::size_t i = 0;
    for (; i + 8 <= k; i += 8) {
      for (std::size_t lane = 0; lane < 8; ++lane) {
        partial[lane] += row[i + lane] * x[i + lane];
      }
    }
    float acc = bias.empty() ? 0.0f : bias[o];
    for (; i < k; ++i) acc += row[i] * x[i];
    partial[0] += partial[4];
    partial[1] += partial[5];
    partial[2] += partial[6];
    partial[3] += partial[7];
    partial[0] += partial[2];
    partial[1] += partial[3];
    y[o] = acc + partial[0] + partial[1];
  }
}

/// Repacks weight columns [o_lo, o_lo + width) transposed into
/// wt[k][tile_cols] (zero-padded past `width`) so the micro-kernel's inner
/// loop reads contiguous memory. The tile width comes from the dispatch
/// tier (tensor/dispatch.hpp): 16 columns on the SSE reference, 32 on
/// AVX2, 64 on AVX-512.
void pack_weight_tile(const Tensor& w, std::size_t o_lo, std::size_t width,
                      std::size_t tile_cols, std::vector<float>& wt) {
  const std::size_t k = w.dim(1);
  wt.assign(k * tile_cols, 0.0f);
  for (std::size_t j = 0; j < width; ++j) {
    const float* src = w.data() + (o_lo + j) * k;
    for (std::size_t i = 0; i < k; ++i) wt[i * tile_cols + j] = src[i];
  }
}

}  // namespace

PackedLinear::PackedLinear(const Tensor& w, std::span<const float> bias_in)
    : n(w.dim(0)),
      k(w.dim(1)),
      ops(&active_kernel_ops()),
      tile_cols(ops->tile_cols) {
  FT2_CHECK(w.rank() == 2);
  FT2_CHECK(bias_in.empty() || bias_in.size() == n);
  const std::size_t groups = (n + tile_cols - 1) / tile_cols;
  tiles.assign(groups * k * tile_cols, 0.0f);
  bias.assign(groups * tile_cols, 0.0f);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t o_lo = g * tile_cols;
    const std::size_t width = std::min(tile_cols, n - o_lo);
    float* wt = tiles.data() + g * k * tile_cols;
    for (std::size_t j = 0; j < width; ++j) {
      const float* src = w.data() + (o_lo + j) * k;
      for (std::size_t i = 0; i < k; ++i) wt[i * tile_cols + j] = src[i];
      if (!bias_in.empty()) bias[g * tile_cols + j] = bias_in[o_lo + j];
    }
  }
}

void linear_forward_span_packed(const Tensor& x, std::size_t rows,
                                const PackedLinear& pl, Tensor& y,
                                ThreadPool& pool) {
  FT2_CHECK(x.rank() == 2 && y.rank() == 2);
  FT2_CHECK(rows <= x.dim(0) && rows <= y.dim(0));
  FT2_CHECK_MSG(x.dim(1) == pl.k && y.dim(1) == pl.n,
                "linear_forward_span_packed: x cols " << x.dim(1) << " w ["
                    << pl.n << "," << pl.k << "] y cols " << y.dim(1));
  if (rows == 0) return;
  const std::size_t tile_cols = pl.tile_cols;
  const std::size_t col_groups = (pl.n + tile_cols - 1) / tile_cols;
  pool.parallel_for(0, col_groups, [&](std::size_t g) {
    const float* wt = pl.tiles.data() + g * pl.k * tile_cols;
    const float* bias_padded = pl.bias.data() + g * tile_cols;
    const std::size_t o_lo = g * tile_cols;
    const std::size_t width = std::min(tile_cols, pl.n - o_lo);
    for (std::size_t r = 0; r < rows; ++r) {
      pl.ops->kouter_row(x.row(r).data(), wt, pl.k, bias_padded,
                         y.row(r).data() + o_lo, width, 0, nullptr, nullptr);
    }
  });
}

void linear_forward_span(const Tensor& x, std::size_t rows, const Tensor& w,
                         std::span<const float> bias, Tensor& y,
                         bool chunked_accum, ThreadPool& pool,
                         const KernelEpilogue* epi, EpilogueTally* tally) {
  FT2_CHECK(x.rank() == 2 && y.rank() == 2 && w.rank() == 2);
  FT2_CHECK(rows <= x.dim(0) && rows <= y.dim(0));
  const std::size_t n = w.dim(0);
  const std::size_t k = w.dim(1);
  FT2_CHECK_MSG(x.dim(1) == k && y.dim(1) == n,
                "linear_forward_span: x [" << x.dim(0) << "," << x.dim(1)
                                           << "] w [" << n << "," << w.dim(1)
                                           << "] y cols " << y.dim(1));
  FT2_CHECK_MSG(epi == nullptr || !chunked_accum,
                "linear_forward_span: fused epilogue requires the k-outer "
                "path (chunked_accum must be off)");
  if (rows == 0) return;

  if (chunked_accum) {
    // Sensitivity-study mode: keep the reference tiling. Split output
    // columns when rows alone cannot feed the pool.
    const std::size_t workers = std::max<std::size_t>(pool.size(), 1);
    std::size_t col_tiles = 1;
    if (rows < 2 * workers) {
      col_tiles = std::min(n, (2 * workers + rows - 1) / rows);
    }
    const std::size_t tile_cols = (n + col_tiles - 1) / col_tiles;
    pool.parallel_for(0, rows * col_tiles, [&](std::size_t task) {
      const std::size_t r = task / col_tiles;
      const std::size_t t = task % col_tiles;
      const std::size_t o_lo = t * tile_cols;
      const std::size_t o_hi = std::min(n, o_lo + tile_cols);
      gemm_tile_chunked(x.row(r), w, bias, y.row(r), o_lo, o_hi);
    });
    return;
  }

  // Fast path: one task per tile_cols-wide column tile. Each task packs its
  // weight tile once (amortized over all chunk rows) and runs the k-outer
  // kernel row by row. Partitioning is per output element, so any pool size
  // produces identical results. Epilogue tallies are accumulated per task
  // and merged under a lock; event order is restored by a flat-index sort
  // after the join, so the fused accounting is deterministic at any pool
  // size and matches a sequential sweep of the output span.
  const KernelOps& ops = active_kernel_ops();
  const std::size_t tile_cols = ops.tile_cols;
  const std::size_t col_groups = (n + tile_cols - 1) / tile_cols;
  std::mutex tally_mu;
  pool.parallel_for(0, col_groups, [&](std::size_t g) {
    thread_local std::vector<float> wt;
    const std::size_t o_lo = g * tile_cols;
    const std::size_t width = std::min(tile_cols, n - o_lo);
    pack_weight_tile(w, o_lo, width, tile_cols, wt);
    // Widest tile across tiers is 64 columns (AVX-512).
    FT2_ASSERT(tile_cols <= 64);
    float bias_padded[64] = {};
    if (!bias.empty()) {
      for (std::size_t j = 0; j < width; ++j) bias_padded[j] = bias[o_lo + j];
    }
    EpilogueTally local;
    EpilogueTally* local_ptr = tally != nullptr ? &local : nullptr;
    for (std::size_t r = 0; r < rows; ++r) {
      ops.kouter_row(x.row(r).data(), wt.data(), k, bias_padded,
                     y.row(r).data() + o_lo, width, r * n + o_lo, epi,
                     local_ptr);
    }
    if (local_ptr != nullptr &&
        (local.nan != 0 || local.oob != 0 || !local.events.empty())) {
      const std::lock_guard<std::mutex> lock(tally_mu);
      tally->merge(std::move(local));
    }
  });
  if (tally != nullptr) tally->sort_events();
}

void softmax(std::span<float> v) {
  if (v.empty()) return;
  float mx = v[0];
  for (float f : v) mx = std::max(mx, f);
  // If the row holds NaN/inf only, the standard stable softmax still runs;
  // NaNs propagate, which is the faithful FP behaviour under injection.
  float sum = 0.0f;
  for (float& f : v) {
    f = std::exp(f - mx);
    sum += f;
  }
  if (sum > 0.0f) {
    for (float& f : v) f /= sum;
  }
}

void softmax_rows(float* data, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    softmax({data + r * cols, cols});
  }
}

void layernorm_row(std::span<const float> in, std::span<const float> gamma,
                   std::span<const float> beta, float eps,
                   std::span<float> out) {
  const std::size_t d = in.size();
  float mean = 0.0f;
  for (float f : in) mean += f;
  mean /= static_cast<float>(d);
  float var = 0.0f;
  for (float f : in) var += (f - mean) * (f - mean);
  var /= static_cast<float>(d);
  const float inv = 1.0f / std::sqrt(var + eps);
  for (std::size_t i = 0; i < d; ++i) {
    out[i] = (in[i] - mean) * inv * gamma[i] + beta[i];
  }
}

void layernorm_rows(const Tensor& x, std::span<const float> gamma,
                    std::span<const float> beta, float eps, Tensor& y) {
  FT2_CHECK(x.rank() == 2);
  const std::size_t d = x.dim(1);
  FT2_CHECK(gamma.size() == d && beta.size() == d);
  if (!y.same_shape(x)) y = Tensor(x.shape());
  for (std::size_t r = 0; r < x.dim(0); ++r) {
    layernorm_row(x.row(r), gamma, beta, eps, y.row(r));
  }
}

void rmsnorm_row(std::span<const float> in, std::span<const float> gamma,
                 float eps, std::span<float> out) {
  const std::size_t d = in.size();
  float ms = 0.0f;
  for (float f : in) ms += f * f;
  ms /= static_cast<float>(d);
  const float inv = 1.0f / std::sqrt(ms + eps);
  for (std::size_t i = 0; i < d; ++i) out[i] = in[i] * inv * gamma[i];
}

void rmsnorm_rows(const Tensor& x, std::span<const float> gamma, float eps,
                  Tensor& y) {
  FT2_CHECK(x.rank() == 2);
  const std::size_t d = x.dim(1);
  FT2_CHECK(gamma.size() == d);
  if (!y.same_shape(x)) y = Tensor(x.shape());
  for (std::size_t r = 0; r < x.dim(0); ++r) {
    rmsnorm_row(x.row(r), gamma, eps, y.row(r));
  }
}

float sigmoid_scalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

float gelu_scalar(float x) {
  // GPT-2/J tanh approximation.
  const float c = 0.7978845608028654f;  // sqrt(2/pi)
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

float silu_scalar(float x) { return x * sigmoid_scalar(x); }

void relu(std::span<float> v) {
  for (float& f : v) f = std::max(f, 0.0f);
}

void gelu(std::span<float> v) {
  for (float& f : v) f = gelu_scalar(f);
}

void silu(std::span<float> v) {
  for (float& f : v) f = silu_scalar(f);
}

void rope_apply(std::span<float> qk, std::size_t n_heads, std::size_t head_dim,
                std::size_t pos, float theta) {
  FT2_ASSERT(qk.size() == n_heads * head_dim);
  FT2_ASSERT(head_dim % 2 == 0);
  const std::size_t half = head_dim / 2;
  for (std::size_t h = 0; h < n_heads; ++h) {
    float* head = qk.data() + h * head_dim;
    for (std::size_t i = 0; i < half; ++i) {
      const float freq = std::pow(
          theta, -static_cast<float>(2 * i) / static_cast<float>(head_dim));
      const float angle = static_cast<float>(pos) * freq;
      const float c = std::cos(angle);
      const float s = std::sin(angle);
      const float a = head[i];
      const float b = head[i + half];
      head[i] = a * c - b * s;
      head[i + half] = a * s + b * c;
    }
  }
}

void add_inplace(std::span<float> a, std::span<const float> b) {
  FT2_ASSERT(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void mul_inplace(std::span<float> a, std::span<const float> b) {
  FT2_ASSERT(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
}

void quantize_span_f16(std::span<float> v) {
  static constexpr KernelEpilogue kQuantizeOnly{.quantize = true};
  active_kernel_ops().epilogue_span(v.data(), v.size(), 0, kQuantizeOnly,
                                    nullptr);
}

void quantize_tensor_f16(Tensor& t) { quantize_span_f16(t.span()); }

std::size_t argmax(std::span<const float> v) {
  FT2_ASSERT(!v.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace ft2
