#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/f16.hpp"

namespace ft2 {

void linear_forward(const Tensor& x, const Tensor& w,
                    std::span<const float> bias, Tensor& y) {
  FT2_CHECK(x.rank() == 2 && w.rank() == 2);
  const std::size_t m = x.dim(0);
  const std::size_t k = x.dim(1);
  const std::size_t n = w.dim(0);
  FT2_CHECK_MSG(w.dim(1) == k, "linear: x cols " << k << " vs w cols "
                                                 << w.dim(1));
  FT2_CHECK(bias.empty() || bias.size() == n);
  if (y.shape() != std::vector<std::size_t>{m, n}) y = Tensor({m, n});
  for (std::size_t r = 0; r < m; ++r) {
    linear_forward_row(x.row(r), w, bias, y.row(r));
  }
}

void linear_forward_row(std::span<const float> x, const Tensor& w,
                        std::span<const float> bias, std::span<float> y) {
  const std::size_t n = w.dim(0);
  const std::size_t k = w.dim(1);
  FT2_ASSERT(x.size() == k && y.size() == n);
  const float* wd = w.data();
  for (std::size_t o = 0; o < n; ++o) {
    const float* row = wd + o * k;
    float acc = bias.empty() ? 0.0f : bias[o];
    for (std::size_t i = 0; i < k; ++i) acc += row[i] * x[i];
    y[o] = acc;
  }
}

void softmax(std::span<float> v) {
  if (v.empty()) return;
  float mx = v[0];
  for (float f : v) mx = std::max(mx, f);
  // If the row holds NaN/inf only, the standard stable softmax still runs;
  // NaNs propagate, which is the faithful FP behaviour under injection.
  float sum = 0.0f;
  for (float& f : v) {
    f = std::exp(f - mx);
    sum += f;
  }
  if (sum > 0.0f) {
    for (float& f : v) f /= sum;
  }
}

void softmax_rows(float* data, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    softmax({data + r * cols, cols});
  }
}

void layernorm_rows(const Tensor& x, std::span<const float> gamma,
                    std::span<const float> beta, float eps, Tensor& y) {
  FT2_CHECK(x.rank() == 2);
  const std::size_t d = x.dim(1);
  FT2_CHECK(gamma.size() == d && beta.size() == d);
  if (!y.same_shape(x)) y = Tensor(x.shape());
  for (std::size_t r = 0; r < x.dim(0); ++r) {
    auto in = x.row(r);
    auto out = y.row(r);
    float mean = 0.0f;
    for (float f : in) mean += f;
    mean /= static_cast<float>(d);
    float var = 0.0f;
    for (float f : in) var += (f - mean) * (f - mean);
    var /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(var + eps);
    for (std::size_t i = 0; i < d; ++i) {
      out[i] = (in[i] - mean) * inv * gamma[i] + beta[i];
    }
  }
}

void rmsnorm_rows(const Tensor& x, std::span<const float> gamma, float eps,
                  Tensor& y) {
  FT2_CHECK(x.rank() == 2);
  const std::size_t d = x.dim(1);
  FT2_CHECK(gamma.size() == d);
  if (!y.same_shape(x)) y = Tensor(x.shape());
  for (std::size_t r = 0; r < x.dim(0); ++r) {
    auto in = x.row(r);
    auto out = y.row(r);
    float ms = 0.0f;
    for (float f : in) ms += f * f;
    ms /= static_cast<float>(d);
    const float inv = 1.0f / std::sqrt(ms + eps);
    for (std::size_t i = 0; i < d; ++i) out[i] = in[i] * inv * gamma[i];
  }
}

float sigmoid_scalar(float x) { return 1.0f / (1.0f + std::exp(-x)); }

float gelu_scalar(float x) {
  // GPT-2/J tanh approximation.
  const float c = 0.7978845608028654f;  // sqrt(2/pi)
  return 0.5f * x * (1.0f + std::tanh(c * (x + 0.044715f * x * x * x)));
}

float silu_scalar(float x) { return x * sigmoid_scalar(x); }

void relu(std::span<float> v) {
  for (float& f : v) f = std::max(f, 0.0f);
}

void gelu(std::span<float> v) {
  for (float& f : v) f = gelu_scalar(f);
}

void silu(std::span<float> v) {
  for (float& f : v) f = silu_scalar(f);
}

void rope_apply(std::span<float> qk, std::size_t n_heads, std::size_t head_dim,
                std::size_t pos, float theta) {
  FT2_ASSERT(qk.size() == n_heads * head_dim);
  FT2_ASSERT(head_dim % 2 == 0);
  const std::size_t half = head_dim / 2;
  for (std::size_t h = 0; h < n_heads; ++h) {
    float* head = qk.data() + h * head_dim;
    for (std::size_t i = 0; i < half; ++i) {
      const float freq = std::pow(
          theta, -static_cast<float>(2 * i) / static_cast<float>(head_dim));
      const float angle = static_cast<float>(pos) * freq;
      const float c = std::cos(angle);
      const float s = std::sin(angle);
      const float a = head[i];
      const float b = head[i + half];
      head[i] = a * c - b * s;
      head[i + half] = a * s + b * c;
    }
  }
}

void add_inplace(std::span<float> a, std::span<const float> b) {
  FT2_ASSERT(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void mul_inplace(std::span<float> a, std::span<const float> b) {
  FT2_ASSERT(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
}

void quantize_span_f16(std::span<float> v) {
  for (float& f : v) f = quantize_f16(f);
}

void quantize_tensor_f16(Tensor& t) { quantize_span_f16(t.span()); }

std::size_t argmax(std::span<const float> v) {
  FT2_ASSERT(!v.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

}  // namespace ft2
