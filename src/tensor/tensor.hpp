// Dense row-major float tensor.
//
// The inference engine computes in FP32 and quantizes observable layer
// outputs onto the FP16 grid (see numeric/f16.hpp), mirroring tensor-core
// matmuls with FP32 accumulation. Tensors are contiguous and row-major;
// shapes are small (tiny models), so simplicity beats generality here.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace ft2 {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::size_t> shape) : shape_(std::move(shape)) {
    data_.assign(numel_of(shape_), 0.0f);
  }

  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }

  static Tensor full(std::vector<std::size_t> shape, float value);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t i) const {
    FT2_ASSERT(i < shape_.size());
    return shape_[i];
  }
  std::size_t numel() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) {
    FT2_ASSERT(i < data_.size());
    return data_[i];
  }
  float operator[](std::size_t i) const {
    FT2_ASSERT(i < data_.size());
    return data_[i];
  }

  /// 2-D accessors (most engine tensors are [rows, cols]).
  float& at(std::size_t r, std::size_t c) {
    FT2_ASSERT(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    FT2_ASSERT(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  /// Mutable view of row r of a 2-D tensor.
  std::span<float> row(std::size_t r) {
    FT2_ASSERT(rank() == 2 && r < shape_[0]);
    return {data_.data() + r * shape_[1], shape_[1]};
  }
  std::span<const float> row(std::size_t r) const {
    FT2_ASSERT(rank() == 2 && r < shape_[0]);
    return {data_.data() + r * shape_[1], shape_[1]};
  }

  void fill(float value) { data_.assign(data_.size(), value); }

  /// Reshape in place; total element count must match.
  void reshape(std::vector<std::size_t> shape) {
    FT2_CHECK_MSG(numel_of(shape) == data_.size(), "reshape numel mismatch");
    shape_ = std::move(shape);
  }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string shape_string() const;

  static std::size_t numel_of(const std::vector<std::size_t>& shape);

 private:
  std::vector<std::size_t> shape_;
  std::vector<float> data_;
};

}  // namespace ft2
