#include "tensor/dispatch.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/check.hpp"
#include "common/env.hpp"
#include "numeric/f16.hpp"

namespace ft2 {

void EpilogueTally::merge(EpilogueTally&& other) {
  nan += other.nan;
  oob += other.oob;
  if (!other.events.empty()) {
    if (events.empty()) {
      events = std::move(other.events);
    } else {
      events.insert(events.end(), other.events.begin(), other.events.end());
    }
  }
}

void EpilogueTally::sort_events() {
  std::sort(events.begin(), events.end(),
            [](const EpilogueEvent& a, const EpilogueEvent& b) {
              return a.index < b.index;
            });
}

namespace detail {

void epilogue_scalar_span(float* v, std::size_t n, std::size_t flat0,
                          const KernelEpilogue& epi, EpilogueTally* tally) {
  using Protect = KernelEpilogue::Protect;
  for (std::size_t i = 0; i < n; ++i) {
    float q = epi.quantize ? quantize_f16(v[i]) : v[i];
    switch (epi.protect) {
      case Protect::kNone:
        break;
      case Protect::kFirstToken:
        // First-token phase corrects NaN unconditionally (detect_only does
        // not apply — mirrors RangeRestrictScheme's first-token branch).
        if (std::isnan(q)) {
          ++tally->nan;
          q = 0.0f;
        }
        break;
      case Protect::kNanOnly:
        if (std::isnan(q)) {
          ++tally->nan;
          if (!epi.detect_only) q = 0.0f;
        }
        break;
      case Protect::kBounds:
        if (std::isnan(q)) {
          // NaNs pass through silently (uncounted) when the scheme does not
          // correct them — exactly range_restrict's behaviour.
          if (epi.correct_nan) {
            ++tally->nan;
            if (!epi.detect_only) q = 0.0f;
          }
        } else if (q > epi.hi || q < epi.lo) {
          // Observers see the pre-correction value even in detect_only.
          if (epi.record_events) {
            tally->events.push_back(EpilogueEvent{flat0 + i, q});
          }
          if (!epi.detect_only) q = q > epi.hi ? epi.hi_sub : epi.lo_sub;
          ++tally->oob;
        }
        break;
    }
    v[i] = q;
  }
}

}  // namespace detail

namespace {

constexpr std::size_t kSseTileCols = 16;

/// k-outer micro-kernel, reference tier: one input row against a packed
/// weight tile. Each output element accumulates x[i] * w[o][i] in
/// ascending-i order with a separate mul and add per step — the exact
/// per-element operation sequence of linear_forward_row — but the 16
/// accumulators are independent, so the lanes run in parallel instead of
/// serializing on one dot product's add-latency chain. Explicit SSE keeps
/// the instruction selection out of the autovectorizer's hands (and SSE
/// mul/add round identically to their scalar counterparts, so bit-exactness
/// is preserved by construction). The wider tiers in kernels_avx2.cpp /
/// kernels_avx512.cpp keep this per-element sequence and only widen the
/// column tile.
void kouter_row_sse(const float* x, const float* wt, std::size_t k,
                    const float* bias_padded, float* y, std::size_t width,
                    std::size_t flat0, const KernelEpilogue* epi,
                    EpilogueTally* tally) {
  float acc[kSseTileCols];
#if defined(__SSE2__)
  __m128 acc0 = _mm_loadu_ps(bias_padded);
  __m128 acc1 = _mm_loadu_ps(bias_padded + 4);
  __m128 acc2 = _mm_loadu_ps(bias_padded + 8);
  __m128 acc3 = _mm_loadu_ps(bias_padded + 12);
  for (std::size_t i = 0; i < k; ++i) {
    const __m128 xi = _mm_set1_ps(x[i]);
    const float* wr = wt + i * kSseTileCols;
    acc0 = _mm_add_ps(acc0, _mm_mul_ps(xi, _mm_loadu_ps(wr)));
    acc1 = _mm_add_ps(acc1, _mm_mul_ps(xi, _mm_loadu_ps(wr + 4)));
    acc2 = _mm_add_ps(acc2, _mm_mul_ps(xi, _mm_loadu_ps(wr + 8)));
    acc3 = _mm_add_ps(acc3, _mm_mul_ps(xi, _mm_loadu_ps(wr + 12)));
  }
  _mm_storeu_ps(acc + 0, acc0);
  _mm_storeu_ps(acc + 4, acc1);
  _mm_storeu_ps(acc + 8, acc2);
  _mm_storeu_ps(acc + 12, acc3);
#else
  for (std::size_t j = 0; j < kSseTileCols; ++j) acc[j] = bias_padded[j];
  for (std::size_t i = 0; i < k; ++i) {
    const float xi = x[i];
    const float* wr = wt + i * kSseTileCols;
    for (std::size_t j = 0; j < kSseTileCols; ++j) acc[j] += xi * wr[j];
  }
#endif
  if (epi != nullptr) {
    detail::epilogue_scalar_span(acc, width, flat0, *epi, tally);
  }
  for (std::size_t j = 0; j < width; ++j) y[j] = acc[j];
}

void epilogue_span_sse(float* v, std::size_t n, std::size_t flat0,
                       const KernelEpilogue& epi, EpilogueTally* tally) {
  detail::epilogue_scalar_span(v, n, flat0, epi, tally);
}

constexpr KernelOps kSseOps{KernelTier::kSse, "sse", kSseTileCols,
                            &kouter_row_sse, &epilogue_span_sse};

bool cpu_has_avx2_f16c() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

const KernelOps* compiled_ops(KernelTier tier) {
  switch (tier) {
    case KernelTier::kSse:
      return &kSseOps;
    case KernelTier::kAvx2:
      return detail::kernel_ops_avx2();
    case KernelTier::kAvx512:
      return detail::kernel_ops_avx512();
  }
  return nullptr;
}

const KernelOps* probe_default() {
  if (kernel_tier_supported(KernelTier::kAvx512)) {
    return compiled_ops(KernelTier::kAvx512);
  }
  if (kernel_tier_supported(KernelTier::kAvx2)) {
    return compiled_ops(KernelTier::kAvx2);
  }
  return &kSseOps;
}

std::atomic<const KernelOps*> g_active_ops{nullptr};
std::atomic<int> g_fused_enabled{-1};  // -1 = read FT2_FUSED_EPILOGUE lazily

const KernelOps* select_initial() {
  const std::string forced = env_string("FT2_KERNEL", "auto");
  if (forced == "auto") return probe_default();
  const std::optional<KernelTier> tier = parse_kernel_tier(forced);
  FT2_CHECK_MSG(tier.has_value(), "FT2_KERNEL='" << forced
                                                 << "' (want sse|avx2|avx512|auto)");
  FT2_CHECK_MSG(kernel_tier_supported(*tier),
                "FT2_KERNEL=" << forced << " not supported on this host ("
                              << (kernel_tier_compiled(*tier)
                                      ? "CPU lacks the feature"
                                      : "kernel not compiled in")
                              << ")");
  return compiled_ops(*tier);
}

}  // namespace

const KernelOps& active_kernel_ops() {
  const KernelOps* ops = g_active_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: selection is deterministic, both winners store the same
    // table.
    ops = select_initial();
    g_active_ops.store(ops, std::memory_order_release);
  }
  return *ops;
}

KernelTier active_kernel_tier() { return active_kernel_ops().tier; }

bool kernel_tier_compiled(KernelTier tier) {
  return compiled_ops(tier) != nullptr;
}

bool kernel_tier_supported(KernelTier tier) {
  if (compiled_ops(tier) == nullptr) return false;
  switch (tier) {
    case KernelTier::kSse:
      return true;  // reference tier: SSE2 is x86-64 baseline, scalar elsewhere
    case KernelTier::kAvx2:
      return cpu_has_avx2_f16c();
    case KernelTier::kAvx512:
      return cpu_has_avx512f();
  }
  return false;
}

std::vector<KernelTier> supported_kernel_tiers() {
  std::vector<KernelTier> tiers;
  for (KernelTier t :
       {KernelTier::kSse, KernelTier::kAvx2, KernelTier::kAvx512}) {
    if (kernel_tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

void set_kernel_tier(KernelTier tier) {
  FT2_CHECK_MSG(kernel_tier_supported(tier),
                "kernel tier '" << kernel_tier_name(tier)
                               << "' not supported on this host ("
                               << (kernel_tier_compiled(tier)
                                       ? "CPU lacks the feature"
                                       : "kernel not compiled in")
                               << ")");
  g_active_ops.store(compiled_ops(tier), std::memory_order_release);
}

void set_kernel_tier_name(std::string_view name) {
  if (name == "auto") {
    g_active_ops.store(probe_default(), std::memory_order_release);
    return;
  }
  const std::optional<KernelTier> tier = parse_kernel_tier(name);
  FT2_CHECK_MSG(tier.has_value(), "unknown kernel tier '"
                                      << name << "' (want sse|avx2|avx512|auto)");
  set_kernel_tier(*tier);
}

const char* kernel_tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::kSse:
      return "sse";
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<KernelTier> parse_kernel_tier(std::string_view name) {
  if (name == "sse") return KernelTier::kSse;
  if (name == "avx2") return KernelTier::kAvx2;
  if (name == "avx512") return KernelTier::kAvx512;
  return std::nullopt;
}

const KernelOps& kernel_ops_for(KernelTier tier) {
  FT2_CHECK_MSG(kernel_tier_supported(tier),
                "kernel tier '" << kernel_tier_name(tier)
                               << "' not supported on this host");
  return *compiled_ops(tier);
}

bool fused_epilogue_enabled() {
  int v = g_fused_enabled.load(std::memory_order_acquire);
  if (v < 0) {
    v = env_flag("FT2_FUSED_EPILOGUE", true) ? 1 : 0;
    g_fused_enabled.store(v, std::memory_order_release);
  }
  return v != 0;
}

void set_fused_epilogue_enabled(bool on) {
  g_fused_enabled.store(on ? 1 : 0, std::memory_order_release);
}

}  // namespace ft2
