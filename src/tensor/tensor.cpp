#include "tensor/tensor.hpp"

#include <sstream>

namespace ft2 {

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

std::size_t Tensor::numel_of(const std::vector<std::size_t>& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace ft2
