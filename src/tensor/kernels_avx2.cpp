// AVX2 + F16C dispatch tier: 32-column GEMM tiles and an 8-wide fused
// store epilogue. Compiled with -mavx2 -mf16c -ffp-contract=off (see
// src/CMakeLists.txt); when those flags are unavailable this TU degrades to
// a stub returning nullptr and the dispatcher falls back to the SSE tier.
//
// ODR note: because this TU is built with arch flags the rest of the build
// lacks, it must not instantiate any vague-linkage code (templates,
// header-inline std:: machinery) that another TU also instantiates — the
// linker could pick the AVX2 copy and crash pre-AVX2 hosts. Everything here
// is file-local intrinsic code; slow paths call the extern, baseline-built
// ft2::detail::epilogue_scalar_span.
//
// Bit-exactness: the accumulator update is mul-then-add per k step in
// ascending-i order (no FMA — -mfma is deliberately absent), identical to
// the SSE reference per element; only the column-tile width differs. The
// F16C round-trip (VCVTPS2PH RNE / VCVTPH2PS) matches the software f16
// conversion bit-for-bit for every non-NaN input — including subnormals,
// the 65504/65520 overflow boundary and round-to-nearest-even ties — and
// NaN lanes are blended to the software path's canonical quiet NaN
// (sign | 0x7FC00000), so vector quantization equals quantize_f16 exactly.
#include "tensor/dispatch.hpp"

#if defined(__AVX2__) && defined(__F16C__)

#include <immintrin.h>

namespace ft2 {
namespace {

using Protect = KernelEpilogue::Protect;

constexpr std::size_t kTileCols = 32;

inline __m256 quantize8(__m256 v) {
  __m256 q = _mm256_cvtph_ps(
      _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  const __m256 unord = _mm256_cmp_ps(v, v, _CMP_UNORD_Q);
  if (_mm256_movemask_ps(unord) != 0) {
    // Hardware keeps NaN payload bits; the software path canonicalizes to
    // sign | 0x7FC00000. Blend NaN lanes onto the canonical encoding.
    const __m256 canon = _mm256_or_ps(
        _mm256_and_ps(v, _mm256_set1_ps(-0.0f)),
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7FC00000)));
    q = _mm256_blendv_ps(q, canon, unord);
  }
  return q;
}

/// Applies `epi` to 8 raw accumulator lanes and stores them to y. The fast
/// path quantizes and screens in-register; any group containing a NaN or
/// out-of-bound lane re-runs the scalar reference epilogue on the raw
/// (pre-quantize) lanes, so tallies, events and corrected values are
/// bit-identical to the scalar path.
inline void store8(__m256 acc, float* y, std::size_t flat0,
                   const KernelEpilogue* epi, EpilogueTally* tally) {
  if (epi == nullptr) {
    _mm256_storeu_ps(y, acc);
    return;
  }
  const __m256 q = epi->quantize ? quantize8(acc) : acc;
  int dirty = 0;
  if (epi->protect != Protect::kNone) {
    const __m256 unord = _mm256_cmp_ps(q, q, _CMP_UNORD_Q);
    __m256 bad = unord;
    if (epi->protect == Protect::kBounds) {
      const __m256 oob = _mm256_or_ps(
          _mm256_cmp_ps(q, _mm256_set1_ps(epi->hi), _CMP_GT_OQ),
          _mm256_cmp_ps(q, _mm256_set1_ps(epi->lo), _CMP_LT_OQ));
      // Without correct_nan, NaN lanes pass through uncounted (the
      // quantized lane already carries the canonical NaN) — not dirty.
      bad = epi->correct_nan ? _mm256_or_ps(oob, unord) : oob;
    }
    dirty = _mm256_movemask_ps(bad);
  }
  if (dirty == 0) {
    _mm256_storeu_ps(y, q);
    return;
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, acc);
  detail::epilogue_scalar_span(lanes, 8, flat0, *epi, tally);
  _mm256_storeu_ps(y, _mm256_loadu_ps(lanes));
}

void kouter_row_avx2(const float* x, const float* wt, std::size_t k,
                     const float* bias_padded, float* y, std::size_t width,
                     std::size_t flat0, const KernelEpilogue* epi,
                     EpilogueTally* tally) {
  __m256 a0 = _mm256_loadu_ps(bias_padded);
  __m256 a1 = _mm256_loadu_ps(bias_padded + 8);
  __m256 a2 = _mm256_loadu_ps(bias_padded + 16);
  __m256 a3 = _mm256_loadu_ps(bias_padded + 24);
  for (std::size_t i = 0; i < k; ++i) {
    const __m256 xi = _mm256_set1_ps(x[i]);
    const float* wr = wt + i * kTileCols;
    a0 = _mm256_add_ps(a0, _mm256_mul_ps(xi, _mm256_loadu_ps(wr)));
    a1 = _mm256_add_ps(a1, _mm256_mul_ps(xi, _mm256_loadu_ps(wr + 8)));
    a2 = _mm256_add_ps(a2, _mm256_mul_ps(xi, _mm256_loadu_ps(wr + 16)));
    a3 = _mm256_add_ps(a3, _mm256_mul_ps(xi, _mm256_loadu_ps(wr + 24)));
  }
  if (width == kTileCols) {
    store8(a0, y, flat0, epi, tally);
    store8(a1, y + 8, flat0 + 8, epi, tally);
    store8(a2, y + 16, flat0 + 16, epi, tally);
    store8(a3, y + 24, flat0 + 24, epi, tally);
    return;
  }
  // Tail tile: spill, run the scalar epilogue over the live lanes, copy out.
  float acc[kTileCols];
  _mm256_storeu_ps(acc, a0);
  _mm256_storeu_ps(acc + 8, a1);
  _mm256_storeu_ps(acc + 16, a2);
  _mm256_storeu_ps(acc + 24, a3);
  if (epi != nullptr) {
    detail::epilogue_scalar_span(acc, width, flat0, *epi, tally);
  }
  for (std::size_t j = 0; j < width; ++j) y[j] = acc[j];
}

void epilogue_span_avx2(float* v, std::size_t n, std::size_t flat0,
                        const KernelEpilogue& epi, EpilogueTally* tally) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store8(_mm256_loadu_ps(v + i), v + i, flat0 + i, &epi, tally);
  }
  if (i < n) detail::epilogue_scalar_span(v + i, n - i, flat0 + i, epi, tally);
}

constexpr KernelOps kAvx2Ops{KernelTier::kAvx2, "avx2", kTileCols,
                             &kouter_row_avx2, &epilogue_span_avx2};

}  // namespace

namespace detail {
const KernelOps* kernel_ops_avx2() { return &kAvx2Ops; }
}  // namespace detail

}  // namespace ft2

#else  // !(__AVX2__ && __F16C__)

namespace ft2::detail {
const KernelOps* kernel_ops_avx2() { return nullptr; }
}  // namespace ft2::detail

#endif
