// Numerical kernels used by the inference/training engine.
//
// All kernels compute in FP32. Call sites that model FP16 execution quantize
// outputs via quantize_tensor_f16 after each observable layer, matching
// GPU mixed-precision (FP16 storage, FP32 accumulate).
#pragma once

#include <span>

#include "tensor/dispatch.hpp"
#include "tensor/tensor.hpp"

namespace ft2 {

/// y[m,n] = x[m,k] * W^T (W stored [n,k], PyTorch Linear layout) + bias[n].
/// bias may be empty.
void linear_forward(const Tensor& x, const Tensor& w,
                    std::span<const float> bias, Tensor& y);

/// Single-row version: y[n] = W[n,k] * x[k] + b[n].
void linear_forward_row(std::span<const float> x, const Tensor& w,
                        std::span<const float> bias, std::span<float> y);

/// Single-row version with the dot product accumulated in 8-wide partial
/// sums and a pairwise lane reduction: a different reduction order from
/// linear_forward_row, standing in for a different GPU generation's tiling
/// (the Fig. 16 hardware-sensitivity axis).
void linear_forward_row_chunked(std::span<const float> x, const Tensor& w,
                                std::span<const float> bias,
                                std::span<float> y);

class ThreadPool;  // common/thread_pool.hpp

/// Blocked multi-row GEMM: y.row(r) = W * x.row(r) + b for r in [0, rows),
/// parallelised over `pool` (rows and, for small row counts, output-column
/// tiles). Every output element is produced by exactly one task using the
/// same accumulation order as linear_forward_row (or the chunked variant),
/// so results are bit-exact with the sequential per-row calls at any pool
/// size and on every dispatch tier (tensor/dispatch.hpp). `x` and `y` may
/// have more than `rows` rows (workspace capacity).
///
/// When `epi` is non-null the fused store epilogue (quantize + protection)
/// is applied to each output tile in-register as it is stored
/// (non-chunked path only; chunked_accum requires epi == nullptr).
/// Epilogue accounting lands in `tally` (required whenever epi carries
/// protection), with clip events sorted by flat index r * n + o so the
/// order matches a sequential sweep of y's first `rows` rows.
void linear_forward_span(const Tensor& x, std::size_t rows, const Tensor& w,
                         std::span<const float> bias, Tensor& y,
                         bool chunked_accum, ThreadPool& pool,
                         const KernelEpilogue* epi = nullptr,
                         EpilogueTally* tally = nullptr);

/// One weight matrix repacked once into the k-outer micro-kernel's
/// transposed column tiles (bias pre-padded per tile). linear_forward_span
/// repacks tiles on every call — fine for prefill, where the pack cost is
/// amortized over a whole chunk of rows, but wasteful for batched decode,
/// which re-runs every layer's GEMM each step with only a handful of rows.
/// Packing only changes memory layout, never the per-element accumulation
/// order, so the packed path stays bit-exact with linear_forward_row.
/// Snapshot semantics: mutating `w` after packing (e.g. a weight fault) is
/// not reflected — construct a fresh PackedLinear instead. The tile width
/// and kernel are snapshotted from the active dispatch tier at pack time;
/// repack after set_kernel_tier.
struct PackedLinear {
  std::size_t n = 0;          ///< output features
  std::size_t k = 0;          ///< input features
  const KernelOps* ops = nullptr;  ///< dispatch tier the tiles were packed for
  std::size_t tile_cols = 0;  ///< ops->tile_cols at pack time
  std::vector<float> tiles;   ///< per tile: [k x tile_cols], zero-padded
  std::vector<float> bias;    ///< per tile: [tile_cols], zero-padded

  PackedLinear() = default;
  PackedLinear(const Tensor& w, std::span<const float> bias_in);

  bool empty() const { return n == 0; }
  std::size_t memory_bytes() const {
    return (tiles.size() + bias.size()) * sizeof(float);
  }
};

/// Packed counterpart of linear_forward_span (non-chunked accumulation
/// only): y.row(r) = W * x.row(r) + b for r in [0, rows). Bit-exact with
/// linear_forward_row at any pool size.
void linear_forward_span_packed(const Tensor& x, std::size_t rows,
                                const PackedLinear& pl, Tensor& y,
                                ThreadPool& pool);

/// In-place numerically-stable softmax over the last `cols` elements of each
/// row; `row_len` rows of length `cols`.
void softmax_rows(float* data, std::size_t rows, std::size_t cols);

/// In-place softmax of one contiguous vector.
void softmax(std::span<float> v);

/// LayerNorm: y = (x - mean) / sqrt(var + eps) * gamma + beta, per row.
void layernorm_rows(const Tensor& x, std::span<const float> gamma,
                    std::span<const float> beta, float eps, Tensor& y);

/// RMSNorm: y = x / sqrt(mean(x^2) + eps) * gamma, per row.
void rmsnorm_rows(const Tensor& x, std::span<const float> gamma, float eps,
                  Tensor& y);

/// Single-row norm kernels (the per-row arithmetic of the *_rows variants).
void layernorm_row(std::span<const float> in, std::span<const float> gamma,
                   std::span<const float> beta, float eps,
                   std::span<float> out);
void rmsnorm_row(std::span<const float> in, std::span<const float> gamma,
                 float eps, std::span<float> out);

/// Activations (elementwise, in place).
void relu(std::span<float> v);
void gelu(std::span<float> v);   // tanh approximation (GPT-style)
void silu(std::span<float> v);   // x * sigmoid(x)

float gelu_scalar(float x);
float silu_scalar(float x);
float sigmoid_scalar(float x);

/// Rotary position embedding applied in place to a [n_heads * head_dim]
/// vector laid out head-major; rotates pairs (i, i + head_dim/2) within each
/// head using position `pos` and base theta (default 10000).
void rope_apply(std::span<float> qk, std::size_t n_heads, std::size_t head_dim,
                std::size_t pos, float theta = 10000.0f);

/// Elementwise helpers.
void add_inplace(std::span<float> a, std::span<const float> b);
void mul_inplace(std::span<float> a, std::span<const float> b);

/// Quantizes every element onto the FP16 grid (float->half->float).
/// Dispatched through the active kernel tier (F16C on AVX2/AVX-512 hosts);
/// all tiers are bit-exact with the scalar quantize_f16 for every input,
/// NaN payloads included.
void quantize_tensor_f16(Tensor& t);
void quantize_span_f16(std::span<float> v);

/// Index of the maximum element (first on ties).
std::size_t argmax(std::span<const float> v);

}  // namespace ft2
