// AVX-512F dispatch tier: 64-column GEMM tiles and a 16-wide fused store
// epilogue. Compiled with -mavx512f -ffp-contract=off (see
// src/CMakeLists.txt); without those flags this TU degrades to a stub
// returning nullptr and the dispatcher falls back to AVX2 or SSE.
//
// Same ODR and bit-exactness rules as kernels_avx2.cpp: file-local
// intrinsic code only, mul-then-add accumulation (no FMA), slow paths call
// the extern baseline-built scalar epilogue, and NaN lanes of the hardware
// f16 round-trip are masked onto the software path's canonical quiet NaN.
// Only AVX512F intrinsics are used (integer sign/payload masking goes
// through si512 casts rather than DQ float logicals).
#include "tensor/dispatch.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace ft2 {
namespace {

using Protect = KernelEpilogue::Protect;

constexpr std::size_t kTileCols = 64;

inline __m512 quantize16(__m512 v) {
  __m512 q = _mm512_cvtph_ps(
      _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  const __mmask16 unord = _mm512_cmp_ps_mask(v, v, _CMP_UNORD_Q);
  if (unord != 0) {
    const __m512i canon = _mm512_or_si512(
        _mm512_and_si512(_mm512_castps_si512(v),
                         _mm512_set1_epi32(static_cast<int>(0x80000000u))),
        _mm512_set1_epi32(0x7FC00000));
    q = _mm512_mask_mov_ps(q, unord, _mm512_castsi512_ps(canon));
  }
  return q;
}

/// 16-lane analogue of the AVX2 tier's store8 — see kernels_avx2.cpp for
/// the fast-path/dirty-spill contract.
inline void store16(__m512 acc, float* y, std::size_t flat0,
                    const KernelEpilogue* epi, EpilogueTally* tally) {
  if (epi == nullptr) {
    _mm512_storeu_ps(y, acc);
    return;
  }
  const __m512 q = epi->quantize ? quantize16(acc) : acc;
  __mmask16 dirty = 0;
  if (epi->protect != Protect::kNone) {
    const __mmask16 unord = _mm512_cmp_ps_mask(q, q, _CMP_UNORD_Q);
    dirty = unord;
    if (epi->protect == Protect::kBounds) {
      const __mmask16 oob =
          _mm512_cmp_ps_mask(q, _mm512_set1_ps(epi->hi), _CMP_GT_OQ) |
          _mm512_cmp_ps_mask(q, _mm512_set1_ps(epi->lo), _CMP_LT_OQ);
      dirty = epi->correct_nan ? static_cast<__mmask16>(oob | unord) : oob;
    }
  }
  if (dirty == 0) {
    _mm512_storeu_ps(y, q);
    return;
  }
  float lanes[16];
  _mm512_storeu_ps(lanes, acc);
  detail::epilogue_scalar_span(lanes, 16, flat0, *epi, tally);
  _mm512_storeu_ps(y, _mm512_loadu_ps(lanes));
}

void kouter_row_avx512(const float* x, const float* wt, std::size_t k,
                       const float* bias_padded, float* y, std::size_t width,
                       std::size_t flat0, const KernelEpilogue* epi,
                       EpilogueTally* tally) {
  __m512 a0 = _mm512_loadu_ps(bias_padded);
  __m512 a1 = _mm512_loadu_ps(bias_padded + 16);
  __m512 a2 = _mm512_loadu_ps(bias_padded + 32);
  __m512 a3 = _mm512_loadu_ps(bias_padded + 48);
  for (std::size_t i = 0; i < k; ++i) {
    const __m512 xi = _mm512_set1_ps(x[i]);
    const float* wr = wt + i * kTileCols;
    a0 = _mm512_add_ps(a0, _mm512_mul_ps(xi, _mm512_loadu_ps(wr)));
    a1 = _mm512_add_ps(a1, _mm512_mul_ps(xi, _mm512_loadu_ps(wr + 16)));
    a2 = _mm512_add_ps(a2, _mm512_mul_ps(xi, _mm512_loadu_ps(wr + 32)));
    a3 = _mm512_add_ps(a3, _mm512_mul_ps(xi, _mm512_loadu_ps(wr + 48)));
  }
  if (width == kTileCols) {
    store16(a0, y, flat0, epi, tally);
    store16(a1, y + 16, flat0 + 16, epi, tally);
    store16(a2, y + 32, flat0 + 32, epi, tally);
    store16(a3, y + 48, flat0 + 48, epi, tally);
    return;
  }
  float acc[kTileCols];
  _mm512_storeu_ps(acc, a0);
  _mm512_storeu_ps(acc + 16, a1);
  _mm512_storeu_ps(acc + 32, a2);
  _mm512_storeu_ps(acc + 48, a3);
  if (epi != nullptr) {
    detail::epilogue_scalar_span(acc, width, flat0, *epi, tally);
  }
  for (std::size_t j = 0; j < width; ++j) y[j] = acc[j];
}

void epilogue_span_avx512(float* v, std::size_t n, std::size_t flat0,
                          const KernelEpilogue& epi, EpilogueTally* tally) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    store16(_mm512_loadu_ps(v + i), v + i, flat0 + i, &epi, tally);
  }
  if (i < n) detail::epilogue_scalar_span(v + i, n - i, flat0 + i, epi, tally);
}

constexpr KernelOps kAvx512Ops{KernelTier::kAvx512, "avx512", kTileCols,
                               &kouter_row_avx512, &epilogue_span_avx512};

}  // namespace

namespace detail {
const KernelOps* kernel_ops_avx512() { return &kAvx512Ops; }
}  // namespace detail

}  // namespace ft2

#else  // !__AVX512F__

namespace ft2::detail {
const KernelOps* kernel_ops_avx512() { return nullptr; }
}  // namespace ft2::detail

#endif
