// Runtime CPU-feature dispatch for the GEMM/quantize micro-kernels.
//
// The k-outer GEMM kernel and the f16 quantization sweep exist in three
// tiers — SSE (the portable reference), AVX2+F16C, and AVX-512F — compiled
// as separate arch-flagged translation units (tensor/kernels_avx2.cpp,
// tensor/kernels_avx512.cpp) and selected at runtime from a cpuid probe.
// The `FT2_KERNEL` environment variable (or `ft2 --kernel`) forces a tier.
//
// Bit-exactness policy: every tier accumulates each output element as the
// same scalar chain `acc += x[i] * w[o][i]` in ascending-i order with a
// separate multiply and add per step (never FMA). Wider tiers only widen
// the column tile — which output elements are grouped into one register —
// never the per-element operation sequence, so all tiers produce results
// bit-identical to the scalar/SSE reference and no baselines need re-pinning
// per tier. The arch TUs are compiled with -ffp-contract=off as a belt.
//
// The kernels also carry an optional fused store epilogue (KernelEpilogue):
// f16-grid quantization plus the protection sweep (NaN→0, out-of-bound
// clip) applied in-register as GEMM tiles are stored, instead of as
// separate passes over the output. The epilogue's scalar reference
// implementation lives in dispatch.cpp; vector tiers fast-path the clean
// case and fall back to that exact scalar code for any lane group that
// contains a NaN or an out-of-bound value, so fused results are
// bit-identical to the hook-path quantize+range_restrict sequence.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

namespace ft2 {

enum class KernelTier : int {
  kSse = 0,     ///< portable reference (SSE2 on x86-64, scalar elsewhere)
  kAvx2 = 1,    ///< AVX2 + F16C, 32-column tiles
  kAvx512 = 2,  ///< AVX-512F, 64-column tiles
};

constexpr std::size_t kKernelTierCount = 3;

/// Fused GEMM-store epilogue request: optional f16-grid quantization
/// followed by one protection mode. Field semantics mirror the hook path
/// (quantize_span_f16 + RangeRestrictScheme::detect_and_correct) exactly —
/// the epilogue is only ever planned by a scheme that guarantees the two
/// produce bit-identical values, tallies and events.
struct KernelEpilogue {
  /// Protection applied after quantization (order matters: bounds are
  /// checked against the quantized value, as the hook path does).
  enum class Protect {
    kNone = 0,    ///< no protection work (quantize-only fusion)
    kNanOnly,     ///< invalid bounds: count/correct NaN only
    kBounds,      ///< full range restriction against [lo, hi]
    kFirstToken,  ///< FT2 first-token phase: NaN→0 always (bounds observed
                  ///< by the scheme's absorb over the finished span)
  };

  bool quantize = false;     ///< f16 round-trip first (fp16 execution)
  Protect protect = Protect::kNone;
  bool correct_nan = false;  ///< kBounds: whether NaNs are counted/zeroed
  bool detect_only = false;  ///< count violations without modifying
  float lo = 0.0f, hi = 0.0f;          ///< kBounds: scaled bounds
  float lo_sub = 0.0f, hi_sub = 0.0f;  ///< clip replacement per side
                                       ///< (ClipPolicy folded in by planner)
  bool record_events = false;  ///< collect (index, original) per clip
};

/// One out-of-bound event observed by the epilogue: flat index into the
/// dispatched span and the pre-correction (post-quantize) value — the same
/// pair the hook path's ClipObserver::on_oob receives.
struct EpilogueEvent {
  std::size_t index = 0;
  float original = 0.0f;
};

/// Per-dispatch epilogue accounting, merged across GEMM tiles. Counter
/// merges are order-insensitive integer adds; events are sorted by flat
/// index after a parallel GEMM so the order matches the hook path's
/// sequential sweep.
struct EpilogueTally {
  std::size_t nan = 0;  ///< NaNs counted (and zeroed unless detect_only)
  std::size_t oob = 0;  ///< out-of-bound values counted (clipped unless
                        ///< detect_only)
  std::vector<EpilogueEvent> events;  ///< only when epi.record_events

  void merge(EpilogueTally&& other);
  void sort_events();
};

/// One dispatch tier's kernel function table. All tiers share semantics and
/// bit-exact results; they differ in column-tile width and instruction set.
struct KernelOps {
  KernelTier tier = KernelTier::kSse;
  const char* name = "sse";
  /// Columns per packed weight tile (accumulator registers per row pass).
  std::size_t tile_cols = 16;

  /// k-outer micro-kernel: one input row `x[k]` against one packed weight
  /// tile `wt[k][tile_cols]` (zero-padded), accumulators seeded from
  /// `bias_padded[tile_cols]`. Applies `epi` (may be null) to the
  /// accumulators and stores the first `width` lanes to `y`. `flat0` is the
  /// flat index of y[0] within the dispatched span (event attribution).
  /// `tally` may be null only when `epi` is null or carries no protection.
  void (*kouter_row)(const float* x, const float* wt, std::size_t k,
                     const float* bias_padded, float* y, std::size_t width,
                     std::size_t flat0, const KernelEpilogue* epi,
                     EpilogueTally* tally) = nullptr;

  /// One-sweep epilogue over a contiguous span (the non-GEMM-fused path:
  /// single-row linears, activation outputs, quantize_span_f16). Applies
  /// `epi` in place to v[0..n); `flat0` offsets event indices.
  void (*epilogue_span)(float* v, std::size_t n, std::size_t flat0,
                        const KernelEpilogue& epi,
                        EpilogueTally* tally) = nullptr;
};

/// The currently selected tier's function table. First use probes the CPU
/// and honours `FT2_KERNEL` (sse|avx2|avx512|auto; unknown or unsupported
/// values throw ft2::Error).
const KernelOps& active_kernel_ops();
KernelTier active_kernel_tier();

/// Tier availability: compiled_in — the arch TU was built with the needed
/// flags; supported — compiled in AND the running CPU has the features.
bool kernel_tier_compiled(KernelTier tier);
bool kernel_tier_supported(KernelTier tier);
std::vector<KernelTier> supported_kernel_tiers();

/// Forces a tier (CLI --kernel, tests). Throws ft2::Error when the tier is
/// not supported on this host. PackedLinear weights snapshot the ops table
/// at pack time — repack after switching tiers.
void set_kernel_tier(KernelTier tier);
/// Parses and forces a tier by name ("sse" | "avx2" | "avx512" | "auto");
/// "auto" re-runs the default probe. Throws ft2::Error on unknown names.
void set_kernel_tier_name(std::string_view name);

const char* kernel_tier_name(KernelTier tier);
std::optional<KernelTier> parse_kernel_tier(std::string_view name);

/// Function table of a specific tier (tests/bench). Throws when
/// unsupported on this host.
const KernelOps& kernel_ops_for(KernelTier tier);

/// Global switch for the fused store epilogue (default on; `FT2_FUSED_EPILOGUE=0`
/// or the setter turn it off). Off, the engine runs the legacy two-pass
/// path (separate quantize sweep + hook-path protection) — results are
/// bit-identical either way; the switch exists for A/B tests and triage.
bool fused_epilogue_enabled();
void set_fused_epilogue_enabled(bool on);

namespace detail {

/// The scalar reference epilogue (quantize + protect, one pass). Defined in
/// dispatch.cpp — compiled with baseline flags — and shared by every tier:
/// the SSE tier uses it directly; the AVX2/AVX-512 tiers call it for lane
/// groups containing NaN/out-of-bound values and for tile tails, keeping
/// all std:: machinery out of the arch-flagged TUs.
void epilogue_scalar_span(float* v, std::size_t n, std::size_t flat0,
                          const KernelEpilogue& epi, EpilogueTally* tally);

/// Arch-TU registration points: each returns its function table, or null
/// when the TU was compiled without the matching -m flags.
const KernelOps* kernel_ops_avx2();
const KernelOps* kernel_ops_avx512();

}  // namespace detail

}  // namespace ft2
