// Continuous-batching serve engine.
//
// ServeEngine admits generation requests into a FIFO queue, runs the blocked
// prefill per request (the same run_prefill used by InferenceSession), then
// decodes all active sequences TOGETHER: each decode step stacks the B
// active sequences' current positions into one B x K * K x N GEMM per linear
// layer (TransformerLM::forward_batch), so weight traffic is amortized
// across sequences. Requests join between steps as slots free up (admission
// on completion: EOS, max_new_tokens, or max_seq).
//
// Bit-exactness contract: the engine produces, for every request, exactly
// the token stream, hook traffic (begin / per-site dispatches in execution
// order / end), sampling RNG draws, and protection statistics that a solo
// InferenceSession::generate call with the same prompt and options would
// produce — at any max_batch, admission order, or pool size. This holds
// because each request keeps its own KvCache, HookChain, sampler and logits
// (no cross-slot dataflow), prefill and sampling share the session code
// path, and forward_batch is bit-exact with per-slot forward_position.
//
// Mixed execution configs are supported: requests are grouped by
// (fp16, chunked_accum) into sub-batches within each step.
//
// Single-threaded driver: submit/step/run must be called from one thread
// (layer GEMMs still fan out over the thread pool internally).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "nn/hooks.hpp"
#include "nn/kv_cache.hpp"
#include "nn/model.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"

namespace ft2 {

class ThreadPool;

/// Engine-level knobs.
struct ServeOptions {
  std::size_t max_batch = 8;   ///< max sequences decoded per step
  ThreadPool* pool = nullptr;  ///< pool for GEMM fan-out (null = global)
  /// Pre-pack every decode-path weight matrix into k-outer GEMM tiles at
  /// engine construction (PackedDecodeWeights). Pure layout: results are
  /// bit-exact either way. Disable to observe weight mutations made after
  /// engine construction (e.g. ScopedWeightFault) in the decode GEMMs.
  bool pack_weights = true;
  /// Observability sinks. `obs.metrics` is the registry the engine
  /// publishes serve.* metrics to; nullptr selects the process default
  /// (default_metrics(): the global registry, or metrics off entirely under
  /// FT2_METRICS=0). `obs.tracer` receives serve.prefill /
  /// serve.decode_step spans; nullptr selects Tracer::global(), inert
  /// unless FT2_TRACE is set. Tests pass an isolated registry.
  ObsSinks obs;
};

using RequestId = std::uint64_t;

/// Per-request timing / size counters.
struct RequestStats {
  std::size_t prompt_tokens = 0;
  std::size_t generated_tokens = 0;
  std::size_t decode_steps = 0;  ///< batched steps this request took part in
  /// Batch slot held from admission to completion: the lowest index free at
  /// admission time (< max_batch while decoding). Slots are reused once a
  /// request finishes; trace spans tag it so the Chrome exporter can lay
  /// decode work out per slot lane.
  std::size_t slot = 0;
  double queue_ms = 0.0;         ///< submit -> admission
  double prefill_ms = 0.0;
  double decode_ms = 0.0;  ///< admission+prefill -> completion
};

/// Engine-wide counters.
///
/// Accumulation semantics: counters accumulate monotonically over the
/// ENGINE's lifetime — across every submit/step/run invocation — and are
/// never reset implicitly (a second run() continues the same tallies).
/// Call ServeEngine::reset_counters() to start a fresh accounting window;
/// the serve.* metrics published to a MetricsRegistry are independent and
/// stay monotonic regardless.
struct ServeCounters {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t decode_steps = 0;       ///< forward_batch invocations
  std::size_t decode_rows = 0;        ///< total slot-rows across steps
  std::size_t prefill_positions = 0;  ///< prompt positions run
  std::size_t generated_tokens = 0;
  std::size_t max_queue_depth = 0;
  std::size_t max_active = 0;  ///< peak concurrent decode batch

  /// Mean decode batch size across steps (0 when no step ran).
  double avg_decode_batch() const {
    return decode_steps == 0
               ? 0.0
               : static_cast<double>(decode_rows) /
                     static_cast<double>(decode_steps);
  }

  /// Zeroes every counter (the explicit start of a new accounting window).
  void reset() { *this = ServeCounters{}; }
};

/// Continuous-batching generation engine over one model.
class ServeEngine {
 public:
  explicit ServeEngine(const TransformerLM& model, ServeOptions options = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueues a generation request. The prompt is copied. Hooks can be
  /// attached via hooks(id) any time before the first step() admits the
  /// request (on_generation_begin fires at admission, like
  /// InferenceSession::generate firing at call time).
  RequestId submit(std::span<const int> prompt,
                   const GenerateOptions& options);

  /// The request's private hook chain (valid for queued, active and
  /// finished requests).
  HookChain& hooks(RequestId id);

  /// Admits queued requests into free slots (prefill + first-token
  /// sampling), then advances every active sequence by one batched decode
  /// step. Returns the number of sequences still active (0 = idle).
  std::size_t step();

  /// Runs step() until all submitted requests have finished.
  void run();

  bool finished(RequestId id) const;

  /// Result of a finished request — identical to what
  /// InferenceSession::generate would have returned.
  const GenerateResult& result(RequestId id) const;

  const RequestStats& request_stats(RequestId id) const;
  const ServeCounters& counters() const { return counters_; }

  /// Starts a fresh ServeCounters accounting window (see ServeCounters for
  /// the accumulation semantics). Does not touch per-request stats or the
  /// monotonic serve.* registry metrics.
  void reset_counters() { counters_.reset(); }

  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t active_requests() const { return active_.size(); }

  /// Aggregate K/V-cache bytes held by unfinished (queued + active)
  /// requests.
  std::size_t resident_cache_bytes() const;

 private:
  struct Request;

  void admit_pending();
  void decode_step();
  /// Applies generate()'s decode-step logic to a freshly computed logits
  /// row: sample/argmax, EOS / max_new_tokens bookkeeping. Returns false
  /// when the request finished (no further forward needed).
  bool consume_logits(Request& req);
  void finish(Request& req);
  Request& get(RequestId id);
  const Request& get(RequestId id) const;

  /// serve.* metric handles; inert when metrics are disabled.
  struct Metrics {
    Counter submitted;
    Counter completed;
    Counter generated_tokens;
    Counter prefill_positions;
    Counter decode_steps;
    Counter decode_rows;
    HistogramMetric queue_wait_ms;
    HistogramMetric prefill_ms;
    HistogramMetric decode_step_ms;
    HistogramMetric request_decode_ms;
    Gauge batch_occupancy;
  };

  const TransformerLM& model_;
  ServeOptions options_;
  Metrics metrics_;
  Tracer* tracer_ = nullptr;
  std::optional<PackedDecodeWeights> packed_;
  Workspace ws_;
  std::unordered_map<RequestId, std::unique_ptr<Request>> requests_;
  std::deque<RequestId> queue_;      ///< submitted, not yet admitted (FIFO)
  std::vector<Request*> active_;     ///< decoding, in admission order
  std::vector<bool> slot_in_use_;    ///< batch-slot occupancy (index = slot)
  ServeCounters counters_;
  RequestId next_id_ = 1;
};

}  // namespace ft2
