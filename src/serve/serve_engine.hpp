// Continuous-batching serve engine with paged KV and an SLO scheduler.
//
// ServeEngine admits generation requests through a priority/deadline
// Scheduler (serve/scheduler.hpp), runs each request's blocked prefill in
// chunks interleaved with decode steps (bounded by prefill_chunk_budget so
// a long prompt never stalls decoding requests), then decodes all active
// sequences TOGETHER: each decode step stacks the B active sequences'
// current positions into one B x K * K x N GEMM per linear layer
// (TransformerLM::forward_batch), so weight traffic is amortized across
// sequences.
//
// KV memory is paged by default: requests map fixed-size ref-counted
// blocks from a KvBlockPool as they grow (nn/kv_pool.hpp) instead of
// holding a dense max_seq allocation, so the pool — sized in bytes, like
// accelerator VRAM — bounds concurrency by actual sequence length. Common
// prompt prefixes of live hook-free requests share blocks copy-on-write
// (shared system prompts prefill once); under pool pressure the scheduler
// preempts the lowest-priority slot-holder (swap or recompute) and resumes
// it later, bit-exactly.
//
// Bit-exactness contract: the engine produces, for every request, exactly
// the token stream a solo InferenceSession::generate call with the same
// prompt and options would produce — at any max_batch, admission order,
// pool size, paged on or off, prefill budget, and across swap-preemption.
// Hook traffic (begin / per-site dispatches in execution order / end),
// sampling RNG draws and protection statistics are also identical, with
// two documented exceptions: a request that adopted a shared prefix skips
// the prompt positions it adopted (prefix sharing is therefore offered to
// hook-free requests only), and a recompute-preempted request re-fires
// prompt-position hooks during replay (recompute therefore only picks
// hook-free victims). Tokens are bit-identical in every mode.
//
// Single-threaded driver: submit/step/run/cancel must be called from one
// thread (layer GEMMs still fan out over the thread pool internally).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "nn/hooks.hpp"
#include "nn/kv_cache.hpp"
#include "nn/kv_pool.hpp"
#include "nn/model.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "serve/scheduler.hpp"

namespace ft2 {

class ThreadPool;

/// Engine-level knobs.
struct ServeOptions {
  std::size_t max_batch = 8;   ///< max sequences holding slots per step
  ThreadPool* pool = nullptr;  ///< pool for GEMM fan-out (null = global)
  /// Pre-pack every decode-path weight matrix into k-outer GEMM tiles at
  /// engine construction (PackedDecodeWeights). Pure layout: results are
  /// bit-exact either way. Disable to observe weight mutations made after
  /// engine construction (e.g. ScopedWeightFault) in the decode GEMMs.
  bool pack_weights = true;

  /// Paged KV allocation (nn/kv_pool.hpp). Off: every request owns a dense
  /// max_seq KvCache for its whole queued+active lifetime (the pre-paging
  /// engine). Results are bit-exact either way.
  bool paged = true;
  /// Rows per KV block in paged mode.
  std::size_t kv_block_rows = 16;
  /// Physical blocks in the pool. 0 = capacity parity with the dense
  /// engine: max_batch * ceil(max_seq / kv_block_rows), so the default
  /// never preempts. Must cover at least one full sequence.
  std::size_t kv_pool_blocks = 0;

  /// Queue-depth backpressure: submit() beyond this many queued requests
  /// throws ft2::Error and counts serve.rejected. 0 = unbounded.
  std::size_t max_queue_depth = 0;
  /// Max prompt positions prefetched per step() across all requests;
  /// chunks are never split, so one chunk always makes progress. 0 =
  /// unbounded (each admission prefills its whole prompt before decode —
  /// the pre-scheduler behavior).
  std::size_t prefill_chunk_budget = 0;
  /// Eviction mechanism under paged-pool pressure (see scheduler.hpp).
  PreemptMode preempt = PreemptMode::kSwap;
  /// Copy-on-write sharing of committed full-block prompt prefixes across
  /// live hook-free requests with matching exec config (shared system
  /// prompts prefill once). Requests with hooks attached never share, so
  /// hook traffic stays bit-identical to a solo run. A request that
  /// adopted a prefix reports the skipped positions in
  /// RequestStats::shared_prefix_rows (its GenerateResult::positions_run
  /// counts only positions actually computed).
  bool share_prefix = false;
  /// Max distinct registered prefix entries (LRU beyond this).
  std::size_t prefix_cache_entries = 256;

  /// Observability sinks. `obs.metrics` is the registry the engine
  /// publishes serve.* metrics to; nullptr selects the process default
  /// (default_metrics(): the global registry, or metrics off entirely under
  /// FT2_METRICS=0). `obs.tracer` receives serve.prefill /
  /// serve.decode_step spans; nullptr selects Tracer::global(), inert
  /// unless FT2_TRACE is set. Tests pass an isolated registry.
  ObsSinks obs;
};

/// Per-request timing / size counters.
struct RequestStats {
  std::size_t prompt_tokens = 0;
  std::size_t generated_tokens = 0;
  std::size_t decode_steps = 0;  ///< batched steps this request took part in
  /// Batch slot held from admission to completion: the lowest index free at
  /// admission time (< max_batch while decoding). Slots are reused once a
  /// request finishes; trace spans tag it so the Chrome exporter can lay
  /// decode work out per slot lane.
  std::size_t slot = 0;
  double queue_ms = 0.0;    ///< submit -> first admission
  double prefill_ms = 0.0;  ///< first admission -> prefill complete
  double decode_ms = 0.0;   ///< admission+prefill -> completion
  double ttft_ms = 0.0;     ///< submit -> first token emitted
  std::size_t shared_prefix_rows = 0;  ///< prompt rows adopted, not computed
  std::size_t preemptions = 0;         ///< times evicted back to the queue
};

/// Engine-wide counters.
///
/// Accumulation semantics: counters accumulate monotonically over the
/// ENGINE's lifetime — across every submit/step/run invocation — and are
/// never reset implicitly (a second run() continues the same tallies).
/// Call ServeEngine::reset_counters() to start a fresh accounting window;
/// the serve.* metrics published to a MetricsRegistry are independent and
/// stay monotonic regardless.
struct ServeCounters {
  std::size_t submitted = 0;
  std::size_t completed = 0;
  std::size_t rejected = 0;           ///< submits refused by max_queue_depth
  std::size_t cancelled = 0;
  std::size_t preemptions = 0;        ///< evictions back to the queue
  std::size_t decode_steps = 0;       ///< forward_batch invocations
  std::size_t decode_rows = 0;        ///< total slot-rows across steps
  std::size_t prefill_positions = 0;  ///< prompt positions run
  std::size_t shared_prefix_rows = 0; ///< prompt positions adopted instead
  std::size_t generated_tokens = 0;
  std::size_t max_queue_depth = 0;
  std::size_t max_active = 0;  ///< peak concurrent slot-holders

  /// Mean decode batch size across steps (0 when no step ran).
  double avg_decode_batch() const {
    return decode_steps == 0
               ? 0.0
               : static_cast<double>(decode_rows) /
                     static_cast<double>(decode_steps);
  }

  /// Zeroes every counter (the explicit start of a new accounting window).
  void reset() { *this = ServeCounters{}; }
};

/// Continuous-batching generation engine over one model.
class ServeEngine {
 public:
  explicit ServeEngine(const TransformerLM& model, ServeOptions options = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Enqueues a generation request. The prompt is copied. Hooks can be
  /// attached via hooks(id) any time before the first step() admits the
  /// request (on_generation_begin fires at admission, like
  /// InferenceSession::generate firing at call time). Throws ft2::Error
  /// when max_queue_depth > 0 and the queue is full (serve.rejected).
  RequestId submit(std::span<const int> prompt, const GenerateOptions& options,
                   const ServeSubmitOptions& sched = {});

  /// The request's private hook chain (valid for queued, active and
  /// finished requests).
  HookChain& hooks(RequestId id);

  /// Cancels a request: a queued request never runs; an in-flight request
  /// stops after the current step with the tokens generated so far and
  /// GenerateResult::cancelled set. Returns false when already finished.
  bool cancel(RequestId id);

  /// One scheduler round: runs queued admissions and up to
  /// prefill_chunk_budget prompt positions of chunked prefill, then
  /// advances every decoding sequence by one batched decode step
  /// (preempting under pool pressure). Returns the number of sequences
  /// still holding slots (0 = idle).
  std::size_t step();

  /// Runs step() until all submitted requests have finished.
  void run();

  bool finished(RequestId id) const;

  /// Result of a finished request — identical to what
  /// InferenceSession::generate would have returned (see the bit-exactness
  /// contract in the file header).
  const GenerateResult& result(RequestId id) const;

  const RequestStats& request_stats(RequestId id) const;
  const ServeCounters& counters() const { return counters_; }

  /// Starts a fresh ServeCounters accounting window (see ServeCounters for
  /// the accumulation semantics). Does not touch per-request stats or the
  /// monotonic serve.* registry metrics.
  void reset_counters() { counters_.reset(); }

  std::size_t queue_depth() const { return scheduler_.depth(); }
  std::size_t active_requests() const {
    return active_.size() + prefilling_.size();
  }

  /// K/V bytes actually resident for unfinished requests. Paged mode:
  /// distinct pool blocks mapped by live requests (a block shared by
  /// several requests counts ONCE) plus host-side swap copies of preempted
  /// requests; queued requests hold no blocks. Dense mode: the max_seq
  /// allocations of queued + active requests, as before.
  std::size_t resident_cache_bytes() const;

  /// The paged block pool (null when ServeOptions::paged is off).
  const KvBlockPool* kv_pool() const {
    return pool_storage_.has_value() ? &*pool_storage_ : nullptr;
  }

 private:
  struct Request;
  struct PrefixEntry;

  void admit_and_prefill();
  bool begin_admission(Request& req);
  std::size_t run_prefill_chunk(Request& req);
  void finish_prefill(Request& req);
  bool reserve_rows_or_evict(Request& req, std::size_t rows);
  bool preempt_one(const Request* except, const SchedEntry* limit);
  void preempt(Request& req);
  void drop_one_prefix_entry();
  void try_adopt_prefix(Request& req);
  void register_prefix(Request& req);
  void decode_step();
  /// Applies generate()'s decode-step logic to a freshly computed logits
  /// row: sample/argmax, EOS / max_new_tokens bookkeeping. Returns false
  /// when the request finished (no further forward needed).
  bool consume_logits(Request& req);
  void emit_token(Request& req, int token);
  void finish(Request& req);
  void release_slot(Request& req);
  static void erase_ptr(std::vector<Request*>& list, Request* req);
  void update_kv_gauges();
  Request& get(RequestId id);
  const Request& get(RequestId id) const;

  /// serve.* metric handles; inert when metrics are disabled.
  struct Metrics {
    Counter submitted;
    Counter completed;
    Counter rejected;
    Counter cancelled;
    Counter preemptions;
    Counter generated_tokens;
    Counter prefill_positions;
    Counter shared_prefix_rows;
    Counter decode_steps;
    Counter decode_rows;
    HistogramMetric queue_wait_ms;
    HistogramMetric prefill_ms;
    HistogramMetric decode_step_ms;
    HistogramMetric request_decode_ms;
    HistogramMetric ttft_ms;
    HistogramMetric token_gap_ms;
    Gauge batch_occupancy;
    Gauge kv_blocks_used;
    Gauge kv_blocks_free;
    Gauge kv_bytes_resident;
  };

  const TransformerLM& model_;
  ServeOptions options_;
  Metrics metrics_;
  Tracer* tracer_ = nullptr;
  std::optional<KvBlockPool> pool_storage_;  ///< paged mode only
  std::optional<PackedDecodeWeights> packed_;
  Workspace ws_;
  std::unordered_map<RequestId, std::unique_ptr<Request>> requests_;
  Scheduler scheduler_;              ///< queued requests (policy order)
  std::vector<Request*> prefilling_; ///< admitted, prompt not fully run
  std::vector<Request*> active_;     ///< decoding, in admission order
  std::vector<bool> slot_in_use_;    ///< batch-slot occupancy (index = slot)
  /// Registered shareable prefixes: digest -> entry holding block refs.
  std::unordered_map<std::uint64_t, PrefixEntry> prefix_cache_;
  std::uint64_t prefix_clock_ = 0;   ///< LRU clock for prefix_cache_
  ServeCounters counters_;
  RequestId next_id_ = 1;
  std::uint64_t next_seq_ = 1;
};

}  // namespace ft2
