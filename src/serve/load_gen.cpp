#include "serve/load_gen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace ft2 {

namespace {
using Clock = std::chrono::steady_clock;

double uniform01(Xoshiro256& rng) {
  // 53 mantissa bits -> uniform in (0, 1]; never exactly 0 so logs and
  // inverse-CDF draws below are safe.
  return (static_cast<double>(rng() >> 11) + 1.0) / 9007199254740993.0;
}

/// Bounded Pareto on [lo, hi] with tail index alpha (inverse CDF).
std::size_t pareto_len(Xoshiro256& rng, std::size_t lo, std::size_t hi,
                       double alpha) {
  if (hi <= lo) return lo;
  const double l = static_cast<double>(lo);
  const double h = static_cast<double>(hi);
  const double u = uniform01(rng);
  const double la = std::pow(l, -alpha);
  const double ha = std::pow(h, -alpha);
  const double x = std::pow(la - u * (la - ha), -1.0 / alpha);
  return std::clamp(static_cast<std::size_t>(x), lo, hi);
}
}  // namespace

std::vector<LoadRequest> build_load(const LoadSpec& spec,
                                    std::size_t vocab_size) {
  FT2_CHECK_MSG(spec.arrival_rate_hz > 0.0, "arrival_rate_hz must be > 0");
  FT2_CHECK_MSG(spec.prompt_min >= 1, "prompt_min must be >= 1");
  FT2_CHECK_MSG(vocab_size > 0, "empty vocab");
  Xoshiro256 rng(spec.seed * 0x9E3779B97F4A7C15ull + 1);

  // The shared system prompt every `shares_prefix` request opens with —
  // one fixed draw per spec/seed.
  std::vector<int> shared(spec.shared_prefix_len);
  for (int& t : shared) {
    t = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(vocab_size)));
  }

  // Square-wave modulated Poisson: alternate half-periods run at
  // factor-apart rates whose time average equals arrival_rate_hz.
  const double f = std::max(spec.burst_factor, 1.0);
  const double hi_rate = spec.arrival_rate_hz * 2.0 * f / (1.0 + f);
  const double lo_rate = hi_rate / f;

  std::vector<LoadRequest> load;
  load.reserve(spec.n_requests);
  double t = 0.0;
  for (std::size_t i = 0; i < spec.n_requests; ++i) {
    double rate = spec.arrival_rate_hz;
    if (spec.bursty && spec.burst_period_s > 0.0) {
      const double phase = std::fmod(t, spec.burst_period_s);
      rate = phase < spec.burst_period_s * 0.5 ? hi_rate : lo_rate;
    }
    t += -std::log(uniform01(rng)) / rate;

    LoadRequest req;
    req.arrival_s = t;
    const std::size_t len =
        pareto_len(rng, spec.prompt_min, spec.prompt_max, spec.prompt_alpha);
    req.shares_prefix = !shared.empty() &&
                        uniform01(rng) < spec.shared_fraction &&
                        len > shared.size();
    if (req.shares_prefix) {
      req.prompt = shared;
    }
    while (req.prompt.size() < len) {
      req.prompt.push_back(static_cast<int>(
          rng.uniform(static_cast<std::uint64_t>(vocab_size))));
    }
    req.gen.max_new_tokens = spec.max_new_tokens;
    if (uniform01(rng) < spec.interactive_fraction) {
      req.priority = spec.interactive_priority;
      req.deadline_ms = spec.interactive_deadline_ms;
    }
    load.push_back(std::move(req));
  }
  return load;
}

double load_percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 *
      static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

LoadReport run_load(ServeEngine& engine,
                    const std::vector<LoadRequest>& load) {
  struct Track {
    RequestId id = 0;
    bool accepted = false;
    double intended_s = 0.0;      ///< scheduled arrival offset
    double first_token_s = -1.0;  ///< run offset of token 0
    double last_token_s = 0.0;
    std::size_t tokens_seen = 0;
    bool out_of_order = false;
    std::vector<double> gaps_ms;
  };

  LoadReport report;
  report.offered = load.size();
  std::vector<Track> tracks(load.size());

  const Clock::time_point start = Clock::now();
  const auto elapsed_s = [&start] {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  const ServeCounters before = engine.counters();
  std::size_t next = 0;
  const auto poll_peaks = [&] {
    report.peak_active = std::max(report.peak_active,
                                  engine.active_requests());
    report.peak_queue_depth =
        std::max(report.peak_queue_depth, engine.queue_depth());
    if (engine.kv_pool() != nullptr) {
      report.peak_kv_blocks =
          std::max(report.peak_kv_blocks, engine.kv_pool()->used_blocks());
    }
  };

  while (next < load.size() || engine.active_requests() > 0 ||
         engine.queue_depth() > 0) {
    // Open loop: everything whose arrival time has passed is submitted now,
    // regardless of engine backlog.
    while (next < load.size() && load[next].arrival_s <= elapsed_s()) {
      const LoadRequest& lr = load[next];
      Track& track = tracks[next];
      track.intended_s = lr.arrival_s;
      ServeSubmitOptions sub;
      sub.priority = lr.priority;
      sub.deadline_ms = lr.deadline_ms;
      sub.on_token = [&track, &elapsed_s](RequestId, std::size_t index,
                                          int) {
        const double now_s = elapsed_s();
        if (index != track.tokens_seen) track.out_of_order = true;
        ++track.tokens_seen;
        if (index == 0) {
          track.first_token_s = now_s;
        } else {
          track.gaps_ms.push_back((now_s - track.last_token_s) * 1e3);
        }
        track.last_token_s = now_s;
      };
      try {
        track.id = engine.submit(lr.prompt, lr.gen, sub);
        track.accepted = true;
        ++report.submitted;
      } catch (const Error&) {
        ++report.rejected;  // max_queue_depth backpressure
      }
      ++next;
    }

    if (engine.active_requests() > 0 || engine.queue_depth() > 0) {
      engine.step();
      poll_peaks();
    } else if (next < load.size()) {
      // Idle until the next arrival comes due (open-loop gap).
      const double wait_s = load[next].arrival_s - elapsed_s();
      if (wait_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            std::min(wait_s, 0.001)));
      }
    }
  }
  report.wall_s = elapsed_s();

  std::vector<double> ttfts;
  std::vector<double> gaps;
  for (const Track& track : tracks) {
    if (!track.accepted) continue;
    const GenerateResult& res = engine.result(track.id);
    ++report.completed;
    report.generated_tokens += res.tokens.size();
    // Streaming integrity: every generated token must have arrived through
    // the callback, in order.
    if (track.out_of_order) ++report.dropped_tokens;
    if (track.tokens_seen < res.tokens.size()) {
      report.dropped_tokens += res.tokens.size() - track.tokens_seen;
    }
    if (track.first_token_s >= 0.0) {
      ttfts.push_back((track.first_token_s - track.intended_s) * 1e3);
    }
    gaps.insert(gaps.end(), track.gaps_ms.begin(), track.gaps_ms.end());
  }
  report.tokens_per_s =
      report.wall_s > 0.0
          ? static_cast<double>(report.generated_tokens) / report.wall_s
          : 0.0;
  report.ttft_p50_ms = load_percentile(ttfts, 50.0);
  report.ttft_p95_ms = load_percentile(ttfts, 95.0);
  report.ttft_p99_ms = load_percentile(ttfts, 99.0);
  report.gap_p50_ms = load_percentile(gaps, 50.0);
  report.gap_p99_ms = load_percentile(std::move(gaps), 99.0);
  const ServeCounters after = engine.counters();
  report.preemptions = after.preemptions - before.preemptions;
  report.shared_prefix_rows =
      after.shared_prefix_rows - before.shared_prefix_rows;
  return report;
}

}  // namespace ft2
