#include "serve/scheduler.hpp"

#include <algorithm>
#include <span>

namespace ft2 {

bool Scheduler::admit_before(const SchedEntry& a, const SchedEntry& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline_ms != b.deadline_ms) return a.deadline_ms < b.deadline_ms;
  return a.seq < b.seq;
}

bool Scheduler::evict_before(const SchedEntry& a, const SchedEntry& b) {
  // Exactly the reverse of admission order: the entry the admission policy
  // values least is the one preemption takes first.
  return admit_before(b, a);
}

bool Scheduler::erase(RequestId id) {
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].id == id) {
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

const SchedEntry* Scheduler::peek() const {
  const SchedEntry* best = nullptr;
  for (const SchedEntry& e : queue_) {
    if (best == nullptr || admit_before(e, *best)) best = &e;
  }
  return best;
}

std::optional<SchedEntry> Scheduler::pop() {
  const SchedEntry* best = peek();
  if (best == nullptr) return std::nullopt;
  SchedEntry out = *best;
  queue_.erase(queue_.begin() + (best - queue_.data()));
  return out;
}

std::optional<SchedEntry> Scheduler::pick_victim(
    std::span<const SchedEntry> candidates, const SchedEntry* limit) {
  const SchedEntry* best = nullptr;
  for (const SchedEntry& e : candidates) {
    if (limit != nullptr && !admit_before(*limit, e)) continue;
    if (best == nullptr || evict_before(e, *best)) best = &e;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace ft2
