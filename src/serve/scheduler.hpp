// SLO-aware admission scheduler for the serve engine.
//
// The ServeEngine of PR 2 admitted FIFO and ran each request's whole
// prefill at admission — a long prompt stalled every decoding request, and
// dense max_seq KvCaches meant memory, not compute, capped concurrency.
// This scheduler supplies the policy for production serving:
//
//  * priority + deadline admission — the queue drains highest priority
//    first, earliest TTFT deadline next, submission order last;
//  * chunked prefill — prefill advances in the request's own
//    prefill_chunk-sized chunks, at most prefill_chunk_budget prompt
//    positions per engine step, interleaved with decode steps so decode
//    latency stays flat under long prompts (chunk boundaries are exactly
//    the ones a solo generate would use, so hook traffic is unchanged);
//  * backpressure — submissions beyond max_queue_depth are rejected with a
//    typed ft2::Error instead of growing the queue without bound;
//  * preemption — when the paged KV pool runs dry, the lowest-priority
//    slot-holder is evicted back to the queue (swap: its K/V rows move to
//    a compact host copy and are restored verbatim on re-admission, so
//    hook traffic and tokens stay bit-identical; recompute: its rows are
//    dropped and re-prefilled, which re-fires prompt hooks — the engine
//    only picks hook-free victims in that mode);
//  * cancellation and per-token streaming callbacks.
//
// The Scheduler owns ordering decisions only; the ServeEngine owns
// execution (caches, forwards, slots) and consults it. Policy is
// deterministic: ties always break on the monotonically increasing
// submission sequence number.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <vector>

namespace ft2 {

using RequestId = std::uint64_t;

/// How the engine frees paged-KV blocks under pool pressure.
enum class PreemptMode {
  kNone,       ///< never preempt; pool exhaustion is a hard error
  kSwap,       ///< copy K/V rows out to host memory, restore verbatim later
  kRecompute,  ///< drop K/V rows, re-prefill on re-admission (hook-free
               ///< victims only: replay re-fires prompt-position hooks)
};

/// Per-request scheduling options, alongside GenerateOptions.
struct ServeSubmitOptions {
  /// Higher priority admits first and is preempted last. Equal priorities
  /// fall back to deadline, then submission order.
  int priority = 0;
  /// TTFT deadline in milliseconds after submit (admission tie-break:
  /// earliest deadline first). Infinity = no deadline.
  double deadline_ms = std::numeric_limits<double>::infinity();
  /// Streaming callback: fired once per generated token, in order, with
  /// the token's index in the final stream (0 = first token, emitted the
  /// moment prefill completes). Runs on the engine's driver thread.
  std::function<void(RequestId id, std::size_t index, int token)> on_token;
};

/// One schedulable request as the policy sees it.
struct SchedEntry {
  RequestId id = 0;
  int priority = 0;
  double deadline_ms = std::numeric_limits<double>::infinity();
  std::uint64_t seq = 0;  ///< submission sequence number (FIFO tie-break)
};

/// Deterministic admission/eviction policy over a queue of SchedEntry.
class Scheduler {
 public:
  /// True when `a` should be admitted before `b`.
  static bool admit_before(const SchedEntry& a, const SchedEntry& b);

  /// True when `a` is a better eviction victim than `b` (lower priority
  /// first, later deadline next, youngest submission last — the mirror of
  /// admission order, so a preempted request re-admits exactly where
  /// admission policy puts it).
  static bool evict_before(const SchedEntry& a, const SchedEntry& b);

  void enqueue(const SchedEntry& entry) { queue_.push_back(entry); }

  /// Removes a queued request (cancellation). False when not queued.
  bool erase(RequestId id);

  /// Pops the best admission candidate, or nullopt when empty.
  std::optional<SchedEntry> pop();

  /// Best admission candidate without removing it.
  const SchedEntry* peek() const;

  std::size_t depth() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  /// Picks the eviction victim among `candidates` (slot-holders the engine
  /// may preempt), or nullopt when none qualifies. When `limit` is set,
  /// only candidates STRICTLY worse-ordered than `limit` qualify — an
  /// admission-driven preemption must not evict someone the queue head
  /// would not outrank, or admission and eviction would cycle.
  static std::optional<SchedEntry> pick_victim(
      std::span<const SchedEntry> candidates,
      const SchedEntry* limit = nullptr);

 private:
  std::vector<SchedEntry> queue_;  ///< unordered; selection scans (small N)
};

}  // namespace ft2
