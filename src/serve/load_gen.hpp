// Synthetic production load for the serve engine.
//
// build_load draws a deterministic open-loop arrival trace — Poisson or
// bursty (square-wave modulated Poisson) arrivals, bounded-Pareto
// heavy-tail prompt lengths, an optional shared system-prompt prefix on a
// fraction of requests, and an optional interactive slice with elevated
// priority and a TTFT deadline. run_load replays the trace against a
// ServeEngine on the wall clock: requests are submitted when their arrival
// time comes due whether or not the engine has caught up (open loop, so
// backlog shows up as TTFT, not as reduced offered load), streaming
// callbacks timestamp every token, and the report carries
// TTFT/inter-token-gap percentiles measured from each request's INTENDED
// arrival time plus engine-side peaks (active requests, queue depth, KV
// blocks).
//
// Both bench/bench_serve_load.cpp and `ft2 serve-bench --load` drive this;
// the same spec always yields the same trace, so baselines are comparable
// across runs and machines (timings differ, the offered work does not).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "nn/model.hpp"
#include "serve/serve_engine.hpp"

namespace ft2 {

/// Shape of the offered load. Defaults describe a small mixed workload.
struct LoadSpec {
  std::size_t n_requests = 64;
  double arrival_rate_hz = 200.0;  ///< mean arrivals per second
  bool bursty = false;             ///< square-wave modulated Poisson
  double burst_factor = 4.0;       ///< peak-to-trough rate ratio
  double burst_period_s = 0.25;    ///< one high+low cycle

  std::size_t prompt_min = 8;   ///< bounded-Pareto prompt length floor
  std::size_t prompt_max = 96;  ///< cap (also clamped to model max_seq)
  double prompt_alpha = 1.2;    ///< tail index (smaller = heavier tail)

  double shared_fraction = 0.0;        ///< requests opening with the shared
                                       ///< system prompt
  std::size_t shared_prefix_len = 32;  ///< its length in tokens

  double interactive_fraction = 0.0;  ///< high-priority short-deadline slice
  int interactive_priority = 5;
  double interactive_deadline_ms = 50.0;

  std::size_t max_new_tokens = 16;
  std::uint64_t seed = 1;
};

/// One scheduled request of the trace.
struct LoadRequest {
  double arrival_s = 0.0;  ///< offset from the start of the run
  std::vector<int> prompt;
  GenerateOptions gen;
  int priority = 0;
  double deadline_ms = std::numeric_limits<double>::infinity();
  bool shares_prefix = false;  ///< opens with the shared system prompt
};

/// Deterministic trace for `spec` (prompt tokens drawn below `vocab_size`).
std::vector<LoadRequest> build_load(const LoadSpec& spec,
                                    std::size_t vocab_size);

/// What one run_load measured.
struct LoadReport {
  std::size_t offered = 0;    ///< requests in the trace
  std::size_t submitted = 0;  ///< accepted by submit()
  std::size_t rejected = 0;   ///< refused by max_queue_depth backpressure
  std::size_t completed = 0;
  /// Streaming-callback integrity failures: tokens missing from a stream,
  /// delivered out of order, or not matching the final result. Always 0
  /// for a correct engine.
  std::size_t dropped_tokens = 0;
  std::size_t generated_tokens = 0;
  double wall_s = 0.0;
  double tokens_per_s = 0.0;
  double ttft_p50_ms = 0.0;  ///< intended arrival -> first token
  double ttft_p95_ms = 0.0;
  double ttft_p99_ms = 0.0;
  double gap_p50_ms = 0.0;  ///< consecutive tokens of one request
  double gap_p99_ms = 0.0;
  std::size_t peak_active = 0;  ///< concurrent slot-holders observed
  std::size_t peak_queue_depth = 0;
  std::size_t peak_kv_blocks = 0;  ///< paged engines only
  std::size_t preemptions = 0;
  std::size_t shared_prefix_rows = 0;
};

/// Replays `load` against `engine` on the wall clock and runs it to
/// completion. The engine should be freshly constructed (peaks and counter
/// deltas assume no prior traffic).
LoadReport run_load(ServeEngine& engine, const std::vector<LoadRequest>& load);

/// p in [0, 100]; linear interpolation between order statistics. Returns 0
/// for an empty sample.
double load_percentile(std::vector<double> values, double p);

}  // namespace ft2
