#include "serve/serve_engine.hpp"

#include <algorithm>
#include <array>
#include <chrono>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace ft2 {

namespace {
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// FNV-1a over a token sequence plus the exec-config bits that change K/V
/// content. Collisions are harmless: lookups verify the exact tokens.
std::uint64_t prefix_digest(std::span<const int> tokens, bool fp16,
                            bool chunked_accum) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  for (const int t : tokens) mix(static_cast<std::uint64_t>(t) + 1);
  mix(fp16 ? 2 : 3);
  mix(chunked_accum ? 5 : 7);
  return h;
}
}  // namespace

/// One in-flight generation. Everything a solo InferenceSession owns lives
/// here per request — cache, hook chain, sampler, logits — so batching
/// introduces no shared mutable state between sequences.
struct ServeEngine::Request {
  enum class Phase { kQueued, kPrefilling, kDecoding, kDone };

  Request(RequestId id_in, const TransformerLM& model,
          std::span<const int> prompt_in, const GenerateOptions& options_in,
          KvCache cache_in)
      : id(id_in),
        prompt(prompt_in.begin(), prompt_in.end()),
        options(options_in),
        cache(std::move(cache_in)),
        logits(model.config().vocab_size),
        sampler(options_in.sample_seed),
        submit_time(Clock::now()) {}

  RequestId id;
  std::vector<int> prompt;
  GenerateOptions options;
  HookChain hooks;
  KvCache cache;
  std::vector<float> logits;
  Xoshiro256 sampler;
  GenerationScope scope;  ///< armed at first admission, ended at finish
  SchedEntry sched;       ///< scheduling identity (priority/deadline/seq)
  std::function<void(RequestId, std::size_t, int)> on_token;
  Phase phase = Phase::kQueued;
  std::size_t slot = 0;          ///< batch slot held while slotted
  std::size_t pos = 0;           ///< next forward position (= cache length)
  std::size_t next_prefill = 0;  ///< prompt positions fed so far
  std::size_t steps = 0;         ///< decode loop index (tokens sampled)
  int pending_token = -1;        ///< token to feed at the next batched step
  bool admitted_once = false;    ///< scope armed / admit stats recorded
  bool needs_replay = false;     ///< recompute-preempted; re-prefill on resume
  std::optional<KvCache> swapped;  ///< swap-preempted rows (compact host copy)
  bool done = false;
  GenerateResult result;
  RequestStats stats;
  Clock::time_point submit_time;
  Clock::time_point admit_time;
  Clock::time_point last_token_time;

  /// Prompt length actually run (run_prefill truncates to max_seq).
  std::size_t prefill_len(std::size_t max_seq) const {
    return std::min(prompt.size(), max_seq);
  }
};

/// One registered shareable prompt prefix: the engine holds a reference on
/// every block so the K/V rows survive the producing request.
struct ServeEngine::PrefixEntry {
  std::vector<int> tokens;  ///< exact prompt prefix (collision check)
  std::vector<KvCache::BlockId> blocks;
  bool fp16 = true;
  bool chunked_accum = false;
  std::uint64_t last_use = 0;  ///< prefix_clock_ stamp for LRU
};

void ServeEngine::erase_ptr(std::vector<Request*>& list, Request* req) {
  list.erase(std::remove(list.begin(), list.end(), req), list.end());
}

ServeEngine::ServeEngine(const TransformerLM& model, ServeOptions options)
    : model_(model),
      options_(options),
      ws_(model.config(), std::max<std::size_t>(options.max_batch, 1)) {
  FT2_CHECK_MSG(options_.max_batch >= 1, "max_batch must be at least 1");
  if (options_.paged) {
    const ModelConfig& cfg = model_.config();
    FT2_CHECK_MSG(options_.kv_block_rows >= 1, "kv_block_rows must be >= 1");
    const std::size_t per_seq =
        (cfg.max_seq + options_.kv_block_rows - 1) / options_.kv_block_rows;
    if (options_.kv_pool_blocks == 0) {
      // Capacity parity with the dense engine: every slot can hold a full
      // max_seq sequence, so the default configuration never preempts.
      options_.kv_pool_blocks = options_.max_batch * per_seq;
    }
    FT2_CHECK_MSG(options_.kv_pool_blocks >= per_seq,
                  "kv_pool_blocks " << options_.kv_pool_blocks
                                    << " cannot hold one max_seq sequence ("
                                    << per_seq << " blocks)");
    pool_storage_.emplace(cfg.n_blocks, cfg.d_model, options_.kv_pool_blocks,
                          options_.kv_block_rows);
  }
  if (options_.pack_weights) packed_.emplace(model_);
  tracer_ = options_.obs.tracer != nullptr ? options_.obs.tracer
                                           : &Tracer::global();
  MetricsRegistry* reg =
      options_.obs.metrics != nullptr ? options_.obs.metrics
                                      : default_metrics();
  if (reg != nullptr) {
    metrics_.submitted = reg->counter("serve.requests.submitted");
    metrics_.completed = reg->counter("serve.requests.completed");
    metrics_.rejected = reg->counter("serve.rejected");
    metrics_.cancelled = reg->counter("serve.cancelled");
    metrics_.preemptions = reg->counter("serve.preemptions");
    metrics_.generated_tokens = reg->counter("serve.tokens.generated");
    metrics_.prefill_positions = reg->counter("serve.prefill.positions");
    metrics_.shared_prefix_rows = reg->counter("serve.prefix.shared_rows");
    metrics_.decode_steps = reg->counter("serve.decode.steps");
    metrics_.decode_rows = reg->counter("serve.decode.rows");
    metrics_.queue_wait_ms =
        reg->histogram("serve.queue.wait_ms", latency_ms_buckets());
    metrics_.prefill_ms =
        reg->histogram("serve.prefill.latency_ms", latency_ms_buckets());
    metrics_.decode_step_ms =
        reg->histogram("serve.decode.step_ms", latency_ms_buckets());
    metrics_.request_decode_ms =
        reg->histogram("serve.request.decode_ms", latency_ms_buckets());
    metrics_.ttft_ms =
        reg->histogram("serve.request.ttft_ms", latency_ms_buckets());
    metrics_.token_gap_ms =
        reg->histogram("serve.token.gap_ms", latency_ms_buckets());
    metrics_.batch_occupancy = reg->gauge("serve.batch.occupancy");
    metrics_.kv_blocks_used = reg->gauge("serve.kv.blocks_used");
    metrics_.kv_blocks_free = reg->gauge("serve.kv.blocks_free");
    metrics_.kv_bytes_resident = reg->gauge("serve.kv.bytes_resident");
    // Which GEMM dispatch tier this engine runs on (0=sse 1=avx2 2=avx512);
    // tiers are bit-exact, so this only matters for performance triage.
    reg->gauge("serve.kernel_tier")
        .set(static_cast<double>(static_cast<int>(active_kernel_tier())));
  }
  update_kv_gauges();
}

ServeEngine::~ServeEngine() {
  // Registered prefixes hold pool block references; drop them before the
  // pool itself goes away.
  while (!prefix_cache_.empty()) drop_one_prefix_entry();
}

RequestId ServeEngine::submit(std::span<const int> prompt,
                              const GenerateOptions& options,
                              const ServeSubmitOptions& sched) {
  FT2_CHECK_MSG(!prompt.empty(), "empty prompt");
  if (options_.max_queue_depth > 0 &&
      scheduler_.depth() >= options_.max_queue_depth) {
    ++counters_.rejected;
    metrics_.rejected.inc();
    FT2_CHECK_MSG(false, "serve queue full: max_queue_depth "
                             << options_.max_queue_depth << " reached");
  }
  const RequestId id = next_id_++;
  KvCache cache = pool_storage_.has_value()
                      ? KvCache::paged(*pool_storage_, model_.config().max_seq)
                      : model_.make_cache();
  auto [it, inserted] = requests_.emplace(
      id, std::make_unique<Request>(id, model_, prompt, options,
                                    std::move(cache)));
  Request& req = *it->second;
  req.sched = SchedEntry{id, sched.priority, sched.deadline_ms, next_seq_++};
  req.on_token = sched.on_token;
  scheduler_.enqueue(req.sched);
  ++counters_.submitted;
  metrics_.submitted.inc();
  counters_.max_queue_depth =
      std::max(counters_.max_queue_depth, scheduler_.depth());
  return id;
}

HookChain& ServeEngine::hooks(RequestId id) { return get(id).hooks; }

ServeEngine::Request& ServeEngine::get(RequestId id) {
  const auto it = requests_.find(id);
  FT2_CHECK_MSG(it != requests_.end(), "unknown request id " << id);
  return *it->second;
}

const ServeEngine::Request& ServeEngine::get(RequestId id) const {
  const auto it = requests_.find(id);
  FT2_CHECK_MSG(it != requests_.end(), "unknown request id " << id);
  return *it->second;
}

bool ServeEngine::finished(RequestId id) const { return get(id).done; }

const GenerateResult& ServeEngine::result(RequestId id) const {
  const Request& req = get(id);
  FT2_CHECK_MSG(req.done, "request " << id << " has not finished");
  return req.result;
}

const RequestStats& ServeEngine::request_stats(RequestId id) const {
  return get(id).stats;
}

std::size_t ServeEngine::resident_cache_bytes() const {
  std::size_t total = 0;
  if (pool_storage_.has_value()) {
    // Distinct pool blocks mapped by unfinished requests: a block shared by
    // several requests (copy-on-write prefix sharing) counts once.
    std::vector<char> seen(pool_storage_->total_blocks(), 0);
    std::size_t distinct = 0;
    for (const auto& [id, req] : requests_) {
      if (req->done) continue;
      for (const KvCache::BlockId b : req->cache.block_table()) {
        if (!seen[b]) {
          seen[b] = 1;
          ++distinct;
        }
      }
      if (req->swapped.has_value()) total += req->swapped->memory_bytes();
    }
    total += distinct * pool_storage_->block_bytes();
    return total;
  }
  for (const auto& [id, req] : requests_) {
    if (!req->done) total += req->cache.memory_bytes();
  }
  return total;
}

void ServeEngine::update_kv_gauges() {
  if (!pool_storage_.has_value()) return;
  metrics_.kv_blocks_used.set(
      static_cast<double>(pool_storage_->used_blocks()));
  metrics_.kv_blocks_free.set(
      static_cast<double>(pool_storage_->free_blocks()));
  metrics_.kv_bytes_resident.set(static_cast<double>(
      pool_storage_->used_blocks() * pool_storage_->block_bytes()));
}

void ServeEngine::emit_token(Request& req, int token) {
  req.result.tokens.push_back(token);
  const Clock::time_point now = Clock::now();
  if (req.result.tokens.size() == 1) {
    req.stats.ttft_ms = ms_between(req.submit_time, now);
    metrics_.ttft_ms.observe(req.stats.ttft_ms);
  } else {
    metrics_.token_gap_ms.observe(ms_between(req.last_token_time, now));
  }
  req.last_token_time = now;
  if (req.on_token) req.on_token(req.id, req.result.tokens.size() - 1, token);
}

bool ServeEngine::consume_logits(Request& req) {
  // Mirrors one iteration of InferenceSession::generate's decode loop, up
  // to (but not including) the forward for the chosen token. `req.steps` is
  // the loop index; `req.sampler` draws the same per-session RNG stream a
  // solo generate would (batching never touches it).
  const GenerateOptions& o = req.options;
  const std::size_t step = req.steps++;
  const std::span<const float> logits{req.logits.data(), req.logits.size()};
  const int next =
      o.temperature > 0.0f
          ? sample_from_logits(logits, o.temperature, o.top_k, req.sampler)
          : static_cast<int>(argmax(logits));
  if (o.eos_token >= 0 && next == o.eos_token) return false;
  emit_token(req, next);
  if (step + 1 == o.max_new_tokens || req.pos >= model_.config().max_seq) {
    req.result.hit_max = true;
    return false;
  }
  req.pending_token = next;
  return true;
}

void ServeEngine::release_slot(Request& req) {
  if (req.slot < slot_in_use_.size()) slot_in_use_[req.slot] = false;
}

void ServeEngine::finish(Request& req) {
  req.scope.end();
  req.phase = Request::Phase::kDone;
  req.done = true;
  release_slot(req);
  req.stats.generated_tokens = req.result.tokens.size();
  req.stats.decode_ms = ms_between(req.admit_time, Clock::now());
  ++counters_.completed;
  counters_.generated_tokens += req.result.tokens.size();
  metrics_.completed.inc();
  metrics_.generated_tokens.inc(req.result.tokens.size());
  metrics_.request_decode_ms.observe(req.stats.decode_ms);
  // Registered prefixes hold their own block references, so dropping this
  // request's mappings never invalidates a shared prefix.
  req.cache.release_storage();
  req.swapped.reset();
}

bool ServeEngine::cancel(RequestId id) {
  Request& req = get(id);
  if (req.done) return false;
  if (req.phase == Request::Phase::kQueued) {
    scheduler_.erase(id);
  } else {
    if (req.phase == Request::Phase::kPrefilling) erase_ptr(prefilling_, &req);
    if (req.phase == Request::Phase::kDecoding) erase_ptr(active_, &req);
    release_slot(req);
  }
  req.scope.end();
  req.phase = Request::Phase::kDone;
  req.done = true;
  req.result.cancelled = true;
  req.stats.generated_tokens = req.result.tokens.size();
  req.cache.release_storage();
  req.swapped.reset();
  ++counters_.cancelled;
  metrics_.cancelled.inc();
  update_kv_gauges();
  return true;
}

void ServeEngine::drop_one_prefix_entry() {
  FT2_ASSERT(!prefix_cache_.empty());
  auto victim = prefix_cache_.begin();
  for (auto it = prefix_cache_.begin(); it != prefix_cache_.end(); ++it) {
    if (it->second.last_use < victim->second.last_use) victim = it;
  }
  if (pool_storage_.has_value()) {
    for (const KvCache::BlockId b : victim->second.blocks) {
      pool_storage_->release(b);
    }
  }
  prefix_cache_.erase(victim);
}

void ServeEngine::try_adopt_prefix(Request& req) {
  if (!options_.share_prefix || !pool_storage_.has_value()) return;
  // Shared positions skip their hook dispatches along with their compute,
  // so only hook-free requests may adopt (see the bit-exactness contract).
  if (!req.hooks.empty()) return;
  const std::size_t bs = pool_storage_->block_rows();
  const std::size_t P = req.prefill_len(model_.config().max_seq);
  if (P < 2) return;
  // Longest full-block prefix that still leaves the last prompt position to
  // compute (the final chunk must produce the first-token logits).
  for (std::size_t nb = (P - 1) / bs; nb >= 1; --nb) {
    const std::size_t rows = nb * bs;
    const std::span<const int> want{req.prompt.data(), rows};
    const std::uint64_t digest =
        prefix_digest(want, req.options.fp16, req.options.chunked_accum);
    const auto it = prefix_cache_.find(digest);
    if (it == prefix_cache_.end()) continue;
    const PrefixEntry& e = it->second;
    if (e.fp16 != req.options.fp16 ||
        e.chunked_accum != req.options.chunked_accum ||
        e.blocks.size() != nb || e.tokens.size() != rows ||
        !std::equal(e.tokens.begin(), e.tokens.end(), want.begin())) {
      continue;
    }
    req.cache.adopt_shared_prefix(e.blocks, rows);
    req.next_prefill = rows;
    req.pos = rows;
    req.stats.shared_prefix_rows = rows;
    counters_.shared_prefix_rows += rows;
    metrics_.shared_prefix_rows.inc(rows);
    it->second.last_use = ++prefix_clock_;
    return;
  }
}

void ServeEngine::register_prefix(Request& req) {
  if (!options_.share_prefix || !pool_storage_.has_value()) return;
  if (!req.hooks.empty()) return;
  const std::size_t bs = pool_storage_->block_rows();
  const std::size_t P = req.prefill_len(model_.config().max_seq);
  if (P < 2) return;
  const std::size_t nb = (P - 1) / bs;
  if (nb == 0) return;
  const std::size_t rows = nb * bs;
  const std::span<const int> tokens{req.prompt.data(), rows};
  const std::uint64_t digest =
      prefix_digest(tokens, req.options.fp16, req.options.chunked_accum);
  const auto it = prefix_cache_.find(digest);
  if (it != prefix_cache_.end()) {
    it->second.last_use = ++prefix_clock_;
    return;
  }
  while (prefix_cache_.size() >= options_.prefix_cache_entries &&
         !prefix_cache_.empty()) {
    drop_one_prefix_entry();
  }
  PrefixEntry entry;
  entry.tokens.assign(tokens.begin(), tokens.end());
  entry.blocks.assign(req.cache.block_table().begin(),
                      req.cache.block_table().begin() +
                          static_cast<std::ptrdiff_t>(nb));
  for (const KvCache::BlockId b : entry.blocks) pool_storage_->add_ref(b);
  entry.fp16 = req.options.fp16;
  entry.chunked_accum = req.options.chunked_accum;
  entry.last_use = ++prefix_clock_;
  prefix_cache_.emplace(digest, std::move(entry));
}

void ServeEngine::preempt(Request& req) {
  if (req.phase == Request::Phase::kPrefilling) erase_ptr(prefilling_, &req);
  if (req.phase == Request::Phase::kDecoding) erase_ptr(active_, &req);
  release_slot(req);
  req.phase = Request::Phase::kQueued;
  if (req.cache.length() > 0) {
    if (options_.preempt == PreemptMode::kSwap) {
      // Compact host copy of every live row; restored verbatim on resume,
      // so hooks (and the still-armed GenerationScope) never observe the
      // eviction.
      req.swapped.emplace(req.cache.prefix_copy(req.cache.length()));
    } else {
      req.needs_replay = true;
    }
  }
  req.cache.release_storage();
  scheduler_.enqueue(req.sched);
  ++req.stats.preemptions;
  ++counters_.preemptions;
  metrics_.preemptions.inc();
}

bool ServeEngine::preempt_one(const Request* except, const SchedEntry* limit) {
  std::vector<SchedEntry> candidates;
  candidates.reserve(prefilling_.size() + active_.size());
  const auto consider = [&](Request* r) {
    if (r == except) return;
    // Recompute replay re-fires prompt-position hooks, so only hook-free
    // requests are eligible victims in that mode.
    if (options_.preempt == PreemptMode::kRecompute && !r->hooks.empty()) {
      return;
    }
    candidates.push_back(r->sched);
  };
  for (Request* r : prefilling_) consider(r);
  for (Request* r : active_) consider(r);
  const std::optional<SchedEntry> victim =
      Scheduler::pick_victim(candidates, limit);
  if (!victim.has_value()) return false;
  preempt(get(victim->id));
  return true;
}

bool ServeEngine::reserve_rows_or_evict(Request& req, std::size_t rows) {
  while (!req.cache.reserve_rows(rows)) {
    // Cheapest first: registered prefixes whose only holder is the engine.
    if (!prefix_cache_.empty()) {
      drop_one_prefix_entry();
      continue;
    }
    FT2_CHECK_MSG(options_.preempt != PreemptMode::kNone,
                  "KvBlockPool exhausted (" << pool_storage_->total_blocks()
                                            << " blocks) with preemption off");
    // Evict a strictly worse-ordered slot-holder; when this request is
    // itself the worst, it yields its own slot back to the queue.
    if (!preempt_one(&req, &req.sched)) {
      preempt(req);
      return false;
    }
  }
  return true;
}

bool ServeEngine::begin_admission(Request& req) {
  // Slot and list membership first, so a self-preempting resume below can
  // unwind through the one preempt() path.
  std::size_t slot = 0;
  while (slot < slot_in_use_.size() && slot_in_use_[slot]) ++slot;
  if (slot == slot_in_use_.size()) {
    slot_in_use_.push_back(true);
  } else {
    slot_in_use_[slot] = true;
  }
  req.slot = slot;
  req.stats.slot = slot;
  req.phase = Request::Phase::kPrefilling;
  prefilling_.push_back(&req);

  if (!req.admitted_once) {
    req.admitted_once = true;
    req.admit_time = Clock::now();
    req.stats.queue_ms = ms_between(req.submit_time, req.admit_time);
    req.stats.prompt_tokens = req.prompt.size();
    metrics_.queue_wait_ms.observe(req.stats.queue_ms);
    // on_generation_begin fires exactly once per request, here; preemption
    // and resume never re-arm the scope.
    req.scope = GenerationScope(req.hooks);
    try_adopt_prefix(req);
    return true;
  }

  if (req.swapped.has_value()) {
    // Swap resume: restore the evicted rows verbatim. No forwards, no hook
    // dispatches, no budget cost — just block mapping plus a memcpy.
    const std::size_t rows = req.swapped->length();
    if (!reserve_rows_or_evict(req, rows)) return false;
    const std::size_t n_layers = model_.config().n_blocks;
    for (std::size_t pos = 0; pos < rows; ++pos) {
      for (std::size_t b = 0; b < n_layers; ++b) {
        req.cache.store(b, pos, req.swapped->key(b, pos),
                        req.swapped->value(b, pos));
      }
    }
    req.cache.advance(rows);
    req.swapped.reset();
    FT2_ASSERT(req.cache.length() == req.pos);
    return true;
  }

  if (req.needs_replay) {
    // Recompute resume: re-run every position fed before the eviction —
    // prompt positions plus already-sampled tokens (the newest sampled
    // token is still pending, not fed). Victims are hook-free, so the
    // replay's chunk boundaries and first_token_phase flag only touch
    // compute, which is bit-exact; no token is ever re-sampled.
    const std::size_t P = req.prefill_len(model_.config().max_seq);
    std::vector<int> fed(req.prompt.begin(),
                         req.prompt.begin() +
                             static_cast<std::ptrdiff_t>(req.next_prefill));
    if (req.steps > 0 && req.result.tokens.size() > 1) {
      fed.insert(fed.end(), req.result.tokens.begin(),
                 req.result.tokens.end() - 1);
    }
    FT2_ASSERT(fed.size() == req.pos);
    GenerateOptions o = req.options;
    if (o.pool == nullptr) o.pool = options_.pool;
    const ExecConfig exec{o.fp16, o.chunked_accum, o.pool};
    const std::size_t chunk = o.prefill_chunk == 0 ? P : o.prefill_chunk;
    const std::span<const int> fed_span{fed.data(), fed.size()};
    std::size_t pos = 0;
    while (pos < fed.size()) {
      const std::size_t n = std::min(chunk, fed.size() - pos);
      if (!reserve_rows_or_evict(req, n)) return false;
      if (n == 1) {
        model_.forward_position(fed[pos], pos, req.cache, req.hooks, exec,
                                /*first_token_phase=*/true, ws_,
                                {req.logits.data(), req.logits.size()});
      } else {
        model_.forward_span(fed_span.subspan(pos, n), pos, req.cache,
                            req.hooks, exec, /*first_token_phase=*/true, ws_,
                            std::span<float>{});
      }
      pos += n;
      // Replayed positions are engine work but not solo-equivalent
      // positions: result.positions_run already counted them.
      counters_.prefill_positions += n;
      metrics_.prefill_positions.inc(n);
    }
    req.needs_replay = false;
    FT2_ASSERT(req.cache.length() == req.pos);
  }
  // else: preempted before any row was stored — resume exactly like a
  // fresh prefill continuation (the scope is already armed).
  return true;
}

std::size_t ServeEngine::run_prefill_chunk(Request& req) {
  // One chunk, sized and dispatched exactly as run_prefill (nn/model.cpp)
  // would: chunks of options.prefill_chunk from position 0, width-1 chunks
  // through forward_position with a live logits span. Identical chunk
  // boundaries mean identical hook dispatch shapes, so a hooked request
  // sees the same traffic a solo generate produces no matter how the
  // prefill_chunk_budget spreads its chunks across engine steps.
  const std::size_t P = req.prefill_len(model_.config().max_seq);
  const GenerateOptions& o = req.options;
  const std::size_t chunk = o.prefill_chunk == 0 ? P : o.prefill_chunk;
  const std::size_t n = std::min(chunk, P - req.next_prefill);
  FT2_ASSERT(n > 0);
  if (!reserve_rows_or_evict(req, n)) return 0;

  TraceSpan span = tracer_->span("serve.prefill");
  if (span.active()) {
    span.tag("request", std::to_string(req.id))
        .tag("slot", std::to_string(req.slot))
        .tag("prompt_tokens", std::to_string(req.prompt.size()))
        .tag("positions", std::to_string(n));
  }
  GenerateOptions opts = o;
  if (opts.pool == nullptr) opts.pool = options_.pool;
  const ExecConfig exec{opts.fp16, opts.chunked_accum, opts.pool};
  const bool last_chunk = req.next_prefill + n == P;
  const std::span<const int> prompt{req.prompt.data(), P};
  const std::span<float> logits{req.logits.data(), req.logits.size()};
  if (n == 1) {
    model_.forward_position(prompt[req.next_prefill], req.next_prefill,
                            req.cache, req.hooks, exec,
                            /*first_token_phase=*/true, ws_, logits);
  } else {
    model_.forward_span(prompt.subspan(req.next_prefill, n), req.next_prefill,
                        req.cache, req.hooks, exec,
                        /*first_token_phase=*/true, ws_,
                        last_chunk ? logits : std::span<float>{});
  }
  req.next_prefill += n;
  req.pos += n;
  req.result.positions_run += n;
  counters_.prefill_positions += n;
  metrics_.prefill_positions.inc(n);
  return n;
}

void ServeEngine::finish_prefill(Request& req) {
  erase_ptr(prefilling_, &req);
  if (req.steps == 0) {
    req.stats.prefill_ms = ms_between(req.admit_time, Clock::now());
    metrics_.prefill_ms.observe(req.stats.prefill_ms);
    register_prefix(req);
    // max_new_tokens == 0: generate never enters the decode loop — no
    // sampling happens at all.
    if (req.options.max_new_tokens > 0 && consume_logits(req)) {
      req.phase = Request::Phase::kDecoding;
      active_.push_back(&req);
    } else {
      finish(req);
    }
    return;
  }
  // Resume of a preempted decoding request: the pending token was sampled
  // before the eviction, so it goes straight back to the decode batch.
  req.phase = Request::Phase::kDecoding;
  active_.push_back(&req);
}

void ServeEngine::admit_and_prefill() {
  const std::size_t budget = options_.prefill_chunk_budget;
  std::size_t spent = 0;
  const auto budget_left = [&] { return budget == 0 || spent < budget; };
  while (budget_left()) {
    // Best prefilling request in admission order competes with the queue
    // head: whichever the policy ranks higher gets the next slice.
    Request* best = nullptr;
    for (Request* r : prefilling_) {
      if (best == nullptr || Scheduler::admit_before(r->sched, best->sched)) {
        best = r;
      }
    }
    const SchedEntry* head = scheduler_.peek();
    const bool can_admit =
        head != nullptr &&
        active_.size() + prefilling_.size() < options_.max_batch;
    if (can_admit &&
        (best == nullptr || Scheduler::admit_before(*head, best->sched))) {
      const std::optional<SchedEntry> e = scheduler_.pop();
      Request& req = get(e->id);
      if (!begin_admission(req)) break;  // requeued under pool pressure
      if (req.next_prefill >= req.prefill_len(model_.config().max_seq)) {
        finish_prefill(req);  // resumed decoding request: nothing to prefill
      }
      counters_.max_active = std::max(counters_.max_active,
                                      active_.size() + prefilling_.size());
      continue;
    }
    if (best == nullptr) break;
    const std::size_t ran = run_prefill_chunk(*best);
    if (ran == 0) break;  // self-preempted under pool pressure
    spent += ran;
    if (best->phase == Request::Phase::kPrefilling &&
        best->next_prefill >= best->prefill_len(model_.config().max_seq)) {
      finish_prefill(*best);
    }
  }
  counters_.max_active =
      std::max(counters_.max_active, active_.size() + prefilling_.size());
}

void ServeEngine::decode_step() {
  if (active_.empty()) return;

  if (pool_storage_.has_value()) {
    // Every decoding sequence appends one K/V row this step; reserve them
    // up front so pool pressure resolves through preemption instead of
    // failing mid-forward. Work over ids: preemption edits active_.
    std::vector<RequestId> ids;
    ids.reserve(active_.size());
    for (const Request* req : active_) ids.push_back(req->id);
    for (const RequestId id : ids) {
      Request& req = get(id);
      if (req.phase != Request::Phase::kDecoding) continue;  // evicted above
      reserve_rows_or_evict(req, 1);
    }
    if (active_.empty()) return;
  }

  metrics_.batch_occupancy.set(static_cast<double>(active_.size()));
  const bool timed = metrics_.decode_step_ms.enabled();
  const Clock::time_point step_start =
      timed ? Clock::now() : Clock::time_point{};
  TraceSpan step_span = tracer_->span("serve.decode_step");
  if (step_span.active()) {
    // Parallel CSV lists let the Chrome exporter fan this one span out onto
    // every (request, slot) track it covered.
    std::string requests;
    std::string slots_csv;
    for (const Request* req : active_) {
      if (!requests.empty()) {
        requests += ',';
        slots_csv += ',';
      }
      requests += std::to_string(req->id);
      slots_csv += std::to_string(req->slot);
    }
    step_span.tag("rows", std::to_string(active_.size()))
        .tag("requests", std::move(requests))
        .tag("slots", std::move(slots_csv));
  }

  // Group active requests by execution config; each sub-batch is one
  // forward_batch call. Group order is fixed, so results stay deterministic
  // regardless of submission interleaving.
  std::array<std::vector<Request*>, 4> groups;
  for (Request* req : active_) {
    const std::size_t idx = (req->options.fp16 ? 1u : 0u) |
                            (req->options.chunked_accum ? 2u : 0u);
    groups[idx].push_back(req);
  }

  std::vector<DecodeSlot> slots;
  for (std::size_t idx = 0; idx < groups.size(); ++idx) {
    auto& group = groups[idx];
    if (group.empty()) continue;
    slots.clear();
    for (Request* req : group) {
      slots.push_back(DecodeSlot{req->pending_token, req->pos, &req->cache,
                                 &req->hooks,
                                 {req->logits.data(), req->logits.size()}});
    }
    const ExecConfig exec{(idx & 1u) != 0, (idx & 2u) != 0, options_.pool};
    model_.forward_batch(slots, exec, ws_,
                         packed_.has_value() ? &*packed_ : nullptr);
    ++counters_.decode_steps;
    counters_.decode_rows += slots.size();
    metrics_.decode_steps.inc();
    metrics_.decode_rows.inc(slots.size());
  }
  if (timed) {
    metrics_.decode_step_ms.observe(ms_between(step_start, Clock::now()));
  }

  // Post-step bookkeeping in admission order: advance positions, sample
  // from the fresh logits, retire finished sequences.
  std::vector<Request*> still_active;
  still_active.reserve(active_.size());
  for (Request* req : active_) {
    ++req->pos;
    ++req->result.positions_run;
    ++req->stats.decode_steps;
    if (consume_logits(*req)) {
      still_active.push_back(req);
    } else {
      finish(*req);
    }
  }
  active_ = std::move(still_active);
}

std::size_t ServeEngine::step() {
  admit_and_prefill();
  decode_step();
  update_kv_gauges();
  return active_.size() + prefilling_.size();
}

void ServeEngine::run() {
  while (!scheduler_.empty() || !active_.empty() || !prefilling_.empty()) {
    step();
  }
}

}  // namespace ft2
