#include "serve/serve_engine.hpp"

#include <array>
#include <chrono>

#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "tensor/ops.hpp"

namespace ft2 {

namespace {
using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}
}  // namespace

/// One in-flight generation. Everything a solo InferenceSession owns lives
/// here per request — cache, hook chain, sampler, logits — so batching
/// introduces no shared mutable state between sequences.
struct ServeEngine::Request {
  Request(RequestId id_in, const TransformerLM& model,
          std::span<const int> prompt_in, const GenerateOptions& options_in)
      : id(id_in),
        prompt(prompt_in.begin(), prompt_in.end()),
        options(options_in),
        cache(model.make_cache()),
        logits(model.config().vocab_size),
        sampler(options_in.sample_seed),
        submit_time(Clock::now()) {}

  RequestId id;
  std::vector<int> prompt;
  GenerateOptions options;
  HookChain hooks;
  KvCache cache;
  std::vector<float> logits;
  Xoshiro256 sampler;
  GenerationScope scope;   ///< armed at admission, ended at finish
  std::size_t slot = 0;    ///< batch slot held from admission to finish
  std::size_t pos = 0;     ///< next forward position (== cache length)
  std::size_t steps = 0;   ///< decode loop index (tokens sampled so far)
  int pending_token = -1;  ///< token to feed at the next batched step
  bool done = false;
  GenerateResult result;
  RequestStats stats;
  Clock::time_point submit_time;
  Clock::time_point admit_time;
};

ServeEngine::ServeEngine(const TransformerLM& model, ServeOptions options)
    : model_(model),
      options_(options),
      ws_(model.config(), std::max<std::size_t>(options.max_batch, 1)) {
  FT2_CHECK_MSG(options_.max_batch >= 1, "max_batch must be at least 1");
  if (options_.pack_weights) packed_.emplace(model_);
  tracer_ = options_.obs.tracer != nullptr ? options_.obs.tracer
                                           : &Tracer::global();
  MetricsRegistry* reg =
      options_.obs.metrics != nullptr ? options_.obs.metrics
                                      : default_metrics();
  if (reg != nullptr) {
    metrics_.submitted = reg->counter("serve.requests.submitted");
    metrics_.completed = reg->counter("serve.requests.completed");
    metrics_.generated_tokens = reg->counter("serve.tokens.generated");
    metrics_.prefill_positions = reg->counter("serve.prefill.positions");
    metrics_.decode_steps = reg->counter("serve.decode.steps");
    metrics_.decode_rows = reg->counter("serve.decode.rows");
    metrics_.queue_wait_ms =
        reg->histogram("serve.queue.wait_ms", latency_ms_buckets());
    metrics_.prefill_ms =
        reg->histogram("serve.prefill.latency_ms", latency_ms_buckets());
    metrics_.decode_step_ms =
        reg->histogram("serve.decode.step_ms", latency_ms_buckets());
    metrics_.request_decode_ms =
        reg->histogram("serve.request.decode_ms", latency_ms_buckets());
    metrics_.batch_occupancy = reg->gauge("serve.batch.occupancy");
    // Which GEMM dispatch tier this engine runs on (0=sse 1=avx2 2=avx512);
    // tiers are bit-exact, so this only matters for performance triage.
    reg->gauge("serve.kernel_tier")
        .set(static_cast<double>(static_cast<int>(active_kernel_tier())));
  }
}

ServeEngine::~ServeEngine() = default;

RequestId ServeEngine::submit(std::span<const int> prompt,
                              const GenerateOptions& options) {
  FT2_CHECK_MSG(!prompt.empty(), "empty prompt");
  const RequestId id = next_id_++;
  requests_.emplace(
      id, std::make_unique<Request>(id, model_, prompt, options));
  queue_.push_back(id);
  ++counters_.submitted;
  metrics_.submitted.inc();
  counters_.max_queue_depth =
      std::max(counters_.max_queue_depth, queue_.size());
  return id;
}

HookChain& ServeEngine::hooks(RequestId id) { return get(id).hooks; }

ServeEngine::Request& ServeEngine::get(RequestId id) {
  const auto it = requests_.find(id);
  FT2_CHECK_MSG(it != requests_.end(), "unknown request id " << id);
  return *it->second;
}

const ServeEngine::Request& ServeEngine::get(RequestId id) const {
  const auto it = requests_.find(id);
  FT2_CHECK_MSG(it != requests_.end(), "unknown request id " << id);
  return *it->second;
}

bool ServeEngine::finished(RequestId id) const { return get(id).done; }

const GenerateResult& ServeEngine::result(RequestId id) const {
  const Request& req = get(id);
  FT2_CHECK_MSG(req.done, "request " << id << " has not finished");
  return req.result;
}

const RequestStats& ServeEngine::request_stats(RequestId id) const {
  return get(id).stats;
}

std::size_t ServeEngine::resident_cache_bytes() const {
  std::size_t total = 0;
  for (const auto& [id, req] : requests_) {
    if (!req->done) total += req->cache.memory_bytes();
  }
  return total;
}

bool ServeEngine::consume_logits(Request& req) {
  // Mirrors one iteration of InferenceSession::generate's decode loop, up
  // to (but not including) the forward for the chosen token. `req.steps` is
  // the loop index; `req.sampler` draws the same per-session RNG stream a
  // solo generate would (batching never touches it).
  const GenerateOptions& o = req.options;
  const std::size_t step = req.steps++;
  const std::span<const float> logits{req.logits.data(), req.logits.size()};
  const int next =
      o.temperature > 0.0f
          ? sample_from_logits(logits, o.temperature, o.top_k, req.sampler)
          : static_cast<int>(argmax(logits));
  if (o.eos_token >= 0 && next == o.eos_token) return false;
  req.result.tokens.push_back(next);
  if (step + 1 == o.max_new_tokens || req.pos >= model_.config().max_seq) {
    req.result.hit_max = true;
    return false;
  }
  req.pending_token = next;
  return true;
}

void ServeEngine::finish(Request& req) {
  req.scope.end();
  req.done = true;
  if (req.slot < slot_in_use_.size()) slot_in_use_[req.slot] = false;
  req.stats.generated_tokens = req.result.tokens.size();
  req.stats.decode_ms = ms_between(req.admit_time, Clock::now());
  ++counters_.completed;
  counters_.generated_tokens += req.result.tokens.size();
  metrics_.completed.inc();
  metrics_.generated_tokens.inc(req.result.tokens.size());
  metrics_.request_decode_ms.observe(req.stats.decode_ms);
}

void ServeEngine::admit_pending() {
  while (!queue_.empty() && active_.size() < options_.max_batch) {
    Request& req = get(queue_.front());
    queue_.pop_front();
    req.admit_time = Clock::now();
    req.stats.queue_ms = ms_between(req.submit_time, req.admit_time);
    req.stats.prompt_tokens = req.prompt.size();
    metrics_.queue_wait_ms.observe(req.stats.queue_ms);

    // Lowest free batch slot; held until finish() releases it.
    std::size_t slot = 0;
    while (slot < slot_in_use_.size() && slot_in_use_[slot]) ++slot;
    if (slot == slot_in_use_.size()) {
      slot_in_use_.push_back(true);
    } else {
      slot_in_use_[slot] = true;
    }
    req.slot = slot;
    req.stats.slot = slot;

    TraceSpan prefill_span = tracer_->span("serve.prefill");
    if (prefill_span.active()) {
      prefill_span.tag("request", std::to_string(req.id))
          .tag("slot", std::to_string(req.slot))
          .tag("prompt_tokens", std::to_string(req.prompt.size()));
    }
    req.scope = GenerationScope(req.hooks);
    GenerateOptions opts = req.options;
    if (opts.pool == nullptr) opts.pool = options_.pool;
    req.pos = run_prefill(model_, req.prompt, opts, req.cache, req.hooks,
                          ws_, {req.logits.data(), req.logits.size()});
    req.result.positions_run = req.pos;
    counters_.prefill_positions += req.pos;
    metrics_.prefill_positions.inc(req.pos);
    req.stats.prefill_ms = ms_between(req.admit_time, Clock::now());
    metrics_.prefill_ms.observe(req.stats.prefill_ms);
    prefill_span.end();

    // max_new_tokens == 0: generate never enters the decode loop — no
    // sampling happens at all.
    if (req.options.max_new_tokens > 0 && consume_logits(req)) {
      active_.push_back(&req);
    } else {
      finish(req);
    }
  }
  counters_.max_active = std::max(counters_.max_active, active_.size());
}

void ServeEngine::decode_step() {
  if (active_.empty()) return;

  metrics_.batch_occupancy.set(static_cast<double>(active_.size()));
  const bool timed = metrics_.decode_step_ms.enabled();
  const Clock::time_point step_start = timed ? Clock::now() : Clock::time_point{};
  TraceSpan step_span = tracer_->span("serve.decode_step");
  if (step_span.active()) {
    // Parallel CSV lists let the Chrome exporter fan this one span out onto
    // every (request, slot) track it covered.
    std::string requests;
    std::string slots_csv;
    for (const Request* req : active_) {
      if (!requests.empty()) {
        requests += ',';
        slots_csv += ',';
      }
      requests += std::to_string(req->id);
      slots_csv += std::to_string(req->slot);
    }
    step_span.tag("rows", std::to_string(active_.size()))
        .tag("requests", std::move(requests))
        .tag("slots", std::move(slots_csv));
  }

  // Group active requests by execution config; each sub-batch is one
  // forward_batch call. Group order is fixed, so results stay deterministic
  // regardless of submission interleaving.
  std::array<std::vector<Request*>, 4> groups;
  for (Request* req : active_) {
    const std::size_t idx = (req->options.fp16 ? 1u : 0u) |
                            (req->options.chunked_accum ? 2u : 0u);
    groups[idx].push_back(req);
  }

  std::vector<DecodeSlot> slots;
  for (std::size_t idx = 0; idx < groups.size(); ++idx) {
    auto& group = groups[idx];
    if (group.empty()) continue;
    slots.clear();
    for (Request* req : group) {
      slots.push_back(DecodeSlot{req->pending_token, req->pos, &req->cache,
                                 &req->hooks,
                                 {req->logits.data(), req->logits.size()}});
    }
    const ExecConfig exec{(idx & 1u) != 0, (idx & 2u) != 0, options_.pool};
    model_.forward_batch(slots, exec, ws_,
                         packed_.has_value() ? &*packed_ : nullptr);
    ++counters_.decode_steps;
    counters_.decode_rows += slots.size();
    metrics_.decode_steps.inc();
    metrics_.decode_rows.inc(slots.size());
  }
  if (timed) {
    metrics_.decode_step_ms.observe(ms_between(step_start, Clock::now()));
  }

  // Post-step bookkeeping in admission order: advance positions, sample
  // from the fresh logits, retire finished sequences.
  std::vector<Request*> still_active;
  still_active.reserve(active_.size());
  for (Request* req : active_) {
    ++req->pos;
    ++req->result.positions_run;
    ++req->stats.decode_steps;
    if (consume_logits(*req)) {
      still_active.push_back(req);
    } else {
      finish(*req);
    }
  }
  active_ = std::move(still_active);
}

std::size_t ServeEngine::step() {
  admit_pending();
  decode_step();
  return active_.size();
}

void ServeEngine::run() {
  while (!queue_.empty() || !active_.empty()) step();
}

}  // namespace ft2
