#include "fi/campaign.hpp"

#include <array>
#include <chrono>
#include <limits>
#include <mutex>
#include <optional>

#include "common/thread_pool.hpp"
#include "data/matcher.hpp"
#include "fi/trace.hpp"
#include "protect/drift.hpp"
#include "serve/serve_engine.hpp"

namespace ft2 {

std::vector<int> truncate_at_eos(const std::vector<int>& tokens) {
  std::vector<int> out;
  for (int t : tokens) {
    if (t == Vocab::kEos) break;
    out.push_back(t);
  }
  return out;
}

Outcome classify_outcome(const std::vector<int>& generated,
                         const EvalInput& input) {
  const auto gen = truncate_at_eos(generated);
  const auto ref = truncate_at_eos(input.reference_tokens);
  if (gen == ref) return Outcome::kMaskedIdentical;
  const std::string text = Vocab::shared().decode(gen);
  if (contains_reference(text, input.sample.reference)) {
    return Outcome::kMaskedSemantic;
  }
  return Outcome::kSdc;
}

namespace {

std::vector<int> make_prompt(const Sample& sample) {
  std::vector<int> prompt;
  prompt.reserve(sample.prompt_tokens.size() + 1);
  prompt.push_back(Vocab::kBos);
  prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                sample.prompt_tokens.end());
  return prompt;
}

GenerateOptions fixed_length_options(std::size_t gen_tokens, ValueType vtype,
                                     bool chunked_accum = false,
                                     std::size_t prefill_chunk = 32) {
  GenerateOptions options;
  options.max_new_tokens = gen_tokens;
  options.eos_token = -1;  // fixed-length generation, as in the paper
  options.fp16 = vtype == ValueType::kF16;
  options.chunked_accum = chunked_accum;
  options.prefill_chunk = prefill_chunk;
  return options;
}

/// Buckets for campaign.prefix.reused_positions: powers of two up to 2048
/// skipped positions (prefill + fault-free decode prefix per forked trial).
std::span<const double> reused_positions_buckets() {
  static const std::vector<double> buckets = exponential_buckets(1.0, 2.0, 12);
  return buckets;
}

/// Per-trial scheme factory: every trial (and every prefix recording)
/// drives a fresh DetectionScheme instance, so scheme-private state never
/// leaks across trials and any registered scheme runs the same machinery.
using SchemeFactory = std::function<std::unique_ptr<DetectionScheme>()>;

CampaignResult run_campaign_range_impl(
    const TransformerLM& model, const std::vector<EvalInput>& inputs,
    const std::string& scheme_display, const SchemeFactory& make_scheme,
    const CampaignConfig& config, std::size_t first_trial,
    std::size_t last_trial, const TrialCallback& on_trial);

}  // namespace

std::vector<EvalInput> prepare_eval_inputs(const TransformerLM& model,
                                           const std::vector<Sample>& samples,
                                           std::size_t gen_tokens,
                                           bool only_correct,
                                           ThreadPool* pool) {
  std::vector<EvalInput> generated(samples.size());
  if (!samples.empty()) {
    ThreadPool& p = pool != nullptr ? *pool : ThreadPool::global();
    const GenerateOptions options =
        fixed_length_options(gen_tokens, ValueType::kF16);
    // One InferenceSession per contiguous chunk (≈ one per worker), so the
    // cache/workspace allocation amortizes over the chunk instead of being
    // paid per sample. Each slot is written exactly once, preserving input
    // order at any pool size.
    const std::size_t n_chunks =
        std::min(samples.size(), std::max<std::size_t>(1, p.size()));
    const std::size_t per_chunk = (samples.size() + n_chunks - 1) / n_chunks;
    p.parallel_for(0, n_chunks, [&](std::size_t c) {
      InferenceSession session(model);
      const std::size_t begin = c * per_chunk;
      const std::size_t end = std::min(samples.size(), begin + per_chunk);
      for (std::size_t i = begin; i < end; ++i) {
        EvalInput& input = generated[i];
        input.sample = samples[i];
        input.prompt = make_prompt(samples[i]);
        const auto result = session.generate(input.prompt, options);
        input.reference_tokens = result.tokens;
        const std::string text =
            Vocab::shared().decode(truncate_at_eos(result.tokens));
        input.fault_free_correct =
            contains_reference(text, samples[i].reference);
      }
    });
  }
  std::vector<EvalInput> inputs;
  inputs.reserve(generated.size());
  for (auto& input : generated) {
    if (only_correct && !input.fault_free_correct) continue;
    inputs.push_back(std::move(input));
  }
  return inputs;
}

CampaignResult run_campaign(const TransformerLM& model,
                            const std::vector<EvalInput>& inputs,
                            const SchemeSpec& scheme,
                            const BoundStore& offline_bounds,
                            const CampaignConfig& config,
                            const TrialCallback& on_trial) {
  return run_campaign_range(model, inputs, scheme, offline_bounds, config, 0,
                            inputs.size() * config.trials_per_input,
                            on_trial);
}

CampaignResult run_campaign_range(const TransformerLM& model,
                                  const std::vector<EvalInput>& inputs,
                                  const SchemeSpec& scheme,
                                  const BoundStore& offline_bounds,
                                  const CampaignConfig& config,
                                  std::size_t first_trial,
                                  std::size_t last_trial,
                                  const TrialCallback& on_trial) {
  return run_campaign_range_impl(
      model, inputs, spec_display_name(scheme),
      [&] {
        return std::make_unique<RangeRestrictScheme>(model.config(), scheme,
                                                     offline_bounds);
      },
      config, first_trial, last_trial, on_trial);
}

CampaignResult run_campaign(const TransformerLM& model,
                            const std::vector<EvalInput>& inputs,
                            const SchemeRef& scheme,
                            const BoundStore& offline_bounds,
                            const CampaignConfig& config,
                            const TrialCallback& on_trial) {
  return run_campaign_range(model, inputs, scheme, offline_bounds, config, 0,
                            inputs.size() * config.trials_per_input, on_trial);
}

CampaignResult run_campaign_range(const TransformerLM& model,
                                  const std::vector<EvalInput>& inputs,
                                  const SchemeRef& scheme,
                                  const BoundStore& offline_bounds,
                                  const CampaignConfig& config,
                                  std::size_t first_trial,
                                  std::size_t last_trial,
                                  const TrialCallback& on_trial) {
  return run_campaign_range_impl(
      model, inputs, scheme.display(),
      [&] { return scheme.instantiate(model.config(), offline_bounds); },
      config, first_trial, last_trial, on_trial);
}

namespace {

CampaignResult run_campaign_range_impl(
    const TransformerLM& model, const std::vector<EvalInput>& inputs,
    const std::string& scheme_display, const SchemeFactory& make_scheme,
    const CampaignConfig& config, std::size_t first_trial,
    std::size_t last_trial, const TrialCallback& on_trial) {
  FT2_CHECK(!inputs.empty());
  FT2_CHECK(config.faults_per_trial >= 1);
  const std::size_t total = inputs.size() * config.trials_per_input;
  FT2_CHECK_MSG(first_trial <= last_trial && last_trial <= total,
                "trial range [" << first_trial << ", " << last_trial
                                << ") outside campaign of " << total);
  const FaultSiteSpace site_space(model.config());
  std::vector<Outcome> outcomes(last_trial - first_trial,
                                Outcome::kNotInjected);
  std::mutex callback_mutex;
  ThreadPool& pool =
      config.pool != nullptr ? *config.pool : ThreadPool::global();
  const GenerateOptions trial_options =
      fixed_length_options(config.gen_tokens, config.vtype,
                           config.chunked_accum, config.prefill_chunk);

  // Prefix reuse: one fault-free recording per input in the trial range —
  // the trial-identical generation (protection hook attached, no fault)
  // with its KV rows, online bounds and per-boundary hook state captured —
  // so decode-phase trials fork from it instead of replaying the prefix.
  // The recording hook publishes NO metrics; each forked trial re-publishes
  // the skipped prefix's protect.* increments on restore, keeping registry
  // totals bit-identical to full replay. With first_token_only every fault
  // lands in the prefill and reuse never applies, so skip the recordings.
  struct PrefixRecording {
    SessionSnapshot snap;
    std::vector<ProtectionState> hook_at;  ///< per token boundary
  };
  std::vector<PrefixRecording> recordings;
  const bool reuse =
      config.prefix_reuse && !config.first_token_only && first_trial < last_trial;
  if (reuse) {
    recordings.resize(inputs.size());
    const std::size_t first_input = first_trial / config.trials_per_input;
    const std::size_t last_input =
        (last_trial - 1) / config.trials_per_input + 1;
    pool.parallel_for(first_input, last_input, [&](std::size_t i) {
      PrefixRecording& rec = recordings[i];
      ProtectionHook protection(model.config(), make_scheme(), ObsSinks{});
      protection.set_clip_capture(true);
      InferenceSession session(model);
      const HookRegistration reg = session.hooks().add(protection);
      rec.hook_at.reserve(config.gen_tokens);
      session.generate_recorded(
          inputs[i].prompt, trial_options, rec.snap,
          [&](std::size_t) { rec.hook_at.push_back(protection.capture_state()); });
    });
  }

  // campaign.* handles are resolved once here (the registry mutex is only
  // taken at registration), so trial threads touch nothing but striped
  // atomics. All handles stay inert when metrics are disabled.
  MetricsRegistry* reg =
      config.obs.metrics != nullptr ? config.obs.metrics : default_metrics();
  struct CampaignMetrics {
    Counter trials;
    std::array<Counter, 4> outcome;  ///< indexed by static_cast<int>(Outcome)
    std::array<Counter, kLayerKindCount> site;
    HistogramMetric trial_ms;
    Counter prefix_hit;   ///< trials forked from the fault-free snapshot
    Counter prefix_miss;  ///< trials that fell back to the full run
    HistogramMetric prefix_reused;  ///< positions skipped per forked trial
  } cm;
  if (reg != nullptr) {
    cm.trials = reg->counter("campaign.trials");
    for (Outcome o : {Outcome::kMaskedIdentical, Outcome::kMaskedSemantic,
                      Outcome::kSdc, Outcome::kNotInjected}) {
      cm.outcome[static_cast<std::size_t>(o)] =
          reg->counter(std::string("campaign.outcome.") + outcome_name(o));
    }
    for (std::size_t k = 0; k < kLayerKindCount; ++k) {
      cm.site[k] = reg->counter(
          std::string("campaign.site.") +
          std::string(layer_kind_name(static_cast<LayerKind>(k))));
    }
    cm.trial_ms = reg->histogram("campaign.trial_ms", latency_ms_buckets());
    if (config.prefix_reuse) {
      cm.prefix_hit = reg->counter("campaign.prefix.hit");
      cm.prefix_miss = reg->counter("campaign.prefix.miss");
      cm.prefix_reused = reg->histogram("campaign.prefix.reused_positions",
                                        reused_positions_buckets());
    }
  }

  Tracer* tracer =
      config.obs.tracer != nullptr ? config.obs.tracer : &Tracer::global();

  pool.parallel_for(first_trial, last_trial, [&](std::size_t trial) {
    using TrialClock = std::chrono::steady_clock;
    // Trials are timed for the histogram AND for TrialRecord::trial_ms;
    // the clock reads are nanoseconds against millisecond-scale trials.
    const bool timed = cm.trial_ms.enabled() || static_cast<bool>(on_trial);
    const TrialClock::time_point trial_start =
        timed ? TrialClock::now() : TrialClock::time_point{};
    const std::size_t input_idx = trial / config.trials_per_input;
    const EvalInput& input = inputs[input_idx];
    TraceSpan trial_span = tracer->span("campaign.trial");
    if (trial_span.active()) {
      trial_span.tag("trial", std::to_string(trial))
          .tag("input", std::to_string(input_idx));
    }

    PhiloxStream rng(config.seed, trial);
    std::vector<InjectorHook> injectors;
    injectors.reserve(config.faults_per_trial);
    for (std::size_t f = 0; f < config.faults_per_trial; ++f) {
      injectors.emplace_back(
          site_space.sample(input.prompt.size(), config.gen_tokens,
                            config.fault_model, config.vtype, rng,
                            config.first_token_only));
    }

    ProtectionHook protection(model.config(), make_scheme(),
                              ObsSinks{reg, nullptr});
    protection.set_clip_capture(config.capture_clips);
    // The drift monitor registers AFTER protection so it observes
    // post-correction values; it never mutates them, so everything the
    // trial reports stays bit-identical with it on or off.
    std::optional<BoundDriftMonitor> drift;
    if (config.drift_monitor) {
      drift.emplace(protection, DriftMonitorOptions{0.10, ObsSinks{reg, nullptr}});
    }
    InferenceSession session(model);
    std::vector<HookRegistration> regs;
    regs.reserve(injectors.size() + 2);
    for (auto& injector : injectors) regs.push_back(session.hooks().add(injector));
    regs.push_back(session.hooks().add(protection));
    if (drift.has_value()) regs.push_back(session.hooks().add(*drift));

    // Prefix reuse: a single-fault trial is bit-identical to the fault-free
    // recording up to its first injection position, so decode-phase trials
    // fork from the snapshot there. Prefill-phase faults (any plan inside
    // the first-token phase) replay the full run. Injection positions past
    // the last executed forward clamp to the final boundary: zero forwards
    // run, the injector never fires, and the restored hook state carries
    // the full run's detections — exactly what full replay produces.
    GenerateResult result;
    bool forked = false;
    if (reuse) {
      const PrefixRecording& rec = recordings[input_idx];
      std::size_t first_pos = std::numeric_limits<std::size_t>::max();
      for (const auto& injector : injectors) {
        first_pos = std::min(first_pos, injector.plan().position);
      }
      if (rec.snap.valid() && first_pos >= rec.snap.prompt_len) {
        const std::size_t fork_pos =
            std::min(first_pos, rec.snap.last_boundary());
        result = session.resume_from(rec.snap, fork_pos, [&] {
          protection.restore_state(
              rec.hook_at[fork_pos - rec.snap.prompt_len]);
        });
        forked = true;
        cm.prefix_hit.inc();
        cm.prefix_reused.observe(static_cast<double>(fork_pos));
      }
    }
    if (!forked) {
      result = session.generate(input.prompt, trial_options);
      if (config.prefix_reuse) cm.prefix_miss.inc();
    }
    bool fired = false;
    for (const auto& injector : injectors) fired |= injector.fired();
    const Outcome outcome = fired ? classify_outcome(result.tokens, input)
                                  : Outcome::kNotInjected;
    outcomes[trial - first_trial] = outcome;
    if (trial_span.active()) {
      trial_span.tag("outcome", outcome_name(outcome))
          .tag("fork", forked ? "hit" : "miss");
    }
    cm.trials.inc();
    cm.outcome[static_cast<std::size_t>(outcome)].inc();
    for (const auto& injector : injectors) {
      cm.site[static_cast<std::size_t>(injector.plan().site.kind)].inc();
    }
    double elapsed_ms = 0.0;
    if (timed) {
      elapsed_ms = std::chrono::duration<double, std::milli>(TrialClock::now() -
                                                             trial_start)
                       .count();
      cm.trial_ms.observe(elapsed_ms);
    }
    if (on_trial) {
      TrialRecord record;
      record.trial = trial;
      record.input_index = input_idx;
      record.plan = injectors.front().plan();
      record.outcome = outcome;
      record.detections = protection.stats().oob_corrected +
                          protection.stats().nan_corrected;
      record.generated_text =
          Vocab::shared().decode(truncate_at_eos(result.tokens));
      record.fault_model = config.fault_model;
      record.fired = fired;
      record.nan_detections = protection.stats().nan_corrected;
      record.oob_detections = protection.stats().oob_corrected;
      record.detect_position = protection.first_detect_position();
      record.injected_original = injectors.front().original_value();
      record.injected_value = injectors.front().injected_value();
      if (config.capture_clips) record.clips = protection.clip_events();
      record.scheme = scheme_display;
      record.trial_ms = elapsed_ms;
      std::lock_guard lock(callback_mutex);
      on_trial(record);
    }
  });

  CampaignResult result;
  for (Outcome o : outcomes) {
    ++result.trials;
    switch (o) {
      case Outcome::kMaskedIdentical: ++result.masked_identical; break;
      case Outcome::kMaskedSemantic: ++result.masked_semantic; break;
      case Outcome::kSdc: ++result.sdc; break;
      case Outcome::kNotInjected: ++result.not_injected; break;
    }
  }
  return result;
}

}  // namespace

CampaignResult run_campaign(const TransformerLM& model,
                            const std::vector<EvalInput>& inputs,
                            SchemeKind scheme, const BoundStore& offline_bounds,
                            const CampaignConfig& config,
                            const TrialCallback& on_trial) {
  return run_campaign(model, inputs, scheme_spec(scheme, model.config()),
                      offline_bounds, config, on_trial);
}

double fault_free_correct_fraction(const TransformerLM& model,
                                   const std::vector<EvalInput>& inputs,
                                   const SchemeSpec& scheme,
                                   const BoundStore& offline_bounds,
                                   std::size_t gen_tokens) {
  FT2_CHECK(!inputs.empty());
  // All inputs run through one continuous-batching engine: decode steps for
  // the whole batch share each weight matrix load. Bit-exact with the serial
  // per-session loop (each request keeps its own protection hook and cache),
  // so the reported fraction is identical — only faster.
  ServeEngine engine(model);
  const GenerateOptions options =
      fixed_length_options(gen_tokens, ValueType::kF16);
  std::vector<ProtectionHook> protections;
  protections.reserve(inputs.size());  // chains hold raw hook pointers
  std::vector<HookRegistration> regs;
  regs.reserve(inputs.size());
  std::vector<RequestId> ids;
  ids.reserve(inputs.size());
  for (const auto& input : inputs) {
    protections.emplace_back(model.config(), scheme, offline_bounds);
    const RequestId id = engine.submit(input.prompt, options);
    regs.push_back(engine.hooks(id).add(protections.back()));
    ids.push_back(id);
  }
  engine.run();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const std::string text = Vocab::shared().decode(
        truncate_at_eos(engine.result(ids[i]).tokens));
    if (contains_reference(text, inputs[i].sample.reference)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(inputs.size());
}

}  // namespace ft2
