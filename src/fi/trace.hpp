// Trial trace recording: per-trial CSV / JSON dumps for debugging and
// offline analysis of fault-injection campaigns.
#pragma once

#include <map>
#include <ostream>
#include <vector>

#include "common/json.hpp"
#include "fi/campaign.hpp"

namespace ft2 {

constexpr const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kMaskedIdentical: return "masked_identical";
    case Outcome::kMaskedSemantic: return "masked_semantic";
    case Outcome::kSdc: return "sdc";
    case Outcome::kNotInjected: return "not_injected";
  }
  return "unknown";
}

/// Collects TrialRecords; use `collector.callback()` as the campaign's
/// on_trial argument, then serialize.
class TraceCollector {
 public:
  TrialCallback callback() {
    return [this](const TrialRecord& r) { records_.push_back(r); };
  }

  const std::vector<TrialRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// One CSV row per trial, with a header line.
  void write_csv(std::ostream& os) const;

  /// JSON array of trial objects.
  Json to_json() const;

  /// SDC records only (the interesting ones for debugging).
  std::vector<TrialRecord> sdc_records() const;

  /// Per-layer-kind fault counts and SDC counts: which layers' faults
  /// actually caused SDCs (the raw material of Fig. 6-style analyses).
  struct LayerTally {
    std::size_t faults = 0;
    std::size_t sdc = 0;
    double sdc_rate() const {
      return faults == 0 ? 0.0
                         : static_cast<double>(sdc) /
                               static_cast<double>(faults);
    }
  };
  std::map<LayerKind, LayerTally> sdc_by_layer() const;

 private:
  std::vector<TrialRecord> records_;
};

}  // namespace ft2
