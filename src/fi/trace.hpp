// Trial trace recording: the campaign flight recorder.
//
// TrialRecords serialize to three equivalent formats — a JSON array, CSV,
// and streaming JSONL (one compact JSON object per line, written as trials
// finish so a crashed campaign still leaves a usable log). All three share
// ONE field-ordering source of truth (trial_record_fields() in trace.cpp):
// CSV columns and JSON keys are the same names in the same order, and
// every format round-trips through read_trial_records_*, so `ft2 report`
// can aggregate any of them.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "fi/campaign.hpp"

namespace ft2 {

constexpr const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kMaskedIdentical: return "masked_identical";
    case Outcome::kMaskedSemantic: return "masked_semantic";
    case Outcome::kSdc: return "sdc";
    case Outcome::kNotInjected: return "not_injected";
  }
  return "unknown";
}

/// Inverse of outcome_name (throws ft2::Error on an unknown name).
Outcome outcome_from_name(std::string_view name);

/// Inverse of fault_model_name / value_type_name (throw on unknown names).
FaultModel fault_model_from_name(std::string_view name);
ValueType value_type_from_name(std::string_view name);

/// One TrialRecord as a JSON object — keys in the shared field order.
Json trial_record_to_json(const TrialRecord& record);

/// Parses a record from a JSON object (as produced by trial_record_to_json
/// or a CSV row lifted to strings). Missing new-style keys default, so logs
/// recorded before a field existed still load.
TrialRecord trial_record_from_json(const Json& json);

/// Readers for the three serialized formats. CSV expects the header line
/// written by TraceCollector::write_csv; JSONL expects one object per line
/// (blank lines skipped, `"ft2_shard"` manifest lines ignored); the JSON
/// reader takes a parsed array document.
///
/// The JSONL reader is strict about torn tails: a final line without a
/// trailing newline is a partial write from a killed process, and it is
/// rejected with ft2::Error even when the fragment happens to parse as
/// valid JSON for a prefix of the record's fields. Use
/// scan_trial_records_jsonl to recover the intact prefix instead.
std::vector<TrialRecord> read_trial_records_csv(std::istream& is);
std::vector<TrialRecord> read_trial_records_jsonl(std::istream& is);
std::vector<TrialRecord> read_trial_records_json(const Json& array);

/// Tolerant JSONL scan for crash recovery: everything the resume path
/// needs to know about a possibly-torn shard log.
struct JsonlScan {
  std::vector<TrialRecord> records;  ///< intact records, file order
  std::vector<Json> manifests;       ///< `"ft2_shard"`-marked header lines
  /// Bytes of intact, newline-terminated content. Truncating the file to
  /// this length removes the torn tail and nothing else.
  std::size_t valid_bytes = 0;
  bool torn_tail = false;  ///< a partial trailing record was dropped
  std::string torn_line;   ///< the dropped fragment, for diagnostics
};

/// Scans a JSONL stream, splitting intact lines from a torn tail.
///
/// A torn tail is a final line missing its newline, or a final
/// newline-terminated line that fails to parse (a crash can flush the
/// newline without the whole line). Unparseable lines anywhere *before*
/// the final line are corruption, not tearing, and throw ft2::Error.
JsonlScan scan_trial_records_jsonl(std::istream& is);

/// Collects TrialRecords; use `collector.callback()` as the campaign's
/// on_trial argument, then serialize.
///
/// Bounded-memory streaming: construct with a sink stream and the
/// collector appends one JSONL line per record as it arrives (under the
/// campaign's serialized-callback lock), retaining at most `max_records`
/// in memory — a multi-million-trial campaign records everything to disk
/// while holding O(max_records) RAM. `recorded()` counts every record ever
/// seen; `records()` returns the retained prefix.
class TraceCollector {
 public:
  TraceCollector() = default;
  explicit TraceCollector(std::ostream* sink,
                          std::size_t max_records = SIZE_MAX)
      : sink_(sink), max_records_(max_records) {}

  TrialCallback callback() {
    return [this](const TrialRecord& r) { add(r); };
  }

  /// Records one trial: streams it to the sink (if any) and retains it in
  /// memory up to the cap.
  void add(const TrialRecord& record);

  const std::vector<TrialRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  /// Total records ever added (>= size() once the cap truncates).
  std::size_t recorded() const { return recorded_; }
  void clear() {
    records_.clear();
    recorded_ = 0;
  }

  /// One CSV row per trial, with a header line (column order = the shared
  /// field order).
  void write_csv(std::ostream& os) const;

  /// JSON array of trial objects (key order = the shared field order).
  Json to_json() const;

  /// One compact JSON object per line (the same lines the streaming sink
  /// receives).
  void write_jsonl(std::ostream& os) const;

  /// SDC records only (the interesting ones for debugging).
  std::vector<TrialRecord> sdc_records() const;

  /// Per-layer-kind fault counts and SDC counts: which layers' faults
  /// actually caused SDCs (the raw material of Fig. 6-style analyses).
  struct LayerTally {
    std::size_t faults = 0;
    std::size_t sdc = 0;
    double sdc_rate() const {
      return faults == 0 ? 0.0
                         : static_cast<double>(sdc) /
                               static_cast<double>(faults);
    }
  };
  std::map<LayerKind, LayerTally> sdc_by_layer() const;

 private:
  std::vector<TrialRecord> records_;
  std::ostream* sink_ = nullptr;
  std::size_t max_records_ = SIZE_MAX;
  std::size_t recorded_ = 0;
};

}  // namespace ft2
