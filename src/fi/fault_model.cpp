#include "fi/fault_model.hpp"

#include "common/check.hpp"

namespace ft2 {
namespace {

// Exponent bit ranges: FP16 bits [10,14], FP32 bits [23,30].
constexpr int kF16ExpLo = 10, kF16ExpHi = 14;
constexpr int kF32ExpLo = 23, kF32ExpHi = 30;

int total_bits(ValueType vtype) { return vtype == ValueType::kF16 ? 16 : 32; }

}  // namespace

BitFlips sample_bit_flips(FaultModel model, ValueType vtype,
                          PhiloxStream& rng) {
  BitFlips flips;
  const int nbits = total_bits(vtype);
  switch (model) {
    case FaultModel::kSingleBit:
      flips.count = 1;
      flips.bits[0] = static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nbits)));
      break;
    case FaultModel::kDoubleBit: {
      flips.count = 2;
      const int b0 =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nbits)));
      int b1 =
          static_cast<int>(rng.uniform(static_cast<std::uint64_t>(nbits - 1)));
      if (b1 >= b0) ++b1;  // distinct bits, uniform over pairs
      flips.bits[0] = b0;
      flips.bits[1] = b1;
      break;
    }
    case FaultModel::kExponentBit: {
      flips.count = 1;
      const int lo = vtype == ValueType::kF16 ? kF16ExpLo : kF32ExpLo;
      const int hi = vtype == ValueType::kF16 ? kF16ExpHi : kF32ExpHi;
      flips.bits[0] =
          lo + static_cast<int>(
                   rng.uniform(static_cast<std::uint64_t>(hi - lo + 1)));
      break;
    }
  }
  return flips;
}

float apply_bit_flips(float value, const BitFlips& flips, ValueType vtype) {
  FT2_ASSERT(flips.count >= 1 && flips.count <= 2);
  if (vtype == ValueType::kF16) {
    std::uint16_t bits = f16::from_float(value).bits();
    for (int i = 0; i < flips.count; ++i) {
      bits = static_cast<std::uint16_t>(bits ^ (1u << flips.bits[i]));
    }
    return f16::from_bits(bits).to_float();
  }
  std::uint32_t bits = f32_bits(value);
  for (int i = 0; i < flips.count; ++i) {
    bits ^= (1u << flips.bits[i]);
  }
  return f32_from_bits(bits);
}

}  // namespace ft2
