// Offline campaign forensics: aggregates recorded trial logs (CSV / JSON /
// JSONL from fi/trace.hpp) into the paper-style breakdowns without
// rerunning a single trial — `ft2 report` is the CLI front end.
//
// The headline guarantee: aggregating a campaign's recorded log reproduces
// the exact CampaignResult outcome counts the in-process run returned
// (pinned by tests/fi/report_test.cpp), so a flight-recorder file IS the
// campaign for analysis purposes.
#pragma once

#include <map>
#include <vector>

#include "common/json.hpp"
#include "common/table.hpp"
#include "fi/stats.hpp"
#include "fi/trace.hpp"

namespace ft2 {

/// Aggregated view over one recorded campaign log.
struct CampaignReport {
  /// Confidence-interval settings for every rate the report emits: `z`
  /// parameterizes the Wilson intervals, `bootstrap` the percentile
  /// resampling (fi/stats.hpp). Adjust before rendering tables/JSON; the
  /// defaults give 95% two-sided intervals reproducible from the one seed.
  struct CiConfig {
    double z = 1.959964;
    BootstrapOptions bootstrap;
  };
  CiConfig ci;

  /// Exact outcome counts, reconstructed from the per-trial records —
  /// equal to the CampaignResult of the run that produced the log.
  CampaignResult result;

  struct Tally {
    std::size_t faults = 0;    ///< trials attributed to this key
    std::size_t sdc = 0;       ///< ... that ended as SDC
    std::size_t detected = 0;  ///< ... where protection corrected something
    double sdc_rate() const {
      return faults == 0 ? 0.0
                         : static_cast<double>(sdc) /
                               static_cast<double>(faults);
    }
    double detected_rate() const {
      return faults == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(faults);
    }
  };

  /// Per protection scheme (TrialRecord::scheme). A merged multi-scheme
  /// log aggregates into one entry per scheme display name, powering the
  /// head-to-head comparison table; logs recorded before schemes were
  /// threaded into records land under the empty name.
  struct SchemeTally {
    std::size_t trials = 0;
    std::size_t sdc = 0;
    std::size_t detected = 0;
    std::size_t timed = 0;  ///< trials that carried a wall time
    double total_ms = 0.0;  ///< summed trial_ms over timed trials
    /// Detection latencies (token positions), sorted ascending.
    std::vector<double> detection_latencies;

    double sdc_rate() const {
      return trials == 0 ? 0.0
                         : static_cast<double>(sdc) /
                               static_cast<double>(trials);
    }
    double detected_rate() const {
      return trials == 0 ? 0.0
                         : static_cast<double>(detected) /
                               static_cast<double>(trials);
    }
    double mean_trial_ms() const {
      return timed == 0 ? 0.0 : total_ms / static_cast<double>(timed);
    }
    double latency_quantile(double q) const;
  };
  std::map<std::string, SchemeTally> by_scheme;

  /// Per layer kind (paper Fig. 13's per-layer axis).
  std::map<LayerKind, Tally> by_layer;
  /// fault model -> layer kind -> bit position (a 2-bit trial counts
  /// toward each of its flipped bits).
  std::map<FaultModel, std::map<LayerKind, std::map<int, Tally>>>
      by_model_layer_bit;
  /// Detection latencies in token positions (detect_position -
  /// plan.position) for fired trials whose protection detected at or after
  /// the injection position. Sorted ascending.
  std::vector<double> detection_latencies;

  /// Exact order statistic over detection_latencies (0 when empty).
  double latency_quantile(double q) const;

  /// Outcome counts + rate per outcome, each with Wilson and bootstrap
  /// 95% intervals on the rate.
  Table outcome_table() const;
  /// Per-layer-kind faults / SDC / detection rates, with Wilson +
  /// bootstrap intervals on the SDC rate.
  Table layer_table() const;
  /// SDC rate by fault model x layer kind x bit position.
  Table layer_bit_table() const;
  /// Detection latency percentiles (p50 / p95 / p99, count, max).
  Table latency_table() const;
  /// Head-to-head scheme comparison: SDC rate (with Wilson + bootstrap
  /// intervals) and reduction vs the "none" baseline, detection rate
  /// (Wilson interval), detection-latency percentiles, and mean
  /// trial wall time with its overhead vs "none". Reduction/overhead cells
  /// show "-" when the log carries no "none" rows (or no timing).
  Table scheme_table() const;

  /// Everything above as one JSON document.
  Json to_json() const;
};

/// Builds the report from loaded records.
CampaignReport aggregate_trial_records(
    const std::vector<TrialRecord>& records);

/// Loads a recorded log by format sniffing: files ending in .csv parse as
/// CSV, anything else parses as JSON when the first non-space byte is '['
/// and as JSONL otherwise.
std::vector<TrialRecord> load_trial_records(const std::string& path);

}  // namespace ft2
