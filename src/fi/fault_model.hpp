// Fault models: bit flips in the floating-point encoding of neuron values.
//
// Three models from the paper (§2.2), each applied to either the FP16 or
// FP32 encoding of a linear-layer output neuron:
//  * kSingleBit   — one uniformly random bit flip;
//  * kDoubleBit   — two distinct uniformly random bit flips;
//  * kExponentBit — one flip uniformly within the exponent bits (the most
//                   aggressive model: large magnitude changes and NaN/inf).
#pragma once

#include <array>
#include <string>

#include "common/rng.hpp"
#include "numeric/f16.hpp"

namespace ft2 {

enum class FaultModel { kSingleBit, kDoubleBit, kExponentBit };

enum class ValueType { kF16, kF32 };

constexpr const char* fault_model_name(FaultModel m) {
  switch (m) {
    case FaultModel::kSingleBit: return "1-bit";
    case FaultModel::kDoubleBit: return "2-bit";
    case FaultModel::kExponentBit: return "EXP";
  }
  return "unknown";
}

constexpr const char* value_type_name(ValueType v) {
  return v == ValueType::kF16 ? "fp16" : "fp32";
}

inline const std::array<FaultModel, 3>& all_fault_models() {
  static const std::array<FaultModel, 3> models = {
      FaultModel::kSingleBit, FaultModel::kDoubleBit, FaultModel::kExponentBit};
  return models;
}

/// A concrete set of bit positions to flip (sampled once per trial so the
/// whole trial is reproducible from its Philox stream).
struct BitFlips {
  std::array<int, 2> bits{};
  int count = 0;
};

/// Samples the bit positions for `model` on a `vtype` encoding.
BitFlips sample_bit_flips(FaultModel model, ValueType vtype,
                          PhiloxStream& rng);

/// Applies `flips` to the encoding of `value` and returns the faulty value.
/// For kF16 the value is first quantized onto the FP16 grid (it already is
/// on the FP16 path of the engine; quantization is then a no-op).
float apply_bit_flips(float value, const BitFlips& flips, ValueType vtype);

}  // namespace ft2
