#include "fi/shard.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ft2 {
namespace {

const Json& manifest_field(const Json& json, const char* key) {
  const Json* value = json.find(key);
  FT2_CHECK_MSG(value != nullptr, "shard manifest missing key '" << key << "'");
  return *value;
}

std::size_t manifest_size(const Json& json, const char* key) {
  return static_cast<std::size_t>(manifest_field(json, key).as_double());
}

void bump_outcome(CampaignResult& result, Outcome outcome) {
  ++result.trials;
  switch (outcome) {
    case Outcome::kMaskedIdentical: ++result.masked_identical; break;
    case Outcome::kMaskedSemantic: ++result.masked_semantic; break;
    case Outcome::kSdc: ++result.sdc; break;
    case Outcome::kNotInjected: ++result.not_injected; break;
  }
}

}  // namespace

Json ShardManifest::to_json() const {
  Json json = Json::object();
  json["ft2_shard"] = Json(version);
  json["model"] = Json(model);
  json["model_digest"] = Json(model_digest);
  json["dataset"] = Json(dataset);
  json["scheme"] = Json(scheme);
  json["fault_model"] = Json(fault_model);
  json["vtype"] = Json(vtype);
  // The seed is a full 64-bit value; JSON numbers are doubles, so it rides
  // as a decimal string to survive the round trip exactly.
  json["campaign_seed"] = Json(std::to_string(campaign_seed));
  json["trials_per_input"] = Json(trials_per_input);
  json["gen_tokens"] = Json(gen_tokens);
  json["faults_per_trial"] = Json(faults_per_trial);
  json["n_inputs"] = Json(n_inputs);
  json["total_trials"] = Json(total_trials);
  json["shard_index"] = Json(shard_index);
  json["shard_count"] = Json(shard_count);
  json["first_trial"] = Json(first_trial);
  json["last_trial"] = Json(last_trial);
  return json;
}

ShardManifest ShardManifest::from_json(const Json& json) {
  ShardManifest m;
  m.version = static_cast<int>(manifest_field(json, "ft2_shard").as_double());
  m.model = manifest_field(json, "model").as_string();
  m.model_digest = manifest_field(json, "model_digest").as_string();
  m.dataset = manifest_field(json, "dataset").as_string();
  m.scheme = manifest_field(json, "scheme").as_string();
  m.fault_model = manifest_field(json, "fault_model").as_string();
  m.vtype = manifest_field(json, "vtype").as_string();
  m.campaign_seed = std::strtoull(
      manifest_field(json, "campaign_seed").as_string().c_str(), nullptr, 10);
  m.trials_per_input = manifest_size(json, "trials_per_input");
  m.gen_tokens = manifest_size(json, "gen_tokens");
  m.faults_per_trial = manifest_size(json, "faults_per_trial");
  m.n_inputs = manifest_size(json, "n_inputs");
  m.total_trials = manifest_size(json, "total_trials");
  m.shard_index = manifest_size(json, "shard_index");
  m.shard_count = manifest_size(json, "shard_count");
  m.first_trial = manifest_size(json, "first_trial");
  m.last_trial = manifest_size(json, "last_trial");
  return m;
}

void ShardManifest::check_compatible(const ShardManifest& other,
                                     bool same_shard) const {
  std::string mismatches;
  const auto differ = [&mismatches](const char* field, const auto& a,
                                    const auto& b) {
    if (a == b) return;
    if (!mismatches.empty()) mismatches += ", ";
    mismatches += field;
  };
  differ("model", model, other.model);
  differ("model_digest", model_digest, other.model_digest);
  differ("dataset", dataset, other.dataset);
  differ("scheme", scheme, other.scheme);
  differ("fault_model", fault_model, other.fault_model);
  differ("vtype", vtype, other.vtype);
  differ("campaign_seed", campaign_seed, other.campaign_seed);
  differ("trials_per_input", trials_per_input, other.trials_per_input);
  differ("gen_tokens", gen_tokens, other.gen_tokens);
  differ("faults_per_trial", faults_per_trial, other.faults_per_trial);
  differ("n_inputs", n_inputs, other.n_inputs);
  differ("total_trials", total_trials, other.total_trials);
  if (same_shard) {
    differ("shard_index", shard_index, other.shard_index);
    differ("shard_count", shard_count, other.shard_count);
    differ("first_trial", first_trial, other.first_trial);
    differ("last_trial", last_trial, other.last_trial);
  }
  FT2_CHECK_MSG(mismatches.empty(),
                "shard manifest mismatch (" << mismatches
                                            << ") — refusing to mix campaigns");
}

std::vector<TrialRange> partition_trials(std::size_t total,
                                         std::size_t shards) {
  FT2_CHECK_MSG(shards > 0, "partition_trials: zero shards");
  std::vector<TrialRange> ranges(shards);
  const std::size_t base = total / shards;
  const std::size_t extra = total % shards;
  std::size_t start = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    ranges[i] = {start, start + size};
    start += size;
  }
  return ranges;
}

std::string shard_log_path(const std::string& dir, std::size_t index,
                           std::size_t count) {
  return dir + "/shard-" + std::to_string(index) + "-of-" +
         std::to_string(count) + ".jsonl";
}

ShardScan scan_shard_log(const std::string& path) {
  ShardScan out;
  std::ifstream is(path, std::ios::binary);
  if (!is) return out;  // missing file = fresh shard
  JsonlScan scan = scan_trial_records_jsonl(is);
  out.torn_tail = scan.torn_tail;
  out.valid_bytes = scan.valid_bytes;
  if (scan.manifests.empty()) {
    // A shard killed while writing its very first line leaves only a torn
    // manifest; that is a fresh shard, not an error. Records without any
    // manifest, though, mean this is not a shard log at all.
    FT2_CHECK_MSG(scan.records.empty(),
                  "shard log '" << path << "' has records but no manifest");
    out.valid_bytes = 0;
    return out;
  }
  FT2_CHECK_MSG(scan.manifests.size() == 1,
                "shard log '" << path << "' has " << scan.manifests.size()
                              << " manifest lines (expected 1)");
  out.has_manifest = true;
  out.manifest = ShardManifest::from_json(scan.manifests.front());
  out.records = std::move(scan.records);
  // The shard writer flushes in trial order, so an intact log is a
  // contiguous prefix of the shard's range. Anything else is corruption a
  // resume must not paper over.
  const std::size_t range =
      out.manifest.last_trial - out.manifest.first_trial;
  FT2_CHECK_MSG(out.records.size() <= range,
                "shard log '" << path << "' holds " << out.records.size()
                              << " records for a " << range << "-trial range");
  for (std::size_t i = 0; i < out.records.size(); ++i) {
    const std::size_t expect = out.manifest.first_trial + i;
    FT2_CHECK_MSG(out.records[i].trial == expect,
                  "shard log '" << path << "' out of order: record " << i
                                << " is trial " << out.records[i].trial
                                << ", expected " << expect);
  }
  out.resume_from = out.manifest.first_trial + out.records.size();
  return out;
}

ShardRunResult run_campaign_shard(const TransformerLM& model,
                                  const std::vector<EvalInput>& inputs,
                                  const SchemeRef& scheme,
                                  const BoundStore& offline_bounds,
                                  const CampaignConfig& config,
                                  const ShardManifest& manifest,
                                  const std::string& path, bool resume) {
  FT2_CHECK_MSG(manifest.first_trial <= manifest.last_trial &&
                    manifest.last_trial <=
                        inputs.size() * config.trials_per_input,
                "shard range [" << manifest.first_trial << ", "
                                << manifest.last_trial
                                << ") exceeds the campaign trial space");
  ShardRunResult out;
  std::vector<TrialRecord> recovered;
  bool fresh = true;
  if (resume) {
    ShardScan scan = scan_shard_log(path);
    if (scan.has_manifest) {
      manifest.check_compatible(scan.manifest, /*same_shard=*/true);
      recovered = std::move(scan.records);
      out.torn_tail_recovered = scan.torn_tail;
      if (scan.torn_tail) {
        std::filesystem::resize_file(path, scan.valid_bytes);
      }
      fresh = false;
    }
  }

  MetricsRegistry* metrics =
      config.obs.metrics != nullptr ? config.obs.metrics : default_metrics();
  Tracer* tracer =
      config.obs.tracer != nullptr ? config.obs.tracer : &Tracer::global();
  Counter resumed_counter = metrics->counter("campaign.shard.resumed");
  Counter executed_counter = metrics->counter("campaign.shard.executed");
  Counter torn_counter = metrics->counter("campaign.shard.torn_tail");
  TraceSpan span = tracer->span("campaign.shard");
  span.tag("shard", std::to_string(manifest.shard_index))
      .tag("shards", std::to_string(manifest.shard_count))
      .tag("first", std::to_string(manifest.first_trial))
      .tag("last", std::to_string(manifest.last_trial));

  std::ofstream os;
  if (fresh) {
    os.open(path, std::ios::binary | std::ios::trunc);
    FT2_CHECK_MSG(os, "cannot open shard log '" << path << "' for writing");
    manifest.to_json().write(os, -1);
    os << '\n';
    os.flush();
  } else {
    os.open(path, std::ios::binary | std::ios::app);
    FT2_CHECK_MSG(os, "cannot reopen shard log '" << path << "' to resume");
  }

  out.resumed = recovered.size();
  if (out.resumed > 0) resumed_counter.inc(out.resumed);
  if (out.torn_tail_recovered) torn_counter.inc();
  for (const TrialRecord& r : recovered) bump_outcome(out.result, r.outcome);

  const std::size_t resume_from = manifest.first_trial + recovered.size();
  recovered.clear();
  if (resume_from < manifest.last_trial) {
    // Trials may finish out of order under a thread pool; buffering and
    // flushing in trial order keeps the log's intact prefix contiguous,
    // which is what makes the resume scan trivial. The campaign serializes
    // callback invocations, so no extra lock is needed here.
    std::map<std::size_t, TrialRecord> pending;
    std::size_t next = resume_from;
    const TrialCallback writer = [&](const TrialRecord& record) {
      pending.emplace(record.trial, record);
      while (!pending.empty() && pending.begin()->first == next) {
        trial_record_to_json(pending.begin()->second).write(os, -1);
        os << '\n';
        os.flush();
        pending.erase(pending.begin());
        ++next;
      }
    };
    const CampaignResult ran =
        run_campaign_range(model, inputs, scheme, offline_bounds, config,
                           resume_from, manifest.last_trial, writer);
    FT2_CHECK_MSG(pending.empty() && next == manifest.last_trial,
                  "shard writer stalled at trial " << next << " of ["
                                                   << manifest.first_trial
                                                   << ", "
                                                   << manifest.last_trial
                                                   << ")");
    out.executed = ran.trials;
    executed_counter.inc(ran.trials);
    out.result.merge(ran);
  }
  span.tag("resumed", std::to_string(out.resumed))
      .tag("executed", std::to_string(out.executed));
  return out;
}

ShardMerge merge_shard_logs(const std::vector<std::string>& paths) {
  FT2_CHECK_MSG(!paths.empty(), "merge_shard_logs: no shard logs given");
  ShardMerge merge;
  for (const std::string& path : paths) {
    ShardScan scan = scan_shard_log(path);
    FT2_CHECK_MSG(scan.has_manifest,
                  "'" << path << "' is not a shard log (no manifest line)");
    if (!merge.manifests.empty()) {
      merge.manifests.front().check_compatible(scan.manifest,
                                               /*same_shard=*/false);
    }
    if (scan.torn_tail) ++merge.torn_tails;
    merge.manifests.push_back(std::move(scan.manifest));
    for (TrialRecord& r : scan.records) merge.records.push_back(std::move(r));
  }
  merge.total_trials = merge.manifests.front().total_trials;
  std::stable_sort(merge.records.begin(), merge.records.end(),
                   [](const TrialRecord& a, const TrialRecord& b) {
                     return a.trial < b.trial;
                   });
  std::size_t next = 0;
  std::size_t prev = SIZE_MAX;
  for (const TrialRecord& r : merge.records) {
    if (r.trial == prev) {
      ++merge.duplicate_trials;
      continue;
    }
    if (r.trial > next) merge.gaps.push_back({next, r.trial});
    prev = r.trial;
    next = r.trial + 1;
  }
  if (next < merge.total_trials) {
    merge.gaps.push_back({next, merge.total_trials});
  }
  return merge;
}

}  // namespace ft2
