#include "fi/shard.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ft2 {
namespace {

const Json& manifest_field(const Json& json, const char* key) {
  const Json* value = json.find(key);
  FT2_CHECK_MSG(value != nullptr, "shard manifest missing key '" << key << "'");
  return *value;
}

std::size_t manifest_size(const Json& json, const char* key) {
  return static_cast<std::size_t>(manifest_field(json, key).as_double());
}

void bump_outcome(CampaignResult& result, Outcome outcome) {
  ++result.trials;
  switch (outcome) {
    case Outcome::kMaskedIdentical: ++result.masked_identical; break;
    case Outcome::kMaskedSemantic: ++result.masked_semantic; break;
    case Outcome::kSdc: ++result.sdc; break;
    case Outcome::kNotInjected: ++result.not_injected; break;
  }
}

}  // namespace

Json ShardManifest::to_json() const {
  Json json = Json::object();
  json["ft2_shard"] = Json(version);
  json["model"] = Json(model);
  json["model_digest"] = Json(model_digest);
  json["dataset"] = Json(dataset);
  json["scheme"] = Json(scheme);
  json["fault_model"] = Json(fault_model);
  json["vtype"] = Json(vtype);
  // The seed is a full 64-bit value; JSON numbers are doubles, so it rides
  // as a decimal string to survive the round trip exactly.
  json["campaign_seed"] = Json(std::to_string(campaign_seed));
  json["trials_per_input"] = Json(trials_per_input);
  json["gen_tokens"] = Json(gen_tokens);
  json["faults_per_trial"] = Json(faults_per_trial);
  json["n_inputs"] = Json(n_inputs);
  json["total_trials"] = Json(total_trials);
  json["shard_index"] = Json(shard_index);
  json["shard_count"] = Json(shard_count);
  json["first_trial"] = Json(first_trial);
  json["last_trial"] = Json(last_trial);
  return json;
}

ShardManifest ShardManifest::from_json(const Json& json) {
  ShardManifest m;
  m.version = static_cast<int>(manifest_field(json, "ft2_shard").as_double());
  m.model = manifest_field(json, "model").as_string();
  m.model_digest = manifest_field(json, "model_digest").as_string();
  m.dataset = manifest_field(json, "dataset").as_string();
  m.scheme = manifest_field(json, "scheme").as_string();
  m.fault_model = manifest_field(json, "fault_model").as_string();
  m.vtype = manifest_field(json, "vtype").as_string();
  m.campaign_seed = std::strtoull(
      manifest_field(json, "campaign_seed").as_string().c_str(), nullptr, 10);
  m.trials_per_input = manifest_size(json, "trials_per_input");
  m.gen_tokens = manifest_size(json, "gen_tokens");
  m.faults_per_trial = manifest_size(json, "faults_per_trial");
  m.n_inputs = manifest_size(json, "n_inputs");
  m.total_trials = manifest_size(json, "total_trials");
  m.shard_index = manifest_size(json, "shard_index");
  m.shard_count = manifest_size(json, "shard_count");
  m.first_trial = manifest_size(json, "first_trial");
  m.last_trial = manifest_size(json, "last_trial");
  return m;
}

void ShardManifest::check_compatible(const ShardManifest& other,
                                     bool same_shard) const {
  std::string mismatches;
  const auto differ = [&mismatches](const char* field, const auto& a,
                                    const auto& b) {
    if (a == b) return;
    if (!mismatches.empty()) mismatches += ", ";
    mismatches += field;
  };
  differ("model", model, other.model);
  differ("model_digest", model_digest, other.model_digest);
  differ("dataset", dataset, other.dataset);
  differ("scheme", scheme, other.scheme);
  differ("fault_model", fault_model, other.fault_model);
  differ("vtype", vtype, other.vtype);
  differ("campaign_seed", campaign_seed, other.campaign_seed);
  differ("trials_per_input", trials_per_input, other.trials_per_input);
  differ("gen_tokens", gen_tokens, other.gen_tokens);
  differ("faults_per_trial", faults_per_trial, other.faults_per_trial);
  differ("n_inputs", n_inputs, other.n_inputs);
  differ("total_trials", total_trials, other.total_trials);
  if (same_shard) {
    differ("shard_index", shard_index, other.shard_index);
    differ("shard_count", shard_count, other.shard_count);
    differ("first_trial", first_trial, other.first_trial);
    differ("last_trial", last_trial, other.last_trial);
  }
  FT2_CHECK_MSG(mismatches.empty(),
                "shard manifest mismatch (" << mismatches
                                            << ") — refusing to mix campaigns");
}

std::vector<TrialRange> partition_trials(std::size_t total,
                                         std::size_t shards) {
  FT2_CHECK_MSG(shards > 0, "partition_trials: zero shards");
  std::vector<TrialRange> ranges(shards);
  const std::size_t base = total / shards;
  const std::size_t extra = total % shards;
  std::size_t start = 0;
  for (std::size_t i = 0; i < shards; ++i) {
    const std::size_t size = base + (i < extra ? 1 : 0);
    ranges[i] = {start, start + size};
    start += size;
  }
  return ranges;
}

std::string shard_log_path(const std::string& dir, std::size_t index,
                           std::size_t count) {
  return dir + "/shard-" + std::to_string(index) + "-of-" +
         std::to_string(count) + ".jsonl";
}

ShardScan scan_shard_log(const std::string& path) {
  ShardScan out;
  std::ifstream is(path, std::ios::binary);
  if (!is) return out;  // missing file = fresh shard
  JsonlScan scan = scan_trial_records_jsonl(is);
  out.torn_tail = scan.torn_tail;
  out.valid_bytes = scan.valid_bytes;
  if (scan.manifests.empty()) {
    // A shard killed while writing its very first line leaves only a torn
    // manifest; that is a fresh shard, not an error. Records without any
    // manifest, though, mean this is not a shard log at all.
    FT2_CHECK_MSG(scan.records.empty(),
                  "shard log '" << path << "' has records but no manifest");
    out.valid_bytes = 0;
    return out;
  }
  FT2_CHECK_MSG(scan.manifests.size() == 1,
                "shard log '" << path << "' has " << scan.manifests.size()
                              << " manifest lines (expected 1)");
  out.has_manifest = true;
  out.manifest = ShardManifest::from_json(scan.manifests.front());
  out.records = std::move(scan.records);
  // The shard writer flushes in trial order, so an intact log is a
  // contiguous prefix of the shard's range. Anything else is corruption a
  // resume must not paper over.
  const std::size_t range =
      out.manifest.last_trial - out.manifest.first_trial;
  FT2_CHECK_MSG(out.records.size() <= range,
                "shard log '" << path << "' holds " << out.records.size()
                              << " records for a " << range << "-trial range");
  for (std::size_t i = 0; i < out.records.size(); ++i) {
    const std::size_t expect = out.manifest.first_trial + i;
    FT2_CHECK_MSG(out.records[i].trial == expect,
                  "shard log '" << path << "' out of order: record " << i
                                << " is trial " << out.records[i].trial
                                << ", expected " << expect);
  }
  out.resume_from = out.manifest.first_trial + out.records.size();
  return out;
}

Json ShardFrame::to_json() const {
  Json json = Json::object();
  json["ft2_shard_frame"] = Json(1);
  json["shard"] = Json(shard);
  json["shards"] = Json(shards);
  json["first"] = Json(first);
  json["last"] = Json(last);
  json["done"] = Json(done);
  json["resumed"] = Json(resumed);
  json["final"] = Json(final_frame);
  Json outcomes_json = Json::object();
  for (const auto& [name, count] : outcomes) {
    outcomes_json[name] = Json(static_cast<std::size_t>(count));
  }
  json["outcomes"] = std::move(outcomes_json);
  json["metrics"] = metrics.to_json();
  return json;
}

ShardFrame ShardFrame::from_json(const Json& json) {
  FT2_CHECK_MSG(json.find("ft2_shard_frame") != nullptr,
                "not a shard telemetry frame");
  ShardFrame frame;
  frame.shard = manifest_size(json, "shard");
  frame.shards = manifest_size(json, "shards");
  frame.first = manifest_size(json, "first");
  frame.last = manifest_size(json, "last");
  frame.done = manifest_size(json, "done");
  frame.resumed = manifest_size(json, "resumed");
  frame.final_frame = manifest_field(json, "final").as_bool();
  const Json& outcomes_json = manifest_field(json, "outcomes");
  for (const std::string& name : outcomes_json.keys()) {
    frame.outcomes[name] =
        static_cast<std::uint64_t>(outcomes_json.at(name).as_double());
  }
  frame.metrics = MetricsSnapshot::from_json(manifest_field(json, "metrics"));
  return frame;
}

std::string encode_shard_frame(const ShardFrame& frame) {
  const std::string payload = frame.to_json().dump(-1);
  FT2_CHECK_MSG(payload.size() <= 0x7fffffff, "shard frame too large");
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  std::string wire(4, '\0');
  wire[0] = static_cast<char>(length & 0xff);
  wire[1] = static_cast<char>((length >> 8) & 0xff);
  wire[2] = static_cast<char>((length >> 16) & 0xff);
  wire[3] = static_cast<char>((length >> 24) & 0xff);
  wire += payload;
  return wire;
}

void ShardFrameDecoder::feed(const char* data, std::size_t n) {
  buffer_.append(data, n);
  for (;;) {
    if (buffer_.size() < 4) return;
    const auto* bytes = reinterpret_cast<const unsigned char*>(buffer_.data());
    const std::uint32_t length =
        static_cast<std::uint32_t>(bytes[0]) |
        (static_cast<std::uint32_t>(bytes[1]) << 8) |
        (static_cast<std::uint32_t>(bytes[2]) << 16) |
        (static_cast<std::uint32_t>(bytes[3]) << 24);
    if (buffer_.size() < 4 + static_cast<std::size_t>(length)) return;
    const Json payload = Json::parse(
        std::string_view(buffer_.data() + 4, length));
    frames_.push_back(ShardFrame::from_json(payload));
    buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  }
}

std::vector<ShardFrame> ShardFrameDecoder::take_frames() {
  std::vector<ShardFrame> out;
  out.swap(frames_);
  return out;
}

namespace {

std::uint64_t board_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ShardProgressBoard::ShardProgressBoard(std::size_t shard_count,
                                       std::size_t total_trials)
    : total_trials_(total_trials),
      latest_(shard_count),
      seen_(shard_count, false) {
  FT2_CHECK_MSG(shard_count > 0, "ShardProgressBoard: zero shards");
}

void ShardProgressBoard::update(const ShardFrame& frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  FT2_CHECK_MSG(frame.shard < latest_.size(),
                "shard frame index " << frame.shard << " out of range (board "
                                     << "has " << latest_.size()
                                     << " shards)");
  latest_[frame.shard] = frame;
  seen_[frame.shard] = true;
  if (first_update_ns_ == 0) {
    first_update_ns_ = board_now_ns();
    // Work already on disk before this run (resumed trials) predates the
    // rate window; counting it would wildly overstate trials/sec.
    std::size_t done = 0;
    for (std::size_t i = 0; i < latest_.size(); ++i) {
      if (seen_[i]) done += latest_[i].done;
    }
    first_update_done_ = done;
  }
}

ShardProgressBoard::Progress ShardProgressBoard::progress() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Progress p;
  p.total = total_trials_;
  p.per_shard_done.resize(latest_.size(), 0);
  p.per_shard_total.resize(latest_.size(), 0);
  for (std::size_t i = 0; i < latest_.size(); ++i) {
    if (!seen_[i]) continue;
    ++p.shards_reporting;
    const ShardFrame& f = latest_[i];
    if (f.final_frame) ++p.shards_final;
    p.done += f.done;
    p.per_shard_done[i] = f.done;
    p.per_shard_total[i] = f.total();
    for (const auto& [name, count] : f.outcomes) p.outcomes[name] += count;
  }
  if (first_update_ns_ != 0) {
    const double elapsed =
        static_cast<double>(board_now_ns() - first_update_ns_) * 1e-9;
    const std::size_t fresh =
        p.done >= first_update_done_ ? p.done - first_update_done_ : 0;
    if (elapsed > 0.0 && fresh > 0) {
      p.trials_per_s = static_cast<double>(fresh) / elapsed;
      const std::size_t remaining = p.total >= p.done ? p.total - p.done : 0;
      p.eta_s = static_cast<double>(remaining) / p.trials_per_s;
    }
  }
  return p;
}

std::string ShardProgressBoard::progress_line() const {
  const Progress p = progress();
  std::ostringstream os;
  os << "shards " << p.shards_final << "/" << latest_.size() << " done"
     << " | trials " << p.done << "/" << p.total;
  if (p.total > 0) {
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.1f",
                  100.0 * static_cast<double>(p.done) /
                      static_cast<double>(p.total));
    os << " (" << pct << "%)";
  }
  if (p.trials_per_s > 0.0) {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.1f", p.trials_per_s);
    os << " | " << rate << " trials/s | eta "
       << static_cast<long long>(p.eta_s + 0.5) << "s";
  }
  if (!p.outcomes.empty()) {
    os << " |";
    for (const auto& [name, count] : p.outcomes) {
      os << " " << name << " " << count;
    }
  }
  os << " | per-shard";
  for (std::size_t i = 0; i < p.per_shard_done.size(); ++i) {
    os << " " << p.per_shard_done[i] << "/" << p.per_shard_total[i];
  }
  return os.str();
}

MetricsSnapshot ShardProgressBoard::merged_locked() const {
  std::vector<MetricsSnapshot> parts;
  for (std::size_t i = 0; i < latest_.size(); ++i) {
    if (seen_[i]) parts.push_back(latest_[i].metrics);
  }
  return merge_snapshots(parts);
}

MetricsSnapshot ShardProgressBoard::telemetry_snapshot() const {
  MetricsSnapshot merged;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    merged = merged_locked();
  }
  const Progress p = progress();
  auto set_gauge = [&merged](const std::string& name, double value) {
    merged.gauges.push_back({name, value});
  };
  set_gauge("campaign.progress.done", static_cast<double>(p.done));
  set_gauge("campaign.progress.total", static_cast<double>(p.total));
  set_gauge("campaign.progress.trials_per_s", p.trials_per_s);
  set_gauge("campaign.progress.eta_s", p.eta_s);
  for (std::size_t i = 0; i < p.per_shard_done.size(); ++i) {
    set_gauge("campaign.shard.progress." + std::to_string(i),
              static_cast<double>(p.per_shard_done[i]));
  }
  std::sort(merged.gauges.begin(), merged.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return merged;
}

Json ShardProgressBoard::telemetry_json() const {
  const Progress p = progress();
  Json doc = Json::object();
  doc["ts_ms"] = Json(static_cast<std::size_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count()));
  Json progress_json = Json::object();
  progress_json["done"] = Json(p.done);
  progress_json["total"] = Json(p.total);
  progress_json["shards_reporting"] = Json(p.shards_reporting);
  progress_json["shards_final"] = Json(p.shards_final);
  progress_json["trials_per_s"] = Json(p.trials_per_s);
  progress_json["eta_s"] = Json(p.eta_s);
  Json outcomes_json = Json::object();
  for (const auto& [name, count] : p.outcomes) {
    outcomes_json[name] = Json(static_cast<std::size_t>(count));
  }
  progress_json["outcomes"] = std::move(outcomes_json);
  Json per_shard = Json::array();
  for (std::size_t i = 0; i < p.per_shard_done.size(); ++i) {
    Json row = Json::object();
    row["shard"] = Json(i);
    row["done"] = Json(p.per_shard_done[i]);
    row["total"] = Json(p.per_shard_total[i]);
    per_shard.push_back(std::move(row));
  }
  progress_json["per_shard"] = std::move(per_shard);
  doc["progress"] = std::move(progress_json);
  doc["cumulative"] = telemetry_snapshot().to_json();
  return doc;
}

namespace {

/// Worker-side frame writer: builds frames from the shard's live state
/// and writes them to the telemetry pipe, throttled to interval_ms. Any
/// write failure (EPIPE when the parent died, EBADF) permanently disables
/// emission — telemetry is advisory and must never fail the shard.
class ShardFrameEmitter {
 public:
  ShardFrameEmitter(const ShardTelemetryConfig& telemetry,
                    const ShardManifest& manifest, MetricsRegistry* metrics)
      : fd_(telemetry.enabled() ? telemetry.fd : -1),
        interval_ns_(telemetry.interval_ms * 1'000'000ull),
        manifest_(manifest),
        metrics_(metrics) {}

  void record_outcome(Outcome outcome) {
    if (fd_ < 0) return;
    ++done_;
    ++outcomes_[outcome_name(outcome)];
  }

  void set_resumed(std::size_t resumed) { resumed_ = resumed; }

  /// Emits when the throttle interval has elapsed (or `force`).
  void maybe_emit(bool force, bool final_frame = false) {
    if (fd_ < 0) return;
    const std::uint64_t now = board_now_ns();
    if (!force && last_emit_ns_ != 0 && now - last_emit_ns_ < interval_ns_) {
      return;
    }
    last_emit_ns_ = now;
    ShardFrame frame;
    frame.shard = manifest_.shard_index;
    frame.shards = manifest_.shard_count;
    frame.first = manifest_.first_trial;
    frame.last = manifest_.last_trial;
    frame.done = done_;
    frame.resumed = resumed_;
    frame.final_frame = final_frame;
    frame.outcomes = outcomes_;
    frame.metrics = metrics_->snapshot();
    const std::string wire = encode_shard_frame(frame);
    std::size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::write(fd_, wire.data() + sent, wire.size() - sent);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        fd_ = -1;  // parent went away: stop emitting, keep running trials
        return;
      }
      sent += static_cast<std::size_t>(n);
    }
  }

 private:
  int fd_;
  std::uint64_t interval_ns_;
  std::uint64_t last_emit_ns_ = 0;
  const ShardManifest& manifest_;
  MetricsRegistry* metrics_;
  std::size_t done_ = 0;
  std::size_t resumed_ = 0;
  std::map<std::string, std::uint64_t> outcomes_;
};

}  // namespace

ShardRunResult run_campaign_shard(const TransformerLM& model,
                                  const std::vector<EvalInput>& inputs,
                                  const SchemeRef& scheme,
                                  const BoundStore& offline_bounds,
                                  const CampaignConfig& config,
                                  const ShardManifest& manifest,
                                  const std::string& path, bool resume,
                                  const ShardTelemetryConfig& telemetry) {
  FT2_CHECK_MSG(manifest.first_trial <= manifest.last_trial &&
                    manifest.last_trial <=
                        inputs.size() * config.trials_per_input,
                "shard range [" << manifest.first_trial << ", "
                                << manifest.last_trial
                                << ") exceeds the campaign trial space");
  ShardRunResult out;
  std::vector<TrialRecord> recovered;
  bool fresh = true;
  if (resume) {
    ShardScan scan = scan_shard_log(path);
    if (scan.has_manifest) {
      manifest.check_compatible(scan.manifest, /*same_shard=*/true);
      recovered = std::move(scan.records);
      out.torn_tail_recovered = scan.torn_tail;
      if (scan.torn_tail) {
        std::filesystem::resize_file(path, scan.valid_bytes);
      }
      fresh = false;
    }
  }

  MetricsRegistry* metrics =
      config.obs.metrics != nullptr ? config.obs.metrics : default_metrics();
  Tracer* tracer =
      config.obs.tracer != nullptr ? config.obs.tracer : &Tracer::global();
  Counter resumed_counter = metrics->counter("campaign.shard.resumed");
  Counter executed_counter = metrics->counter("campaign.shard.executed");
  Counter torn_counter = metrics->counter("campaign.shard.torn_tail");
  TraceSpan span = tracer->span("campaign.shard");
  span.tag("shard", std::to_string(manifest.shard_index))
      .tag("shards", std::to_string(manifest.shard_count))
      .tag("first", std::to_string(manifest.first_trial))
      .tag("last", std::to_string(manifest.last_trial));

  std::ofstream os;
  if (fresh) {
    os.open(path, std::ios::binary | std::ios::trunc);
    FT2_CHECK_MSG(os, "cannot open shard log '" << path << "' for writing");
    manifest.to_json().write(os, -1);
    os << '\n';
    os.flush();
  } else {
    os.open(path, std::ios::binary | std::ios::app);
    FT2_CHECK_MSG(os, "cannot reopen shard log '" << path << "' to resume");
  }

  out.resumed = recovered.size();
  if (out.resumed > 0) resumed_counter.inc(out.resumed);
  if (out.torn_tail_recovered) torn_counter.inc();
  ShardFrameEmitter emitter(telemetry, manifest, metrics);
  for (const TrialRecord& r : recovered) {
    bump_outcome(out.result, r.outcome);
    emitter.record_outcome(r.outcome);
  }
  emitter.set_resumed(out.resumed);
  // Initial frame: the parent learns this shard's range (and any resumed
  // progress) before the first trial lands.
  emitter.maybe_emit(/*force=*/true);

  const std::size_t resume_from = manifest.first_trial + recovered.size();
  recovered.clear();
  if (resume_from < manifest.last_trial) {
    // Trials may finish out of order under a thread pool; buffering and
    // flushing in trial order keeps the log's intact prefix contiguous,
    // which is what makes the resume scan trivial. The campaign serializes
    // callback invocations, so no extra lock is needed here.
    std::map<std::size_t, TrialRecord> pending;
    std::size_t next = resume_from;
    const TrialCallback writer = [&](const TrialRecord& record) {
      pending.emplace(record.trial, record);
      while (!pending.empty() && pending.begin()->first == next) {
        const TrialRecord& flushed = pending.begin()->second;
        trial_record_to_json(flushed).write(os, -1);
        os << '\n';
        os.flush();
        emitter.record_outcome(flushed.outcome);
        pending.erase(pending.begin());
        ++next;
      }
      emitter.maybe_emit(/*force=*/false);
    };
    const CampaignResult ran =
        run_campaign_range(model, inputs, scheme, offline_bounds, config,
                           resume_from, manifest.last_trial, writer);
    FT2_CHECK_MSG(pending.empty() && next == manifest.last_trial,
                  "shard writer stalled at trial " << next << " of ["
                                                   << manifest.first_trial
                                                   << ", "
                                                   << manifest.last_trial
                                                   << ")");
    out.executed = ran.trials;
    executed_counter.inc(ran.trials);
    out.result.merge(ran);
  }
  emitter.maybe_emit(/*force=*/true, /*final_frame=*/true);
  span.tag("resumed", std::to_string(out.resumed))
      .tag("executed", std::to_string(out.executed));
  return out;
}

ShardMerge merge_shard_logs(const std::vector<std::string>& paths) {
  FT2_CHECK_MSG(!paths.empty(), "merge_shard_logs: no shard logs given");
  ShardMerge merge;
  for (const std::string& path : paths) {
    ShardScan scan = scan_shard_log(path);
    FT2_CHECK_MSG(scan.has_manifest,
                  "'" << path << "' is not a shard log (no manifest line)");
    if (!merge.manifests.empty()) {
      merge.manifests.front().check_compatible(scan.manifest,
                                               /*same_shard=*/false);
    }
    if (scan.torn_tail) ++merge.torn_tails;
    merge.manifests.push_back(std::move(scan.manifest));
    for (TrialRecord& r : scan.records) merge.records.push_back(std::move(r));
  }
  merge.total_trials = merge.manifests.front().total_trials;
  std::stable_sort(merge.records.begin(), merge.records.end(),
                   [](const TrialRecord& a, const TrialRecord& b) {
                     return a.trial < b.trial;
                   });
  std::size_t next = 0;
  std::size_t prev = SIZE_MAX;
  for (const TrialRecord& r : merge.records) {
    if (r.trial == prev) {
      ++merge.duplicate_trials;
      continue;
    }
    if (r.trial > next) merge.gaps.push_back({next, r.trial});
    prev = r.trial;
    next = r.trial + 1;
  }
  if (next < merge.total_trials) {
    merge.gaps.push_back({next, merge.total_trials});
  }
  return merge;
}

}  // namespace ft2
