#include "fi/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.hpp"

namespace ft2 {

ProportionCI wilson_ci(std::size_t successes, std::size_t trials, double z) {
  return proportion_ci(successes, trials, z);
}

namespace {

/// log Binomial(n, p) pmf at k via log-gamma (stable at campaign scale,
/// where n is millions and naive factorials overflow immediately).
double log_binomial_pmf(std::size_t n, std::size_t k, double p) {
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return std::lgamma(nd + 1.0) - std::lgamma(kd + 1.0) -
         std::lgamma(nd - kd + 1.0) + kd * std::log(p) +
         (nd - kd) * std::log1p(-p);
}

}  // namespace

std::size_t binomial_sample(PhiloxStream& rng, std::size_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 64) {
    // Direct Bernoulli sum: n uniforms, exact.
    std::size_t k = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (rng.uniform_double() < p) ++k;
    }
    return k;
  }
  // Mode-centered inversion on one uniform: walk outward from the mode
  // (k, k+1, k-1, k+2, ...) accumulating pmf until the uniform is covered.
  // Expected O(sqrt(n p (1-p))) steps because the mass concentrates there.
  const double u = rng.uniform_double();
  const std::size_t mode = std::min(
      n, static_cast<std::size_t>(static_cast<double>(n + 1) * p));
  const double q = 1.0 - p;
  double pmf_up = std::exp(log_binomial_pmf(n, mode, p));
  double pmf_down = pmf_up;
  double cum = pmf_up;
  std::size_t up = mode;    // last k accounted for above the mode
  std::size_t down = mode;  // last k accounted for below the mode
  std::size_t last = mode;
  while (cum < u && (up < n || down > 0)) {
    if (up < n) {
      pmf_up *= static_cast<double>(n - up) /
                static_cast<double>(up + 1) * (p / q);
      ++up;
      cum += pmf_up;
      last = up;
      if (cum >= u) break;
    }
    if (down > 0) {
      pmf_down *= static_cast<double>(down) /
                  static_cast<double>(n - down + 1) * (q / p);
      --down;
      cum += pmf_down;
      last = down;
    }
  }
  return last;
}

BootstrapCI bootstrap_proportion_ci(std::size_t successes, std::size_t trials,
                                    const BootstrapOptions& options) {
  FT2_CHECK_MSG(successes <= trials,
                "bootstrap CI: " << successes << " successes > " << trials
                                 << " trials");
  FT2_CHECK_MSG(options.resamples > 0, "bootstrap CI: zero resamples");
  FT2_CHECK_MSG(options.confidence > 0.0 && options.confidence < 1.0,
                "bootstrap CI: confidence must be in (0, 1)");
  BootstrapCI ci;
  ci.resamples = options.resamples;
  if (trials == 0) return ci;
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  ci.p = p;
  if (successes == 0 || successes == trials) {
    // Resampling a degenerate empirical distribution only ever reproduces
    // it; skip the draws and collapse the interval.
    ci.lo = ci.hi = p;
    return ci;
  }
  // Each (successes, trials) cell derives its own Philox stream, so every
  // table cell's CI is independent yet reproducible from the one seed.
  const std::uint64_t stream =
      static_cast<std::uint64_t>(successes) +
      0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(trials);
  PhiloxStream rng(options.seed, stream);
  std::vector<double> rates;
  rates.reserve(options.resamples);
  for (std::size_t r = 0; r < options.resamples; ++r) {
    rates.push_back(static_cast<double>(binomial_sample(rng, trials, p)) / n);
  }
  std::sort(rates.begin(), rates.end());
  const auto percentile = [&](double frac) {
    const double rank = frac * static_cast<double>(rates.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    const double t = rank - static_cast<double>(lo);
    return rates[lo] * (1.0 - t) + rates[hi] * t;
  };
  const double alpha = (1.0 - options.confidence) / 2.0;
  ci.lo = percentile(alpha);
  ci.hi = percentile(1.0 - alpha);
  return ci;
}

}  // namespace ft2
