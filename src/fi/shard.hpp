// Multi-process campaign sharding: partition, resume, merge.
//
// A sharded campaign splits the trial space [0, total_trials) into N
// contiguous ranges, one per worker process. Each worker streams its
// TrialRecords to a per-shard JSONL file whose FIRST line is a shard
// manifest (a JSON object carrying the `"ft2_shard"` marker key) pinning
// the campaign identity: model + weights digest, dataset, scheme, fault
// model, seed, trial geometry and the shard's range. Because every trial
// draws from its own Philox stream, disjoint ranges compose exactly — the
// merged shard logs ARE the whole-campaign log, bit for bit.
//
// Resume contract: a restarted shard scans its partial log, truncates a
// torn tail (a record cut mid-write by the kill), verifies the manifest
// against the campaign it was relaunched with (mismatched seed / scheme /
// model digest => ft2::Error, never a silently mixed log), and continues
// from the first missing trial index. Records are flushed in trial order,
// so the intact prefix of a shard log is always [first_trial, resume_from).
// Live shard telemetry (this file, lower half): each worker process
// periodically writes a length-prefixed JSON snapshot frame to a per-
// worker pipe, and the parent feeds the bytes through ShardFrameDecoder
// into a ShardProgressBoard — a merged live view (per-shard trials done,
// aggregate trials/sec, outcome mix, ETA) that also implements
// TelemetrySource so the same HTTP endpoint that serves a single process
// can serve a whole sharded campaign. Frames are advisory: losing one
// (slow pipe, dead parent) never affects trial execution or the shard log.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "fi/campaign.hpp"
#include "fi/trace.hpp"
#include "obs/telemetry.hpp"

namespace ft2 {

/// Campaign identity + shard geometry, serialized as the first line of
/// every shard log. Identity fields decide resume/merge compatibility;
/// geometry fields locate this shard in the trial space.
struct ShardManifest {
  int version = 1;

  // --- campaign identity (must match to resume or merge) ---------------
  std::string model;         ///< zoo name, e.g. "opt-xs"
  std::string model_digest;  ///< weights_digest_hex of the loaded weights
  std::string dataset;
  std::string scheme;       ///< SchemeRef::display()
  std::string fault_model;  ///< fault_model_name()
  std::string vtype;        ///< value_type_name()
  std::uint64_t campaign_seed = 0;
  std::size_t trials_per_input = 0;
  std::size_t gen_tokens = 0;
  std::size_t faults_per_trial = 1;
  std::size_t n_inputs = 0;
  std::size_t total_trials = 0;  ///< n_inputs * trials_per_input

  // --- shard geometry ---------------------------------------------------
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::size_t first_trial = 0;
  std::size_t last_trial = 0;  ///< exclusive

  /// Serialized with the `"ft2_shard"` marker key so JSONL readers can
  /// tell manifest lines from TrialRecord lines.
  Json to_json() const;
  static ShardManifest from_json(const Json& json);

  /// Throws ft2::Error naming every mismatched identity field (and, when
  /// `same_shard` is set, mismatched shard geometry). Used both by resume
  /// (disk manifest vs relaunch manifest, same_shard = true) and by merge
  /// (pairwise across shard logs, same_shard = false).
  void check_compatible(const ShardManifest& other, bool same_shard) const;
};

/// One contiguous trial range, [first, last).
struct TrialRange {
  std::size_t first = 0;
  std::size_t last = 0;
  std::size_t size() const { return last - first; }
};

/// Contiguous partition of [0, total) into `shards` ranges whose sizes
/// differ by at most one (earlier shards get the remainder). Throws on
/// zero shards; tolerates shards > total (trailing ranges come out empty).
std::vector<TrialRange> partition_trials(std::size_t total,
                                         std::size_t shards);

/// Canonical shard log filename: `<dir>/shard-<index>-of-<count>.jsonl`.
std::string shard_log_path(const std::string& dir, std::size_t index,
                           std::size_t count);

/// What a resume scan found in an existing shard log.
struct ShardScan {
  bool has_manifest = false;  ///< false = empty/missing/headerless file
  ShardManifest manifest;     ///< valid only when has_manifest
  /// Intact records: a contiguous, in-order prefix of the shard's range
  /// (the writer flushes in trial order, so anything else is corruption).
  std::vector<TrialRecord> records;
  bool torn_tail = false;       ///< a partial trailing record was found
  std::size_t valid_bytes = 0;  ///< truncate here to drop the torn tail
  std::size_t resume_from = 0;  ///< first missing absolute trial index
};

/// Scans an existing shard log tolerantly (missing file => fresh scan; a
/// torn trailing record is reported, not rejected). Mid-file corruption —
/// unparseable interior lines, out-of-order or non-contiguous trial
/// indices, records outside the manifest range — throws ft2::Error.
ShardScan scan_shard_log(const std::string& path);

struct ShardRunResult {
  CampaignResult result;  ///< whole shard range (recovered + executed)
  std::size_t resumed = 0;   ///< trials recovered from the existing log
  std::size_t executed = 0;  ///< trials actually run by this invocation
  bool torn_tail_recovered = false;
};

/// Worker-side telemetry wiring for run_campaign_shard: when `fd` is a
/// valid pipe write end, the shard emits a ShardFrame there at start, at
/// most every `interval_ms` while trials flush, and once at completion.
/// A broken pipe (parent gone) silently stops emission — telemetry must
/// never fail a shard.
struct ShardTelemetryConfig {
  int fd = -1;
  std::size_t interval_ms = 250;

  bool enabled() const { return fd >= 0; }
};

/// One worker progress frame: shard identity + trial progress + outcome
/// tallies + a full metrics snapshot of the worker's registry.
struct ShardFrame {
  std::size_t shard = 0;
  std::size_t shards = 1;
  std::size_t first = 0;
  std::size_t last = 0;  ///< exclusive
  std::size_t done = 0;  ///< trials complete in [first, last), incl. resumed
  std::size_t resumed = 0;
  bool final_frame = false;  ///< the shard's last frame before exit
  /// outcome_name -> count over the trials this shard has completed.
  std::map<std::string, std::uint64_t> outcomes;
  MetricsSnapshot metrics;

  std::size_t total() const { return last - first; }

  /// Serialized with the `"ft2_shard_frame"` marker key.
  Json to_json() const;
  static ShardFrame from_json(const Json& json);
};

/// Wire format: 4-byte little-endian payload length, then the compact
/// JSON payload. Length-prefixing keeps frames intact across the pipe's
/// arbitrary read boundaries.
std::string encode_shard_frame(const ShardFrame& frame);

/// Incremental decoder for one worker's pipe byte stream. feed() any
/// chunk sizes (partial frames buffer internally); take_frames() drains
/// the complete frames decoded so far, in arrival order. A malformed
/// payload throws ft2::Error.
class ShardFrameDecoder {
 public:
  void feed(const char* data, std::size_t n);
  std::vector<ShardFrame> take_frames();
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::vector<ShardFrame> frames_;
};

/// Parent-side merged view over every worker's latest frame. update() is
/// thread-safe; the board implements TelemetrySource, so the parent can
/// serve the merged campaign view on the same HTTP endpoint a single
/// process uses. Synthetic gauges summarize progress for /metrics:
/// campaign.progress.{done,total,trials_per_s,eta_s} and
/// campaign.shard.progress.<N> per shard.
class ShardProgressBoard : public TelemetrySource {
 public:
  ShardProgressBoard(std::size_t shard_count, std::size_t total_trials);

  void update(const ShardFrame& frame);

  struct Progress {
    std::size_t done = 0;
    std::size_t total = 0;
    std::size_t shards_reporting = 0;
    std::size_t shards_final = 0;
    double trials_per_s = 0.0;  ///< since the first frame arrived
    double eta_s = -1.0;        ///< -1 before a usable rate exists
    std::map<std::string, std::uint64_t> outcomes;
    std::vector<std::size_t> per_shard_done;  ///< indexed by shard
    std::vector<std::size_t> per_shard_total;
  };
  Progress progress() const;

  /// One-line human render of progress(), e.g.
  /// "shards 2/3 done | trials 1234/5000 (24.7%) | 81.2 trials/s | eta 46s
  ///  | sdc 12 masked 983 | per-shard 412/1667 410/1667 412/1666".
  std::string progress_line() const;

  // TelemetrySource over the merged worker snapshots + progress gauges.
  MetricsSnapshot telemetry_snapshot() const override;
  Json telemetry_json() const override;

 private:
  MetricsSnapshot merged_locked() const;

  mutable std::mutex mutex_;
  std::size_t total_trials_;
  std::vector<ShardFrame> latest_;  ///< latest frame per shard (by index)
  std::vector<bool> seen_;
  std::uint64_t first_update_ns_ = 0;
  std::size_t first_update_done_ = 0;  ///< resumed work predating this run
};

/// Runs (or resumes) one shard: scans `path` when `resume` is set,
/// validates its manifest against `manifest`, truncates a torn tail,
/// appends the manifest line to a fresh log, then runs
/// run_campaign_range(resume_from, last_trial) streaming records to the
/// log in trial order (each line flushed as written, so a kill at any
/// moment loses at most the line being written). Emits campaign.shard.*
/// metrics and one campaign.shard span through `config.obs`, plus live
/// ShardFrames per `telemetry` when enabled.
ShardRunResult run_campaign_shard(const TransformerLM& model,
                                  const std::vector<EvalInput>& inputs,
                                  const SchemeRef& scheme,
                                  const BoundStore& offline_bounds,
                                  const CampaignConfig& config,
                                  const ShardManifest& manifest,
                                  const std::string& path,
                                  bool resume = true,
                                  const ShardTelemetryConfig& telemetry = {});

/// Result of merging shard logs back into one campaign view.
struct ShardMerge {
  std::vector<ShardManifest> manifests;  ///< one per input log, input order
  std::vector<TrialRecord> records;      ///< sorted by trial index
  std::vector<TrialRange> gaps;  ///< trial ranges no log covered
  /// Records beyond the first for an already-covered trial index.
  std::size_t duplicate_trials = 0;
  std::size_t torn_tails = 0;        ///< logs that ended mid-record
  std::size_t total_trials = 0;      ///< expected, from the manifests

  bool complete() const { return gaps.empty() && duplicate_trials == 0; }
};

/// Merges shard logs: every log must carry a manifest, and all manifests
/// must agree on campaign identity (ft2::Error otherwise — overlapping or
/// gapped coverage is reported in the result, identity mismatch is not
/// mergeable at all). Torn tails are tolerated; their lost records show
/// up as gaps.
ShardMerge merge_shard_logs(const std::vector<std::string>& paths);

}  // namespace ft2
