// Campaign statistics: confidence intervals for injection-outcome rates.
//
// The paper's headline SDC/Masked numbers rest on millions of injections;
// reporting them as raw counts hides the sampling error. This module makes
// the error bands first-class: Wilson score intervals (robust near the
// 0%/100% edges where FT2's SDC rates live) and percentile-bootstrap
// intervals resampled from a fixed Philox stream, so every reported CI is
// bit-reproducible from (counts, seed) alone — no trial data needed.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.hpp"
#include "numeric/stats.hpp"

namespace ft2 {

/// Wilson score interval for a binomial proportion (the interval every
/// campaign table reports). Thin wrapper over numeric/stats.hpp's
/// proportion_ci so there is exactly one Wilson implementation; exposed
/// here under its proper name for the report layer. `z` defaults to the
/// 95% two-sided normal quantile.
ProportionCI wilson_ci(std::size_t successes, std::size_t trials,
                       double z = 1.959964);

/// One deterministic draw from Binomial(n, p) using `rng`.
///
/// Exact inversion: small n sums Bernoulli draws; large n inverts the CDF
/// from the distribution mode outward (O(sqrt(n p (1-p))) expected steps),
/// consuming exactly one uniform. Same (rng state, n, p) -> same draw, so
/// bootstrap resampling is reproducible across runs and machines with the
/// same floating-point contract.
std::size_t binomial_sample(PhiloxStream& rng, std::size_t n, double p);

/// Percentile-bootstrap confidence interval for a binomial proportion.
struct BootstrapCI {
  double p = 0.0;           ///< point estimate successes/trials
  double lo = 0.0;          ///< lower percentile bound
  double hi = 0.0;          ///< upper percentile bound
  std::size_t resamples = 0;
};

struct BootstrapOptions {
  std::size_t resamples = 2000;
  /// Two-sided confidence level; 0.95 takes the 2.5% / 97.5% percentiles.
  double confidence = 0.95;
  /// Philox seed. Every (successes, trials) pair derives its own stream
  /// from this seed, so CIs for different table cells are independent yet
  /// all reproducible from one number.
  std::uint64_t seed = 0x5eedc1f0;
};

/// Resamples Binomial(trials, successes/trials) `resamples` times and
/// returns the percentile interval of the resampled rates. Deterministic
/// under a fixed seed (pinned by tests/fi/stats_test.cpp). Degenerate
/// inputs collapse cleanly: trials == 0 -> all zeros; p in {0, 1} ->
/// [p, p].
BootstrapCI bootstrap_proportion_ci(std::size_t successes, std::size_t trials,
                                    const BootstrapOptions& options = {});

}  // namespace ft2
