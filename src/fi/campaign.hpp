// Statistical fault-injection campaign runner.
//
// A campaign fixes (model, inputs, protection scheme, fault model) and runs
// N independent single-fault trials per input. Each trial:
//   1. samples a FaultPlan from its own Philox stream (reproducible),
//   2. runs a fixed-length greedy generation with the injector hook followed
//      by the protection hook,
//   3. classifies the outcome against the fault-free reference output:
//        Masked-identical | Masked-semantic | SDC  (paper §2.3).
#pragma once

#include <functional>
#include <vector>

#include "data/dataset.hpp"
#include "fi/fault_site.hpp"
#include "fi/injector.hpp"
#include "nn/model.hpp"
#include "numeric/stats.hpp"
#include "obs/sinks.hpp"
#include "obs/trace.hpp"
#include "protect/detection_scheme.hpp"

namespace ft2 {

enum class Outcome { kMaskedIdentical, kMaskedSemantic, kSdc, kNotInjected };

/// One evaluation input: the prompt plus the fault-free reference output.
struct EvalInput {
  Sample sample;
  std::vector<int> prompt;            ///< <bos> + prompt tokens
  std::vector<int> reference_tokens;  ///< fault-free generation (full length)
  bool fault_free_correct = false;    ///< reference contains the answer
};

struct CampaignConfig {
  FaultModel fault_model = FaultModel::kSingleBit;
  ValueType vtype = ValueType::kF16;
  std::size_t trials_per_input = 100;
  std::size_t gen_tokens = 16;   ///< fixed generation length (no EOS stop)
  std::uint64_t seed = 42;
  bool first_token_only = false; ///< pin faults to the prefill (Fig. 11)
  bool chunked_accum = false;    ///< alternate reduction order (Fig. 16)
  /// Faults injected per trial. The paper assumes exactly one transient
  /// fault per inference (§2.3); values > 1 support the single-fault-
  /// assumption sensitivity extension.
  std::size_t faults_per_trial = 1;
  /// Blocked-prefill chunk for every trial's generation (1 = sequential
  /// reference path, 0 = whole prompt). Bit-exact at any value, so campaign
  /// outcomes never depend on it — it is purely a throughput knob.
  std::size_t prefill_chunk = 32;
  /// Pool that trials fan out over (null = process-wide pool). Like
  /// prefill_chunk, a pure throughput knob: trial partitioning is
  /// deterministic and each trial is self-contained, so outcomes and
  /// per-trial records are identical at any pool size.
  ThreadPool* pool = nullptr;
  /// Observability sinks. `obs.metrics` receives campaign.* metrics
  /// (per-outcome and per-site-kind counters, trial wall-time histogram)
  /// and the protect.* metrics of each trial's protection hook; null =
  /// `default_metrics()`. `obs.tracer` receives campaign.trial spans (one
  /// per trial: trial/input/outcome tags); null selects Tracer::global(),
  /// inert unless FT2_TRACE is set. Both sinks are observational only:
  /// outcomes and trial records are bit-identical with them on or off.
  ObsSinks obs;
  /// Fault-free prefix reuse: run each input's fault-free generation once,
  /// snapshot it (KV rows, online first-token bounds, RNG/position state),
  /// and fork every decode-phase trial from the snapshot at its first
  /// injection position instead of replaying prefill plus the fault-free
  /// decode prefix from token 0. Trials whose first fault lands in the
  /// prefill fall back to the full run. Like `prefill_chunk` and `pool`
  /// this is a pure throughput knob: outcomes, per-trial records,
  /// detections and protect.* counters are bit-identical on or off (a
  /// single-fault trial is bit-identical to the fault-free run up to its
  /// injection position, so nothing skipped could have differed).
  bool prefix_reuse = true;
  /// Record per-trial ClipEvents (layer kind, position, original value) on
  /// each trial's protection hook so TrialRecord::clips carries them. Off
  /// by default: capture allocates per clip, and most campaigns only need
  /// the aggregate counters.
  bool capture_clips = false;
  /// Attach a BoundDriftMonitor behind each trial's protection hook,
  /// publishing protect.headroom.* to the campaign registry. Strictly
  /// observational: outcomes, detections and protect.* counters are
  /// bit-identical with the monitor on or off.
  bool drift_monitor = false;
};

struct CampaignResult {
  std::size_t trials = 0;
  std::size_t masked_identical = 0;
  std::size_t masked_semantic = 0;
  std::size_t sdc = 0;
  std::size_t not_injected = 0;

  double sdc_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(sdc) / static_cast<double>(trials);
  }
  ProportionCI sdc_ci() const { return proportion_ci(sdc, trials); }

  void merge(const CampaignResult& other) {
    trials += other.trials;
    masked_identical += other.masked_identical;
    masked_semantic += other.masked_semantic;
    sdc += other.sdc;
    not_injected += other.not_injected;
  }
};

/// Truncates a generated token sequence at the first <eos>.
std::vector<int> truncate_at_eos(const std::vector<int>& tokens);

/// Classifies a faulty generation against the reference (paper §2.3).
Outcome classify_outcome(const std::vector<int>& generated,
                         const EvalInput& input);

/// Runs the fixed-length fault-free generation for each sample and keeps
/// the reference outputs. When `only_correct` is set, samples whose
/// fault-free output does not contain the reference answer are dropped
/// (the paper selects inputs all models answer correctly).
///
/// Reference generations fan out over `pool` (null = process-wide pool),
/// one InferenceSession per contiguous chunk of samples. Results are
/// order-preserving and identical at any pool size — each sample's
/// generation is self-contained and deterministic.
std::vector<EvalInput> prepare_eval_inputs(const TransformerLM& model,
                                           const std::vector<Sample>& samples,
                                           std::size_t gen_tokens,
                                           bool only_correct = true,
                                           ThreadPool* pool = nullptr);

/// Per-trial record for debugging/analysis (CSV/JSON/JSONL via
/// fi/trace.hpp; aggregated offline by fi/report.hpp / `ft2 report`).
struct TrialRecord {
  std::size_t trial = 0;
  std::size_t input_index = 0;
  FaultPlan plan;  ///< the first injected fault of the trial
  Outcome outcome = Outcome::kNotInjected;
  /// Violations flagged by the protection hook during the trial
  /// (out-of-bound + NaN) — the detection signal in detect-only mode.
  std::size_t detections = 0;
  std::string generated_text;
  /// Fault model the plan was sampled from (copied from the config so a
  /// recorded log is self-describing).
  FaultModel fault_model = FaultModel::kSingleBit;
  bool fired = false;  ///< the (first) injector actually flipped a value
  std::size_t nan_detections = 0;  ///< NaN corrections (detections = nan+oob)
  std::size_t oob_detections = 0;  ///< out-of-bound corrections
  /// Earliest sequence position where protection corrected anything
  /// (-1 = no detection). Minus plan.position this is the detection
  /// latency in token positions.
  long long detect_position = -1;
  float injected_original = 0.0f;  ///< value before the bit flip (if fired)
  float injected_value = 0.0f;     ///< value after the bit flip (if fired)
  /// Individual out-of-bound events (only with CampaignConfig::
  /// capture_clips).
  std::vector<ClipEvent> clips;
  /// Display name of the protection scheme the trial ran under
  /// (SchemeRef::display for registry schemes, the spec's name otherwise).
  /// Lets `ft2 report` aggregate a merged multi-scheme log into the
  /// head-to-head comparison table.
  std::string scheme;
  /// Trial wall time in milliseconds (generation + classification),
  /// measured whenever a trial callback or metrics sink is attached; 0
  /// otherwise. Timing is observational: excluded from determinism
  /// comparisons.
  double trial_ms = 0.0;
};

/// Called for every finished trial; invocations are serialized.
using TrialCallback = std::function<void(const TrialRecord&)>;

/// Runs the campaign for one protection scheme. `offline_bounds` may be an
/// empty store for schemes that do not need it (kNone / FT2-online).
CampaignResult run_campaign(const TransformerLM& model,
                            const std::vector<EvalInput>& inputs,
                            const SchemeSpec& scheme,
                            const BoundStore& offline_bounds,
                            const CampaignConfig& config,
                            const TrialCallback& on_trial = {});

/// Partial campaign: runs only trials in [first_trial, last_trial) of the
/// full trial space (inputs.size() * trials_per_input). Because each trial
/// draws from its own Philox stream, disjoint ranges compose exactly:
/// merging the results of [0,k) and [k,N) equals one run of [0,N). Useful
/// for checkpointing/resuming long campaigns and for distributing them.
CampaignResult run_campaign_range(const TransformerLM& model,
                                  const std::vector<EvalInput>& inputs,
                                  const SchemeSpec& scheme,
                                  const BoundStore& offline_bounds,
                                  const CampaignConfig& config,
                                  std::size_t first_trial,
                                  std::size_t last_trial,
                                  const TrialCallback& on_trial = {});

/// Convenience: scheme resolved from its kind.
CampaignResult run_campaign(const TransformerLM& model,
                            const std::vector<EvalInput>& inputs,
                            SchemeKind scheme, const BoundStore& offline_bounds,
                            const CampaignConfig& config,
                            const TrialCallback& on_trial = {});

/// Registry path: every trial instantiates `scheme` through its registered
/// factory (so any DetectionScheme — checksum, adaptive, custom — runs the
/// same campaign machinery). `offline_bounds` may be empty when
/// `scheme.needs_offline_bounds()` is false. TrialRecord::scheme carries
/// `scheme.display()`.
CampaignResult run_campaign(const TransformerLM& model,
                            const std::vector<EvalInput>& inputs,
                            const SchemeRef& scheme,
                            const BoundStore& offline_bounds,
                            const CampaignConfig& config,
                            const TrialCallback& on_trial = {});

CampaignResult run_campaign_range(const TransformerLM& model,
                                  const std::vector<EvalInput>& inputs,
                                  const SchemeRef& scheme,
                                  const BoundStore& offline_bounds,
                                  const CampaignConfig& config,
                                  std::size_t first_trial,
                                  std::size_t last_trial,
                                  const TrialCallback& on_trial = {});

/// Fault-free "campaign": runs every input once with the scheme applied and
/// no fault, reporting how many outputs remain correct (Fig. 3's
/// false-positive measurement).
double fault_free_correct_fraction(const TransformerLM& model,
                                   const std::vector<EvalInput>& inputs,
                                   const SchemeSpec& scheme,
                                   const BoundStore& offline_bounds,
                                   std::size_t gen_tokens);

}  // namespace ft2
