// Extension: persistent weight faults.
//
// The paper's fault model is transient computational faults in activation
// values (ECC protects memory). Related range-restriction work also studies
// persistent faults in weights; this extension injects a bit flip into one
// weight-matrix element for the duration of an inference and measures
// whether FT2's activation-level range restriction still catches the
// corrupted products (it should: a large faulty weight produces large
// faulty outputs at every token, which the clamp keeps suppressing).
#pragma once

#include "fi/campaign.hpp"

namespace ft2 {

struct WeightFaultPlan {
  LayerSite site;          ///< which linear layer's weight matrix
  std::size_t row = 0;     ///< output index
  std::size_t col = 0;     ///< input index
  BitFlips flips;
  ValueType vtype = ValueType::kF16;
};

/// Weight-element site space over all linear layers of the model.
class WeightFaultSpace {
 public:
  explicit WeightFaultSpace(const ModelConfig& config);

  std::size_t total_elements() const { return total_; }

  WeightFaultPlan sample(FaultModel model, ValueType vtype,
                         PhiloxStream& rng) const;

 private:
  struct Segment {
    LayerKind kind;
    std::size_t rows, cols, offset;
  };
  ModelConfig config_;
  std::vector<Segment> segments_;  // per block-kind
  std::size_t per_block_ = 0;
  std::size_t total_ = 0;
};

/// RAII: applies the bit flip to the live weight on construction and
/// restores the original value on destruction.
class ScopedWeightFault {
 public:
  ScopedWeightFault(TransformerLM& model, const WeightFaultPlan& plan);
  ~ScopedWeightFault();

  ScopedWeightFault(const ScopedWeightFault&) = delete;
  ScopedWeightFault& operator=(const ScopedWeightFault&) = delete;

  float original_value() const { return original_; }
  float faulty_value() const { return faulty_; }

 private:
  float* target_;
  float original_;
  float faulty_;
};

/// Statistical campaign over persistent weight faults. Mutates and restores
/// the model's weights per trial, hence the non-const model and sequential
/// execution.
CampaignResult run_weight_fault_campaign(TransformerLM& model,
                                         const std::vector<EvalInput>& inputs,
                                         const SchemeSpec& scheme,
                                         const BoundStore& offline_bounds,
                                         const CampaignConfig& config);

/// Registry path: each trial instantiates `scheme` through its registered
/// factory, so any DetectionScheme runs the weight-fault campaign.
CampaignResult run_weight_fault_campaign(TransformerLM& model,
                                         const std::vector<EvalInput>& inputs,
                                         const SchemeRef& scheme,
                                         const BoundStore& offline_bounds,
                                         const CampaignConfig& config);

}  // namespace ft2
