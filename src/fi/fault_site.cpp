#include "fi/fault_site.hpp"

#include "common/check.hpp"

namespace ft2 {

FaultSiteSpace::FaultSiteSpace(const ModelConfig& config) : config_(config) {
  for (LayerKind kind : config.block_layers()) {
    if (!is_linear_layer(kind)) continue;
    kind_offsets_.push_back(per_block_);
    linear_kinds_.push_back(kind);
    per_block_ += config.layer_output_dim(kind);
  }
  per_position_ = per_block_ * config.n_blocks;
  FT2_CHECK(per_position_ > 0);
}

void FaultSiteSpace::decode(std::size_t index, LayerSite& site,
                            std::size_t& neuron) const {
  FT2_CHECK(index < per_position_);
  const std::size_t block = index / per_block_;
  std::size_t within = index % per_block_;
  // Find the layer-kind bucket containing `within`.
  std::size_t k = linear_kinds_.size() - 1;
  while (k > 0 && kind_offsets_[k] > within) --k;
  site.block = static_cast<int>(block);
  site.kind = linear_kinds_[k];
  neuron = within - kind_offsets_[k];
}

FaultPlan FaultSiteSpace::sample(std::size_t prompt_len,
                                 std::size_t gen_tokens, FaultModel model,
                                 ValueType vtype, PhiloxStream& rng,
                                 bool first_token_only) const {
  FT2_CHECK(prompt_len > 0 && gen_tokens > 0);
  FaultPlan plan;
  plan.vtype = vtype;

  const std::size_t step =
      first_token_only ? 0 : rng.uniform(gen_tokens);
  if (step == 0) {
    // First-token phase: the fault lands somewhere in the prefill.
    plan.position = rng.uniform(prompt_len);
    plan.in_first_token = true;
  } else {
    plan.position = prompt_len + step - 1;
    plan.in_first_token = false;
  }

  const std::size_t site_index = rng.uniform(per_position_);
  decode(site_index, plan.site, plan.neuron);
  plan.flips = sample_bit_flips(model, vtype, rng);
  return plan;
}

}  // namespace ft2
