// Fault-site sampling for statistical fault injection.
//
// A trial injects exactly one fault. Following the paper's methodology
// (§2.3/§4.2.2): the token-generation step is sampled uniformly over the
// fixed number of generated tokens; the first step corresponds to the whole
// prefill (prompt processing), within which a uniform prompt position is
// chosen — this makes the probability of hitting the first-token phase equal
// to 1/gen_tokens, matching the execution-time argument of Fig. 10. Within
// the chosen position, the fault lands on a uniformly random output neuron
// of a uniformly random linear layer instance (block x kind, weighted by
// output width, i.e. uniform over neurons).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "fi/fault_model.hpp"
#include "nn/config.hpp"
#include "nn/layer_kind.hpp"

namespace ft2 {

/// Fully resolved single-fault plan for one trial.
struct FaultPlan {
  std::size_t position = 0;  ///< absolute sequence position of the injection
  LayerSite site;
  std::size_t neuron = 0;
  BitFlips flips;
  ValueType vtype = ValueType::kF16;
  bool in_first_token = false;  ///< position falls in the prefill phase
};

/// Uniform neuron-site space of one position: all (block, linear-kind,
/// neuron) triples of the architecture.
class FaultSiteSpace {
 public:
  explicit FaultSiteSpace(const ModelConfig& config);

  /// Total linear-output neurons per position.
  std::size_t neurons_per_position() const { return per_position_; }

  /// Decodes a uniform index in [0, neurons_per_position) to (site, neuron).
  void decode(std::size_t index, LayerSite& site, std::size_t& neuron) const;

  /// Samples a full fault plan. `prompt_len` is the prefill length,
  /// `gen_tokens` the fixed number of generated tokens. When
  /// `first_token_only`, the step is pinned to the prefill phase (used by
  /// the Fig. 11 experiment).
  FaultPlan sample(std::size_t prompt_len, std::size_t gen_tokens,
                   FaultModel model, ValueType vtype, PhiloxStream& rng,
                   bool first_token_only = false) const;

  const ModelConfig& config() const { return config_; }

 private:
  ModelConfig config_;
  std::vector<LayerKind> linear_kinds_;   // linear layers per block
  std::vector<std::size_t> kind_offsets_; // prefix sums of output dims
  std::size_t per_block_ = 0;
  std::size_t per_position_ = 0;
};

}  // namespace ft2
