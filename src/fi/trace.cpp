#include "fi/trace.hpp"

namespace ft2 {
namespace {

std::string bits_string(const BitFlips& flips) {
  std::string out;
  for (int i = 0; i < flips.count; ++i) {
    if (!out.empty()) out += '+';
    out += std::to_string(flips.bits[i]);
  }
  return out;
}

}  // namespace

void TraceCollector::write_csv(std::ostream& os) const {
  os << "trial,input,position,in_first_token,block,layer,neuron,bits,dtype,"
        "outcome,generated\n";
  for (const auto& r : records_) {
    os << r.trial << ',' << r.input_index << ',' << r.plan.position << ','
       << (r.plan.in_first_token ? 1 : 0) << ',' << r.plan.site.block << ','
       << layer_kind_name(r.plan.site.kind) << ',' << r.plan.neuron << ','
       << bits_string(r.plan.flips) << ',' << value_type_name(r.plan.vtype)
       << ',' << outcome_name(r.outcome) << ",\"" << r.generated_text
       << "\"\n";
  }
}

Json TraceCollector::to_json() const {
  Json array = Json::array();
  for (const auto& r : records_) {
    Json item = Json::object();
    item["trial"] = r.trial;
    item["input"] = r.input_index;
    item["position"] = r.plan.position;
    item["in_first_token"] = r.plan.in_first_token;
    item["block"] = r.plan.site.block;
    item["layer"] = std::string(layer_kind_name(r.plan.site.kind));
    item["neuron"] = r.plan.neuron;
    item["bits"] = bits_string(r.plan.flips);
    item["dtype"] = value_type_name(r.plan.vtype);
    item["outcome"] = outcome_name(r.outcome);
    item["generated"] = r.generated_text;
    array.push_back(std::move(item));
  }
  return array;
}

std::map<LayerKind, TraceCollector::LayerTally> TraceCollector::sdc_by_layer()
    const {
  std::map<LayerKind, LayerTally> out;
  for (const auto& r : records_) {
    LayerTally& tally = out[r.plan.site.kind];
    ++tally.faults;
    if (r.outcome == Outcome::kSdc) ++tally.sdc;
  }
  return out;
}

std::vector<TrialRecord> TraceCollector::sdc_records() const {
  std::vector<TrialRecord> out;
  for (const auto& r : records_) {
    if (r.outcome == Outcome::kSdc) out.push_back(r);
  }
  return out;
}

}  // namespace ft2
