#include "fi/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "protect/bounds_io.hpp"

namespace ft2 {

Outcome outcome_from_name(std::string_view name) {
  for (Outcome o : {Outcome::kMaskedIdentical, Outcome::kMaskedSemantic,
                    Outcome::kSdc, Outcome::kNotInjected}) {
    if (name == outcome_name(o)) return o;
  }
  throw Error("unknown outcome name '" + std::string(name) + "'");
}

FaultModel fault_model_from_name(std::string_view name) {
  for (FaultModel m : all_fault_models()) {
    if (name == fault_model_name(m)) return m;
  }
  throw Error("unknown fault model name '" + std::string(name) + "'");
}

ValueType value_type_from_name(std::string_view name) {
  if (name == value_type_name(ValueType::kF16)) return ValueType::kF16;
  if (name == value_type_name(ValueType::kF32)) return ValueType::kF32;
  throw Error("unknown value type name '" + std::string(name) + "'");
}

namespace {

std::string bits_string(const BitFlips& flips) {
  std::string out;
  for (int i = 0; i < flips.count; ++i) {
    if (!out.empty()) out += '+';
    out += std::to_string(flips.bits[i]);
  }
  return out;
}

BitFlips bits_from_string(const std::string& text) {
  BitFlips flips;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t plus = text.find('+', start);
    if (plus == std::string::npos) plus = text.size();
    FT2_CHECK_MSG(flips.count < static_cast<int>(flips.bits.size()),
                  "too many bit flips in '" << text << "'");
    flips.bits[static_cast<std::size_t>(flips.count++)] =
        std::atoi(text.substr(start, plus - start).c_str());
    start = plus + 1;
  }
  return flips;
}

/// %.9g float encoding: round-trips every float exactly and — unlike a
/// JSON number — survives inf/nan (Json::write emits null for those).
std::string float_string(float value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(value));
  return buf;
}

float float_from_string(const std::string& text) {
  return std::strtof(text.c_str(), nullptr);
}

/// "KIND@position:original;..." — compact clip-event list (no commas, so
/// the CSV cell needs no special care beyond quoting).
std::string clips_string(const std::vector<ClipEvent>& clips) {
  std::string out;
  for (const ClipEvent& clip : clips) {
    if (!out.empty()) out += ';';
    out += layer_kind_name(clip.kind);
    out += '@';
    out += std::to_string(clip.position);
    out += ':';
    out += float_string(clip.original);
  }
  return out;
}

std::vector<ClipEvent> clips_from_string(const std::string& text) {
  std::vector<ClipEvent> clips;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t semi = text.find(';', start);
    if (semi == std::string::npos) semi = text.size();
    const std::string item = text.substr(start, semi - start);
    const std::size_t at = item.find('@');
    const std::size_t colon = item.find(':', at == std::string::npos ? 0 : at);
    FT2_CHECK_MSG(at != std::string::npos && colon != std::string::npos,
                  "malformed clip event '" << item << "'");
    ClipEvent clip;
    clip.kind = layer_kind_from_name(item.substr(0, at));
    clip.position = static_cast<std::size_t>(
        std::strtoull(item.substr(at + 1, colon - at - 1).c_str(), nullptr, 10));
    clip.original = float_from_string(item.substr(colon + 1));
    clips.push_back(clip);
    start = semi + 1;
  }
  return clips;
}

// --- Coercing readers -------------------------------------------------
// CSV parsing lifts every cell to a JSON string; the JSON readers see
// typed values. One setter per field handles both by coercing.

double as_num(const Json& j) {
  if (j.is_number()) return j.as_double();
  return std::strtod(j.as_string().c_str(), nullptr);
}

bool as_boolish(const Json& j) {
  if (j.is_bool()) return j.as_bool();
  return as_num(j) != 0.0;
}

/// THE field-ordering source of truth: CSV columns, JSON keys and JSONL
/// keys all come from this table, in this order. Append new fields at the
/// end — readers default missing trailing fields, so old logs stay
/// readable.
struct TrialField {
  const char* name;
  Json (*get)(const TrialRecord&);
  void (*set)(TrialRecord&, const Json&);
  bool quote_csv;  ///< always quote this cell (free-form text)
};

const std::vector<TrialField>& trial_record_fields() {
  static const std::vector<TrialField> fields = {
      {"trial", [](const TrialRecord& r) { return Json(r.trial); },
       [](TrialRecord& r, const Json& j) {
         r.trial = static_cast<std::size_t>(as_num(j));
       },
       false},
      {"input", [](const TrialRecord& r) { return Json(r.input_index); },
       [](TrialRecord& r, const Json& j) {
         r.input_index = static_cast<std::size_t>(as_num(j));
       },
       false},
      {"position", [](const TrialRecord& r) { return Json(r.plan.position); },
       [](TrialRecord& r, const Json& j) {
         r.plan.position = static_cast<std::size_t>(as_num(j));
       },
       false},
      {"in_first_token",
       [](const TrialRecord& r) { return Json(r.plan.in_first_token); },
       [](TrialRecord& r, const Json& j) {
         r.plan.in_first_token = as_boolish(j);
       },
       false},
      {"block", [](const TrialRecord& r) { return Json(r.plan.site.block); },
       [](TrialRecord& r, const Json& j) {
         r.plan.site.block = static_cast<std::size_t>(as_num(j));
       },
       false},
      {"layer",
       [](const TrialRecord& r) {
         return Json(std::string(layer_kind_name(r.plan.site.kind)));
       },
       [](TrialRecord& r, const Json& j) {
         r.plan.site.kind = layer_kind_from_name(j.as_string());
       },
       false},
      {"neuron", [](const TrialRecord& r) { return Json(r.plan.neuron); },
       [](TrialRecord& r, const Json& j) {
         r.plan.neuron = static_cast<std::size_t>(as_num(j));
       },
       false},
      {"bits",
       [](const TrialRecord& r) { return Json(bits_string(r.plan.flips)); },
       [](TrialRecord& r, const Json& j) {
         r.plan.flips = bits_from_string(j.as_string());
       },
       false},
      {"dtype",
       [](const TrialRecord& r) {
         return Json(std::string(value_type_name(r.plan.vtype)));
       },
       [](TrialRecord& r, const Json& j) {
         r.plan.vtype = value_type_from_name(j.as_string());
       },
       false},
      {"outcome",
       [](const TrialRecord& r) {
         return Json(std::string(outcome_name(r.outcome)));
       },
       [](TrialRecord& r, const Json& j) {
         r.outcome = outcome_from_name(j.as_string());
       },
       false},
      {"generated",
       [](const TrialRecord& r) { return Json(r.generated_text); },
       [](TrialRecord& r, const Json& j) { r.generated_text = j.as_string(); },
       true},
      {"fault_model",
       [](const TrialRecord& r) {
         return Json(std::string(fault_model_name(r.fault_model)));
       },
       [](TrialRecord& r, const Json& j) {
         r.fault_model = fault_model_from_name(j.as_string());
       },
       false},
      {"fired", [](const TrialRecord& r) { return Json(r.fired); },
       [](TrialRecord& r, const Json& j) { r.fired = as_boolish(j); }, false},
      {"detections",
       [](const TrialRecord& r) { return Json(r.detections); },
       [](TrialRecord& r, const Json& j) {
         r.detections = static_cast<std::size_t>(as_num(j));
       },
       false},
      {"nan_detections",
       [](const TrialRecord& r) { return Json(r.nan_detections); },
       [](TrialRecord& r, const Json& j) {
         r.nan_detections = static_cast<std::size_t>(as_num(j));
       },
       false},
      {"oob_detections",
       [](const TrialRecord& r) { return Json(r.oob_detections); },
       [](TrialRecord& r, const Json& j) {
         r.oob_detections = static_cast<std::size_t>(as_num(j));
       },
       false},
      {"detect_position",
       [](const TrialRecord& r) {
         return Json(static_cast<double>(r.detect_position));
       },
       [](TrialRecord& r, const Json& j) {
         r.detect_position = static_cast<long long>(as_num(j));
       },
       false},
      {"injected_original",
       [](const TrialRecord& r) { return Json(float_string(r.injected_original)); },
       [](TrialRecord& r, const Json& j) {
         r.injected_original = float_from_string(j.as_string());
       },
       false},
      {"injected_value",
       [](const TrialRecord& r) { return Json(float_string(r.injected_value)); },
       [](TrialRecord& r, const Json& j) {
         r.injected_value = float_from_string(j.as_string());
       },
       false},
      {"clips",
       [](const TrialRecord& r) { return Json(clips_string(r.clips)); },
       [](TrialRecord& r, const Json& j) {
         r.clips = clips_from_string(j.as_string());
       },
       true},
      // Appended fields (readers default them, so pre-scheme logs load):
      {"scheme", [](const TrialRecord& r) { return Json(r.scheme); },
       [](TrialRecord& r, const Json& j) { r.scheme = j.as_string(); }, true},
      {"trial_ms",
       [](const TrialRecord& r) { return Json(r.trial_ms); },
       [](TrialRecord& r, const Json& j) { r.trial_ms = as_num(j); }, false},
  };
  return fields;
}

// --- CSV ---------------------------------------------------------------

/// Quotes a CSV cell when required (or forced): doubles embedded quotes.
std::string csv_cell(const std::string& text, bool force_quote) {
  const bool needs =
      force_quote || text.find_first_of(",\"\n") != std::string::npos;
  if (!needs) return text;
  std::string out = "\"";
  for (char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Renders one field value as its raw CSV cell text.
std::string csv_value(const Json& value) {
  if (value.is_string()) return value.as_string();
  if (value.is_bool()) return value.as_bool() ? "1" : "0";
  return value.dump(-1);  // numbers (and null, which never occurs)
}

/// Splits one CSV line honoring quoted cells with doubled quotes.
std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cell += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(std::move(cell));
  return cells;
}

}  // namespace

Json trial_record_to_json(const TrialRecord& record) {
  Json item = Json::object();
  for (const TrialField& field : trial_record_fields()) {
    item[field.name] = field.get(record);
  }
  return item;
}

TrialRecord trial_record_from_json(const Json& json) {
  TrialRecord record;
  for (const TrialField& field : trial_record_fields()) {
    if (const Json* value = json.find(field.name)) {
      field.set(record, *value);
    }
  }
  return record;
}

void TraceCollector::add(const TrialRecord& record) {
  ++recorded_;
  if (sink_ != nullptr) {
    trial_record_to_json(record).write(*sink_, -1);
    *sink_ << '\n';
  }
  if (records_.size() < max_records_) records_.push_back(record);
}

void TraceCollector::write_csv(std::ostream& os) const {
  const auto& fields = trial_record_fields();
  for (std::size_t i = 0; i < fields.size(); ++i) {
    os << (i == 0 ? "" : ",") << fields[i].name;
  }
  os << '\n';
  for (const auto& r : records_) {
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (i != 0) os << ',';
      os << csv_cell(csv_value(fields[i].get(r)), fields[i].quote_csv);
    }
    os << '\n';
  }
}

Json TraceCollector::to_json() const {
  Json array = Json::array();
  for (const auto& r : records_) array.push_back(trial_record_to_json(r));
  return array;
}

void TraceCollector::write_jsonl(std::ostream& os) const {
  for (const auto& r : records_) {
    trial_record_to_json(r).write(os, -1);
    os << '\n';
  }
}

std::vector<TrialRecord> read_trial_records_csv(std::istream& is) {
  std::vector<TrialRecord> out;
  std::string line;
  FT2_CHECK_MSG(std::getline(is, line), "empty CSV trial log");
  const std::vector<std::string> header = split_csv_line(line);
  const auto& fields = trial_record_fields();
  // Map header columns onto known fields (unknown columns are skipped, so
  // logs from future schema revisions still load their shared columns).
  std::vector<const TrialField*> columns;
  for (const std::string& name : header) {
    const TrialField* match = nullptr;
    for (const TrialField& field : fields) {
      if (name == field.name) {
        match = &field;
        break;
      }
    }
    columns.push_back(match);
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_csv_line(line);
    FT2_CHECK_MSG(cells.size() == columns.size(),
                  "CSV row has " << cells.size() << " cells, header has "
                                 << columns.size());
    TrialRecord record;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (columns[i] != nullptr) columns[i]->set(record, Json(cells[i]));
    }
    out.push_back(std::move(record));
  }
  return out;
}

std::vector<TrialRecord> read_trial_records_jsonl(std::istream& is) {
  JsonlScan scan = scan_trial_records_jsonl(is);
  FT2_CHECK_MSG(!scan.torn_tail,
                "JSONL trial log ends in a torn partial record ('"
                    << (scan.torn_line.size() > 64
                            ? scan.torn_line.substr(0, 64) + "..."
                            : scan.torn_line)
                    << "'); truncate to " << scan.valid_bytes
                    << " bytes or load via scan_trial_records_jsonl");
  return std::move(scan.records);
}

JsonlScan scan_trial_records_jsonl(std::istream& is) {
  const std::string content{std::istreambuf_iterator<char>(is),
                            std::istreambuf_iterator<char>()};
  JsonlScan scan;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      // Final line never got its newline: a write torn by a dying process.
      // Even if the fragment parses as JSON (truncation can land exactly on
      // a '}' and silently drop trailing fields), it is not trustworthy.
      scan.torn_tail = true;
      scan.torn_line = content.substr(start);
      break;
    }
    std::string line = content.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t next = nl + 1;
    if (line.find_first_not_of(" \t") != std::string::npos) {
      Json parsed;
      try {
        parsed = Json::parse(line);
      } catch (const Error&) {
        const bool last_line = content.find_first_not_of(" \t\r\n", next) ==
                               std::string::npos;
        // The newline can be flushed without the full line before it; only
        // the final line gets that benefit of the doubt.
        FT2_CHECK_MSG(last_line, "corrupt JSONL trial log at byte offset "
                                     << start << ": unparseable mid-file line");
        scan.torn_tail = true;
        scan.torn_line = line;
        break;
      }
      if (parsed.is_object() && parsed.find("ft2_shard") != nullptr) {
        scan.manifests.push_back(std::move(parsed));
      } else {
        scan.records.push_back(trial_record_from_json(parsed));
      }
    }
    scan.valid_bytes = next;
    start = next;
  }
  if (!scan.torn_tail) scan.valid_bytes = content.size();
  return scan;
}

std::vector<TrialRecord> read_trial_records_json(const Json& array) {
  FT2_CHECK_MSG(array.is_array(), "trial log JSON must be an array");
  std::vector<TrialRecord> out;
  for (std::size_t i = 0; i < array.size(); ++i) {
    out.push_back(trial_record_from_json(array.at(i)));
  }
  return out;
}

std::map<LayerKind, TraceCollector::LayerTally> TraceCollector::sdc_by_layer()
    const {
  std::map<LayerKind, LayerTally> out;
  for (const auto& r : records_) {
    LayerTally& tally = out[r.plan.site.kind];
    ++tally.faults;
    if (r.outcome == Outcome::kSdc) ++tally.sdc;
  }
  return out;
}

std::vector<TrialRecord> TraceCollector::sdc_records() const {
  std::vector<TrialRecord> out;
  for (const auto& r : records_) {
    if (r.outcome == Outcome::kSdc) out.push_back(r);
  }
  return out;
}

}  // namespace ft2
