// The fault-injection hook: applies one FaultPlan during a generation run.
//
// Registered BEFORE the protection hook so the protection scheme observes
// the already-corrupted output, just like a software check running after a
// hardware fault.
#pragma once

#include "common/check.hpp"
#include "fi/fault_site.hpp"
#include "nn/hooks.hpp"

namespace ft2 {

class InjectorHook : public OutputHook {
 public:
  explicit InjectorHook(FaultPlan plan) : plan_(plan) {}

  void on_generation_begin() override { fired_ = false; }

  void on_output(const HookContext& ctx, std::span<float> values) override {
    if (fired_) return;
    if (!(ctx.site == plan_.site) || !ctx.contains_position(plan_.position)) {
      return;
    }
    // Blocked prefill dispatches a whole position span at once; the fault
    // still hits exactly one (position, neuron) element.
    auto row = ctx.row(values, plan_.position - ctx.position);
    FT2_ASSERT(plan_.neuron < row.size());
    const float before = row[plan_.neuron];
    row[plan_.neuron] = apply_bit_flips(before, plan_.flips, plan_.vtype);
    injected_value_ = row[plan_.neuron];
    original_value_ = before;
    fired_ = true;
  }

  bool fired() const { return fired_; }
  float original_value() const { return original_value_; }
  float injected_value() const { return injected_value_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  bool fired_ = false;
  float original_value_ = 0.0f;
  float injected_value_ = 0.0f;
};

}  // namespace ft2
