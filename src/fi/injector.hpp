// The fault-injection hook: applies one FaultPlan during a generation run.
//
// Registered BEFORE the protection hook so the protection scheme observes
// the already-corrupted output, just like a software check running after a
// hardware fault.
#pragma once

#include "common/check.hpp"
#include "fi/fault_site.hpp"
#include "nn/hooks.hpp"

namespace ft2 {

class InjectorHook : public OutputHook {
 public:
  explicit InjectorHook(FaultPlan plan) : plan_(plan) {}

  void on_generation_begin() override { fired_ = false; }

  void on_output(const HookContext& ctx, std::span<float> values) override {
    if (fired_) return;
    if (ctx.position != plan_.position || !(ctx.site == plan_.site)) return;
    FT2_ASSERT(plan_.neuron < values.size());
    const float before = values[plan_.neuron];
    values[plan_.neuron] = apply_bit_flips(before, plan_.flips, plan_.vtype);
    injected_value_ = values[plan_.neuron];
    original_value_ = before;
    fired_ = true;
  }

  bool fired() const { return fired_; }
  float original_value() const { return original_value_; }
  float injected_value() const { return injected_value_; }
  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  bool fired_ = false;
  float original_value_ = 0.0f;
  float injected_value_ = 0.0f;
};

}  // namespace ft2
