#include "fi/weight_fault.hpp"

namespace ft2 {

WeightFaultSpace::WeightFaultSpace(const ModelConfig& config)
    : config_(config) {
  for (LayerKind kind : config.block_layers()) {
    if (!is_linear_layer(kind)) continue;
    Segment seg;
    seg.kind = kind;
    seg.rows = config.layer_output_dim(kind);
    // Input width: d_ff for FC2/DOWN (they consume the MLP hidden), d_model
    // otherwise (attention projections and MLP inputs).
    seg.cols = (kind == LayerKind::kFc2 || kind == LayerKind::kDownProj)
                   ? config.d_ff
                   : config.d_model;
    seg.offset = per_block_;
    per_block_ += seg.rows * seg.cols;
    segments_.push_back(seg);
  }
  total_ = per_block_ * config.n_blocks;
  FT2_CHECK(total_ > 0);
}

WeightFaultPlan WeightFaultSpace::sample(FaultModel model, ValueType vtype,
                                         PhiloxStream& rng) const {
  const std::size_t index = rng.uniform(total_);
  const std::size_t block = index / per_block_;
  std::size_t within = index % per_block_;

  std::size_t s = segments_.size() - 1;
  while (s > 0 && segments_[s].offset > within) --s;
  const Segment& seg = segments_[s];
  within -= seg.offset;

  WeightFaultPlan plan;
  plan.site = {static_cast<int>(block), seg.kind};
  plan.row = within / seg.cols;
  plan.col = within % seg.cols;
  plan.flips = sample_bit_flips(model, vtype, rng);
  plan.vtype = vtype;
  return plan;
}

ScopedWeightFault::ScopedWeightFault(TransformerLM& model,
                                     const WeightFaultPlan& plan) {
  LinearWeights& lw = linear_at(model.weights(), model.config(), plan.site);
  FT2_CHECK(plan.row < lw.w.dim(0) && plan.col < lw.w.dim(1));
  target_ = &lw.w.at(plan.row, plan.col);
  original_ = *target_;
  faulty_ = apply_bit_flips(original_, plan.flips, plan.vtype);
  *target_ = faulty_;
}

ScopedWeightFault::~ScopedWeightFault() { *target_ = original_; }

namespace {

CampaignResult run_weight_fault_campaign_impl(
    TransformerLM& model, const std::vector<EvalInput>& inputs,
    const std::function<std::unique_ptr<DetectionScheme>()>& make_scheme,
    const CampaignConfig& config) {
  FT2_CHECK(!inputs.empty());
  const WeightFaultSpace space(model.config());

  CampaignResult result;
  for (std::size_t input_idx = 0; input_idx < inputs.size(); ++input_idx) {
    const EvalInput& input = inputs[input_idx];
    for (std::size_t t = 0; t < config.trials_per_input; ++t) {
      const std::size_t trial = input_idx * config.trials_per_input + t;
      PhiloxStream rng(config.seed, trial);
      const WeightFaultPlan plan =
          space.sample(config.fault_model, config.vtype, rng);

      ScopedWeightFault fault(model, plan);
      ProtectionHook protection(model.config(), make_scheme(), ObsSinks{});
      InferenceSession session(model);
      const HookRegistration reg = session.hooks().add(protection);

      GenerateOptions opts;
      opts.max_new_tokens = config.gen_tokens;
      opts.eos_token = -1;
      opts.fp16 = config.vtype == ValueType::kF16;
      const auto out = session.generate(input.prompt, opts);

      ++result.trials;
      switch (classify_outcome(out.tokens, input)) {
        case Outcome::kMaskedIdentical: ++result.masked_identical; break;
        case Outcome::kMaskedSemantic: ++result.masked_semantic; break;
        case Outcome::kSdc: ++result.sdc; break;
        case Outcome::kNotInjected: ++result.not_injected; break;
      }
    }
  }
  return result;
}

}  // namespace

CampaignResult run_weight_fault_campaign(TransformerLM& model,
                                         const std::vector<EvalInput>& inputs,
                                         const SchemeSpec& scheme,
                                         const BoundStore& offline_bounds,
                                         const CampaignConfig& config) {
  return run_weight_fault_campaign_impl(
      model, inputs,
      [&] {
        return std::make_unique<RangeRestrictScheme>(model.config(), scheme,
                                                     offline_bounds);
      },
      config);
}

CampaignResult run_weight_fault_campaign(TransformerLM& model,
                                         const std::vector<EvalInput>& inputs,
                                         const SchemeRef& scheme,
                                         const BoundStore& offline_bounds,
                                         const CampaignConfig& config) {
  return run_weight_fault_campaign_impl(
      model, inputs,
      [&] { return scheme.instantiate(model.config(), offline_bounds); },
      config);
}

}  // namespace ft2
