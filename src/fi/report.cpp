#include "fi/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.hpp"

namespace ft2 {

namespace {

/// Exact order statistic over a sorted sample (0 when empty).
double sorted_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// "[lo%, hi%]" interval cell.
std::string ci_cell(double lo, double hi) {
  return "[" + Table::format_pct(lo, 2) + ", " + Table::format_pct(hi, 2) +
         "]";
}

std::string wilson_cell(std::size_t k, std::size_t n,
                        const CampaignReport::CiConfig& ci) {
  if (n == 0) return "-";
  const ProportionCI w = wilson_ci(k, n, ci.z);
  return ci_cell(w.lo, w.hi);
}

std::string bootstrap_cell(std::size_t k, std::size_t n,
                           const CampaignReport::CiConfig& ci) {
  if (n == 0) return "-";
  const BootstrapCI b = bootstrap_proportion_ci(k, n, ci.bootstrap);
  return ci_cell(b.lo, b.hi);
}

Json ci_pair(double lo, double hi) {
  Json pair = Json::array();
  pair.push_back(lo);
  pair.push_back(hi);
  return pair;
}

/// Attaches `<prefix>_wilson` / `<prefix>_bootstrap` interval pairs for
/// the rate k/n to a JSON entry.
void attach_rate_cis(Json& entry, const std::string& prefix, std::size_t k,
                     std::size_t n, const CampaignReport::CiConfig& ci) {
  if (n == 0) return;
  const ProportionCI w = wilson_ci(k, n, ci.z);
  entry[prefix + "_wilson"] = ci_pair(w.lo, w.hi);
  const BootstrapCI b = bootstrap_proportion_ci(k, n, ci.bootstrap);
  entry[prefix + "_bootstrap"] = ci_pair(b.lo, b.hi);
}

}  // namespace

double CampaignReport::latency_quantile(double q) const {
  return sorted_quantile(detection_latencies, q);
}

double CampaignReport::SchemeTally::latency_quantile(double q) const {
  return sorted_quantile(detection_latencies, q);
}

CampaignReport aggregate_trial_records(
    const std::vector<TrialRecord>& records) {
  CampaignReport report;
  for (const TrialRecord& r : records) {
    ++report.result.trials;
    switch (r.outcome) {
      case Outcome::kMaskedIdentical: ++report.result.masked_identical; break;
      case Outcome::kMaskedSemantic: ++report.result.masked_semantic; break;
      case Outcome::kSdc: ++report.result.sdc; break;
      case Outcome::kNotInjected: ++report.result.not_injected; break;
    }

    const bool sdc = r.outcome == Outcome::kSdc;
    const bool detected = r.detections > 0;
    const LayerKind kind = r.plan.site.kind;

    CampaignReport::Tally& layer = report.by_layer[kind];
    ++layer.faults;
    layer.sdc += sdc ? 1 : 0;
    layer.detected += detected ? 1 : 0;

    auto& per_bit = report.by_model_layer_bit[r.fault_model][kind];
    for (int b = 0; b < r.plan.flips.count; ++b) {
      CampaignReport::Tally& tally = per_bit[r.plan.flips.bits[
          static_cast<std::size_t>(b)]];
      ++tally.faults;
      tally.sdc += sdc ? 1 : 0;
      tally.detected += detected ? 1 : 0;
    }

    CampaignReport::SchemeTally& scheme = report.by_scheme[r.scheme];
    ++scheme.trials;
    scheme.sdc += sdc ? 1 : 0;
    scheme.detected += detected ? 1 : 0;
    if (r.trial_ms > 0.0) {
      ++scheme.timed;
      scheme.total_ms += r.trial_ms;
    }

    if (r.fired && r.detect_position >= 0 &&
        r.detect_position >= static_cast<long long>(r.plan.position)) {
      const double latency = static_cast<double>(
          r.detect_position - static_cast<long long>(r.plan.position));
      report.detection_latencies.push_back(latency);
      scheme.detection_latencies.push_back(latency);
    }
  }
  std::sort(report.detection_latencies.begin(),
            report.detection_latencies.end());
  for (auto& [name, scheme] : report.by_scheme) {
    std::sort(scheme.detection_latencies.begin(),
              scheme.detection_latencies.end());
  }
  return report;
}

Table CampaignReport::outcome_table() const {
  Table table({"outcome", "trials", "fraction", "wilson_95", "bootstrap_95"});
  const auto row = [&](const char* name, std::size_t n) {
    table.begin_row()
        .cell(name)
        .count(n)
        .pct(result.trials == 0
                 ? 0.0
                 : static_cast<double>(n) /
                       static_cast<double>(result.trials))
        .cell(wilson_cell(n, result.trials, ci))
        .cell(bootstrap_cell(n, result.trials, ci));
  };
  row("masked_identical", result.masked_identical);
  row("masked_semantic", result.masked_semantic);
  row("sdc", result.sdc);
  row("not_injected", result.not_injected);
  table.begin_row()
      .cell("total")
      .count(result.trials)
      .pct(result.trials == 0 ? 0.0 : 1.0)
      .cell("-")
      .cell("-");
  return table;
}

Table CampaignReport::layer_table() const {
  Table table({"layer", "faults", "sdc", "sdc_rate", "sdc_wilson",
               "sdc_boot", "detected", "detected_rate"});
  for (const auto& [kind, tally] : by_layer) {
    table.begin_row()
        .cell(std::string(layer_kind_name(kind)))
        .count(tally.faults)
        .count(tally.sdc)
        .pct(tally.sdc_rate())
        .cell(wilson_cell(tally.sdc, tally.faults, ci))
        .cell(bootstrap_cell(tally.sdc, tally.faults, ci))
        .count(tally.detected)
        .pct(tally.detected_rate());
  }
  return table;
}

Table CampaignReport::layer_bit_table() const {
  Table table({"fault_model", "layer", "bit", "faults", "sdc", "sdc_rate"});
  for (const auto& [model, per_layer] : by_model_layer_bit) {
    for (const auto& [kind, per_bit] : per_layer) {
      for (const auto& [bit, tally] : per_bit) {
        table.begin_row()
            .cell(fault_model_name(model))
            .cell(std::string(layer_kind_name(kind)))
            .count(static_cast<std::size_t>(bit))
            .count(tally.faults)
            .count(tally.sdc)
            .pct(tally.sdc_rate());
      }
    }
  }
  return table;
}

Table CampaignReport::scheme_table() const {
  const auto it = by_scheme.find("none");
  const SchemeTally* none =
      it != by_scheme.end() && it->second.trials > 0 ? &it->second : nullptr;

  Table table({"scheme", "trials", "sdc", "sdc_rate", "sdc_wilson",
               "sdc_boot", "sdc_reduction", "detected_rate", "det_wilson",
               "lat_p50", "lat_p95", "lat_p99", "mean_ms", "overhead"});
  for (const auto& [name, tally] : by_scheme) {
    table.begin_row()
        .cell(name.empty() ? "(unrecorded)" : name)
        .count(tally.trials)
        .count(tally.sdc)
        .pct(tally.sdc_rate())
        .cell(wilson_cell(tally.sdc, tally.trials, ci))
        .cell(bootstrap_cell(tally.sdc, tally.trials, ci));
    if (none != nullptr && none != &tally && none->sdc_rate() > 0.0) {
      table.pct(1.0 - tally.sdc_rate() / none->sdc_rate());
    } else {
      table.cell("-");
    }
    table.pct(tally.detected_rate())
        .cell(wilson_cell(tally.detected, tally.trials, ci))
        .num(tally.latency_quantile(0.50), 1)
        .num(tally.latency_quantile(0.95), 1)
        .num(tally.latency_quantile(0.99), 1);
    if (tally.timed > 0) {
      table.num(tally.mean_trial_ms(), 3);
    } else {
      table.cell("-");
    }
    if (none != nullptr && none != &tally && tally.timed > 0 &&
        none->mean_trial_ms() > 0.0) {
      table.pct(tally.mean_trial_ms() / none->mean_trial_ms() - 1.0);
    } else {
      table.cell("-");
    }
  }
  return table;
}

Table CampaignReport::latency_table() const {
  Table table({"detections", "p50", "p95", "p99", "max"});
  table.begin_row()
      .count(detection_latencies.size())
      .num(latency_quantile(0.50), 1)
      .num(latency_quantile(0.95), 1)
      .num(latency_quantile(0.99), 1)
      .num(detection_latencies.empty() ? 0.0 : detection_latencies.back(), 1);
  return table;
}

Json CampaignReport::to_json() const {
  Json doc = Json::object();

  Json outcomes = Json::object();
  outcomes["trials"] = result.trials;
  outcomes["masked_identical"] = result.masked_identical;
  outcomes["masked_semantic"] = result.masked_semantic;
  outcomes["sdc"] = result.sdc;
  outcomes["not_injected"] = result.not_injected;
  outcomes["sdc_rate"] = result.sdc_rate();
  attach_rate_cis(outcomes, "masked_identical", result.masked_identical,
                  result.trials, ci);
  attach_rate_cis(outcomes, "masked_semantic", result.masked_semantic,
                  result.trials, ci);
  attach_rate_cis(outcomes, "sdc", result.sdc, result.trials, ci);
  attach_rate_cis(outcomes, "not_injected", result.not_injected,
                  result.trials, ci);
  doc["outcomes"] = std::move(outcomes);

  Json ci_doc = Json::object();
  ci_doc["z"] = ci.z;
  ci_doc["confidence"] = ci.bootstrap.confidence;
  ci_doc["bootstrap_resamples"] = ci.bootstrap.resamples;
  ci_doc["bootstrap_seed"] = std::to_string(ci.bootstrap.seed);
  doc["ci"] = std::move(ci_doc);

  Json layers = Json::object();
  for (const auto& [kind, tally] : by_layer) {
    Json entry = Json::object();
    entry["faults"] = tally.faults;
    entry["sdc"] = tally.sdc;
    entry["sdc_rate"] = tally.sdc_rate();
    entry["detected"] = tally.detected;
    entry["detected_rate"] = tally.detected_rate();
    attach_rate_cis(entry, "sdc", tally.sdc, tally.faults, ci);
    attach_rate_cis(entry, "detected", tally.detected, tally.faults, ci);
    layers[std::string(layer_kind_name(kind))] = std::move(entry);
  }
  doc["by_layer"] = std::move(layers);

  Json models = Json::object();
  for (const auto& [model, per_layer] : by_model_layer_bit) {
    Json layer_obj = Json::object();
    for (const auto& [kind, per_bit] : per_layer) {
      Json bits = Json::object();
      for (const auto& [bit, tally] : per_bit) {
        Json entry = Json::object();
        entry["faults"] = tally.faults;
        entry["sdc"] = tally.sdc;
        entry["sdc_rate"] = tally.sdc_rate();
        bits[std::to_string(bit)] = std::move(entry);
      }
      layer_obj[std::string(layer_kind_name(kind))] = std::move(bits);
    }
    models[fault_model_name(model)] = std::move(layer_obj);
  }
  doc["by_model_layer_bit"] = std::move(models);

  Json schemes = Json::object();
  const auto none_it = by_scheme.find("none");
  const SchemeTally* none =
      none_it != by_scheme.end() && none_it->second.trials > 0
          ? &none_it->second
          : nullptr;
  for (const auto& [name, tally] : by_scheme) {
    Json entry = Json::object();
    entry["trials"] = tally.trials;
    entry["sdc"] = tally.sdc;
    entry["sdc_rate"] = tally.sdc_rate();
    if (none != nullptr && none != &tally && none->sdc_rate() > 0.0) {
      entry["sdc_reduction"] = 1.0 - tally.sdc_rate() / none->sdc_rate();
    }
    entry["detected"] = tally.detected;
    entry["detected_rate"] = tally.detected_rate();
    attach_rate_cis(entry, "sdc", tally.sdc, tally.trials, ci);
    attach_rate_cis(entry, "detected", tally.detected, tally.trials, ci);
    entry["latency_count"] = tally.detection_latencies.size();
    entry["latency_p50"] = tally.latency_quantile(0.50);
    entry["latency_p95"] = tally.latency_quantile(0.95);
    entry["latency_p99"] = tally.latency_quantile(0.99);
    if (tally.timed > 0) {
      entry["mean_trial_ms"] = tally.mean_trial_ms();
      if (none != nullptr && none != &tally && none->mean_trial_ms() > 0.0) {
        entry["overhead"] = tally.mean_trial_ms() / none->mean_trial_ms() - 1.0;
      }
    }
    schemes[name.empty() ? "(unrecorded)" : name] = std::move(entry);
  }
  doc["by_scheme"] = std::move(schemes);

  Json latency = Json::object();
  latency["count"] = detection_latencies.size();
  latency["p50"] = latency_quantile(0.50);
  latency["p95"] = latency_quantile(0.95);
  latency["p99"] = latency_quantile(0.99);
  latency["max"] =
      detection_latencies.empty() ? 0.0 : detection_latencies.back();
  doc["detection_latency"] = std::move(latency);

  return doc;
}

std::vector<TrialRecord> load_trial_records(const std::string& path) {
  std::ifstream file(path);
  FT2_CHECK_MSG(file.good(), "cannot open trial log '" << path << "'");
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    return read_trial_records_csv(file);
  }
  // Sniff: a JSON array document starts with '['; JSONL lines start with
  // '{'.
  std::stringstream buffer;
  buffer << file.rdbuf();
  const std::string text = buffer.str();
  const std::size_t first = text.find_first_not_of(" \t\r\n");
  FT2_CHECK_MSG(first != std::string::npos, "empty trial log '" << path << "'");
  if (text[first] == '[') {
    return read_trial_records_json(Json::parse(text));
  }
  std::istringstream lines(text);
  return read_trial_records_jsonl(lines);
}

}  // namespace ft2
