// Live telemetry: periodic time-series sampling of a MetricsRegistry.
//
// Every export the tree had before this module (metrics JSON, Chrome
// traces, flight-recorder JSONL) is post-mortem — you learn what a serve
// run or a campaign did after it exits. TelemetrySampler turns the same
// MetricsRegistry into a live signal: a background thread snapshots the
// registry on a fixed interval into a bounded ring of timestamped
// MetricsSnapshots, and consecutive samples derive per-interval activity —
// counter deltas become events/sec, histogram bucket deltas become
// interval-local percentiles (what did latency look like in the LAST
// second, not since process start), gauges pass through. The HTTP endpoint
// (src/obs/http_endpoint.hpp) and `ft2 top` read that view; the shard
// telemetry board (src/fi/shard.hpp) reuses the same snapshot algebra to
// merge worker-process frames.
//
// Sampling is strictly observational: the sampler only ever calls
// MetricsRegistry::snapshot() (a reader), so generated tokens, campaign
// outcomes and every counter are bit-identical with the sampler running or
// not. Overhead is one snapshot per interval regardless of event rate.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ft2 {

class Json;

/// One timestamped registry snapshot in the sampler ring.
struct TelemetrySample {
  std::uint64_t steady_ns = 0;  ///< monotonic clock at snapshot time
  std::uint64_t wall_ms = 0;    ///< unix epoch milliseconds (display only)
  std::uint64_t seq = 0;        ///< increases per sample, survives eviction
  MetricsSnapshot snapshot;
};

/// Per-interval activity derived from two cumulative samples.
///
/// Counters: value delta and delta/seconds rate. Histograms: the bucket
/// counts observed during the interval (newer minus older, clamped at 0 so
/// a registry reset never yields negative buckets) with interval-local
/// quantiles via MetricsSnapshot::HistogramValue. Gauges are instantaneous
/// already and pass through from the newer sample.
struct TelemetryInterval {
  double seconds = 0.0;

  struct CounterRate {
    std::string name;
    std::uint64_t delta = 0;
    double per_sec = 0.0;
  };
  std::vector<CounterRate> counters;  ///< sorted by name
  /// Interval-local histogram views (same uppers as the cumulative
  /// histogram; counts/sum are the interval delta).
  std::vector<MetricsSnapshot::HistogramValue> histograms;
  std::vector<MetricsSnapshot::GaugeValue> gauges;

  const CounterRate* find_counter(std::string_view name) const;
  const MetricsSnapshot::HistogramValue* find_histogram(
      std::string_view name) const;
  double counter_rate(std::string_view name) const;

  /// {"seconds": dt, "counters": {name: {delta, per_sec}},
  ///  "histograms": {name: {count, mean, p50, p95, p99}}, "gauges": {...}}
  Json to_json() const;
};

/// Derives the per-interval view between two cumulative samples (prev must
/// be the older one; a fresh metric that only exists in `next` counts from
/// zero).
TelemetryInterval derive_interval(const TelemetrySample& prev,
                                  const TelemetrySample& next);

/// Element-wise merge of several cumulative snapshots into one: counters
/// and gauges sum, histograms with identical bucket bounds sum bucket-wise
/// (mismatched bounds keep the first snapshot's view). The shard parent
/// uses this to aggregate worker-process snapshots into one campaign view.
MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts);

/// Anything that can serve a point-in-time metrics view over HTTP: the
/// sampler (live local registry) and the shard progress board (merged
/// worker frames) both implement it.
class TelemetrySource {
 public:
  virtual ~TelemetrySource() = default;
  /// Cumulative snapshot for Prometheus exposition (GET /metrics).
  virtual MetricsSnapshot telemetry_snapshot() const = 0;
  /// Full structured view for GET /snapshot.json (cumulative + interval).
  virtual Json telemetry_json() const = 0;
};

/// Background sampling thread over one MetricsRegistry.
///
/// start() launches the thread; it snapshots every `interval_ms` into a
/// ring of at most `ring_capacity` samples (oldest evicted). sample_now()
/// takes a sample synchronously on the calling thread — tests and
/// completion paths use it to avoid waiting out an interval. The sampler
/// never mutates the registry and may be started/stopped around any
/// workload.
class TelemetrySampler : public TelemetrySource {
 public:
  struct Options {
    std::size_t interval_ms = 1000;
    std::size_t ring_capacity = 120;  ///< 2 min of history at 1 Hz
  };

  explicit TelemetrySampler(const MetricsRegistry* registry)
      : TelemetrySampler(registry, Options()) {}
  TelemetrySampler(const MetricsRegistry* registry, Options options);
  ~TelemetrySampler() override;
  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Launches the background thread (idempotent). Takes an immediate
  /// first sample so latest() is valid as soon as start() returns.
  void start();

  /// Stops and joins the background thread (idempotent; also run by the
  /// destructor). Ring contents survive stop().
  void stop();

  bool running() const;
  const Options& options() const { return options_; }

  /// Synchronously samples the registry into the ring; returns the sample.
  TelemetrySample sample_now();

  std::size_t sample_count() const;
  /// Newest sample (sample_count() must be > 0).
  TelemetrySample latest() const;
  /// Ring contents, oldest first.
  std::vector<TelemetrySample> history() const;

  /// Interval view between the two newest samples (zero-valued when fewer
  /// than two samples exist).
  TelemetryInterval latest_interval() const;

  // TelemetrySource: /metrics serves a fresh registry snapshot (not the
  // last ring entry), /snapshot.json serves ts + cumulative + interval.
  MetricsSnapshot telemetry_snapshot() const override;
  Json telemetry_json() const override;

 private:
  void run_loop();
  TelemetrySample take_sample_locked();

  const MetricsRegistry* registry_;
  Options options_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<TelemetrySample> ring_;
  std::uint64_t next_seq_ = 0;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace ft2
