#include "obs/trace.hpp"

#include <atomic>
#include <chrono>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/json.hpp"

namespace ft2 {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint32_t trace_thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

std::size_t default_trace_capacity() {
  const std::size_t capacity = env_size("FT2_TRACE_CAPACITY", 4096);
  return capacity == 0 ? 4096 : capacity;
}

TraceSpan::TraceSpan(Tracer* tracer, std::string name) : tracer_(tracer) {
  event_.name = std::move(name);
  event_.start_ns = now_ns();
  event_.thread_index = trace_thread_index();
}

TraceSpan& TraceSpan::tag(std::string key, std::string value) {
  if (tracer_ != nullptr) {
    event_.tags.emplace_back(std::move(key), std::move(value));
  }
  return *this;
}

void TraceSpan::end() {
  if (tracer_ == nullptr) return;
  event_.end_ns = now_ns();
  tracer_->record(std::move(event_));
  tracer_ = nullptr;
}

Tracer::Tracer(std::size_t capacity, bool enabled)
    : capacity_(capacity), enabled_(enabled) {
  FT2_CHECK_MSG(capacity_ >= 1, "tracer capacity must be at least 1");
  ring_.reserve(capacity_);
}

TraceSpan Tracer::span(std::string name) {
  if (!enabled_) return TraceSpan();
  return TraceSpan(this, std::move(name));
}

void Tracer::instant(std::string name,
                     std::vector<std::pair<std::string, std::string>> tags) {
  if (!enabled_) return;
  TraceEvent event;
  event.name = std::move(name);
  event.start_ns = event.end_ns = now_ns();
  event.thread_index = trace_thread_index();
  event.tags = std::move(tags);
  record(std::move(event));
}

void Tracer::record(TraceEvent event) {
  std::lock_guard lock(mutex_);
  event.seq = recorded_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[head_] = std::move(event);
    head_ = (head_ + 1) % capacity_;
    ++dropped_;
    dropped_counter_.inc();
  }
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void Tracer::bind_metrics(MetricsRegistry* metrics) {
  std::lock_guard lock(mutex_);
  dropped_counter_ = metrics == nullptr ? Counter()
                                        : metrics->counter("trace.dropped");
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::size_t Tracer::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

void Tracer::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

Json Tracer::to_json() const {
  Json array = Json::array();
  for (const TraceEvent& event : events()) {
    Json entry = Json::object();
    entry["name"] = event.name;
    entry["seq"] = event.seq;
    entry["thread"] = static_cast<std::size_t>(event.thread_index);
    entry["start_ns"] = static_cast<double>(event.start_ns);
    entry["end_ns"] = static_cast<double>(event.end_ns);
    entry["dur_ms"] = event.duration_ms();
    if (!event.tags.empty()) {
      Json tags = Json::object();
      for (const auto& [k, v] : event.tags) tags[k] = v;
      entry["tags"] = std::move(tags);
    }
    array.push_back(std::move(entry));
  }
  return array;
}

Tracer& Tracer::global() {
  static Tracer tracer(default_trace_capacity(), env_flag("FT2_TRACE", false));
  return tracer;
}

}  // namespace ft2
