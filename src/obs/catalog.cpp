#include "obs/catalog.hpp"

#include <algorithm>
#include <cctype>

#include "nn/layer_kind.hpp"

namespace ft2 {

namespace {

struct Template {
  const char* name;  ///< may contain one `<KIND>` or `<OUTCOME>` placeholder
  const char* kind;
  const char* help;
};

// The un-expanded registry. Every `counter(...)` / `gauge(...)` /
// `histogram(...)` / `span(...)` call site in src/ must have a line here
// (tests/obs/catalog_test.cpp enforces the metric side against a live run).
constexpr Template kTemplates[] = {
    // serve/serve_engine.cpp
    {"serve.requests.submitted", "counter", "requests accepted by submit()"},
    {"serve.requests.completed", "counter", "requests finished"},
    {"serve.tokens.generated", "counter", "decode tokens emitted"},
    {"serve.prefill.positions", "counter", "prompt positions prefilled"},
    {"serve.decode.steps", "counter", "batched decode steps"},
    {"serve.decode.rows", "counter", "request-rows across decode steps"},
    {"serve.queue.wait_ms", "histogram", "submit-to-prefill queue wait"},
    {"serve.prefill.latency_ms", "histogram", "per-request prefill latency"},
    {"serve.decode.step_ms", "histogram", "batched decode step latency"},
    {"serve.request.decode_ms", "histogram",
     "per-request decode wall time"},
    {"serve.rejected", "counter", "submits refused by max_queue_depth"},
    {"serve.cancelled", "counter", "requests cancelled before finishing"},
    {"serve.preemptions", "counter",
     "requests evicted back to the queue under KV pool pressure"},
    {"serve.prefix.shared_rows", "counter",
     "prompt positions adopted from a shared prefix instead of computed"},
    {"serve.request.ttft_ms", "histogram",
     "submit-to-first-token latency per request"},
    {"serve.token.gap_ms", "histogram",
     "latency between consecutive tokens of one request"},
    {"serve.batch.occupancy", "gauge", "active rows in the decode batch"},
    {"serve.kv.blocks_used", "gauge", "KV pool blocks currently mapped"},
    {"serve.kv.blocks_free", "gauge", "KV pool blocks on the free list"},
    {"serve.kv.bytes_resident", "gauge", "bytes of mapped KV pool blocks"},
    {"serve.kernel_tier", "gauge",
     "GEMM dispatch tier the engine runs on (0=sse 1=avx2 2=avx512)"},
    // protect/scheme.cpp
    {"protect.checked.<KIND>", "counter", "values range-checked"},
    {"protect.nan.<KIND>", "counter", "NaNs corrected"},
    {"protect.oob.<KIND>", "counter", "out-of-bound values clipped"},
    {"protect.clip_magnitude.<KIND>", "histogram",
     "|original| of clipped values"},
    // protect/abft_linear.cpp
    {"protect.checksum_mismatch.<KIND>", "counter",
     "rows whose column-sum checksum missed its calibrated band"},
    // protect/adaptive.cpp
    {"protect.adapt.<KIND>", "counter",
     "online bound re-profiles triggered by low headroom"},
    // protect/drift.cpp
    {"protect.headroom.<KIND>", "histogram",
     "per-dispatch fraction of the enforced bound left unused"},
    {"protect.headroom.near_clip_frac", "gauge",
     "fraction of dispatches within the near-clip threshold"},
    // fi/campaign.cpp
    {"campaign.trials", "counter", "fault-injection trials completed"},
    {"campaign.outcome.<OUTCOME>", "counter", "trials per outcome"},
    {"campaign.site.<KIND>", "counter", "trials per injected layer kind"},
    {"campaign.trial_ms", "histogram", "wall time per trial"},
    {"campaign.prefix.hit", "counter",
     "trials forked from the fault-free prefix snapshot"},
    {"campaign.prefix.miss", "counter",
     "trials that fell back to a full run"},
    {"campaign.prefix.reused_positions", "histogram",
     "positions skipped per forked trial"},
    // fi/shard.cpp
    {"campaign.shard.resumed", "counter",
     "trials recovered from an existing shard log on resume"},
    {"campaign.shard.executed", "counter",
     "trials actually run by this shard invocation"},
    {"campaign.shard.torn_tail", "counter",
     "torn shard-log tails truncated during resume"},
    // fi/shard.cpp (ShardProgressBoard — parent-side merged view)
    {"campaign.progress.done", "gauge",
     "trials finished across all shards (merged telemetry frames)"},
    {"campaign.progress.total", "gauge", "trials planned across all shards"},
    {"campaign.progress.trials_per_s", "gauge",
     "aggregate completion rate since the first telemetry frame"},
    {"campaign.progress.eta_s", "gauge",
     "estimated seconds until all shards finish (-1 before a rate exists)"},
    {"campaign.shard.progress.<N>", "gauge",
     "trials finished by shard N (merged telemetry frames)"},
    // obs/trace.cpp
    {"trace.dropped", "counter",
     "spans overwritten on Tracer ring wrap-around"},
    // trace span names (Tracer, not MetricsRegistry)
    {"serve.prefill", "span", "one request's prefill"},
    {"serve.decode_step", "span", "one batched decode step"},
    {"campaign.trial", "span", "one fault-injection trial"},
    {"campaign.shard", "span", "one campaign shard run (resume + range)"},
};

constexpr const char* kOutcomeNames[] = {"masked_identical", "masked_semantic",
                                         "sdc", "not_injected"};

std::vector<CatalogEntry> build_catalog() {
  std::vector<CatalogEntry> entries;
  for (const Template& t : kTemplates) {
    const std::string name = t.name;
    const std::size_t kind_pos = name.find("<KIND>");
    const std::size_t outcome_pos = name.find("<OUTCOME>");
    if (kind_pos != std::string::npos) {
      for (std::size_t k = 0; k < kLayerKindCount; ++k) {
        std::string expanded = name;
        expanded.replace(kind_pos, 6,
                         layer_kind_name(static_cast<LayerKind>(k)));
        entries.push_back({std::move(expanded), t.kind, t.help});
      }
    } else if (outcome_pos != std::string::npos) {
      for (const char* outcome : kOutcomeNames) {
        std::string expanded = name;
        expanded.replace(outcome_pos, 9, outcome);
        entries.push_back({std::move(expanded), t.kind, t.help});
      }
    } else {
      entries.push_back({name, t.kind, t.help});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const CatalogEntry& a, const CatalogEntry& b) {
              return a.name < b.name;
            });
  return entries;
}

}  // namespace

const std::vector<CatalogEntry>& metric_catalog() {
  static const std::vector<CatalogEntry> catalog = build_catalog();
  return catalog;
}

std::vector<std::string> all_metric_names() {
  std::vector<std::string> names;
  for (const CatalogEntry& e : metric_catalog()) names.push_back(e.name);
  return names;
}

std::vector<std::string> metric_template_names() {
  std::vector<std::string> names;
  for (const Template& t : kTemplates) names.emplace_back(t.name);
  std::sort(names.begin(), names.end());
  return names;
}

const CatalogEntry* find_catalog_entry(std::string_view name) {
  for (const CatalogEntry& e : metric_catalog()) {
    if (e.name == name) return &e;
  }
  // Numeric wildcard: foo.<digits> matches a cataloged foo.<N>.
  const std::size_t dot = name.rfind('.');
  if (dot != std::string_view::npos && dot + 1 < name.size()) {
    const std::string_view tail = name.substr(dot + 1);
    const bool all_digits =
        std::all_of(tail.begin(), tail.end(),
                    [](unsigned char c) { return std::isdigit(c) != 0; });
    if (all_digits) {
      const std::string wildcard = std::string(name.substr(0, dot + 1)) + "<N>";
      for (const CatalogEntry& e : metric_catalog()) {
        if (e.name == wildcard) return &e;
      }
    }
  }
  return nullptr;
}

bool is_cataloged_metric(std::string_view name) {
  return find_catalog_entry(name) != nullptr;
}

}  // namespace ft2
