#include "obs/http_endpoint.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/check.hpp"
#include "common/json.hpp"
#include "obs/prom_export.hpp"
#include "obs/telemetry.hpp"

namespace ft2 {

namespace {

/// send() the whole buffer; MSG_NOSIGNAL so a client that hangs up early
/// yields EPIPE instead of killing the process with SIGPIPE.
void send_all(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to do
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(int status, const char* reason,
                          const std::string& content_type,
                          const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.1 " << status << " " << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

TelemetryEndpoint::TelemetryEndpoint(const TelemetrySource* source,
                                     Options options)
    : source_(source), options_(std::move(options)) {
  FT2_CHECK(source_ != nullptr);
}

TelemetryEndpoint::~TelemetryEndpoint() { stop(); }

void TelemetryEndpoint::start() {
  if (running_) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FT2_CHECK_MSG(listen_fd_ >= 0, "telemetry endpoint: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  FT2_CHECK_MSG(::inet_pton(AF_INET, options_.bind_address.c_str(),
                            &addr.sin_addr) == 1,
                "telemetry endpoint: bad bind address");
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    FT2_CHECK_MSG(false, std::string("telemetry endpoint: bind failed: ") +
                             std::strerror(err));
  }
  FT2_CHECK_MSG(::listen(listen_fd_, 16) == 0,
                "telemetry endpoint: listen failed");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  FT2_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                          &len) == 0);
  bound_port_ = ntohs(bound.sin_port);

  running_ = true;
  thread_ = std::thread([this] { serve_loop(); });
}

void TelemetryEndpoint::stop() {
  if (!running_) return;
  running_ = false;
  // shutdown() unblocks the accept() in the serving thread.
  ::shutdown(listen_fd_, SHUT_RDWR);
  thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

std::string TelemetryEndpoint::url() const {
  return "http://" + options_.bind_address + ":" + std::to_string(bound_port_);
}

void TelemetryEndpoint::serve_loop() {
  while (running_) {
    const int client = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (client < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or unrecoverable) — exit the loop
    }
    handle_connection(client);
    ::close(client);
  }
}

void TelemetryEndpoint::handle_connection(int client_fd) {
  // Read until the end of the request head. GETs have no body; 4 KiB is
  // plenty for any scrape client's request line + headers.
  std::string request;
  char buf[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 64 * 1024) {
    pollfd pfd{client_fd, POLLIN, 0};
    if (::poll(&pfd, 1, 2000) <= 0) return;  // slow/dead client: drop it
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) return;
    request.append(buf, static_cast<std::size_t>(n));
  }

  std::istringstream head(request);
  std::string method, target, version;
  head >> method >> target >> version;

  if (method != "GET") {
    send_all(client_fd, http_response(405, "Method Not Allowed", "text/plain",
                                      "only GET is supported\n"));
    return;
  }
  // Strip any query string: /snapshot.json?x=y routes like /snapshot.json.
  const std::size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);

  if (target == "/metrics") {
    send_all(client_fd,
             http_response(200, "OK", "text/plain; version=0.0.4",
                           prometheus_text(source_->telemetry_snapshot())));
  } else if (target == "/snapshot.json") {
    send_all(client_fd, http_response(200, "OK", "application/json",
                                      source_->telemetry_json().dump(-1)));
  } else if (target == "/healthz") {
    send_all(client_fd, http_response(200, "OK", "text/plain", "ok\n"));
  } else {
    send_all(client_fd,
             http_response(404, "Not Found", "text/plain", "not found\n"));
  }
}

HttpResponse http_get(const std::string& host, int port,
                      const std::string& path, int timeout_ms) {
  HttpResponse response;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    response.body = "socket() failed";
    return response;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    response.body = "bad host (http_get takes a literal IPv4 address)";
    return response;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    response.body = std::string("connect failed: ") + std::strerror(errno);
    return response;
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  send_all(fd, request);

  // Server sends Connection: close, so read to EOF under the timeout.
  std::string raw;
  char buf[4096];
  for (;;) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      response.body = "timed out waiting for response";
      return response;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      ::close(fd);
      response.body = std::string("recv failed: ") + std::strerror(errno);
      return response;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...\r\n\r\n<body>"
  const std::size_t space = raw.find(' ');
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (space == std::string::npos || head_end == std::string::npos) {
    response.body = "malformed response";
    return response;
  }
  response.status = std::atoi(raw.c_str() + space + 1);
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace ft2
