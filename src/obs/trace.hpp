// Lightweight structured event tracing: bounded ring buffer of spans.
//
// A Tracer records named spans (start/stop steady-clock timestamps plus
// small key/value tag lists) into a fixed-capacity ring buffer — when full,
// the oldest events are overwritten, so tracing a long-running server is
// always O(capacity) memory. Recording takes a mutex (span granularity is
// a request or a batched decode step, never a per-value hot loop).
//
// Zero-cost when disabled: span() checks one bool and returns an inert
// TraceSpan without reading the clock; the destructor is a null check.
// The process-wide tracer (Tracer::global()) starts disabled and is turned
// on with the FT2_TRACE environment variable or set_enabled(true).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace ft2 {

class Json;

/// Ring capacity for Tracer::global(): the FT2_TRACE_CAPACITY environment
/// variable, or 4096 when unset/zero.
std::size_t default_trace_capacity();

/// Dense index of the calling thread among all threads that ever traced
/// (assigned on first use, stable for the thread's lifetime).
std::uint32_t trace_thread_index();

/// One finished span. Timestamps are steady-clock nanoseconds (comparable
/// within a process, not wall-clock). `seq` increases monotonically with
/// recording order, surviving ring wrap-around.
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t seq = 0;
  /// Dense per-process index of the thread that started the span (first
  /// tracing thread = 0, second = 1, ...). Stable for a thread's lifetime;
  /// the Chrome exporter uses it as the fallback tid.
  std::uint32_t thread_index = 0;
  std::vector<std::pair<std::string, std::string>> tags;

  double duration_ms() const {
    return static_cast<double>(end_ns - start_ns) / 1e6;
  }
};

class Tracer;

/// RAII span: started by Tracer::span, recorded when destroyed (or on an
/// explicit end()). Inert when the tracer was disabled at start time.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceSpan&& other) noexcept
      : tracer_(other.tracer_), event_(std::move(other.event_)) {
    other.tracer_ = nullptr;
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      end();
      tracer_ = other.tracer_;
      event_ = std::move(other.event_);
      other.tracer_ = nullptr;
    }
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { end(); }

  /// Attaches a key/value tag (no-op when inert).
  TraceSpan& tag(std::string key, std::string value);

  /// Stamps the stop time and records the span now (idempotent).
  void end();

  bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  TraceSpan(Tracer* tracer, std::string name);

  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

/// Bounded span recorder. Thread-safe; spans may end on any thread.
class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096, bool enabled = false);

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }
  std::size_t capacity() const { return capacity_; }

  /// Starts a span (inert — no clock read, no allocation — when disabled).
  [[nodiscard]] TraceSpan span(std::string name);

  /// Records an instant event (start == end).
  void instant(std::string name,
               std::vector<std::pair<std::string, std::string>> tags = {});

  /// Events currently in the buffer, oldest first.
  std::vector<TraceEvent> events() const;

  /// Number of buffered events (<= capacity).
  std::size_t size() const;

  /// Total events ever recorded (counts those evicted by wrap-around).
  std::uint64_t recorded() const;

  /// Spans overwritten (lost) to ring wrap-around since construction /
  /// the last clear(). recorded() - size() while the ring has never been
  /// cleared; tracked separately so clear() keeps the distinction.
  std::uint64_t dropped() const;

  /// Mirrors every future wrap-around drop into the cataloged
  /// `trace.dropped` counter of `metrics` (nullptr detaches). The ring
  /// still serves events; the counter makes silent span loss visible on
  /// /metrics so an operator knows a Chrome export is incomplete.
  void bind_metrics(MetricsRegistry* metrics);

  void clear();

  /// [{"name", "start_ns", "end_ns", "dur_ms", "seq", "tags": {...}}, ...]
  Json to_json() const;

  /// Process-wide tracer; enabled at startup iff FT2_TRACE is truthy, ring
  /// capacity from FT2_TRACE_CAPACITY (default 4096).
  static Tracer& global();

 private:
  friend class TraceSpan;
  void record(TraceEvent event);

  std::size_t capacity_;
  bool enabled_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  ///< next write slot once the ring is full
  std::uint64_t recorded_ = 0;
  std::uint64_t dropped_ = 0;
  Counter dropped_counter_;  ///< see bind_metrics(); inert when unbound
};

}  // namespace ft2
