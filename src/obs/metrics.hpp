// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms with a lock-free fast path.
//
// Every subsystem that used to keep ad-hoc tallies (ServeCounters,
// ProtectionStats, campaign outcome counts) can now ALSO publish them
// through one MetricsRegistry, so a single snapshot() call exports the
// whole process state as JSON or a human table — no bespoke printf
// counters per benchmark.
//
// Concurrency model: each metric cell holds kMetricStripes cache-line-
// separated atomic slots; a thread picks its stripe once (thread_local)
// and updates it with relaxed atomics, so concurrent writers never
// contend on a line and never take a lock. snapshot() sums the stripes.
// Registration (name -> cell lookup) takes a mutex — do it once at
// construction time, not per event. A snapshot taken while writers are
// active is per-metric consistent (each value is a valid point-in-time
// sum) but not a cross-metric atomic cut.
//
// Handles (Counter / Gauge / HistogramMetric) are cheap copyable views.
// A default-constructed handle is inert: every operation is a single
// null-check branch, which is what "metrics disabled" compiles down to.
//
// Naming scheme (enforced by convention, see docs/OBSERVABILITY.md):
//   <subsystem>.<object>.<measure>[_<unit>][.<tag>]
// e.g. serve.queue.wait_ms, protect.oob.V_PROJ, campaign.outcome.sdc.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ft2 {

class Json;
class Table;

inline constexpr std::size_t kMetricStripes = 16;

namespace detail_obs {

/// One cache line per stripe so concurrent writers never false-share.
struct alignas(64) Stripe {
  std::atomic<std::uint64_t> value{0};
};

/// Stripe index of the calling thread: assigned round-robin on first use,
/// constant for the thread's lifetime.
std::size_t stripe_index();

struct CounterCell {
  std::string name;
  std::array<Stripe, kMetricStripes> stripes;

  void add(std::uint64_t n) {
    stripes[stripe_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t sum() const;
};

struct GaugeCell {
  std::string name;
  std::atomic<double> value{0.0};
};

/// Histogram over fixed, ascending bucket upper bounds. A sample lands in
/// the first bucket whose upper bound is >= the sample ("le" semantics);
/// samples above the last bound land in an implicit +inf overflow bucket.
/// NaN samples are counted separately and never touch buckets or the sum.
struct HistogramCell {
  std::string name;
  std::vector<double> uppers;  ///< ascending; overflow bucket appended
  /// counts[stripe * n_buckets + bucket]; n_buckets == uppers.size() + 1.
  std::vector<Stripe> counts;
  std::array<Stripe, kMetricStripes> nan_counts;
  /// Sum of all finite samples, bit-cast double per stripe (CAS add).
  std::array<Stripe, kMetricStripes> sums;

  void add(double x);
  void add_prebucketed(std::span<const std::uint64_t> bucket_counts,
                       double sum);
  std::size_t n_buckets() const { return uppers.size() + 1; }
};

}  // namespace detail_obs

/// Monotonic event counter handle. Inert when default-constructed.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) {
    if (cell_ != nullptr) cell_->add(n);
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail_obs::CounterCell* cell) : cell_(cell) {}
  detail_obs::CounterCell* cell_ = nullptr;
};

/// Last-writer-wins instantaneous value handle (e.g. batch occupancy).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail_obs::GaugeCell* cell) : cell_(cell) {}
  detail_obs::GaugeCell* cell_ = nullptr;
};

/// Fixed-bucket histogram handle (latencies, clip magnitudes).
class HistogramMetric {
 public:
  HistogramMetric() = default;
  void observe(double x) {
    if (cell_ != nullptr) cell_->add(x);
  }
  /// Merges counts a caller has already bucketed with this histogram's
  /// semantics (bucket i = first upper >= x, trailing overflow) plus the
  /// corresponding sample sum — one call instead of one observe() per
  /// sample, for hooks that accumulate on a hot path and flush at a
  /// boundary. `bucket_counts.size()` must equal uppers.size() + 1.
  void observe_prebucketed(std::span<const std::uint64_t> bucket_counts,
                           double sum) {
    if (cell_ != nullptr) cell_->add_prebucketed(bucket_counts, sum);
  }
  bool enabled() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit HistogramMetric(detail_obs::HistogramCell* cell) : cell_(cell) {}
  detail_obs::HistogramCell* cell_ = nullptr;
};

/// Point-in-time export of a registry: every metric, sorted by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> uppers;         ///< finite upper bounds
    std::vector<std::uint64_t> counts;  ///< uppers.size() + 1 (overflow last)
    std::uint64_t count = 0;            ///< total finite samples
    std::uint64_t nan_count = 0;
    double sum = 0.0;

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    /// Linear-interpolated quantile over the bucketed counts (q in [0,1]).
    double quantile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Lookup helpers (null when the metric does not exist).
  const CounterValue* find_counter(std::string_view name) const;
  const GaugeValue* find_gauge(std::string_view name) const;
  const HistogramValue* find_histogram(std::string_view name) const;

  /// Counter value, or 0 when absent — the common test assertion shape.
  std::uint64_t counter_value(std::string_view name) const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {buckets,
  /// counts, count, sum, nan_count}}} via common/json.hpp.
  Json to_json() const;

  /// Inverse of to_json() (derived p50/p95/p99/mean fields are recomputed,
  /// not read back). Cross-process consumers — the shard telemetry parent
  /// and `ft2 top --connect` — use this to rebuild a snapshot from a frame
  /// or /snapshot.json body. Throws ft2::Error on a malformed document.
  static MetricsSnapshot from_json(const Json& doc);

  /// Human-readable table (one row per metric; histograms show
  /// count/mean/p50/p95/p99) via common/table.hpp.
  Table to_table() const;
};

/// Registry of named metrics. Registration is idempotent: asking for an
/// existing name returns a handle to the same cell (histograms must repeat
/// the same bucket bounds). Cells live as long as the registry — keep the
/// registry alive while handles are in use.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  HistogramMetric histogram(std::string_view name,
                            std::span<const double> uppers);

  /// Sums all stripes into a sorted point-in-time view.
  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (keeps registrations). Test isolation helper.
  void reset();

  /// The process-wide registry.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<detail_obs::CounterCell>> counters_;
  std::vector<std::unique_ptr<detail_obs::GaugeCell>> gauges_;
  std::vector<std::unique_ptr<detail_obs::HistogramCell>> histograms_;
};

/// The registry instrumented subsystems use when none is supplied
/// explicitly: &MetricsRegistry::global(), or nullptr (metrics disabled,
/// handles inert) when the FT2_METRICS environment variable is falsy.
/// Evaluated once per process.
MetricsRegistry* default_metrics();

/// `count` exponential bucket upper bounds: start, start*factor, ...
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count);

/// Default latency buckets in milliseconds: 0.05ms .. ~26s, factor 2.
std::span<const double> latency_ms_buckets();

/// Default clip-magnitude buckets: |value| decades 1 .. 65536 (FP16 range).
std::span<const double> magnitude_buckets();

}  // namespace ft2
