// Central catalog of every metric and trace-span name the library can
// register. The catalog is the documentation contract: `ft2 metric-names`
// dumps it, tools/docs_check.sh verifies every metric name mentioned in the
// docs against that dump, and tests/obs/catalog_test.cpp verifies that
// every name a live workload actually registers is cataloged — so a metric
// cannot be added, renamed, or documented without the three staying in
// sync.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ft2 {

/// One observable name. `kind` distinguishes metric types from trace span
/// names (spans share the dotted namespace but live in the Tracer, not the
/// MetricsRegistry).
struct CatalogEntry {
  std::string name;
  const char* kind;  ///< "counter" | "gauge" | "histogram" | "span"
  const char* help;  ///< one-line description
};

/// The full expanded catalog: `<KIND>` placeholders fanned out over every
/// LayerKind and `<OUTCOME>` over every campaign outcome, sorted by name.
const std::vector<CatalogEntry>& metric_catalog();

/// All catalog names, in catalog order — the `ft2 metric-names` dump.
std::vector<std::string> all_metric_names();

/// True when `name` appears in the catalog (exact match).
bool is_cataloged_metric(std::string_view name);

}  // namespace ft2
