// Central catalog of every metric and trace-span name the library can
// register. The catalog is the documentation contract: `ft2 metric-names`
// dumps it, tools/docs_check.sh verifies every metric name mentioned in the
// docs against that dump, and tests/obs/catalog_test.cpp verifies that
// every name a live workload actually registers is cataloged — so a metric
// cannot be added, renamed, or documented without the three staying in
// sync.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ft2 {

/// One observable name. `kind` distinguishes metric types from trace span
/// names (spans share the dotted namespace but live in the Tracer, not the
/// MetricsRegistry).
struct CatalogEntry {
  std::string name;
  const char* kind;  ///< "counter" | "gauge" | "histogram" | "span"
  const char* help;  ///< one-line description
};

/// The full expanded catalog: `<KIND>` placeholders fanned out over every
/// LayerKind and `<OUTCOME>` over every campaign outcome, sorted by name.
/// The `<N>` placeholder (a small non-negative integer, e.g. a shard
/// index) stays literal — it has no bounded expansion.
const std::vector<CatalogEntry>& metric_catalog();

/// All catalog names, in catalog order — the `ft2 metric-names` dump.
std::vector<std::string> all_metric_names();

/// The un-expanded template names (placeholders intact), sorted — the
/// `ft2 metric-names --templates` dump consumed by the reverse docs gate
/// in tools/docs_check.sh (one docs row per template, not per expansion).
std::vector<std::string> metric_template_names();

/// True when `name` appears in the catalog. A name ending in `.<digits>`
/// also matches a catalog entry ending in `.<N>` (numeric wildcard, e.g.
/// campaign.shard.progress.3 matches campaign.shard.progress.<N>).
bool is_cataloged_metric(std::string_view name);

/// Catalog entry for `name` (same matching rules as is_cataloged_metric),
/// or nullptr. The Prometheus exporter sources HELP lines from this.
const CatalogEntry* find_catalog_entry(std::string_view name);

}  // namespace ft2
