#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/env.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace ft2 {

namespace detail_obs {

std::size_t stripe_index() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return index;
}

namespace {

/// CAS-add a double stored as uint64 bits (relaxed; sums are only read by
/// snapshot, which needs no ordering beyond per-value atomicity).
void add_double_bits(std::atomic<std::uint64_t>& bits, double x) {
  std::uint64_t old_bits = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      old_bits, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old_bits) + x),
      std::memory_order_relaxed)) {
  }
}

double sum_double_stripes(const std::array<Stripe, kMetricStripes>& stripes) {
  double total = 0.0;
  for (const Stripe& s : stripes) {
    total += std::bit_cast<double>(s.value.load(std::memory_order_relaxed));
  }
  return total;
}

std::uint64_t sum_stripes(const std::array<Stripe, kMetricStripes>& stripes) {
  std::uint64_t total = 0;
  for (const Stripe& s : stripes) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace

std::uint64_t CounterCell::sum() const { return sum_stripes(stripes); }

void HistogramCell::add(double x) {
  if (std::isnan(x)) {
    nan_counts[stripe_index()].value.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // First bucket with upper >= x; everything above the last bound goes to
  // the trailing overflow bucket.
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(uppers.begin(), uppers.end(), x) -
                               uppers.begin());
  const std::size_t stripe = stripe_index();
  counts[stripe * n_buckets() + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  add_double_bits(sums[stripe].value, x);
}

void HistogramCell::add_prebucketed(
    std::span<const std::uint64_t> bucket_counts, double sum) {
  FT2_CHECK_MSG(bucket_counts.size() == n_buckets(),
                "pre-bucketed counts must match the histogram's buckets");
  const std::size_t stripe = stripe_index();
  for (std::size_t b = 0; b < bucket_counts.size(); ++b) {
    if (bucket_counts[b] != 0) {
      counts[stripe * n_buckets() + b].value.fetch_add(
          bucket_counts[b], std::memory_order_relaxed);
    }
  }
  if (sum != 0.0) add_double_bits(sums[stripe].value, sum);
}

}  // namespace detail_obs

Counter MetricsRegistry::counter(std::string_view name) {
  FT2_CHECK_MSG(!name.empty(), "metric name must not be empty");
  std::lock_guard lock(mutex_);
  for (const auto& cell : counters_) {
    if (cell->name == name) return Counter(cell.get());
  }
  counters_.push_back(std::make_unique<detail_obs::CounterCell>());
  counters_.back()->name = std::string(name);
  return Counter(counters_.back().get());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  FT2_CHECK_MSG(!name.empty(), "metric name must not be empty");
  std::lock_guard lock(mutex_);
  for (const auto& cell : gauges_) {
    if (cell->name == name) return Gauge(cell.get());
  }
  gauges_.push_back(std::make_unique<detail_obs::GaugeCell>());
  gauges_.back()->name = std::string(name);
  return Gauge(gauges_.back().get());
}

HistogramMetric MetricsRegistry::histogram(std::string_view name,
                                           std::span<const double> uppers) {
  FT2_CHECK_MSG(!name.empty(), "metric name must not be empty");
  FT2_CHECK_MSG(!uppers.empty(), "histogram " << name << " needs buckets");
  for (std::size_t i = 1; i < uppers.size(); ++i) {
    FT2_CHECK_MSG(uppers[i - 1] < uppers[i],
                  "histogram " << name << " buckets must ascend");
  }
  std::lock_guard lock(mutex_);
  for (const auto& cell : histograms_) {
    if (cell->name == name) {
      FT2_CHECK_MSG(cell->uppers.size() == uppers.size() &&
                        std::equal(uppers.begin(), uppers.end(),
                                   cell->uppers.begin()),
                    "histogram " << name
                                 << " re-registered with different buckets");
      return HistogramMetric(cell.get());
    }
  }
  auto cell = std::make_unique<detail_obs::HistogramCell>();
  cell->name = std::string(name);
  cell->uppers.assign(uppers.begin(), uppers.end());
  cell->counts =
      std::vector<detail_obs::Stripe>(kMetricStripes * cell->n_buckets());
  histograms_.push_back(std::move(cell));
  return HistogramMetric(histograms_.back().get());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard lock(mutex_);
  for (const auto& cell : counters_) {
    snap.counters.push_back({cell->name, cell->sum()});
  }
  for (const auto& cell : gauges_) {
    snap.gauges.push_back(
        {cell->name, cell->value.load(std::memory_order_relaxed)});
  }
  for (const auto& cell : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = cell->name;
    h.uppers = cell->uppers;
    h.counts.assign(cell->n_buckets(), 0);
    for (std::size_t s = 0; s < kMetricStripes; ++s) {
      for (std::size_t b = 0; b < cell->n_buckets(); ++b) {
        h.counts[b] += cell->counts[s * cell->n_buckets() + b].value.load(
            std::memory_order_relaxed);
      }
    }
    for (std::uint64_t c : h.counts) h.count += c;
    h.nan_count = detail_obs::sum_stripes(cell->nan_counts);
    h.sum = detail_obs::sum_double_stripes(cell->sums);
    snap.histograms.push_back(std::move(h));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& cell : counters_) {
    for (auto& s : cell->stripes) s.value.store(0, std::memory_order_relaxed);
  }
  for (const auto& cell : gauges_) {
    cell->value.store(0.0, std::memory_order_relaxed);
  }
  for (const auto& cell : histograms_) {
    for (auto& s : cell->counts) s.value.store(0, std::memory_order_relaxed);
    for (auto& s : cell->nan_counts) {
      s.value.store(0, std::memory_order_relaxed);
    }
    for (auto& s : cell->sums) s.value.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry* default_metrics() {
  static MetricsRegistry* const reg =
      env_flag("FT2_METRICS", true) ? &MetricsRegistry::global() : nullptr;
  return reg;
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t count) {
  FT2_CHECK(start > 0.0 && factor > 1.0 && count > 0);
  std::vector<double> uppers(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i, v *= factor) uppers[i] = v;
  return uppers;
}

std::span<const double> latency_ms_buckets() {
  static const std::vector<double> buckets =
      exponential_buckets(0.05, 2.0, 20);  // 0.05ms .. ~26s
  return buckets;
}

std::span<const double> magnitude_buckets() {
  static const std::vector<double> buckets =
      exponential_buckets(1.0, 4.0, 9);  // 1 .. 65536 (past FP16 max)
  return buckets;
}

double MetricsSnapshot::HistogramValue::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    cumulative += counts[b];
    if (static_cast<double>(cumulative) >= target && counts[b] > 0) {
      // Interpolate inside the bucket; the overflow bucket reports its
      // lower bound (no finite upper edge to interpolate toward).
      const double lo = b == 0 ? 0.0 : uppers[b - 1];
      if (b >= uppers.size()) return lo;
      const double frac =
          1.0 - (static_cast<double>(cumulative) - target) /
                    static_cast<double>(counts[b]);
      return lo + frac * (uppers[b] - lo);
    }
  }
  return uppers.empty() ? 0.0 : uppers.back();
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::find_gauge(
    std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::find_histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_value(std::string_view name) const {
  const CounterValue* c = find_counter(name);
  return c == nullptr ? 0 : c->value;
}

Json MetricsSnapshot::to_json() const {
  Json doc = Json::object();
  Json& counters_json = (doc["counters"] = Json::object());
  for (const auto& c : counters) counters_json[c.name] = c.value;
  Json& gauges_json = (doc["gauges"] = Json::object());
  for (const auto& g : gauges) gauges_json[g.name] = g.value;
  Json& hists_json = (doc["histograms"] = Json::object());
  for (const auto& h : histograms) {
    Json entry = Json::object();
    Json uppers = Json::array();
    for (double u : h.uppers) uppers.push_back(u);
    entry["bucket_uppers"] = std::move(uppers);
    Json counts = Json::array();
    for (std::uint64_t c : h.counts) counts.push_back(c);
    entry["bucket_counts"] = std::move(counts);
    entry["count"] = h.count;
    entry["sum"] = h.sum;
    entry["mean"] = h.mean();
    entry["p50"] = h.quantile(0.5);
    entry["p95"] = h.quantile(0.95);
    entry["p99"] = h.quantile(0.99);
    entry["nan_count"] = h.nan_count;
    hists_json[h.name] = std::move(entry);
  }
  return doc;
}

MetricsSnapshot MetricsSnapshot::from_json(const Json& doc) {
  FT2_CHECK(doc.is_object());
  MetricsSnapshot snap;
  if (const Json* counters = doc.find("counters")) {
    for (const std::string& name : counters->keys()) {
      snap.counters.push_back(
          {name, static_cast<std::uint64_t>(counters->at(name).as_double())});
    }
  }
  // The writer emits non-finite doubles as null (JSON has no inf/nan);
  // map those back to NaN rather than failing the parse.
  auto as_double_or_nan = [](const Json& v) {
    return v.is_null() ? std::numeric_limits<double>::quiet_NaN()
                       : v.as_double();
  };
  if (const Json* gauges = doc.find("gauges")) {
    for (const std::string& name : gauges->keys()) {
      snap.gauges.push_back({name, as_double_or_nan(gauges->at(name))});
    }
  }
  if (const Json* hists = doc.find("histograms")) {
    for (const std::string& name : hists->keys()) {
      const Json& entry = hists->at(name);
      HistogramValue h;
      h.name = name;
      const Json& uppers = entry.at("bucket_uppers");
      for (std::size_t i = 0; i < uppers.size(); ++i) {
        h.uppers.push_back(uppers.at(i).as_double());
      }
      const Json& counts = entry.at("bucket_counts");
      for (std::size_t i = 0; i < counts.size(); ++i) {
        h.counts.push_back(
            static_cast<std::uint64_t>(counts.at(i).as_double()));
      }
      FT2_CHECK(h.counts.size() == h.uppers.size() + 1);
      h.count = static_cast<std::uint64_t>(entry.at("count").as_double());
      h.sum = as_double_or_nan(entry.at("sum"));
      h.nan_count =
          static_cast<std::uint64_t>(entry.at("nan_count").as_double());
      snap.histograms.push_back(std::move(h));
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

Table MetricsSnapshot::to_table() const {
  Table table({"metric", "type", "value", "mean", "p50", "p95", "p99"});
  for (const auto& c : counters) {
    table.begin_row().cell(c.name).cell("counter").count(c.value).cell("").cell(
        "").cell("").cell("");
  }
  for (const auto& g : gauges) {
    table.begin_row().cell(g.name).cell("gauge").num(g.value, 2).cell("").cell(
        "").cell("").cell("");
  }
  for (const auto& h : histograms) {
    table.begin_row()
        .cell(h.name)
        .cell("histogram")
        .count(h.count)
        .num(h.mean(), 3)
        .num(h.quantile(0.5), 3)
        .num(h.quantile(0.95), 3)
        .num(h.quantile(0.99), 3);
  }
  return table;
}

}  // namespace ft2
