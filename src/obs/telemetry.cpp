#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

#include "common/check.hpp"
#include "common/json.hpp"

namespace ft2 {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t wall_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const TelemetryInterval::CounterRate* TelemetryInterval::find_counter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* TelemetryInterval::find_histogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double TelemetryInterval::counter_rate(std::string_view name) const {
  const CounterRate* c = find_counter(name);
  return c == nullptr ? 0.0 : c->per_sec;
}

Json TelemetryInterval::to_json() const {
  Json doc = Json::object();
  doc["seconds"] = seconds;
  Json& counters_json = (doc["counters"] = Json::object());
  for (const auto& c : counters) {
    Json entry = Json::object();
    entry["delta"] = c.delta;
    entry["per_sec"] = c.per_sec;
    counters_json[c.name] = std::move(entry);
  }
  Json& hists_json = (doc["histograms"] = Json::object());
  for (const auto& h : histograms) {
    Json entry = Json::object();
    entry["count"] = h.count;
    entry["mean"] = h.mean();
    entry["p50"] = h.quantile(0.5);
    entry["p95"] = h.quantile(0.95);
    entry["p99"] = h.quantile(0.99);
    hists_json[h.name] = std::move(entry);
  }
  Json& gauges_json = (doc["gauges"] = Json::object());
  for (const auto& g : gauges) gauges_json[g.name] = g.value;
  return doc;
}

TelemetryInterval derive_interval(const TelemetrySample& prev,
                                  const TelemetrySample& next) {
  TelemetryInterval interval;
  interval.seconds =
      next.steady_ns <= prev.steady_ns
          ? 0.0
          : static_cast<double>(next.steady_ns - prev.steady_ns) * 1e-9;
  const double dt = interval.seconds;

  for (const auto& c : next.snapshot.counters) {
    const auto* before = prev.snapshot.find_counter(c.name);
    const std::uint64_t base = before == nullptr ? 0 : before->value;
    TelemetryInterval::CounterRate rate;
    rate.name = c.name;
    // Clamp at zero: a registry reset between samples must not produce a
    // negative "rate".
    rate.delta = c.value >= base ? c.value - base : 0;
    rate.per_sec = dt > 0.0 ? static_cast<double>(rate.delta) / dt : 0.0;
    interval.counters.push_back(std::move(rate));
  }

  for (const auto& h : next.snapshot.histograms) {
    const auto* before = prev.snapshot.find_histogram(h.name);
    MetricsSnapshot::HistogramValue delta;
    delta.name = h.name;
    delta.uppers = h.uppers;
    if (before == nullptr || before->counts.size() != h.counts.size()) {
      delta.counts = h.counts;
      delta.count = h.count;
      delta.nan_count = h.nan_count;
      delta.sum = h.sum;
    } else {
      delta.counts.resize(h.counts.size());
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        delta.counts[b] = h.counts[b] >= before->counts[b]
                              ? h.counts[b] - before->counts[b]
                              : 0;
      }
      delta.count = h.count >= before->count ? h.count - before->count : 0;
      delta.nan_count =
          h.nan_count >= before->nan_count ? h.nan_count - before->nan_count : 0;
      delta.sum = h.sum - before->sum;
    }
    interval.histograms.push_back(std::move(delta));
  }

  interval.gauges = next.snapshot.gauges;
  return interval;
}

MetricsSnapshot merge_snapshots(const std::vector<MetricsSnapshot>& parts) {
  MetricsSnapshot merged;
  std::unordered_map<std::string, std::size_t> counter_index;
  std::unordered_map<std::string, std::size_t> gauge_index;
  std::unordered_map<std::string, std::size_t> hist_index;

  for (const MetricsSnapshot& part : parts) {
    for (const auto& c : part.counters) {
      auto [it, inserted] =
          counter_index.try_emplace(c.name, merged.counters.size());
      if (inserted) {
        merged.counters.push_back(c);
      } else {
        merged.counters[it->second].value += c.value;
      }
    }
    for (const auto& g : part.gauges) {
      auto [it, inserted] = gauge_index.try_emplace(g.name, merged.gauges.size());
      if (inserted) {
        merged.gauges.push_back(g);
      } else {
        merged.gauges[it->second].value += g.value;
      }
    }
    for (const auto& h : part.histograms) {
      auto [it, inserted] =
          hist_index.try_emplace(h.name, merged.histograms.size());
      if (inserted) {
        merged.histograms.push_back(h);
        continue;
      }
      MetricsSnapshot::HistogramValue& into = merged.histograms[it->second];
      // Only same-shaped histograms merge bucket-wise; a bound mismatch
      // (workers built against different bucket sets) keeps the first view
      // rather than fabricating a nonsense distribution.
      if (into.uppers != h.uppers || into.counts.size() != h.counts.size()) {
        continue;
      }
      for (std::size_t b = 0; b < h.counts.size(); ++b) {
        into.counts[b] += h.counts[b];
      }
      into.count += h.count;
      into.nan_count += h.nan_count;
      into.sum += h.sum;
    }
  }

  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(merged.counters.begin(), merged.counters.end(), by_name);
  std::sort(merged.gauges.begin(), merged.gauges.end(), by_name);
  std::sort(merged.histograms.begin(), merged.histograms.end(), by_name);
  return merged;
}

TelemetrySampler::TelemetrySampler(const MetricsRegistry* registry,
                                   Options options)
    : registry_(registry), options_(options) {
  FT2_CHECK(registry_ != nullptr);
  FT2_CHECK(options_.ring_capacity > 0);
  if (options_.interval_ms == 0) options_.interval_ms = 1;
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (running_) return;
  take_sample_locked();
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this] { run_loop(); });
}

void TelemetrySampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  wake_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return running_;
}

TelemetrySample TelemetrySampler::take_sample_locked() {
  TelemetrySample sample;
  sample.steady_ns = steady_now_ns();
  sample.wall_ms = wall_now_ms();
  sample.seq = next_seq_++;
  sample.snapshot = registry_->snapshot();
  ring_.push_back(sample);
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
  return sample;
}

TelemetrySample TelemetrySampler::sample_now() {
  std::lock_guard<std::mutex> lock(mutex_);
  return take_sample_locked();
}

std::size_t TelemetrySampler::sample_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

TelemetrySample TelemetrySampler::latest() const {
  std::lock_guard<std::mutex> lock(mutex_);
  FT2_CHECK(!ring_.empty());
  return ring_.back();
}

std::vector<TelemetrySample> TelemetrySampler::history() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

TelemetryInterval TelemetrySampler::latest_interval() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < 2) return {};
  return derive_interval(ring_[ring_.size() - 2], ring_.back());
}

MetricsSnapshot TelemetrySampler::telemetry_snapshot() const {
  return registry_->snapshot();
}

Json TelemetrySampler::telemetry_json() const {
  TelemetrySample current;
  TelemetryInterval interval;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current.steady_ns = steady_now_ns();
    current.wall_ms = wall_now_ms();
    current.seq = next_seq_;  // not committed to the ring — read-only view
    current.snapshot = registry_->snapshot();
    if (!ring_.empty()) interval = derive_interval(ring_.back(), current);
  }
  Json doc = Json::object();
  doc["ts_ms"] = current.wall_ms;
  doc["samples"] = sample_count();
  doc["interval"] = interval.to_json();
  doc["cumulative"] = current.snapshot.to_json();
  return doc;
}

void TelemetrySampler::run_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    const auto period = std::chrono::milliseconds(options_.interval_ms);
    if (wake_.wait_for(lock, period, [this] { return stop_requested_; })) {
      break;
    }
    take_sample_locked();
  }
  // Final sample so short-lived workloads always leave >= 2 samples (one
  // interval) behind even when they finish inside the first period.
  take_sample_locked();
}

}  // namespace ft2
