// Minimal dependency-free HTTP/1.1 telemetry endpoint.
//
// One blocking accept loop on its own thread, serving three GET routes
// from a TelemetrySource:
//   /metrics        Prometheus text exposition (prom_export.hpp)
//   /snapshot.json  structured cumulative + interval view (telemetry.hpp)
//   /healthz        "ok" liveness probe
// Anything else is 404; non-GET methods are 405. Requests are handled
// serially — this is an operator scrape endpoint (Prometheus polls every
// few seconds), not a web server, and a serial loop keeps it at ~150
// lines of POSIX sockets with zero dependencies.
//
// Binding: 127.0.0.1 by default (telemetry is not authenticated; opt into
// other interfaces explicitly). Port 0 binds an ephemeral port — read the
// real one back with port(), which tests and `--telemetry-port 0` use.
//
// http_get() is the matching tiny client, so tests and `ft2 top
// --connect` need no curl dependency.
#pragma once

#include <cstdint>
#include <string>
#include <thread>

namespace ft2 {

class TelemetrySource;

class TelemetryEndpoint {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    int port = 0;  ///< 0 = ephemeral; see port()
  };

  explicit TelemetryEndpoint(const TelemetrySource* source)
      : TelemetryEndpoint(source, Options()) {}
  TelemetryEndpoint(const TelemetrySource* source, Options options);
  ~TelemetryEndpoint();
  TelemetryEndpoint(const TelemetryEndpoint&) = delete;
  TelemetryEndpoint& operator=(const TelemetryEndpoint&) = delete;

  /// Binds, listens and launches the serving thread. Throws ft2::Error
  /// when the port cannot be bound. Idempotent once started.
  void start();

  /// Shuts the listener down and joins the thread (idempotent; destructor
  /// calls it). In-flight responses finish; queued connections are reset.
  void stop();

  bool running() const { return running_; }

  /// The bound TCP port (valid after start(); the interesting case is the
  /// ephemeral port chosen for Options::port == 0).
  int port() const { return bound_port_; }

  /// "http://<bind>:<port>" for operator-facing log lines.
  std::string url() const;

 private:
  void serve_loop();
  void handle_connection(int client_fd);

  const TelemetrySource* source_;
  Options options_;
  int listen_fd_ = -1;
  int bound_port_ = -1;
  bool running_ = false;
  std::thread thread_;
};

/// Blocking one-shot HTTP GET against 127.0.0.1-style endpoints; the tiny
/// client half of the telemetry pair (no curl). Returns status 0 with a
/// diagnostic body on connect/read failure or timeout.
struct HttpResponse {
  int status = 0;
  std::string body;
};
HttpResponse http_get(const std::string& host, int port,
                      const std::string& path, int timeout_ms = 5000);

}  // namespace ft2
