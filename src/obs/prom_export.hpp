// Prometheus text-format (0.0.4) exposition of a MetricsSnapshot.
//
// Maps the dotted FT2 naming scheme onto Prometheus conventions:
//   - names are prefixed `ft2_` and sanitized (every char outside
//     [a-zA-Z0-9_] becomes `_`), counters gain the `_total` suffix;
//   - a trailing dotted component that is a LayerKind name, a campaign
//     outcome name, or a shard index becomes a label instead of part of
//     the name, so protect.oob.V_PROJ and protect.oob.FC1 fold into one
//     `ft2_protect_oob_total{kind="..."}` family;
//   - histograms expose cumulative `_bucket{le="..."}` series ending in
//     `le="+Inf"`, plus `_sum` and `_count` (NaN samples are excluded from
//     all three, matching HistogramCell semantics);
//   - HELP lines come from the metric catalog (src/obs/catalog.hpp);
//     un-cataloged names still export, without HELP.
//
// The endpoint (src/obs/http_endpoint.hpp) serves this under GET /metrics.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace ft2 {

/// Renders one snapshot as Prometheus exposition text. Families are
/// emitted in sorted order; series within a family keep snapshot order
/// (already name-sorted). Gauge NaN/Inf render as the Prometheus literals
/// `NaN`, `+Inf`, `-Inf`.
std::string prometheus_text(const MetricsSnapshot& snapshot);

/// `ft2_`-prefixed sanitized family name plus an optional label pulled
/// from the trailing dotted component. Exposed for tests.
struct PromSeries {
  std::string family;  ///< e.g. ft2_protect_oob (no _total suffix)
  std::string label_key;    ///< "kind" | "outcome" | "shard" | ""
  std::string label_value;  ///< "" when label_key is empty
};
PromSeries prom_series_for(const std::string& metric_name);

/// Prometheus value formatting: round-trippable shortest form for finite
/// doubles, `NaN` / `+Inf` / `-Inf` literals otherwise. Exposed for tests.
std::string prom_value(double v);

}  // namespace ft2
