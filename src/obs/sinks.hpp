// ObsSinks: the observability plumbing bundle.
//
// Every subsystem that publishes metrics and/or trace spans used to carry
// its own `MetricsRegistry* metrics` + `Tracer* tracer` pair (ServeOptions,
// CampaignConfig, hook constructors, ...). ObsSinks consolidates the pair
// into one small value type so a new subsystem gets both sinks with a
// single field, and call sites wire them with one assignment.
//
// Null semantics are owned by the consumer, matching the pre-ObsSinks
// contract of each field:
//  * engines/campaigns resolve a null `metrics` to `default_metrics()` and
//    a null `tracer` to `Tracer::global()`;
//  * hooks treat a null `metrics` as "inert handles" (no publication).
// Sinks are observational only everywhere: outcomes, records and corrected
// values are bit-identical whichever sinks are attached.
#pragma once

namespace ft2 {

class MetricsRegistry;
class Tracer;

struct ObsSinks {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

}  // namespace ft2
