// Chrome Trace Event (about://tracing, Perfetto) export for Tracer spans.
//
// The exporter maps span tags onto the Trace Event track model so
// continuous-batching interleaving is visible as a swimlane per request:
// the tag named by `pid_tag` ("request" by default) becomes the event's
// pid, the tag named by `tid_tag` ("slot") becomes its tid, and events
// that cover several requests at once (a batched decode step) carry
// comma-separated `<pid_tag>s` / `<tid_tag>s` tag lists and are fanned out
// onto every (pid, tid) track they touch. Events with neither tag land on
// pid 0 with the recording thread's index as tid. Metadata ("M") events
// name each process/thread track so the viewer shows "request 3 / slot 1"
// instead of bare numbers.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace ft2 {

class Json;

struct ChromeTraceOptions {
  /// Tag whose numeric value becomes the Trace Event pid (one process
  /// lane per distinct value). Campaign exports use "input".
  std::string pid_tag = "request";
  /// Tag whose numeric value becomes the tid within the pid's lane.
  std::string tid_tag = "slot";
  /// Rebase timestamps so the earliest span starts at ts = 0.
  bool normalize_ts = true;
};

/// Builds the Trace Event document: {"traceEvents": [...],
/// "displayTimeUnit": "ms"}. Events are emitted as complete ("X") spans
/// sorted by start time (stable on seq), so per-track ts is monotonic.
Json chrome_trace_json(const std::vector<TraceEvent>& events,
                       const ChromeTraceOptions& options = {});
Json chrome_trace_json(const Tracer& tracer,
                       const ChromeTraceOptions& options = {});

/// Writes the document to a stream (compact, one trailing newline).
void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const ChromeTraceOptions& options = {});

}  // namespace ft2
