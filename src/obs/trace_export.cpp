#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <tuple>
#include <utility>

#include "common/json.hpp"

namespace ft2 {

namespace {

const std::string* find_tag(const TraceEvent& event, const std::string& key) {
  for (const auto& [k, v] : event.tags) {
    if (k == key) return &v;
  }
  return nullptr;
}

/// Parses a track id from a tag value; non-numeric values hash-free
/// fall back to `fallback` so a stray tag never aborts an export.
long long parse_track_id(const std::string& text, long long fallback) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return fallback;
  return value;
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(text.substr(start));
      break;
    }
    out.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

struct Track {
  long long pid = 0;
  long long tid = 0;
  bool named_pid = false;  ///< pid came from the pid_tag (vs fallback 0)
  bool named_tid = false;  ///< tid came from the tid_tag (vs thread_index)

  bool operator<(const Track& other) const {
    return std::tie(pid, tid) < std::tie(other.pid, other.tid);
  }
};

/// Every (pid, tid) track an event belongs to. Batched events with
/// `<pid_tag>s` / `<tid_tag>s` CSV lists fan out to one track per entry.
std::vector<Track> event_tracks(const TraceEvent& event,
                                const ChromeTraceOptions& options) {
  std::vector<Track> tracks;
  const std::string* pids = find_tag(event, options.pid_tag + "s");
  if (pids != nullptr && !pids->empty()) {
    const std::string* tids = find_tag(event, options.tid_tag + "s");
    const std::vector<std::string> pid_list = split_csv(*pids);
    const std::vector<std::string> tid_list =
        tids != nullptr ? split_csv(*tids) : std::vector<std::string>{};
    for (std::size_t i = 0; i < pid_list.size(); ++i) {
      Track track;
      track.pid = parse_track_id(pid_list[i], 0);
      track.named_pid = true;
      if (i < tid_list.size()) {
        track.tid = parse_track_id(tid_list[i], 0);
        track.named_tid = true;
      } else {
        track.tid = event.thread_index;
      }
      tracks.push_back(track);
    }
    if (!tracks.empty()) return tracks;
  }

  Track track;
  track.tid = event.thread_index;
  if (const std::string* pid = find_tag(event, options.pid_tag)) {
    track.pid = parse_track_id(*pid, 0);
    track.named_pid = true;
  }
  if (const std::string* tid = find_tag(event, options.tid_tag)) {
    track.tid = parse_track_id(*tid, 0);
    track.named_tid = true;
  }
  tracks.push_back(track);
  return tracks;
}

Json metadata_event(const char* kind, long long pid, long long tid,
                    const std::string& label) {
  Json meta = Json::object();
  meta["name"] = kind;
  meta["ph"] = "M";
  meta["pid"] = static_cast<double>(pid);
  meta["tid"] = static_cast<double>(tid);
  Json args = Json::object();
  args["name"] = label;
  meta["args"] = std::move(args);
  return meta;
}

}  // namespace

Json chrome_trace_json(const std::vector<TraceEvent>& events,
                       const ChromeTraceOptions& options) {
  std::vector<const TraceEvent*> ordered;
  ordered.reserve(events.size());
  for (const TraceEvent& event : events) ordered.push_back(&event);
  std::sort(ordered.begin(), ordered.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              return std::tie(a->start_ns, a->seq) <
                     std::tie(b->start_ns, b->seq);
            });

  std::uint64_t base_ns = 0;
  if (options.normalize_ts && !ordered.empty()) {
    base_ns = ordered.front()->start_ns;
  }

  // Track registry: label processes/threads once, in first-seen order.
  std::map<long long, std::string> process_names;
  std::map<std::pair<long long, long long>, std::string> thread_names;

  Json trace_events = Json::array();
  for (const TraceEvent* event : ordered) {
    for (const Track& track : event_tracks(*event, options)) {
      if (process_names.find(track.pid) == process_names.end()) {
        process_names[track.pid] =
            track.named_pid
                ? options.pid_tag + " " + std::to_string(track.pid)
                : "ft2";
      }
      const std::pair<long long, long long> key{track.pid, track.tid};
      if (thread_names.find(key) == thread_names.end()) {
        thread_names[key] =
            track.named_tid
                ? options.tid_tag + " " + std::to_string(track.tid)
                : "thread " + std::to_string(track.tid);
      }

      Json entry = Json::object();
      entry["name"] = event->name;
      entry["ph"] = "X";
      entry["ts"] = static_cast<double>(event->start_ns - base_ns) / 1e3;
      entry["dur"] =
          static_cast<double>(event->end_ns - event->start_ns) / 1e3;
      entry["pid"] = static_cast<double>(track.pid);
      entry["tid"] = static_cast<double>(track.tid);
      if (!event->tags.empty()) {
        Json args = Json::object();
        for (const auto& [k, v] : event->tags) args[k] = v;
        entry["args"] = std::move(args);
      }
      trace_events.push_back(std::move(entry));
    }
  }

  // Prepend metadata so viewers label tracks before any data event.
  Json all = Json::array();
  for (const auto& [pid, label] : process_names) {
    all.push_back(metadata_event("process_name", pid, 0, label));
  }
  for (const auto& [key, label] : thread_names) {
    all.push_back(metadata_event("thread_name", key.first, key.second, label));
  }
  for (std::size_t i = 0; i < trace_events.size(); ++i) {
    all.push_back(trace_events.at(i));
  }

  Json document = Json::object();
  document["traceEvents"] = std::move(all);
  document["displayTimeUnit"] = "ms";
  return document;
}

Json chrome_trace_json(const Tracer& tracer,
                       const ChromeTraceOptions& options) {
  Json document = chrome_trace_json(tracer.events(), options);
  // Surface ring wrap-around loss: a viewer reading this export should
  // know it is looking at the newest `capacity` spans, not the whole run.
  const std::uint64_t dropped = tracer.dropped();
  if (dropped > 0) {
    Json other = Json::object();
    other["dropped_spans"] = static_cast<std::size_t>(dropped);
    other["ring_capacity"] = tracer.capacity();
    document["otherData"] = std::move(other);
  }
  return document;
}

void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const ChromeTraceOptions& options) {
  chrome_trace_json(tracer, options).write(os, -1);
  os << "\n";
}

}  // namespace ft2
