#include "obs/prom_export.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "fi/trace.hpp"
#include "nn/layer_kind.hpp"
#include "obs/catalog.hpp"

namespace ft2 {

namespace {

std::string sanitize(std::string_view dotted) {
  std::string out;
  out.reserve(dotted.size());
  for (char c : dotted) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

bool is_layer_kind_name(std::string_view s) {
  for (std::size_t k = 0; k < kLayerKindCount; ++k) {
    if (s == layer_kind_name(static_cast<LayerKind>(k))) return true;
  }
  return false;
}

bool is_outcome_name(std::string_view s) {
  constexpr Outcome kOutcomes[] = {Outcome::kMaskedIdentical,
                                   Outcome::kMaskedSemantic, Outcome::kSdc,
                                   Outcome::kNotInjected};
  for (Outcome o : kOutcomes) {
    if (s == outcome_name(o)) return true;
  }
  return false;
}

bool is_all_digits(std::string_view s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

/// HELP text for a family: the catalog entry of the original dotted name
/// (label expansions resolve through the catalog's own expansion).
const char* help_for(const std::string& dotted_name) {
  const CatalogEntry* entry = find_catalog_entry(dotted_name);
  return entry == nullptr ? nullptr : entry->help;
}

struct Series {
  std::string labels;       ///< rendered: {kind="V_PROJ"} or ""
  std::string dotted_name;  ///< original metric name (for HELP lookup)
  const MetricsSnapshot::CounterValue* counter = nullptr;
  const MetricsSnapshot::GaugeValue* gauge = nullptr;
  const MetricsSnapshot::HistogramValue* histogram = nullptr;
};

struct Family {
  const char* type = nullptr;  ///< "counter" | "gauge" | "histogram"
  std::vector<Series> series;
};

std::string render_labels(const PromSeries& s) {
  if (s.label_key.empty()) return "";
  return "{" + s.label_key + "=\"" + s.label_value + "\"}";
}

}  // namespace

PromSeries prom_series_for(const std::string& metric_name) {
  PromSeries out;
  std::string_view base = metric_name;
  const std::size_t dot = metric_name.rfind('.');
  if (dot != std::string::npos && dot + 1 < metric_name.size()) {
    const std::string_view tail =
        std::string_view(metric_name).substr(dot + 1);
    const char* key = nullptr;
    if (is_layer_kind_name(tail)) {
      key = "kind";
    } else if (is_outcome_name(tail)) {
      key = "outcome";
    } else if (is_all_digits(tail)) {
      key = "shard";
    }
    if (key != nullptr) {
      out.label_key = key;
      out.label_value = std::string(tail);
      base = std::string_view(metric_name).substr(0, dot);
    }
  }
  out.family = "ft2_" + sanitize(base);
  return out;
}

std::string prom_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  // Integral values (bucket bounds, merged counts) print without an
  // exponent: "10", not the "1e+01" %g would pick at low precision.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char fixed[32];
    std::snprintf(fixed, sizeof(fixed), "%.0f", v);
    return fixed;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Shortest round-trippable form: prefer fewer digits when they parse
  // back exactly.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    if (std::strtod(shorter, nullptr) == v) return shorter;
  }
  return buf;
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  // Group snapshot entries into label families keyed by family name, so
  // HELP/TYPE are emitted once even when ten <KIND> expansions share one
  // family.
  std::map<std::string, Family> families;
  auto add = [&families](const std::string& dotted, const char* type,
                         auto setter) {
    const PromSeries ps = prom_series_for(dotted);
    Family& family = families[ps.family];
    family.type = type;
    Series series;
    series.labels = render_labels(ps);
    series.dotted_name = dotted;
    setter(series);
    family.series.push_back(std::move(series));
  };
  for (const auto& c : snapshot.counters) {
    add(c.name, "counter", [&c](Series& s) { s.counter = &c; });
  }
  for (const auto& g : snapshot.gauges) {
    add(g.name, "gauge", [&g](Series& s) { s.gauge = &g; });
  }
  for (const auto& h : snapshot.histograms) {
    add(h.name, "histogram", [&h](Series& s) { s.histogram = &h; });
  }

  std::ostringstream os;
  for (const auto& [family_name, family] : families) {
    const bool is_counter = std::string_view(family.type) == "counter";
    const std::string exposed =
        is_counter ? family_name + "_total" : family_name;
    const char* help = help_for(family.series.front().dotted_name);
    if (help != nullptr) {
      os << "# HELP " << exposed << " " << help << "\n";
    }
    os << "# TYPE " << exposed << " " << family.type << "\n";
    for (const Series& s : family.series) {
      if (s.counter != nullptr) {
        os << exposed << s.labels << " " << s.counter->value << "\n";
      } else if (s.gauge != nullptr) {
        os << exposed << s.labels << " " << prom_value(s.gauge->value)
           << "\n";
      } else {
        const MetricsSnapshot::HistogramValue& h = *s.histogram;
        // Cumulative le-buckets; the +Inf bucket equals the finite-sample
        // total (NaN samples never land in buckets).
        std::string label_prefix =
            s.labels.empty() ? "{" : s.labels.substr(0, s.labels.size() - 1) +
                                         ",";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < h.uppers.size(); ++b) {
          cumulative += h.counts[b];
          os << exposed << "_bucket" << label_prefix << "le=\""
             << prom_value(h.uppers[b]) << "\"} " << cumulative << "\n";
        }
        os << exposed << "_bucket" << label_prefix << "le=\"+Inf\"} "
           << h.count << "\n";
        os << exposed << "_sum" << s.labels << " " << prom_value(h.sum)
           << "\n";
        os << exposed << "_count" << s.labels << " " << h.count << "\n";
      }
    }
  }
  return os.str();
}

}  // namespace ft2
