// Quickstart: protect generative inference with FT2 in three lines.
//
//   1. Get a model (here: the cached/auto-trained zoo model).
//   2. Create an InferenceSession and attach an Ft2Protector.
//   3. Generate — bounds are captured during the first token and all
//      critical-layer outputs are range-restricted afterwards.
//
// The demo then injects an exponent-bit fault into a critical layer during
// answer generation and shows the same fault with and without FT2.
#include <iostream>

#include "core/ft2.hpp"

using namespace ft2;

int main() {
  // 1. A generative model. ensure_model trains and caches it on first use.
  const auto model = ensure_model("llama-sm");
  std::cout << "model: " << model->config().name << " ("
            << model->weights().parameter_count() << " parameters)\n";

  // FT2's critical-layer heuristic, straight from the architecture graph.
  Ft2Protector protector(*model);
  std::cout << "critical layers protected by FT2:";
  for (LayerKind kind : protector.critical()) {
    std::cout << " " << layer_kind_name(kind);
  }
  std::cout << "\nbound memory: " << protector.bound_memory_bytes()
            << " bytes\n\n";

  // 2./3. Protected generation.
  const auto gen = make_generator(DatasetKind::kSynthQA);
  Xoshiro256 rng(7);
  const Sample sample = gen->generate(rng);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                sample.prompt_tokens.end());

  GenerateOptions opts;
  opts.max_new_tokens = 10;
  opts.eos_token = Vocab::kEos;

  InferenceSession session(*model);
  protector.attach(session);
  const auto clean = session.generate(prompt, opts);
  std::cout << "prompt : " << sample.prompt_text << "\n"
            << "answer : " << Vocab::shared().decode(clean.tokens) << "\n"
            << "expect : " << sample.target_text << "\n\n";

  // Now inject an exponent-bit flip into a V_PROJ output neuron while the
  // answer is being generated, with and without FT2.
  FaultPlan plan;
  plan.position = prompt.size() + 1;  // second generated token
  plan.site = {0, LayerKind::kVProj};
  plan.neuron = 5;
  plan.flips.count = 1;
  plan.flips.bits[0] = f16::kExponentHigh;

  opts.eos_token = -1;  // fixed length, as in the fault-injection campaigns
  {
    InjectorHook injector(plan);
    InferenceSession faulty(*model);
    const auto reg = faulty.hooks().add(injector);
    const auto out = faulty.generate(prompt, opts);
    std::cout << "with fault, NO protection : "
              << Vocab::shared().decode(truncate_at_eos(out.tokens))
              << "   (value " << injector.original_value() << " -> "
              << injector.injected_value() << ")\n";
  }
  {
    InjectorHook injector(plan);
    Ft2Protector ft2(*model);
    InferenceSession protected_session(*model);
    const auto reg = protected_session.hooks().add(injector);
    ft2.attach(protected_session);
    const auto out = protected_session.generate(prompt, opts);
    std::cout << "with fault, FT2 protection: "
              << Vocab::shared().decode(truncate_at_eos(out.tokens)) << "\n"
              << "corrections applied: " << ft2.stats().oob_corrected
              << " out-of-bound, " << ft2.stats().nan_corrected << " NaN\n";
  }
  return 0;
}
