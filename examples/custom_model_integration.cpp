// Domain scenario: integrating FT2 with YOUR OWN model, end to end:
//   * define a custom architecture (here: a 3-block Llama-style config),
//   * train it from scratch on a task with the library's trainer,
//   * let the analyzer derive its critical layers from the block graph,
//   * run protected inference and checkpoint the model.
// Nothing in FT2 is specific to the built-in zoo — only to the block graph.
#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/ft2.hpp"

using namespace ft2;

int main() {
  // 1. A custom architecture.
  ModelConfig config;
  config.name = "my-llama";
  config.arch = ArchFamily::kLlama;
  config.norm = NormKind::kRmsNorm;
  config.position = PositionKind::kRotary;
  config.activation = Activation::kSilu;
  config.linear_bias = false;
  config.vocab_size = Vocab::shared().size();
  config.d_model = 32;
  config.n_heads = 4;
  config.n_blocks = 3;
  config.d_ff = 96;
  config.max_seq = 96;

  Xoshiro256 rng(2024);
  TransformerLM model(config, init_weights(config, rng));
  std::cout << "custom model: " << model.weights().parameter_count()
            << " parameters, " << config.n_blocks << " blocks\n";

  // 2. Critical layers come from the architecture alone — before training.
  const auto critical = critical_layers(config);
  std::cout << "critical layers (heuristic):";
  for (LayerKind k : critical) std::cout << " " << layer_kind_name(k);
  std::cout << "\n\n";

  // 3. Train on the QA task.
  const auto gen = make_generator(DatasetKind::kSynthQA);
  TrainerConfig tc;
  tc.steps = env_size("FT2_TRAIN_STEPS", 800);
  tc.eval_every = 100;
  tc.min_steps = 200;
  tc.seed = 5;
  std::cout << "training";
  const auto report =
      train_model(model, {gen.get()}, tc, [](std::size_t step, float) {
        if ((step + 1) % 100 == 0) std::cout << "." << std::flush;
      });
  std::cout << " done: " << report.steps_run << " steps, accuracy "
            << Table::format(report.final_accuracy, 3) << "\n\n";

  // 4. Protected inference.
  Xoshiro256 sample_rng(9);
  const Sample sample = gen->generate(sample_rng);
  std::vector<int> prompt = {Vocab::kBos};
  prompt.insert(prompt.end(), sample.prompt_tokens.begin(),
                sample.prompt_tokens.end());

  InferenceSession session(model);
  Ft2Protector protector(model);
  protector.attach(session);
  GenerateOptions opts;
  opts.max_new_tokens = 10;
  opts.eos_token = Vocab::kEos;
  const auto out = session.generate(prompt, opts);
  std::cout << "prompt : " << sample.prompt_text << "\n"
            << "answer : " << Vocab::shared().decode(out.tokens) << "\n"
            << "expect : " << sample.target_text << "\n";

  // Bounds captured online during the first token:
  std::cout << "\nonline bounds captured for block 0:\n";
  for (LayerKind k : protector.critical()) {
    const Bounds& b = protector.online_bounds().at({0, k});
    std::cout << "  " << layer_kind_name(k) << ": [" << b.lo << ", " << b.hi
              << "]\n";
  }

  // 5. Checkpoint round trip.
  const std::string path =
      (std::filesystem::temp_directory_path() / "my-llama.ft2m").string();
  save_checkpoint(path, model.config(), model.weights());
  std::cout << "\ncheckpoint saved to " << path << " ("
            << std::filesystem::file_size(path) << " bytes)\n";
  std::remove(path.c_str());
  return 0;
}
