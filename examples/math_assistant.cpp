// Domain scenario: an arithmetic word-problem assistant (the paper's GSM8K
// use case). Math answers are single decisive number tokens, so a transient
// fault that lands mid-generation silently corrupts the result — exactly
// the SDC class FT2 targets. This example solves a batch of problems under
// WORST-CASE faults (top-exponent-bit flips in critical-layer outputs while
// the answer is being generated) and reports how many answers each
// configuration gets right. Uniform random faults are far more benign —
// see the statistical campaigns (qa_reliability_study, bench_fig13).
#include <iostream>
#include <optional>

#include "core/ft2.hpp"

using namespace ft2;

namespace {

struct RunResult {
  std::size_t correct = 0;
  std::size_t total = 0;
};

RunResult solve_batch(const TransformerLM& model,
                      const std::vector<Sample>& problems, bool protect,
                      bool inject, std::uint64_t seed) {
  const std::size_t gen_tokens = generation_tokens(DatasetKind::kSynthMath);
  RunResult result;
  for (std::size_t i = 0; i < problems.size(); ++i) {
    const Sample& problem = problems[i];
    std::vector<int> prompt = {Vocab::kBos};
    prompt.insert(prompt.end(), problem.prompt_tokens.begin(),
                  problem.prompt_tokens.end());

    InferenceSession session(model);
    std::optional<InjectorHook> injector;
    HookRegistration injector_reg;
    if (inject) {
      // Worst-case fault: flip the top exponent bit of a critical-layer
      // output neuron right when the answer tokens are being produced.
      PhiloxStream rng(seed, i);
      const auto critical = critical_layers(model.config());
      FaultPlan plan;
      plan.site.kind = critical[rng.uniform(critical.size())];
      plan.site.block =
          static_cast<int>(rng.uniform(model.config().n_blocks));
      plan.neuron =
          rng.uniform(model.config().layer_output_dim(plan.site.kind));
      plan.position = prompt.size() + 1 + rng.uniform(4);
      plan.flips.count = 1;
      plan.flips.bits[0] = f16::kExponentHigh;
      injector.emplace(plan);
      injector_reg = session.hooks().add(*injector);
    }
    Ft2Protector protector(model);
    if (protect) protector.attach(session);

    GenerateOptions opts;
    opts.max_new_tokens = gen_tokens;
    opts.eos_token = -1;
    const auto out = session.generate(prompt, opts);
    const std::string text =
        Vocab::shared().decode(truncate_at_eos(out.tokens));
    if (contains_reference(text, problem.reference)) ++result.correct;
    ++result.total;
  }
  return result;
}

}  // namespace

int main() {
  const auto model = ensure_model("qwen2-sm");
  const auto gen = make_generator(DatasetKind::kSynthMath);
  const std::size_t n = env_size("FT2_INPUTS", 30);
  const auto problems = gen->generate_many(n, 8);

  std::cout << "math assistant on " << problems.size()
            << " word problems (qwen2-sm)\n\nexample problem:\n  "
            << problems[0].prompt_text << "\n  expected: "
            << problems[0].reference << "\n\n";

  Table table({"configuration", "correct answers"});
  const RunResult clean = solve_batch(*model, problems, false, false, 0);
  const RunResult faulty = solve_batch(*model, problems, false, true, 42);
  const RunResult protected_run = solve_batch(*model, problems, true, true,
                                              42);
  auto row = [&](const char* name, const RunResult& r) {
    table.begin_row().cell(name).cell(
        std::to_string(r.correct) + "/" + std::to_string(r.total) + " (" +
        Table::format_pct(static_cast<double>(r.correct) /
                              static_cast<double>(r.total),
                          1) +
        ")");
  };
  row("fault-free, unprotected", clean);
  row("worst-case EXP fault per problem, unprotected", faulty);
  row("worst-case EXP fault per problem, FT2", protected_run);
  table.print(std::cout);
  std::cout << "\nFT2 recovers " << (protected_run.correct - faulty.correct)
            << " answers lost to faults, online, with no profiling data.\n";
  return 0;
}
