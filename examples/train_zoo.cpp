// Utility: trains (or verifies) every model in the zoo and reports
// per-task greedy-decode accuracy. Checkpoints land in $FT2_MODEL_DIR
// (default ./models); benches and examples then load them instantly.
//
//   ./train_zoo            train/load all models
//   ./train_zoo llama-sm   only one model
//   ./train_zoo --retrain  ignore cached checkpoints
#include <cstring>
#include <filesystem>
#include <iostream>

#include "core/ft2.hpp"

using namespace ft2;

int main(int argc, char** argv) {
  bool retrain = false;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--retrain") == 0) {
      retrain = true;
    } else {
      only = argv[i];
    }
  }

  Table table({"model", "paper model", "params", "task", "accuracy"});
  for (const auto& entry : model_zoo()) {
    if (!only.empty() && entry.name != only) continue;
    if (retrain) {
      std::error_code ec;
      std::filesystem::remove(model_cache_dir() + "/" + entry.name + ".ft2m",
                              ec);
    }
    const auto model = ensure_model(entry.name);
    for (DatasetKind task : entry.tasks) {
      const auto gen = make_generator(task);
      const double acc = evaluate_accuracy(*model, *gen, 50, 20250704);
      table.begin_row()
          .cell(entry.name)
          .cell(entry.paper_name)
          .count(model->weights().parameter_count())
          .cell(gen->name())
          .pct(acc, 1);
    }
  }
  table.print(std::cout);
  return 0;
}
