// Domain scenario: a question-answering service wants to know how much a
// transient-fault protection scheme buys. This example runs a small
// statistical fault-injection study on the QA workload, comparing no
// protection against every scheme in the library, with 95% confidence
// intervals — the workflow a reliability engineer would run before
// deploying FT2.
#include <iostream>

#include "core/ft2.hpp"

using namespace ft2;

int main() {
  const std::size_t n_inputs = env_size("FT2_INPUTS", 10);
  const std::size_t trials = env_size("FT2_TRIALS", 40);

  const auto model = ensure_model("opt-sm");
  const auto gen = make_generator(DatasetKind::kSynthQA);
  const std::size_t gen_tokens = generation_tokens(DatasetKind::kSynthQA);

  // Evaluation inputs the model answers correctly without faults.
  const auto samples = gen->generate_many(n_inputs * 2, 2025);
  auto inputs = prepare_eval_inputs(*model, samples, gen_tokens, true);
  if (inputs.size() > n_inputs) inputs.resize(n_inputs);
  std::cout << "QA reliability study: " << inputs.size() << " inputs x "
            << trials << " single-fault trials per scheme, EXP fault model\n\n";

  // Baselines need offline bounds (this is the expensive step FT2 removes).
  OfflineProfileOptions profile;
  profile.n_inputs = 16;
  profile.seed = 999;
  profile.max_new_tokens = gen_tokens;
  const BoundStore bounds = profile_offline_bounds(*model, *gen, profile);

  CampaignConfig config;
  config.fault_model = FaultModel::kExponentBit;
  config.trials_per_input = trials;
  config.gen_tokens = gen_tokens;

  Table table({"scheme", "SDC", "masked (identical)", "masked (semantic)",
               "SDC rate", "95% CI margin"});
  double none_rate = 0.0;
  // Enumerate the scheme registry: any newly registered detector (checksum,
  // adaptive, custom) joins the study without touching this loop.
  for (const std::string& name : all_scheme_names()) {
    const SchemeRef ref{name, {}};
    const auto result = run_campaign(*model, inputs, ref, bounds, config);
    if (name == "none") none_rate = result.sdc_rate();
    table.begin_row()
        .cell(name)
        .count(result.sdc)
        .count(result.masked_identical)
        .count(result.masked_semantic)
        .pct(result.sdc_rate())
        .pct(result.sdc_ci().margin);
  }
  table.print(std::cout);

  const auto ft2 = run_campaign(*model, inputs, SchemeKind::kFt2, bounds,
                                config);
  if (none_rate > 0.0) {
    std::cout << "\nFT2 SDC-rate reduction vs unprotected: "
              << Table::format_pct(1.0 - ft2.sdc_rate() / none_rate, 1)
              << " — with no offline profiling at all.\n";
  }
  return 0;
}
