#include "perfmodel/perfmodel.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace ft2::perfmodel {
namespace {

TEST(PerfModel, ParameterCountsMatchPublishedSizes) {
  // Paper Table 2 parameter counts (billions): OPT-6.7B 6.66, OPT-2.7B 2.65,
  // GPTJ-6B 6.05, Llama2-7B 6.74, Qwen2-7B 7.62, Qwen2-1.5B 1.54.
  auto billions = [](const char* name) {
    return static_cast<double>(param_count(paper_model(name))) / 1e9;
  };
  EXPECT_NEAR(billions("OPT-6.7B"), 6.66, 0.35);
  EXPECT_NEAR(billions("OPT-2.7B"), 2.65, 0.25);
  EXPECT_NEAR(billions("GPTJ-6B"), 6.05, 0.35);
  EXPECT_NEAR(billions("Llama2-7B"), 6.74, 0.35);
  EXPECT_NEAR(billions("Vicuna-7B"), 6.74, 0.35);
  EXPECT_NEAR(billions("Qwen2-7B"), 7.62, 0.60);
  EXPECT_NEAR(billions("Qwen2-1.5B"), 1.54, 0.25);
}

TEST(PerfModel, GpuSpecsSane) {
  EXPECT_GT(h100().fp16_tflops, a100().fp16_tflops);
  EXPECT_GT(h100().hbm_gbps, a100().hbm_gbps);
}

TEST(PerfModel, DecodeIsBandwidthBound) {
  const auto& m = paper_model("Llama2-7B");
  const auto g = a100();
  // Weight bytes / effective bandwidth lower-bounds decode time.
  const double weight_time =
      static_cast<double>(param_count(m)) * 2.0 / (g.hbm_gbps * 1e9 * g.bw_eff);
  EXPECT_GE(decode_seconds(m, g, 256), weight_time * 0.99);
  // Roughly ~11ms/token for a 7B on A100 — order of magnitude check.
  EXPECT_GT(decode_seconds(m, g, 256), 0.003);
  EXPECT_LT(decode_seconds(m, g, 256), 0.05);
}

TEST(PerfModel, PrefillFasterThanSequentialDecode) {
  const auto& m = paper_model("OPT-6.7B");
  const auto g = a100();
  const std::size_t len = 256;
  double sequential = 0.0;
  for (std::size_t i = 0; i < len; ++i) sequential += decode_seconds(m, g, i + 1);
  EXPECT_LT(prefill_seconds(m, g, len), sequential);
}

TEST(PerfModel, FirstTokenFractionIsSmall) {
  // Fig. 10: first token < 10% of inference time for all models/GPUs.
  for (const auto& m : paper_models()) {
    for (const auto& g : {a100(), h100()}) {
      const double qa = first_token_fraction(m, g, 256, 60);
      const double math = first_token_fraction(m, g, 256, 180);
      EXPECT_GT(qa, 0.0);
      EXPECT_LT(qa, 0.10) << m.name << " " << g.name;
      EXPECT_LT(math, qa) << "longer generation shrinks the fraction";
    }
  }
}

TEST(PerfModel, InferenceSecondsMatchPaperRange) {
  // Paper §5.2.2: inference instances take 1.35 - 6.4 s on A100.
  const auto g = a100();
  for (const auto& m : paper_models()) {
    const double qa = inference_seconds(m, g, 256, 60);
    EXPECT_GT(qa, 0.1) << m.name;
    EXPECT_LT(qa, 10.0) << m.name;
  }
}

TEST(PerfModel, ProfilingHoursScaleAndShape) {
  // Fig. 4: profiling 20% of a large training set reaches tens to hundreds
  // of hours on A100 and is several times faster on H100.
  const auto& m = paper_model("Llama2-7B");
  const double a = profiling_hours(m, a100(), 26000, 256, 60);
  const double h = profiling_hours(m, h100(), 26000, 256, 60);
  EXPECT_GT(a, 4.0);
  EXPECT_LT(a, 400.0);
  EXPECT_LT(h, a);
  EXPECT_NEAR(a / h, 1.6, 1.2);  // H100 is 1.5-3x faster end-to-end
}

TEST(PerfModel, ProfilingHoursMonotonicInInputs) {
  const auto& m = paper_model("OPT-2.7B");
  EXPECT_LT(profiling_hours(m, a100(), 100, 128, 60),
            profiling_hours(m, a100(), 1000, 128, 60));
}

TEST(PerfModel, ProtectionOverheadFewPercent) {
  // Fig. 14: FT2 overhead averages ~3.4%, worst case < 9%.
  for (const auto& m : paper_models()) {
    const double f = protection_overhead_fraction(m, a100(), 256, 60, 5,
                                                  static_cast<double>(m.d_model));
    EXPECT_GT(f, 0.0001) << m.name;
    EXPECT_LT(f, 0.12) << m.name;
  }
}

TEST(PerfModel, UnknownModelThrows) {
  EXPECT_THROW(paper_model("GPT-17"), ft2::Error);
}

TEST(PerfModel, GatedMlpHasThreeMatrices) {
  const auto& llama = paper_model("Llama2-7B");
  const auto& opt = paper_model("OPT-6.7B");
  EXPECT_TRUE(llama.gated_mlp);
  EXPECT_FALSE(opt.gated_mlp);
}

}  // namespace
}  // namespace ft2::perfmodel
