#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ft2 {
namespace {

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize ||w - target||^2 for a single 1-D "model" parameter tensor by
  // driving Adam with hand-computed gradients.
  ModelConfig c;
  c.arch = ArchFamily::kOpt;
  c.vocab_size = 4;
  c.d_model = 4;
  c.n_heads = 1;
  c.n_blocks = 1;
  c.d_ff = 4;
  c.max_seq = 8;
  Xoshiro256 rng(1);
  ModelWeights w = init_weights(c, rng);
  GradStore grads(w);
  Adam adam(w, AdamConfig{.lr = 0.05f});

  const float target = 0.7f;
  for (int step = 0; step < 400; ++step) {
    grads.zero();
    Tensor& g = grads.grad(w.tok_emb);
    for (std::size_t i = 0; i < g.numel(); ++i) {
      g[i] = 2.0f * (w.tok_emb[i] - target);
    }
    adam.step(grads, 0.05f);
  }
  for (std::size_t i = 0; i < w.tok_emb.numel(); ++i) {
    EXPECT_NEAR(w.tok_emb[i], target, 0.02f);
  }
  EXPECT_EQ(adam.steps_taken(), 400u);
}

TEST(LrSchedule, WarmupPeakAndDecay) {
  const float peak = 1e-2f;
  EXPECT_LT(lr_schedule(0, 10, 100, peak), peak * 0.2f);
  EXPECT_NEAR(lr_schedule(9, 10, 100, peak), peak, 1e-6f);
  EXPECT_NEAR(lr_schedule(10, 10, 100, peak), peak, peak * 0.02f);
  // Decays monotonically after warmup.
  float prev = lr_schedule(10, 10, 100, peak);
  for (std::size_t s = 20; s <= 100; s += 10) {
    const float cur = lr_schedule(s, 10, 100, peak);
    EXPECT_LE(cur, prev + 1e-9f);
    prev = cur;
  }
  // Floor at 10% of peak.
  EXPECT_NEAR(lr_schedule(100, 10, 100, peak), peak * 0.1f, 1e-6f);
  EXPECT_NEAR(lr_schedule(500, 10, 100, peak), peak * 0.1f, 1e-6f);
}

TEST(Trainer, MakeTrainSequenceLayout) {
  Sample s;
  s.prompt_tokens = {10, 11, 12};
  s.target_tokens = {20, 21, Vocab::kEos};
  const TrainSequence seq = make_train_sequence(s, 0.1f);
  // <bos> 10 11 12 20 21 <eos>
  ASSERT_EQ(seq.tokens.size(), 7u);
  EXPECT_EQ(seq.tokens[0], Vocab::kBos);
  EXPECT_EQ(seq.tokens[4], 20);
  EXPECT_EQ(seq.tokens.back(), Vocab::kEos);
  ASSERT_EQ(seq.loss_weight.size(), 6u);
  // Positions 0..2 predict prompt tokens (weight 0.1); position 3 predicts
  // the first answer token (weight 1).
  EXPECT_FLOAT_EQ(seq.loss_weight[0], 0.1f);
  EXPECT_FLOAT_EQ(seq.loss_weight[2], 0.1f);
  EXPECT_FLOAT_EQ(seq.loss_weight[3], 1.0f);
  EXPECT_FLOAT_EQ(seq.loss_weight[5], 1.0f);
}

TEST(Trainer, LossDecreasesOnTinyTask) {
  ModelConfig c;
  c.arch = ArchFamily::kLlama;
  c.norm = NormKind::kRmsNorm;
  c.position = PositionKind::kRotary;
  c.activation = Activation::kSilu;
  c.linear_bias = false;
  c.vocab_size = Vocab::shared().size();
  c.d_model = 24;
  c.n_heads = 2;
  c.n_blocks = 1;
  c.d_ff = 32;
  c.max_seq = 96;
  Xoshiro256 rng(9);
  TransformerLM model(c, init_weights(c, rng));

  const auto gen = make_generator(DatasetKind::kSynthQA);
  TrainerConfig tc;
  tc.steps = 120;
  tc.warmup_steps = 5;
  tc.peak_lr = 5e-3f;
  tc.batch_size = 4;
  tc.eval_every = 0;
  tc.eval_samples = 8;
  tc.seed = 3;

  float first_loss = -1.0f;
  std::vector<float> losses;
  const auto report = train_model(
      model, {gen.get()}, tc, [&](std::size_t, float loss) {
        if (first_loss < 0.0f) first_loss = loss;
        losses.push_back(loss);
      });
  ASSERT_EQ(report.steps_run, 120u);
  // Average of last 10 losses well below the first loss.
  float tail = 0.0f;
  for (std::size_t i = losses.size() - 10; i < losses.size(); ++i) {
    tail += losses[i];
  }
  tail /= 10.0f;
  EXPECT_LT(tail, first_loss * 0.7f) << "first=" << first_loss
                                     << " tail=" << tail;
  EXPECT_TRUE(std::isfinite(report.final_loss));
}

}  // namespace
}  // namespace ft2
